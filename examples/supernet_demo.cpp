/**
 * @file
 * Supernet switching demo: how DREAM sheds load by deploying lighter
 * Once-for-All subnets as the system saturates (Section 4.5.1,
 * Figures 6 and 14). Sweeps the cascade probability of AR_Social and
 * VR_Gaming and reports the subnet mix, deadline violations and
 * energy, with and without Supernet switching.
 */

#include <cstdio>

#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main()
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    std::printf("Supernet switching under rising load (%s)\n\n",
                system.name.c_str());

    runner::Table t({"Scenario", "Cascade", "Config", "Original", "v1",
                     "v2", "v3", "Violated", "Energy(mJ)"});
    for (const auto sc_preset : {workload::ScenarioPreset::VrGaming,
                                 workload::ScenarioPreset::ArSocial}) {
        for (const double prob : {0.5, 0.99}) {
            const auto scenario =
                workload::makeScenario(sc_preset, prob);
            for (const auto kind :
                 {runner::SchedKind::DreamSmartDrop,
                  runner::SchedKind::DreamFull}) {
                auto sched = runner::makeScheduler(kind);
                const auto r = runner::runOnce(
                    system, scenario, *sched, runner::kDefaultWindowUs,
                    11);
                std::vector<std::string> row{
                    toString(sc_preset), runner::fmtPct(prob, 0),
                    kind == runner::SchedKind::DreamFull
                        ? "with switching"
                        : "without"};
                bool found = false;
                for (const auto& ts : r.stats.tasks) {
                    if (ts.variantStarts.empty())
                        continue;
                    uint64_t total = 0;
                    for (const auto v : ts.variantStarts)
                        total += v;
                    for (const auto v : ts.variantStarts) {
                        row.push_back(runner::fmtPct(
                            total ? double(v) / double(total) : 0.0,
                            0));
                    }
                    found = true;
                    break;
                }
                if (!found)
                    row.insert(row.end(), {"-", "-", "-", "-"});
                row.push_back(std::to_string(r.stats.totalViolated()));
                row.push_back(
                    runner::fmt(r.stats.totalEnergyMj(), 1));
                t.addRow(row);
            }
        }
    }
    t.print();
    std::printf("\nUnder light load the Original subnet dominates; "
                "under heavy load DREAM dispatches lighter\nvariants "
                "to keep the whole workload inside its deadlines "
                "(Figure 14 of the paper).\n");
    return 0;
}
