/**
 * @file
 * Drone mission example: task-level dynamicity.
 *
 * A drone flies indoors, transitions outdoors mid-mission and returns
 * — the navigation stack swaps between the Drone_Indoor and
 * Drone_Outdoor model sets (Section 2.2's task-level dynamicity,
 * e.g. "if a drone flying in a building moves out from the building,
 * the navigation ML model should be updated"). The example builds one
 * combined scenario whose tasks activate/deactivate over time and
 * compares DREAM against FCFS across the phase changes.
 */

#include <cstdio>

#include "models/zoo.h"
#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

namespace {

workload::Scenario
droneMission()
{
    using namespace models::zoo;
    constexpr double kPhaseUs = 1.0e6; // indoor / outdoor / indoor

    workload::Scenario s;
    s.name = "Drone_Mission";
    auto add = [&s](models::Model m, double fps, double start,
                    double end) {
        workload::TaskSpec t;
        t.model = std::move(m);
        t.fps = fps;
        t.startUs = start;
        t.endUs = end;
        s.tasks.push_back(std::move(t));
    };
    // Object detection and obstacle avoidance run for the whole
    // mission; navigation models swap with the environment.
    add(ssdMobileNetV2(), 30, 0.0, 3 * kPhaseUs);
    add(sosNet(), 60, 0.0, 3 * kPhaseUs);
    add(rapidRl(), 60, 0.0, kPhaseUs);                  // indoor leg
    add(googLeNetCar(), 60, 0.0, kPhaseUs);             // parking lot
    add(trailNet(), 60, kPhaseUs, 2 * kPhaseUs);        // outdoor leg
    add(rapidRl(), 60, 2 * kPhaseUs, 3 * kPhaseUs);     // back inside
    return s;
}

} // namespace

int
main()
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    const auto scenario = droneMission();

    std::printf("Drone mission on %s: indoor -> outdoor -> indoor "
                "(1 s per phase)\n\n", system.name.c_str());

    runner::Table t({"Scheduler", "UXCost", "DLV frames", "Energy(mJ)",
                     "Ctx switches"});
    for (const auto kind :
         {runner::SchedKind::Fcfs, runner::SchedKind::Planaria,
          runner::SchedKind::DreamFull}) {
        auto sched = runner::makeScheduler(kind);
        const auto r =
            runner::runOnce(system, scenario, *sched, 3e6, 11);
        t.addRow({sched->name(), runner::fmt(r.uxCost, 4),
                  std::to_string(r.stats.totalViolated()) + "/" +
                      std::to_string(r.stats.totalFrames()),
                  runner::fmt(r.stats.totalEnergyMj(), 1),
                  std::to_string(r.stats.contextSwitches)});
    }
    t.print();

    std::printf("\nPer-model outcome under DREAM-Full:\n");
    auto dream = runner::makeScheduler(runner::SchedKind::DreamFull);
    const auto r = runner::runOnce(system, scenario, *dream, 3e6, 11);
    runner::Table d({"Model", "Frames", "Violated", "DLVRate"});
    for (const auto& ts : r.stats.tasks) {
        d.addRow({ts.model, std::to_string(ts.totalFrames),
                  std::to_string(ts.violatedFrames),
                  runner::fmt(ts.dlvRate(), 3)});
    }
    d.print();
    return 0;
}
