/**
 * @file
 * Quickstart: run one RTMM scenario on one target system under the
 * DREAM scheduler and print the per-model outcome.
 *
 * Usage: quickstart [scenario] [system] [scheduler] [cascade%]
 *   scenario:  0..4  (VR_Gaming, AR_Call, Drone_Outdoor,
 *                     Drone_Indoor, AR_Social; default 4)
 *   system:    0..7  (Table 2 presets in order; default 4K-1OS+2WS)
 *   scheduler: fcfs | static | veltair | planaria | dream-map |
 *              dream-drop | dream-full (default dream-full)
 *   cascade%:  dependent-pipeline trigger probability (default 50)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

namespace {

runner::SchedKind
parseScheduler(const char* s)
{
    const struct { const char* name; runner::SchedKind kind; } map[] = {
        {"fcfs", runner::SchedKind::Fcfs},
        {"static", runner::SchedKind::StaticFcfs},
        {"veltair", runner::SchedKind::Veltair},
        {"planaria", runner::SchedKind::Planaria},
        {"dream-map", runner::SchedKind::DreamMapScore},
        {"dream-drop", runner::SchedKind::DreamSmartDrop},
        {"dream-full", runner::SchedKind::DreamFull},
    };
    for (const auto& m : map) {
        if (std::strcmp(s, m.name) == 0)
            return m.kind;
    }
    std::fprintf(stderr, "unknown scheduler '%s', using dream-full\n",
                 s);
    return runner::SchedKind::DreamFull;
}

} // namespace

int
main(int argc, char** argv)
{
    const int scenario_idx = argc > 1 ? std::atoi(argv[1]) : 4;
    const int system_idx = argc > 2 ? std::atoi(argv[2]) : 3;
    const runner::SchedKind kind =
        argc > 3 ? parseScheduler(argv[3])
                 : runner::SchedKind::DreamFull;
    const double cascade =
        argc > 4 ? std::atof(argv[4]) / 100.0 : 0.5;

    const auto sc_presets = workload::allScenarioPresets();
    const auto sys_presets = hw::allSystemPresets();
    const auto sc_preset =
        sc_presets[size_t(scenario_idx) % sc_presets.size()];
    const auto sys_preset =
        sys_presets[size_t(system_idx) % sys_presets.size()];

    const auto system = hw::makeSystem(sys_preset);
    const auto scenario = workload::makeScenario(sc_preset, cascade);
    auto sched = runner::makeScheduler(kind);

    std::printf("scenario=%s system=%s scheduler=%s cascade=%s\n\n",
                scenario.name.c_str(), system.name.c_str(),
                sched->name().c_str(),
                runner::fmtPct(cascade, 0).c_str());

    const auto r = runner::runOnce(system, scenario, *sched,
                                   runner::kDefaultWindowUs, 11);

    runner::Table t({"Model", "Frames", "Done", "Violated", "Dropped",
                     "DLVRate", "Energy(mJ)", "NormEnergy",
                     "AvgLat(ms)"});
    for (const auto& ts : r.stats.tasks) {
        t.addRow({ts.model, std::to_string(ts.totalFrames),
                  std::to_string(ts.completedFrames),
                  std::to_string(ts.violatedFrames),
                  std::to_string(ts.droppedFrames),
                  runner::fmt(ts.dlvRate(), 3),
                  runner::fmt(ts.energyMj, 1),
                  runner::fmt(ts.normEnergy(), 3),
                  ts.completedFrames
                      ? runner::fmt(ts.sumLatencyUs /
                                        double(ts.completedFrames) /
                                        1e3,
                                    2)
                      : "-"});
    }
    t.print();
    for (const auto& ts : r.stats.tasks) {
        if (ts.variantStarts.empty())
            continue;
        std::printf("\n%s subnet usage:", ts.model.c_str());
        for (size_t v = 0; v < ts.variantStarts.size(); ++v) {
            std::printf(" %s=%llu",
                        v == 0 ? "Original"
                               : ("v" + std::to_string(v)).c_str(),
                        (unsigned long long)ts.variantStarts[v]);
        }
        std::printf("\n");
    }
    std::printf("\ncontext switches: %llu (%.1f mJ)\n",
                (unsigned long long)r.stats.contextSwitches,
                r.stats.contextSwitchEnergyMj);
    std::printf("UXCost = %.4f  (overall DLV %.4f x norm energy "
                "%.4f)\n",
                r.uxCost, r.stats.overallDlvRate(),
                r.stats.overallNormEnergy());
    return 0;
}
