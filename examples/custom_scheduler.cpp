/**
 * @file
 * Plugging a custom scheduler into the simulator.
 *
 * Implements a minimal earliest-deadline-first (EDF) scheduler
 * against the public sim::Scheduler interface and benchmarks it
 * against FCFS and DREAM on the AR_Call workload. Use this as the
 * starting point for scheduling research on top of this framework.
 */

#include <algorithm>
#include <cstdio>

#include "runner/experiment.h"
#include "runner/table.h"
#include "sim/scheduler.h"

using namespace dream;

namespace {

/** Whole-model EDF on the first idle accelerator. */
class EdfScheduler : public sim::Scheduler {
public:
    std::string name() const override { return "EDF(custom)"; }

    sim::Plan
    plan(const sim::SchedulerContext& ctx) override
    {
        sim::Plan p;
        std::vector<const sim::Request*> ready = ctx.ready;
        std::sort(ready.begin(), ready.end(),
                  [](const sim::Request* a, const sim::Request* b) {
                      return a->deadlineUs < b->deadlineUs;
                  });
        size_t next = 0;
        for (size_t a = 0; a < ctx.numAccels() && next < ready.size();
             ++a) {
            if (!ctx.accel(a).idle())
                continue;
            const sim::Request* req = ready[next++];
            sim::Dispatch d;
            d.requestId = req->id;
            d.numLayers = req->remainingLayers(); // whole model
            d.accel = int(a);
            d.slices = 0;
            p.dispatches.push_back(d);
        }
        return p;
    }
};

} // namespace

int
main()
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);

    std::printf("Custom scheduler plug-in demo: EDF vs built-ins on "
                "AR_Call / %s\n\n", system.name.c_str());

    runner::Table t({"Scheduler", "UXCost", "DLV frames",
                     "Energy(mJ)"});
    EdfScheduler edf;
    std::vector<sim::Scheduler*> schedulers;
    auto fcfs = runner::makeScheduler(runner::SchedKind::Fcfs);
    auto dream = runner::makeScheduler(runner::SchedKind::DreamFull);
    schedulers.push_back(fcfs.get());
    schedulers.push_back(&edf);
    schedulers.push_back(dream.get());
    for (auto* sched : schedulers) {
        const auto agg = runner::runSeeds(system, scenario, *sched,
                                          runner::kDefaultWindowUs,
                                          runner::defaultSeeds());
        t.addRow({sched->name(), runner::fmt(agg.uxCost, 4),
                  runner::fmtPct(agg.violationFraction),
                  runner::fmt(agg.energyMj, 1)});
    }
    t.print();
    std::printf("\nImplementing sim::Scheduler requires one method: "
                "plan(ctx) -> {switches, drops, dispatches}.\n");
    return 0;
}
