/**
 * @file
 * Generated-scenario sweep: compares every evaluated scheduler
 * across N randomized RTMM scenarios synthesized by
 * workload::ScenarioGenerator (task counts, model mixes, fps
 * distributions, dependency shapes and activation windows drawn from
 * a ScenarioGenSpec). This is the scenario-diversity direction DREAM
 * motivates with dynamic RTMM workloads: the five Table 3 presets
 * are a thin slice of the space, and a scheduler ranking should hold
 * across the distribution, not just the slice.
 *
 * Reports geomean UXCost, mean violation and drop rates per
 * scheduler across all generated scenarios, plus a per-scheduler win
 * count (lowest UXCost on a scenario).
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_main.h"
#include "engine/engine.h"
#include "runner/experiment.h"
#include "runner/table.h"
#include "workload/scenario_gen.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const auto schedulers = runner::evaluationSchedulers();
    constexpr int kScenarios = 24;
    constexpr uint64_t kSeed0 = 1;
    // Activation windows are sized against the simulated window, so
    // task-level dynamicity (tasks switching on/off) actually
    // manifests inside the run.
    constexpr double kWindowUs = 1e6;

    workload::ScenarioGenSpec spec;
    spec.minTasks = 2;
    spec.maxTasks = 8;
    spec.horizonUs = kWindowUs;

    engine::SweepGrid grid;
    grid.addGeneratedScenarios(spec, kScenarios, kSeed0)
        .addSystem(hw::SystemPreset::Sys4k1Ws2Os)
        .seeds({11})
        .window(kWindowUs);
    for (const auto kind : schedulers)
        grid.addScheduler(kind);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));
    const auto cells = agg.cells();

    // Describe the generated mixes so the sweep is interpretable.
    std::printf("Generated-scenario sweep: %d randomized RTMM "
                "scenarios (seeds %llu..%llu) on %s\n\n",
                kScenarios, (unsigned long long)kSeed0,
                (unsigned long long)(kSeed0 + kScenarios - 1),
                hw::toString(hw::SystemPreset::Sys4k1Ws2Os).c_str());
    workload::ScenarioGenerator gen(spec);
    runner::Table mix({"Scenario", "Tasks", "Roots", "Deps",
                       "FPS sum", "Models"});
    for (int i = 0; i < kScenarios; ++i) {
        const auto scenario = gen.generate(kSeed0 + uint64_t(i));
        int roots = 0, deps = 0;
        double fps_sum = 0.0;
        std::string mdl;
        for (const auto& task : scenario.tasks) {
            (task.dependsOn == workload::kNoParent ? roots : deps) += 1;
            fps_sum += task.fps;
            if (!mdl.empty())
                mdl += '+';
            mdl += task.model.name.substr(0, 6);
        }
        mix.addRow({scenario.name, std::to_string(scenario.tasks.size()),
                    std::to_string(roots), std::to_string(deps),
                    runner::fmt(fps_sum, 0), mdl});
    }
    mix.print();

    // Per-scheduler aggregate across all generated scenarios.
    std::map<std::string, std::vector<double>> ux, viol, drop;
    std::map<std::string, int> wins;
    const auto by_scenario = engine::groupCells(
        cells, [](const engine::AggregateSink::Cell& c) {
            return c.scenario;
        });
    for (const auto& group : by_scenario) {
        const engine::AggregateSink::Cell* best = nullptr;
        for (const auto& cell : group.cells) {
            ux[cell.scheduler].push_back(cell.uxCost.mean);
            viol[cell.scheduler].push_back(
                cell.violationFraction.mean);
            drop[cell.scheduler].push_back(cell.dropRate.mean);
            if (!best || cell.uxCost.mean < best->uxCost.mean)
                best = &cell;
        }
        wins[best->scheduler] += 1;
    }

    std::printf("\n== scheduler ranking across %d generated "
                "scenarios ==\n", kScenarios);
    runner::Table t({"Scheduler", "Geomean UXCost", "Mean violated",
                     "Mean dropped", "Wins"});
    for (const auto kind : schedulers) {
        const std::string name = runner::toString(kind);
        double viol_mean = 0.0, drop_mean = 0.0;
        for (const double v : viol[name])
            viol_mean += v;
        for (const double d : drop[name])
            drop_mean += d;
        viol_mean /= double(viol[name].size());
        drop_mean /= double(drop[name].size());
        t.addRow({name, runner::fmt(runner::geomean(ux[name]), 4),
                  runner::fmtPct(viol_mean), runner::fmtPct(drop_mean),
                  std::to_string(wins[name])});
    }
    t.print();
    std::printf("\nthe Table 3 presets cover five fixed mixes; this "
                "sweep samples the scenario distribution\nthe paper's "
                "dynamic-RTMM motivation describes (seeded, so every "
                "run sees the same mixes).\n");
    return 0;
}
