/**
 * @file
 * Cluster routing comparison: the three serve::Dispatcher policies
 * (round_robin, least_loaded, finish_time_fairness) serving two
 * ScenarioGenerator session mixes on N in {2, 4, 8} devices. Each
 * row is one full serve::Cluster run (DREAM-Full per device,
 * admission off) reporting UXCost plus the cluster's
 * finish-time-fairness spread (max/min of the per-device ratios) as
 * a breakdown column — the metric finish_time_fairness routing is
 * built to minimise.
 *
 * Rows are deterministic for any --jobs value (results land in a
 * pre-sized vector by row index before any sink sees them), so the
 * CSV golden-gates with dream_diff: scenarios/cluster_route.golden.csv
 * is the reference, and --check-fairness makes the bench itself exit
 * 1 unless finish_time_fairness beats round_robin on the mean
 * fairness spread — the self-gate CI runs.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_main.h"
#include "costmodel/cost_table_cache.h"
#include "runner/experiment.h"
#include "runner/table.h"
#include "serve/cluster.h"
#include "workload/frame_source.h"
#include "workload/scenario_gen.h"
#include "workload/stream_source.h"

using namespace dream;

namespace {

constexpr double kWindowUs = 1e6;

/** One generated session mix: a spec plus its generator seed. */
struct Mix {
    const char* name;
    uint64_t seed;
    workload::ScenarioGenSpec spec;
};

std::vector<Mix>
makeMixes()
{
    // steady10: ten mostly independent sessions, a third of them
    // activation-windowed — routing quality shows up as load
    // spread, and the staggered arrivals give the gauge-driven
    // routers live telemetry to react to.
    Mix steady;
    steady.name = "steady10";
    steady.seed = 13;
    steady.spec.minTasks = 10;
    steady.spec.maxTasks = 10;
    steady.spec.chainProb = 0.1;
    steady.spec.minFps = 15.0;
    steady.spec.activationProb = 0.3;
    steady.spec.horizonUs = kWindowUs;

    // bursty14: fourteen sessions, most arriving mid-run through
    // activation windows — demand keeps shifting, so a router that
    // only counts sessions (round_robin) misplaces the heavy ones
    // while the backlog/violation gauges steer the others.
    Mix bursty;
    bursty.name = "bursty14";
    bursty.seed = 5;
    bursty.spec.minTasks = 14;
    bursty.spec.maxTasks = 14;
    bursty.spec.chainProb = 0.3;
    bursty.spec.minFps = 10.0;
    bursty.spec.activationProb = 0.6;
    bursty.spec.horizonUs = kWindowUs;

    return {steady, bursty};
}

struct RowResult {
    engine::RunRecord record;
    double fairnessSpread = 1.0;
};

RowResult
runRow(const Mix& mix, size_t devices, serve::RouterPolicy router,
       const hw::SystemConfig& system)
{
    const auto scenario =
        workload::ScenarioGenerator(mix.spec).generate(mix.seed);
    const auto costs = cost::acquireCostTable(system, scenario);

    serve::ClusterConfig config;
    config.devices = devices;
    config.router = router;
    config.serve.windowUs = kWindowUs;
    config.serve.seed = mix.seed;
    config.serve.reportIntervalUs = 0.0; // final snapshot only
    config.serve.log = nullptr;

    workload::FrameSource frames(scenario, mix.seed);
    workload::StreamSource intake(frames);
    auto arrivals = frames.rootFrames(kWindowUs);
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const auto& a, const auto& b) {
                         return a.arrivalUs < b.arrivalUs;
                     });
    for (auto& frame : arrivals)
        intake.push(std::move(frame));
    intake.close();

    serve::Cluster cluster(system, scenario, *costs, config);
    const serve::ClusterResult result = cluster.run(
        [] {
            return runner::makeScheduler(
                runner::SchedKind::DreamFull);
        },
        intake);

    RowResult row;
    row.record.scenario =
        std::string(mix.name) + "/" + serve::toString(router);
    row.record.system = system.name;
    row.record.scheduler =
        runner::toString(runner::SchedKind::DreamFull);
    row.record.params = {{"devices", double(devices)}};
    row.record.seed = mix.seed;
    row.record.windowUs = kWindowUs;
    engine::fillMetrics(row.record, result.stats);
    row.record.breakdown.emplace_back("fairness_spread",
                                      result.fairnessSpread);
    row.fairnessSpread = result.fairnessSpread;
    return row;
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    // --check-fairness is a valueless bench-specific flag; strip it
    // before the shared parser (which only models string flags).
    bool check_fairness = false;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::strcmp(argv[i], "--check-fairness") == 0)
            check_fairness = true;
        else
            args.push_back(argv[i]);
    }
    const auto opts =
        bench::parseArgs(int(args.size()), args.data());
    if (opts.list || !opts.filter.empty()) {
        std::fprintf(stderr, "cluster_route runs a fixed row "
                             "sequence, not a sweep grid; "
                             "--list/--filter do not apply\n");
        return 0;
    }
    if (!opts.traceDir.empty() || !opts.traceEventDir.empty()) {
        std::fprintf(stderr, "cluster_route drives serve::Cluster "
                             "outside the engine; --record-trace/"
                             "--trace-events do not apply\n");
        return 2;
    }

    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto mixes = makeMixes();
    const size_t device_counts[] = {2, 4, 8};
    const auto routers = serve::allRouterPolicies();

    struct RowSpec {
        const Mix* mix;
        size_t devices;
        serve::RouterPolicy router;
    };
    std::vector<RowSpec> rows;
    for (const auto& mix : mixes) {
        for (const size_t n : device_counts) {
            for (const auto router : routers)
                rows.push_back({&mix, n, router});
        }
    }

    std::vector<RowResult> results(rows.size());
    engine::WorkerPool pool(opts.jobs);
    pool.parallelFor(rows.size(), [&](size_t i) {
        results[i] = runRow(*rows[i].mix, rows[i].devices,
                            rows[i].router, system);
    });

    auto file_sink = bench::makeFileSink(opts);
    for (size_t i = 0; i < rows.size(); ++i) {
        results[i].record.index = i;
        if (file_sink && opts.selectsRow(i, rows.size()))
            file_sink->write(results[i].record);
    }

    // Per-mix comparison table plus the round_robin vs
    // finish_time_fairness spread means the self-gate checks.
    double rr_spread_sum = 0.0, ftf_spread_sum = 0.0;
    size_t rr_rows = 0, ftf_rows = 0;
    for (const auto& mix : mixes) {
        std::printf("== cluster_route: %s on %s ==\n", mix.name,
                    system.name.c_str());
        runner::Table t({"Devices", "Router", "UXCost", "DLVRate",
                         "FairnessSpread"});
        for (size_t i = 0; i < rows.size(); ++i) {
            if (rows[i].mix != &mix)
                continue;
            const auto& r = results[i];
            t.addRow({std::to_string(rows[i].devices),
                      serve::toString(rows[i].router),
                      runner::fmt(r.record.uxCost, 4),
                      runner::fmt(r.record.dlvRate, 4),
                      runner::fmt(r.fairnessSpread, 4)});
            if (rows[i].router == serve::RouterPolicy::RoundRobin) {
                rr_spread_sum += r.fairnessSpread;
                ++rr_rows;
            }
            if (rows[i].router ==
                serve::RouterPolicy::FinishTimeFairness) {
                ftf_spread_sum += r.fairnessSpread;
                ++ftf_rows;
            }
        }
        t.print();
        std::printf("\n");
    }
    const double rr_mean = rr_spread_sum / double(rr_rows);
    const double ftf_mean = ftf_spread_sum / double(ftf_rows);
    std::printf("mean fairness spread: round_robin %.4f, "
                "finish_time_fairness %.4f\n",
                rr_mean, ftf_mean);
    if (check_fairness && !(ftf_mean < rr_mean)) {
        std::fprintf(stderr,
                     "cluster_route: --check-fairness failed: "
                     "finish_time_fairness mean spread %.4f is not "
                     "below round_robin's %.4f\n",
                     ftf_mean, rr_mean);
        return 1;
    }
    return 0;
}
