/**
 * @file
 * Scheduler-overhead microbenchmarks: the cost of one MapScore
 * evaluation, one full DREAM planning round, the analytical cost
 * model, and cost-table lookups. The paper argues DREAM's scoring is
 * light-weight enough to run at every scheduling event; these
 * numbers quantify that for this implementation.
 *
 * Two parts: a deterministic engine sweep of per-scheduler
 * invocation counts (streamed through --out, byte-identical for any
 * --jobs value), and wall-clock ns/op timing loops printed to stdout
 * only (timings are inherently run-dependent and stay out of the
 * result rows).
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_main.h"
#include "core/dream_scheduler.h"
#include "core/mapscore.h"
#include "costmodel/cost_table.h"
#include "costmodel/layer_cost.h"
#include "engine/engine.h"
#include "models/zoo.h"
#include "obs/metrics.h"
#include "runner/experiment.h"
#include "runner/table.h"
#include "sim/scheduler.h"
#include "workload/frame_source.h"
#include "workload/scenario.h"

using namespace dream;

namespace {

/** Fixture state: a populated SchedulerContext snapshot. */
struct ContextFixture {
    hw::SystemConfig system;
    workload::Scenario scenario;
    cost::CostTable costs;
    std::vector<sim::AcceleratorState> accels;
    std::vector<std::unique_ptr<sim::Request>> requests;
    sim::RunStats stats;
    sim::SchedulerContext ctx;

    ContextFixture()
        : system(hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os)),
          scenario(workload::makeScenario(
              workload::ScenarioPreset::VrGaming)),
          costs(system)
    {
        for (const auto& t : scenario.tasks)
            costs.addModel(t.model);
        for (const auto& acc : system.accelerators) {
            sim::AcceleratorState st;
            st.config = &acc;
            st.freeSlices = acc.numSlices;
            accels.push_back(st);
        }
        workload::FrameSource source(scenario, 1);
        const auto frames = source.rootFrames(2e5);
        int id = 0;
        for (const auto& f : frames) {
            auto req = std::make_unique<sim::Request>();
            req->id = id++;
            req->task = f.task;
            req->frameIdx = f.frameIdx;
            req->arrivalUs = 0.0;
            req->deadlineUs = f.deadlineUs;
            req->path = f.path;
            requests.push_back(std::move(req));
            if (id >= 6)
                break;
        }
        stats.tasks.resize(scenario.tasks.size());
        ctx.nowUs = 0.0;
        ctx.windowUs = 2e6;
        ctx.system = &system;
        ctx.costs = &costs;
        ctx.scenario = &scenario;
        ctx.accels = &accels;
        ctx.stats = &stats;
        for (const auto& r : requests) {
            ctx.ready.push_back(r.get());
            ctx.live.push_back(r.get());
        }
    }
};

/**
 * Distribution of ns/op over @p batches timed batches of @p inner
 * iterations each (batching keeps the steady_clock read out of the
 * hot loop for ops in the few-ns range). The histogram gives the
 * spread — min/p50/p90/p99/max — where the old single-loop average
 * hid tail effects like cache warmup and scheduler preemption.
 */
template <typename Body>
obs::LatencyHistogram
timeOp(size_t batches, size_t inner, Body&& body)
{
    obs::LatencyHistogram h;
    size_t op = 0;
    for (size_t b = 0; b < batches; ++b) {
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < inner; ++i)
            body(op++);
        const auto t1 = std::chrono::steady_clock::now();
        h.record(
            double(std::chrono::duration_cast<
                       std::chrono::nanoseconds>(t1 - t0)
                       .count()) /
            double(inner));
    }
    return h;
}

/** "Microbenchmark | min | p50 | p90 | p99 | max" row cells. */
std::vector<std::string>
opRow(const std::string& name, const obs::LatencyHistogram& h)
{
    return {name,
            runner::fmt(h.min(), 1),
            runner::fmt(h.quantile(0.50), 1),
            runner::fmt(h.quantile(0.90), 1),
            runner::fmt(h.quantile(0.99), 1),
            runner::fmt(h.max(), 1)};
}

volatile double g_side_effect = 0.0;

} // namespace

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);

    // Part 1: deterministic scheduler-invocation accounting through
    // the engine (one short window per evaluated scheduler).
    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::VrGaming)
        .addSystem(hw::SystemPreset::Sys4k1Ws2Os);
    for (const auto kind : runner::evaluationSchedulers())
        grid.addScheduler(kind);
    grid.seeds({11}).window(5e5);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::Engine eng(bench::engineOptions(opts));
    const auto records =
        eng.run(grid, bench::sinkList({file_sink.get()}));

    std::printf("Scheduler invocations over a %.1f ms VR_Gaming "
                "window on %s\n\n", 5e5 / 1e3,
                hw::toString(hw::SystemPreset::Sys4k1Ws2Os).c_str());
    runner::Table inv({"Scheduler", "Invocations", "Invocations/s",
                       "Frames"});
    for (const auto& r : records) {
        inv.addRow({r.scheduler,
                    std::to_string(r.schedulerInvocations),
                    runner::fmt(double(r.schedulerInvocations) /
                                    (r.windowUs / 1e6), 0),
                    std::to_string(r.totalFrames)});
    }
    inv.print();

    // Part 2: wall-clock timing loops (stdout only; excluded from
    // --out so result rows stay deterministic). Each op is timed in
    // batches into an obs::LatencyHistogram, so the table reports
    // the distribution of ns/op rather than one average.
    ContextFixture f;
    runner::Table t({"Microbenchmark", "min", "p50", "p90", "p99",
                     "max"});

    core::MapScoreEngine mapscore(1.0, 1.0);
    t.addRow(opRow(
        "MapScore single evaluation",
        timeOp(1000, 100, [&](size_t i) {
            const auto* req =
                f.ctx.ready[i % f.ctx.ready.size()];
            const auto s =
                mapscore.score(f.ctx, *req, i % f.ctx.numAccels());
            g_side_effect = s.mapScore;
        })));

    core::DreamScheduler dream(core::DreamConfig::full());
    dream.reset(f.ctx);
    t.addRow(opRow("DREAM full planning round",
                   timeOp(500, 10, [&](size_t) {
                       auto plan = dream.plan(f.ctx);
                       g_side_effect =
                           double(plan.dispatches.size());
                   })));

    const auto model = models::zoo::ssdMobileNetV2();
    t.addRow(opRow(
        "Analytical layer cost estimate",
        timeOp(1000, 100, [&](size_t i) {
            const auto& layer =
                model.layers[i % model.layers.size()];
            const auto c =
                cost::estimateLayer(layer,
                                    f.system.accelerators[0]);
            g_side_effect = c.latencyUs;
        })));

    const auto& fixture_model = f.scenario.tasks[0].model;
    t.addRow(opRow(
        "Cost-table lookup",
        timeOp(1000, 1000, [&](size_t i) {
            const auto& c = f.costs.cost(
                fixture_model.layers[i %
                                     fixture_model.layers.size()],
                i % f.system.size());
            g_side_effect = c.latencyUs;
        })));

    std::printf("\n");
    t.print();
    std::printf("\nns/op, wall-clock on this host, over timed "
                "batches; the CSV rows\nabove carry only "
                "deterministic counters\n");
    return 0;
}
