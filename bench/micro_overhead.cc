/**
 * @file
 * Scheduler-overhead microbenchmarks (google-benchmark): the cost of
 * one MapScore evaluation, one full DREAM planning round, the
 * analytical cost model, and cost-table lookups. The paper argues
 * DREAM's scoring is light-weight enough to run at every scheduling
 * event; these numbers quantify that for this implementation.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/dream_scheduler.h"
#include "core/mapscore.h"
#include "costmodel/cost_table.h"
#include "costmodel/layer_cost.h"
#include "models/zoo.h"
#include "sim/scheduler.h"
#include "workload/frame_source.h"
#include "workload/scenario.h"

using namespace dream;

namespace {

/** Fixture state: a populated SchedulerContext snapshot. */
struct ContextFixture {
    hw::SystemConfig system;
    workload::Scenario scenario;
    cost::CostTable costs;
    std::vector<sim::AcceleratorState> accels;
    std::vector<std::unique_ptr<sim::Request>> requests;
    sim::RunStats stats;
    sim::SchedulerContext ctx;

    ContextFixture()
        : system(hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os)),
          scenario(workload::makeScenario(
              workload::ScenarioPreset::VrGaming)),
          costs(system)
    {
        for (const auto& t : scenario.tasks)
            costs.addModel(t.model);
        for (const auto& acc : system.accelerators) {
            sim::AcceleratorState st;
            st.config = &acc;
            st.freeSlices = acc.numSlices;
            accels.push_back(st);
        }
        workload::FrameSource source(scenario, 1);
        const auto frames = source.rootFrames(2e5);
        int id = 0;
        for (const auto& f : frames) {
            auto req = std::make_unique<sim::Request>();
            req->id = id++;
            req->task = f.task;
            req->frameIdx = f.frameIdx;
            req->arrivalUs = 0.0;
            req->deadlineUs = f.deadlineUs;
            req->path = f.path;
            requests.push_back(std::move(req));
            if (id >= 6)
                break;
        }
        stats.tasks.resize(scenario.tasks.size());
        ctx.nowUs = 0.0;
        ctx.windowUs = 2e6;
        ctx.system = &system;
        ctx.costs = &costs;
        ctx.scenario = &scenario;
        ctx.accels = &accels;
        ctx.stats = &stats;
        for (const auto& r : requests) {
            ctx.ready.push_back(r.get());
            ctx.live.push_back(r.get());
        }
    }
};

ContextFixture&
fixture()
{
    static ContextFixture f;
    return f;
}

void
BM_MapScoreSingle(benchmark::State& state)
{
    auto& f = fixture();
    core::MapScoreEngine engine(1.0, 1.0);
    size_t i = 0;
    for (auto _ : state) {
        const auto* req = f.ctx.ready[i % f.ctx.ready.size()];
        const auto s =
            engine.score(f.ctx, *req, i % f.ctx.numAccels());
        benchmark::DoNotOptimize(s.mapScore);
        ++i;
    }
}
BENCHMARK(BM_MapScoreSingle);

void
BM_DreamPlanRound(benchmark::State& state)
{
    auto& f = fixture();
    core::DreamScheduler sched(core::DreamConfig::full());
    sched.reset(f.ctx);
    for (auto _ : state) {
        auto plan = sched.plan(f.ctx);
        benchmark::DoNotOptimize(plan.dispatches.size());
    }
}
BENCHMARK(BM_DreamPlanRound);

void
BM_CostModelEstimate(benchmark::State& state)
{
    const auto model = models::zoo::ssdMobileNetV2();
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    size_t i = 0;
    for (auto _ : state) {
        const auto& layer = model.layers[i % model.layers.size()];
        const auto c =
            cost::estimateLayer(layer, system.accelerators[0]);
        benchmark::DoNotOptimize(c.latencyUs);
        ++i;
    }
}
BENCHMARK(BM_CostModelEstimate);

void
BM_CostTableLookup(benchmark::State& state)
{
    auto& f = fixture();
    const auto& model = f.scenario.tasks[0].model;
    size_t i = 0;
    for (auto _ : state) {
        const auto& c = f.costs.cost(
            model.layers[i % model.layers.size()], i % f.system.size());
        benchmark::DoNotOptimize(c.latencyUs);
        ++i;
    }
}
BENCHMARK(BM_CostTableLookup);

} // namespace

BENCHMARK_MAIN();
