/**
 * @file
 * Shared command-line entry helpers for the bench suite: every bench
 * built on the sweep engine accepts
 *
 *   --jobs N      worker threads (0 = hardware concurrency; default 1)
 *   --out F       stream engine result rows to file F
 *   --json        write --out as a JSON array instead of CSV
 *   --list        print every grid point key and exit (no runs)
 *   --filter S    run only grid points whose key contains S; rows go
 *                 to stdout as CSV (and to --out), then exit
 *
 * Parallel runs are bit-identical to --jobs 1: the engine orders
 * records by grid index before any sink sees them — with and without
 * --filter.
 */

#ifndef DREAM_BENCH_BENCH_MAIN_H
#define DREAM_BENCH_BENCH_MAIN_H

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/result_sink.h"
#include "engine/worker_pool.h"

namespace dream {
namespace bench {

/** Parsed common bench flags. */
struct Options {
    int jobs = 1;          ///< effective worker count (>= 1)
    std::string out;       ///< result file path; empty = none
    bool json = false;     ///< --out format: JSON instead of CSV
    std::string filter;    ///< grid-point key substring; empty = all
    bool list = false;     ///< print grid point keys and exit
};

inline void
printUsage(const char* prog)
{
    std::printf("usage: %s [--jobs N] [--out FILE [--json]] "
                "[--list | --filter S]\n"
                "  --jobs N    worker threads (0 = all cores; "
                "default 1)\n"
                "  --out F     write engine result rows to F\n"
                "  --json      --out as JSON array instead of CSV\n"
                "  --list      print every grid point key, run "
                "nothing\n"
                "  --filter S  run only grid points whose key "
                "contains S\n",
                prog);
}

/** Parse the shared flags; exits on --help or unknown arguments. */
inline Options
parseArgs(int argc, char** argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
            char* end = nullptr;
            opts.jobs = int(std::strtol(argv[++i], &end, 10));
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "invalid --jobs value: %s\n",
                             argv[i]);
                std::exit(2);
            }
        } else if (arg == "--out" && i + 1 < argc) {
            opts.out = argv[++i];
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--filter" && i + 1 < argc) {
            opts.filter = argv[++i];
        } else if (arg == "--list") {
            opts.list = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            printUsage(argv[0]);
            std::exit(2);
        }
    }
    if (opts.jobs <= 0)
        opts.jobs = engine::WorkerPool::defaultJobs();
    return opts;
}

/** File sink for --out (CSV, or JSON with --json); null without.
 *  Also null under --list, which runs nothing — opening (and thereby
 *  truncating) an existing --out file would lose its contents.
 *  Exits with an error if the file cannot be opened for writing. */
inline std::unique_ptr<engine::ResultSink>
makeFileSink(const Options& opts)
{
    if (opts.out.empty() || opts.list)
        return nullptr;
    bool ok = true;
    std::unique_ptr<engine::ResultSink> sink;
    if (opts.json) {
        auto json = std::make_unique<engine::JsonSink>(opts.out);
        ok = json->ok();
        sink = std::move(json);
    } else {
        auto csv = std::make_unique<engine::CsvSink>(opts.out);
        ok = csv->ok();
        sink = std::move(csv);
    }
    if (!ok) {
        std::fprintf(stderr, "cannot open --out file for writing: %s\n",
                     opts.out.c_str());
        std::exit(2);
    }
    return sink;
}

/** Sink list for Engine::run() — drops null entries. */
inline std::vector<engine::ResultSink*>
sinkList(std::initializer_list<engine::ResultSink*> sinks)
{
    std::vector<engine::ResultSink*> out;
    for (engine::ResultSink* s : sinks) {
        if (s)
            out.push_back(s);
    }
    return out;
}

/**
 * Serve --list / --filter for @p grid (called before the bench's own
 * full run). With --list, every grid point key is printed and no run
 * happens. With --filter S, only points whose key contains S run;
 * their rows stream to stdout as CSV and to @p file_sink. Returns
 * false when the request was handled (the bench should exit 0), true
 * when the bench should continue with its full sweep and reporting.
 *
 * Benches with several grids call this once per grid with a @p label
 * prefix on the listed keys; the last call's return value decides.
 */
inline bool
runOrList(const Options& opts, const engine::SweepGrid& grid,
          engine::ResultSink* file_sink, const char* label = nullptr)
{
    if (opts.list) {
        for (size_t i = 0; i < grid.size(); ++i) {
            if (label)
                std::printf("%s: %s\n", label,
                            grid.point(i).key().c_str());
            else
                std::printf("%s\n", grid.point(i).key().c_str());
        }
        return false;
    }
    if (opts.filter.empty())
        return true;

    engine::CsvSink stdout_sink(std::cout);
    engine::Engine eng({opts.jobs});
    const auto records =
        eng.run(grid, sinkList({&stdout_sink, file_sink}),
                [&](const engine::SweepGrid::Point& p) {
                    return p.key().find(opts.filter) !=
                           std::string::npos;
                });
    stdout_sink.close(); // CSV rows buffer until close
    std::fprintf(stderr, "%s%s%zu/%zu grid points matched --filter "
                 "'%s'\n",
                 label ? label : "", label ? ": " : "", records.size(),
                 grid.size(), opts.filter.c_str());
    return false;
}

} // namespace bench
} // namespace dream

#endif // DREAM_BENCH_BENCH_MAIN_H
