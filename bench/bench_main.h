/**
 * @file
 * Shared command-line entry helpers for the bench suite: every bench
 * built on the sweep engine accepts
 *
 *   --jobs N      worker threads (0 = hardware concurrency; default 1)
 *   --out F       stream engine result rows to file F
 *   --json        write --out as a JSON array instead of CSV
 *   --list        print every grid point key and exit (no runs)
 *   --filter S    run only grid points whose key contains S; rows go
 *                 to stdout as CSV (and to --out), then exit
 *   --shard K/N   run only the K-th of N contiguous key ranges of
 *                 the (possibly filtered) grid ordering; rows go to
 *                 stdout as CSV (and to --out), then exit. The N
 *                 shard CSVs merge back into the unsharded --out
 *                 byte for byte with tools/dream_merge.
 *   --chunk B:E   run only positions [B, E) of the (possibly
 *                 filtered) grid ordering — the explicit-range
 *                 protocol tools/dream_shard hands out chunks with.
 *                 Positions are global across every grid the bench
 *                 scans. Mutually exclusive with --shard; chunk
 *                 files that tile the ordering merge back into the
 *                 unsharded --out byte for byte with dream_merge.
 *   --record-trace DIR
 *                 write every executed grid point's per-frame trace
 *                 to DIR/<point key>.trace.csv (self-describing:
 *                 the grid identity rides along as "# key=value"
 *                 metadata). Replay with bench/trace_replay and
 *                 gate with dream_diff — the record -> replay ->
 *                 diff regression loop.
 *   --trace-events DIR
 *                 write every executed grid point's telemetry event
 *                 trace (Chrome trace-event JSON — job spans,
 *                 scheduler invocations, frame lifecycle instants)
 *                 to DIR/<point key>.trace.json; open in Perfetto
 *                 or profile with tools/dream_prof.
 *   --metrics F   dump the run's merged obs::MetricsRegistry
 *                 (counters, gauges, exact-quantile latency
 *                 histograms) as JSON to F when the bench exits.
 *                 Deterministic: byte-identical for any --jobs
 *                 value.
 *   --metrics-full F
 *                 like --metrics, but include volatile metrics
 *                 (engine wall-times, worker counts, cost-cache
 *                 hit/miss/evict counters). NOT byte-stable across
 *                 runs — feed to tools/dream_prof for the
 *                 cache-efficiency table, never to dream_diff.
 *   --no-cost-cache
 *                 disable the process-wide shared cost-table cache:
 *                 every engine run builds its own lazy cost table
 *                 (the pre-cache behaviour). Results are
 *                 byte-identical either way — this flag exists so
 *                 CI can prove that and perf_hotpath can measure
 *                 the difference.
 *
 * Malformed values of any flag (e.g. a --chunk with B > E,
 * non-numeric or negative positions) are rejected with an error and
 * exit code 2 — never silently mapped to an empty selection.
 *
 * Parallel runs are bit-identical to --jobs 1: the engine orders
 * records by grid index before any sink sees them — with and without
 * --filter/--shard/--chunk.
 */

#ifndef DREAM_BENCH_BENCH_MAIN_H
#define DREAM_BENCH_BENCH_MAIN_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "costmodel/cost_table_cache.h"
#include "engine/engine.h"
#include "engine/result_sink.h"
#include "engine/worker_pool.h"
#include "obs/metrics.h"

namespace dream {
namespace bench {

/**
 * The --metrics output: a registry every engine run of the bench
 * accumulates into, written as JSON when the Options go out of scope
 * (same end-of-main flush discipline as the --out sinks), so
 * multi-grid benches dump ONE merged registry without per-bench
 * plumbing.
 */
struct MetricsFile {
    std::string path;     ///< --metrics: canonical, volatile excluded
    std::string fullPath; ///< --metrics-full: volatile included
    obs::MetricsRegistry registry;

    ~MetricsFile()
    {
        const auto write = [this](const std::string& p,
                                  bool include_volatile) {
            if (p.empty())
                return;
            std::ofstream out(p);
            if (!out.is_open()) {
                std::fprintf(stderr,
                             "cannot open metrics file for writing: "
                             "%s\n",
                             p.c_str());
                return;
            }
            registry.writeJson(out, include_volatile);
        };
        write(path, false);
        write(fullPath, true);
    }
};

/** Parsed common bench flags. */
struct Options {
    int jobs = 1;          ///< effective worker count (>= 1)
    std::string out;       ///< result file path; empty = none
    bool json = false;     ///< --out format: JSON instead of CSV
    std::string filter;    ///< grid-point key substring; empty = all
    bool list = false;     ///< print grid point keys and exit
    engine::ShardSpec shard; ///< --shard K/N; 1/1 without the flag
    bool sharded = false;  ///< --shard was given
    engine::ChunkSpec chunk; ///< --chunk B:E; 0:npos without the flag
    bool chunked = false;  ///< --chunk was given
    std::string traceDir;  ///< --record-trace dir; empty = none
    std::string traceEventDir; ///< --trace-events dir; empty = none
    std::string metricsPath;   ///< --metrics file; empty = none
    std::string metricsFullPath; ///< --metrics-full file; empty = none
    bool costCache = true; ///< false with --no-cost-cache

    /**
     * Global positions consumed by previous runOrList calls.
     * --chunk positions are global across every grid a bench scans,
     * so multi-grid benches advance this cursor per grid (mutable:
     * benches hold a const Options).
     */
    mutable size_t chunkCursor = 0;

    /**
     * The stdout CSV sink shared by every runOrList call of a subset
     * run. Lazily created, closed (flushed) when the Options go out
     * of scope — so a bench that scans several grids emits ONE
     * header and one contiguous row stream, not a header per grid.
     */
    mutable std::shared_ptr<engine::CsvSink> stdoutSink;

    /**
     * The --metrics registry + file writer, shared by every engine
     * run of the bench (like stdoutSink: flushed by the destructor
     * when the Options leave scope). Null without --metrics.
     */
    mutable std::shared_ptr<MetricsFile> metricsFile;

    /** True when only a grid subset should run (then exit). */
    bool subsetRun() const
    {
        return !filter.empty() || sharded || chunked;
    }

    /**
     * True when row @p pos of a @p total-row sequence belongs to
     * this invocation's subset (--shard partitions the sequence,
     * --chunk names positions directly; all rows without either).
     * Grid-less benches (fig13) gate their manual row emission with
     * it.
     */
    bool selectsRow(size_t pos, size_t total) const
    {
        return chunked ? chunk.contains(pos, total)
                       : shard.contains(pos, total);
    }
};

/**
 * True when grid-point key @p key is selected by --filter (an empty
 * filter selects everything). THE definition of --filter semantics:
 * runOrList and benches that pre-compute selections (trace_replay's
 * --shard rewrite) must both use it so their counts agree.
 */
inline bool
filterSelects(const Options& opts, const std::string& key)
{
    return opts.filter.empty() ||
           key.find(opts.filter) != std::string::npos;
}

/** The engine options a bench run should use (jobs + telemetry). */
inline engine::EngineOptions
engineOptions(const Options& opts)
{
    engine::EngineOptions eopts;
    eopts.jobs = opts.jobs;
    eopts.traceDir = opts.traceDir;
    eopts.traceEventDir = opts.traceEventDir;
    eopts.metrics =
        opts.metricsFile ? &opts.metricsFile->registry : nullptr;
    return eopts;
}

/**
 * A bench-specific string flag parseArgs() accepts in addition to
 * the shared set (e.g. trace_replay's --traces DIR).
 */
struct ExtraFlag {
    const char* flag;   ///< e.g. "--traces"
    std::string* value; ///< receives the flag's argument
    const char* help;   ///< one-line description for --help
};

inline void
printUsage(const char* prog, const std::vector<ExtraFlag>& extra = {})
{
    std::printf("usage: %s [--jobs N] [--out FILE [--json]] "
                "[--list | --filter S] [--shard K/N | --chunk B:E] "
                "[--record-trace DIR]\n"
                "  --jobs N     worker threads (0 = all cores; "
                "default 1)\n"
                "  --out F      write engine result rows to F\n"
                "  --json       --out as JSON array instead of CSV\n"
                "  --list       print every grid point key, run "
                "nothing\n"
                "  --filter S   run only grid points whose key "
                "contains S\n"
                "  --shard K/N  run only shard K of N (contiguous "
                "key ranges\n               of the filtered grid "
                "ordering; merge the N\n               CSVs with "
                "dream_merge)\n"
                "  --chunk B:E  run only positions [B, E) of the "
                "filtered grid\n               ordering (the "
                "dream_shard chunk protocol;\n               "
                "chunk files merge with dream_merge too)\n"
                "  --record-trace DIR\n"
                "               write each executed grid point's "
                "per-frame trace\n               to DIR (replay "
                "with trace_replay, gate with\n               "
                "dream_diff)\n"
                "  --trace-events DIR\n"
                "               write each executed grid point's "
                "telemetry event\n               trace (Chrome "
                "trace-event JSON) to DIR — open in\n"
                "               Perfetto or profile with "
                "dream_prof\n"
                "  --metrics F  dump the run's merged metrics "
                "registry (counters,\n               gauges, "
                "latency quantiles) as JSON to F on exit;\n"
                "               byte-identical for any --jobs "
                "value\n"
                "  --metrics-full F\n"
                "               like --metrics but include volatile "
                "metrics\n               (wall-times, cost-cache "
                "counters); for\n               dream_prof, not "
                "byte-stable\n"
                "  --no-cost-cache\n"
                "               disable the shared cost-table cache "
                "(results are\n               byte-identical; only "
                "throughput changes)\n",
                prog);
    for (const auto& e : extra)
        std::printf("  %s  %s\n", e.flag, e.help);
}

/** Parse the shared flags (plus any @p extra bench-specific string
 *  flags); exits on --help or unknown arguments. */
inline Options
parseArgs(int argc, char** argv, const std::vector<ExtraFlag>& extra = {})
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto extra_it = std::find_if(
            extra.begin(), extra.end(),
            [&](const ExtraFlag& e) { return arg == e.flag; });
        if (extra_it != extra.end() && i + 1 < argc) {
            *extra_it->value = argv[++i];
        } else if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
            char* end = nullptr;
            opts.jobs = int(std::strtol(argv[++i], &end, 10));
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "invalid --jobs value: %s\n",
                             argv[i]);
                std::exit(2);
            }
        } else if (arg == "--out" && i + 1 < argc) {
            opts.out = argv[++i];
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--filter" && i + 1 < argc) {
            opts.filter = argv[++i];
        } else if (arg == "--shard" && i + 1 < argc) {
            if (!engine::ShardSpec::parse(argv[++i], &opts.shard)) {
                std::fprintf(stderr,
                             "invalid --shard value (want K/N with "
                             "1 <= K <= N): %s\n",
                             argv[i]);
                std::exit(2);
            }
            opts.sharded = true;
        } else if (arg == "--chunk" && i + 1 < argc) {
            if (!engine::ChunkSpec::parse(argv[++i], &opts.chunk)) {
                std::fprintf(stderr,
                             "invalid --chunk value (want B:E with "
                             "B <= E, or B:): %s\n",
                             argv[i]);
                std::exit(2);
            }
            opts.chunked = true;
        } else if (arg == "--record-trace" && i + 1 < argc) {
            opts.traceDir = argv[++i];
            if (opts.traceDir.empty()) {
                std::fprintf(stderr,
                             "--record-trace needs a directory\n");
                std::exit(2);
            }
            // Fail up front, not via a worker-thread exception after
            // minutes of sweeping: the directory must be creatable.
            try {
                std::filesystem::create_directories(opts.traceDir);
            } catch (const std::filesystem::filesystem_error& e) {
                std::fprintf(stderr,
                             "cannot create --record-trace "
                             "directory %s: %s\n",
                             opts.traceDir.c_str(), e.what());
                std::exit(2);
            }
        } else if (arg == "--trace-events" && i + 1 < argc) {
            opts.traceEventDir = argv[++i];
            if (opts.traceEventDir.empty()) {
                std::fprintf(stderr,
                             "--trace-events needs a directory\n");
                std::exit(2);
            }
            // Same fail-fast discipline as --record-trace.
            try {
                std::filesystem::create_directories(
                    opts.traceEventDir);
            } catch (const std::filesystem::filesystem_error& e) {
                std::fprintf(stderr,
                             "cannot create --trace-events "
                             "directory %s: %s\n",
                             opts.traceEventDir.c_str(), e.what());
                std::exit(2);
            }
        } else if (arg == "--metrics" && i + 1 < argc) {
            opts.metricsPath = argv[++i];
            if (opts.metricsPath.empty()) {
                std::fprintf(stderr, "--metrics needs a file\n");
                std::exit(2);
            }
        } else if (arg == "--metrics-full" && i + 1 < argc) {
            opts.metricsFullPath = argv[++i];
            if (opts.metricsFullPath.empty()) {
                std::fprintf(stderr, "--metrics-full needs a file\n");
                std::exit(2);
            }
        } else if (arg == "--no-cost-cache") {
            opts.costCache = false;
        } else if (arg == "--list") {
            opts.list = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0], extra);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            printUsage(argv[0], extra);
            std::exit(2);
        }
    }
    if (opts.sharded && opts.chunked) {
        std::fprintf(stderr,
                     "--shard and --chunk are mutually exclusive\n");
        std::exit(2);
    }
    if (opts.jobs <= 0)
        opts.jobs = engine::WorkerPool::defaultJobs();
    // The cache enable flag is process-global: every path that
    // acquires a cost table (engine runs, runner::runOnce under a
    // ParamSearch) honours it without plumbing.
    cost::CostTableCache::setEnabled(opts.costCache);
    // --metrics gets the same fail-fast + --list discipline as --out:
    // verify writability up front (not after minutes of sweeping) and
    // never truncate an existing file under --list, which runs
    // nothing.
    if ((!opts.metricsPath.empty() || !opts.metricsFullPath.empty()) &&
        !opts.list) {
        for (const std::string& p :
             {opts.metricsPath, opts.metricsFullPath}) {
            if (p.empty())
                continue;
            std::ofstream probe(p);
            if (!probe.is_open()) {
                std::fprintf(stderr,
                             "cannot open metrics file for writing: "
                             "%s\n",
                             p.c_str());
                std::exit(2);
            }
        }
        opts.metricsFile = std::make_shared<MetricsFile>();
        opts.metricsFile->path = opts.metricsPath;
        opts.metricsFile->fullPath = opts.metricsFullPath;
    }
    return opts;
}

/** File sink for --out (CSV, or JSON with --json); null without.
 *  Also null under --list, which runs nothing — opening (and thereby
 *  truncating) an existing --out file would lose its contents.
 *  Exits with an error if the file cannot be opened for writing. */
inline std::unique_ptr<engine::ResultSink>
makeFileSink(const Options& opts)
{
    if (opts.out.empty() || opts.list)
        return nullptr;
    bool ok = true;
    std::unique_ptr<engine::ResultSink> sink;
    if (opts.json) {
        auto json = std::make_unique<engine::JsonSink>(opts.out);
        ok = json->ok();
        sink = std::move(json);
    } else {
        auto csv = std::make_unique<engine::CsvSink>(opts.out);
        ok = csv->ok();
        sink = std::move(csv);
    }
    if (!ok) {
        std::fprintf(stderr, "cannot open --out file for writing: %s\n",
                     opts.out.c_str());
        std::exit(2);
    }
    return sink;
}

/** Sink list for Engine::run() — drops null entries. */
inline std::vector<engine::ResultSink*>
sinkList(std::initializer_list<engine::ResultSink*> sinks)
{
    std::vector<engine::ResultSink*> out;
    for (engine::ResultSink* s : sinks) {
        if (s)
            out.push_back(s);
    }
    return out;
}

/**
 * Serve --list / --filter / --shard / --chunk for @p grid (called
 * before the bench's own full run). With --list, the grid point keys
 * that --filter/--shard/--chunk select (all of them without those
 * flags) are printed and no run happens. With --filter S, --shard
 * K/N and/or --chunk B:E, only the selected points run; their rows
 * stream to stdout as CSV and to @p file_sink. Returns false when
 * the request was handled (the bench should exit 0), true when the
 * bench should continue with its full sweep and reporting.
 *
 * Benches with several grids call this once per grid with a @p label
 * prefix on the listed keys; the last call's return value decides.
 * Such benches also pass @p index_base — the total row count of the
 * grids before this one — so record indices stay globally unique
 * and increasing across the whole file, the invariant dream_merge
 * sorts shard rows back into canonical order by. --chunk positions
 * are likewise global: the cursor in Options rebases the range onto
 * each grid's window of selected positions, so the concatenation of
 * every grid's filtered ordering is one addressable sequence.
 */
inline bool
runOrList(const Options& opts, const engine::SweepGrid& grid,
          engine::ResultSink* file_sink, const char* label = nullptr,
          size_t index_base = 0)
{
    const engine::PointFilter select =
        opts.filter.empty()
            ? engine::PointFilter{}
            : [&](const engine::SweepGrid::Point& p) {
                  return filterSelects(opts, p.key());
              };

    // Only --list and --chunk need the selected positions up front
    // (the engine re-derives them for the run itself): --list to
    // print keys, --chunk to rebase the global range onto this
    // grid's window — later grids start where this one ends.
    std::vector<size_t> selected;
    engine::ChunkSpec local_chunk;
    if (opts.list || opts.chunked) {
        for (size_t i = 0; i < grid.size(); ++i) {
            if (!select || select(grid.point(i)))
                selected.push_back(i);
        }
        local_chunk =
            opts.chunk.slice(opts.chunkCursor, selected.size());
        opts.chunkCursor += selected.size();
    }

    if (opts.list) {
        const auto range = opts.chunked
                               ? local_chunk.range(selected.size())
                               : opts.shard.range(selected.size());
        for (size_t k = range.first; k < range.second; ++k) {
            if (label)
                std::printf("%s: %s\n", label,
                            grid.point(selected[k]).key().c_str());
            else
                std::printf("%s\n",
                            grid.point(selected[k]).key().c_str());
        }
        return false;
    }
    if (!opts.subsetRun())
        return true;

    if (!opts.stdoutSink)
        opts.stdoutSink = std::make_shared<engine::CsvSink>(std::cout);
    engine::ReindexSink shifted_stdout(opts.stdoutSink.get(),
                                       index_base);
    engine::ReindexSink shifted_file(file_sink, index_base);
    auto eopts = engineOptions(opts);
    eopts.traceIndexBase = index_base;
    engine::Engine eng(eopts);
    const auto sinks = sinkList({&shifted_stdout, &shifted_file});
    std::vector<engine::RunRecord> records;
    if (opts.chunked) {
        // The selection was already materialised for the cursor —
        // hand the engine the sliced indices instead of making it
        // repeat the filter scan.
        const auto r = local_chunk.range(selected.size());
        records = eng.run(
            grid, sinks,
            std::vector<size_t>(selected.begin() + long(r.first),
                                selected.begin() + long(r.second)));
    } else {
        records = eng.run(grid, sinks, select, opts.shard);
    }
    // CSV rows buffer in the shared stdout sink until the Options go
    // out of scope: the header needs the union of breakdown columns
    // across every grid the bench streams. (Like --out — whose
    // CsvSink buffers the same way — buffered rows are lost if the
    // process dies without unwinding.)
    const std::string subset_desc =
        opts.chunked ? "--chunk " + opts.chunk.toString()
                     : "--shard " + opts.shard.toString();
    if (!opts.filter.empty())
        std::fprintf(stderr,
                     "%s%s%zu/%zu grid points selected by --filter "
                     "'%s'%s%s\n",
                     label ? label : "", label ? ": " : "",
                     records.size(), grid.size(),
                     opts.filter.c_str(),
                     opts.sharded || opts.chunked ? " and " : "",
                     opts.sharded || opts.chunked
                         ? subset_desc.c_str()
                         : "");
    else
        std::fprintf(stderr, "%s%s%zu/%zu grid points in %s\n",
                     label ? label : "", label ? ": " : "",
                     records.size(), grid.size(),
                     subset_desc.c_str());
    return false;
}

} // namespace bench
} // namespace dream

#endif // DREAM_BENCH_BENCH_MAIN_H
