/**
 * @file
 * Figure 7 reproduction: UXCost, deadline-violation rate and
 * normalised energy for all five scenarios on the four heterogeneous
 * hardware settings, across the evaluated schedulers (FCFS, Veltair,
 * Planaria, DREAM-MapScore, DREAM-SmartDrop, DREAM-Full).
 *
 * The whole (scenario x system x scheduler x seed) evaluation is one
 * engine sweep: --jobs shards the 360 runs across threads, --out
 * streams every per-seed row, and the per-cell means come from the
 * aggregating sink.
 *
 * The paper's headline numbers for this figure: DREAM reduces UXCost
 * by 32.1% vs Planaria and 50.0% vs Veltair in geomean, with up to
 * 80.8% (AR_Social, 4K 1WS+2OS) and 97.6% (Drone_Outdoor,
 * 4K 1WS+2OS) reductions.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_main.h"
#include "engine/engine.h"
#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const auto schedulers = runner::evaluationSchedulers();

    engine::SweepGrid grid;
    for (const auto sc_preset : workload::allScenarioPresets())
        grid.addScenario(sc_preset);
    for (const auto sys_preset : hw::heterogeneousPresets())
        grid.addSystem(sys_preset);
    for (const auto kind : schedulers)
        grid.addScheduler(kind);
    grid.seeds(runner::defaultSeeds()).window(runner::kDefaultWindowUs);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));

    // Per-cell means addressable by (scenario, system, scheduler).
    std::map<std::string, engine::AggregateSink::Cell> cells;
    for (const auto& cell : agg.cells())
        cells[cell.scenario + '|' + cell.system + '|' +
              cell.scheduler] = cell;
    const auto cellOf = [&](workload::ScenarioPreset sc,
                            hw::SystemPreset sys,
                            runner::SchedKind kind)
        -> const engine::AggregateSink::Cell& {
        return cells.at(workload::toString(sc) + '|' +
                        hw::toString(sys) + '|' +
                        runner::toString(kind));
    };

    // geomean accumulators across (scenario x system) per scheduler
    std::map<runner::SchedKind, std::vector<double>> ux_all;

    for (const auto sys_preset : hw::heterogeneousPresets()) {
        std::printf("== Figure 7: %s ==\n",
                    hw::toString(sys_preset).c_str());
        runner::Table ux({"Scenario", "FCFS", "Veltair", "Planaria",
                          "DRM-Map", "DRM-Drop", "DRM-Full"});
        runner::Table dlv = ux;
        runner::Table energy = ux;

        for (const auto sc_preset : workload::allScenarioPresets()) {
            std::vector<std::string> ux_row{toString(sc_preset)};
            std::vector<std::string> dlv_row{toString(sc_preset)};
            std::vector<std::string> en_row{toString(sc_preset)};
            for (const auto kind : schedulers) {
                const auto& cell = cellOf(sc_preset, sys_preset, kind);
                ux_row.push_back(runner::fmt(cell.uxCost.mean, 4));
                dlv_row.push_back(
                    runner::fmtPct(cell.violationFraction.mean));
                en_row.push_back(
                    runner::fmt(cell.normEnergy.mean, 3));
                ux_all[kind].push_back(cell.uxCost.mean);
            }
            ux.addRow(ux_row);
            dlv.addRow(dlv_row);
            energy.addRow(en_row);
        }
        std::printf("-- UXCost (lower is better)\n");
        ux.print();
        std::printf("-- Deadline violation rate (aggregate)\n");
        dlv.print();
        std::printf("-- Normalised energy (sum over models)\n");
        energy.print();
        std::printf("\n");
    }

    std::printf("== Figure 7 summary: geomean UXCost across "
                "scenario x heterogeneous system ==\n");
    runner::Table summary({"Scheduler", "Geomean UXCost",
                           "vs DREAM-Full"});
    const double dream_full =
        runner::geomean(ux_all[runner::SchedKind::DreamFull]);
    for (const auto kind : schedulers) {
        const double g = runner::geomean(ux_all[kind]);
        summary.addRow({toString(kind), runner::fmt(g, 4),
                        runner::fmt(g / dream_full, 2) + "x"});
    }
    summary.print();
    std::printf("\npaper: DREAM-Full geomean UXCost reduction vs "
                "Planaria 32.1%%, vs Veltair 50.0%%\n");
    const double planaria =
        runner::geomean(ux_all[runner::SchedKind::Planaria]);
    const double veltair =
        runner::geomean(ux_all[runner::SchedKind::Veltair]);
    std::printf("measured: vs Planaria %s, vs Veltair %s\n",
                runner::fmtPct(1.0 - dream_full / planaria).c_str(),
                runner::fmtPct(1.0 - dream_full / veltair).c_str());
    return 0;
}
