/**
 * @file
 * Figure 13 reproduction: what happens when the parameter
 * optimisation targets only the deadline-violation rate or only the
 * energy rate instead of UXCost. The paper reports single-metric
 * optimisation degrading the other metric (e.g. energy-only raises
 * VR_Gaming's violation rate by 34.2%, UXCost by 28.7%), while
 * UXCost optimisation balances both.
 */

#include <cstdio>

#include "runner/table.h"
#include "search_util.h"

using namespace dream;

int
main()
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    const workload::ScenarioPreset scenarios[] = {
        workload::ScenarioPreset::VrGaming,
        workload::ScenarioPreset::ArSocial};
    const double probs[] = {0.5, 0.9};

    for (const auto sc_preset : scenarios) {
        std::printf("== Figure 13: %s on %s ==\n",
                    toString(sc_preset).c_str(), system.name.c_str());
        runner::Table t({"Cascade", "Objective", "alpha", "beta",
                         "UXCost", "DLVRate", "NormEnergy",
                         "UXCost vs UX-opt"});
        for (const double prob : probs) {
            const auto scenario =
                workload::makeScenario(sc_preset, prob);
            double ux_of_uxopt = 0.0;
            for (const auto obj : {metrics::Objective::UxCost,
                                   metrics::Objective::DlvRateOnly,
                                   metrics::Objective::EnergyOnly}) {
                const auto eval =
                    bench::makeEvaluator(system, scenario, obj);
                core::ParamSearch search(0.5, 0.05, 0.0, 2.0);
                const auto result = search.optimize(eval, 1.0, 1.0);
                // Re-evaluate the found parameters on all metrics.
                core::DreamConfig cfg = core::DreamConfig::fixedParams(
                    result.alpha, result.beta);
                cfg.smartDrop = true;
                core::DreamScheduler sched(cfg);
                const auto r = runner::runOnce(system, scenario, sched,
                                               bench::kSearchWindowUs,
                                               11);
                if (obj == metrics::Objective::UxCost)
                    ux_of_uxopt = r.uxCost;
                t.addRow({runner::fmtPct(prob, 0),
                          metrics::toString(obj),
                          runner::fmt(result.alpha, 2),
                          runner::fmt(result.beta, 2),
                          runner::fmt(r.uxCost, 4),
                          runner::fmt(r.stats.overallDlvRate(), 4),
                          runner::fmt(r.stats.overallNormEnergy(), 3),
                          runner::fmtPct(
                              ux_of_uxopt > 0
                                  ? r.uxCost / ux_of_uxopt - 1.0
                                  : 0.0)});
            }
        }
        t.print();
        std::printf("\n");
    }
    std::printf("paper: single-metric optimisation degrades the "
                "other metric and ends with higher UXCost;\n"
                "UXCost optimisation balances both.\n");
    return 0;
}
