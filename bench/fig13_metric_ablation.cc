/**
 * @file
 * Figure 13 reproduction: what happens when the parameter
 * optimisation targets only the deadline-violation rate or only the
 * energy rate instead of UXCost. The paper reports single-metric
 * optimisation degrading the other metric (e.g. energy-only raises
 * VR_Gaming's violation rate by 34.2%, UXCost by 28.7%), while
 * UXCost optimisation balances both.
 *
 * Each search step's candidate batch is evaluated on the engine's
 * worker pool (--jobs); --out streams the per-objective re-evaluation
 * runs as result rows.
 */

#include <cstdio>

#include "bench_main.h"
#include "engine/param_eval.h"
#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    const workload::ScenarioPreset scenarios[] = {
        workload::ScenarioPreset::VrGaming,
        workload::ScenarioPreset::ArSocial};
    const double probs[] = {0.5, 0.9};

    if (opts.list || !opts.filter.empty()) {
        std::fprintf(stderr, "fig13 runs parameter searches, not a "
                             "sweep grid; --list/--filter do not "
                             "apply\n");
        return 0;
    }
    if (!opts.traceDir.empty()) {
        std::fprintf(stderr, "fig13 runs parameter searches outside "
                             "the engine; --record-trace does not "
                             "apply\n");
        return 2;
    }

    // --shard/--chunk on this grid-less bench partition its fixed
    // result row sequence (the searches all run; only row emission
    // is gated), so the sharded or chunked CSVs still merge back
    // into the unsharded --out byte for byte.
    const size_t total_rows =
        (sizeof scenarios / sizeof scenarios[0]) *
        (sizeof probs / sizeof probs[0]) * 3 /* objectives */;

    engine::WorkerPool pool(opts.jobs);
    auto file_sink = bench::makeFileSink(opts);
    size_t row_index = 0;

    for (const auto sc_preset : scenarios) {
        std::printf("== Figure 13: %s on %s ==\n",
                    toString(sc_preset).c_str(), system.name.c_str());
        runner::Table t({"Cascade", "Objective", "alpha", "beta",
                         "UXCost", "DLVRate", "NormEnergy",
                         "UXCost vs UX-opt"});
        for (const double prob : probs) {
            const auto scenario =
                workload::makeScenario(sc_preset, prob);
            double ux_of_uxopt = 0.0;
            for (const auto obj : {metrics::Objective::UxCost,
                                   metrics::Objective::DlvRateOnly,
                                   metrics::Objective::EnergyOnly}) {
                const auto eval = engine::makeBatchEvaluator(
                    system, scenario, pool, obj);
                core::ParamSearch search(0.5, 0.05, 0.0, 2.0);
                const auto result = search.optimize(eval, 1.0, 1.0);
                // Re-evaluate the found parameters on all metrics.
                core::DreamConfig cfg = core::DreamConfig::fixedParams(
                    result.alpha, result.beta);
                cfg.smartDrop = true;
                core::DreamScheduler sched(cfg);
                const auto r = runner::runOnce(
                    system, scenario, sched, engine::kSearchWindowUs,
                    engine::kSearchSeed);
                if (obj == metrics::Objective::UxCost)
                    ux_of_uxopt = r.uxCost;
                const size_t index = row_index++;
                if (file_sink &&
                    opts.selectsRow(index, total_rows)) {
                    engine::RunRecord rec;
                    rec.index = index;
                    rec.scenario = toString(sc_preset) + "@p" +
                                   engine::formatValue(prob);
                    rec.system = system.name;
                    rec.scheduler = std::string("DREAM-Fixed/opt=") +
                                    metrics::toString(obj);
                    rec.params = {{"alpha", result.alpha},
                                  {"beta", result.beta}};
                    rec.seed = engine::kSearchSeed;
                    rec.windowUs = engine::kSearchWindowUs;
                    engine::fillMetrics(rec, r.stats);
                    file_sink->write(rec);
                }
                t.addRow({runner::fmtPct(prob, 0),
                          metrics::toString(obj),
                          runner::fmt(result.alpha, 2),
                          runner::fmt(result.beta, 2),
                          runner::fmt(r.uxCost, 4),
                          runner::fmt(r.stats.overallDlvRate(), 4),
                          runner::fmt(r.stats.overallNormEnergy(), 3),
                          runner::fmtPct(
                              ux_of_uxopt > 0
                                  ? r.uxCost / ux_of_uxopt - 1.0
                                  : 0.0)});
            }
        }
        t.print();
        std::printf("\n");
    }
    std::printf("paper: single-metric optimisation degrades the "
                "other metric and ends with higher UXCost;\n"
                "UXCost optimisation balances both.\n");
    return 0;
}
