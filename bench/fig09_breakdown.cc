/**
 * @file
 * Figure 9 reproduction: geomean UXCost improvement breakdown of
 * DREAM's optimisation components over the fixed-parameter MapScore
 * baseline (alpha = beta = 1), for VR_Gaming and AR_Social (the
 * Supernet-carrying scenarios) on 4K and 8K hardware.
 *
 * Paper: parameter optimisation alone improves UXCost by 49.2% (4K)
 * and 21.0% (8K); smart frame drop adds ~16.5% (4K) / 13.8% (8K);
 * Supernet switching adds a further 6-9%.
 */

#include <cstdio>
#include <vector>

#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

namespace {

double
geomeanUx(const hw::SystemConfig& system, runner::SchedKind kind,
          const std::vector<uint64_t>& seeds)
{
    std::vector<double> ux;
    for (const auto sc_preset : {workload::ScenarioPreset::VrGaming,
                                 workload::ScenarioPreset::ArSocial}) {
        const auto scenario = workload::makeScenario(sc_preset);
        auto sched = runner::makeScheduler(kind);
        ux.push_back(runner::runSeeds(system, scenario, *sched,
                                      runner::kDefaultWindowUs, seeds)
                         .uxCost);
    }
    return runner::geomean(ux);
}

} // namespace

int
main()
{
    const auto seeds = runner::defaultSeeds();
    std::printf("Figure 9: VR_Gaming + AR_Social geomean UXCost "
                "improvement breakdown\n(vs MapScore with fixed "
                "alpha = beta = 1)\n\n");

    runner::Table t({"System", "Fixed(1,1)", "+ParamOpt", "+SmartDrop",
                     "+Supernet", "ParamOpt gain", "Drop gain",
                     "Supernet gain"});
    const hw::SystemPreset systems[] = {hw::SystemPreset::Sys4k1Ws2Os,
                                        hw::SystemPreset::Sys4k1Os2Ws,
                                        hw::SystemPreset::Sys8k1Ws2Os,
                                        hw::SystemPreset::Sys8k1Os2Ws};
    for (const auto sys_preset : systems) {
        const auto system = hw::makeSystem(sys_preset);
        const double fixed =
            geomeanUx(system, runner::SchedKind::DreamFixed, seeds);
        const double mapscore =
            geomeanUx(system, runner::SchedKind::DreamMapScore, seeds);
        const double drop =
            geomeanUx(system, runner::SchedKind::DreamSmartDrop, seeds);
        const double full =
            geomeanUx(system, runner::SchedKind::DreamFull, seeds);
        t.addRow({system.name, runner::fmt(fixed, 4),
                  runner::fmt(mapscore, 4), runner::fmt(drop, 4),
                  runner::fmt(full, 4),
                  runner::fmtPct(1.0 - mapscore / fixed),
                  runner::fmtPct(1.0 - drop / mapscore),
                  runner::fmtPct(1.0 - full / drop)});
    }
    t.print();
    std::printf("\npaper: ParamOpt 49.2%% (4K) / 21.0%% (8K); "
                "SmartDrop ~16.5%% / 13.8%%; Supernet 6-9%%\n");
    return 0;
}
