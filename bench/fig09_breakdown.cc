/**
 * @file
 * Figure 9 reproduction: geomean UXCost improvement breakdown of
 * DREAM's optimisation components over the fixed-parameter MapScore
 * baseline (alpha = beta = 1), for VR_Gaming and AR_Social (the
 * Supernet-carrying scenarios) on 4K and 8K hardware.
 *
 * Paper: parameter optimisation alone improves UXCost by 49.2% (4K)
 * and 21.0% (8K); smart frame drop adds ~16.5% (4K) / 13.8% (8K);
 * Supernet switching adds a further 6-9%.
 *
 * One engine sweep covers every (scenario x system x DREAM-variant x
 * seed) run; the stage-gain ratio columns are computed from the
 * aggregated cells.
 */

#include <cstdio>
#include <vector>

#include "bench_main.h"
#include "engine/engine.h"
#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const runner::SchedKind stages[] = {
        runner::SchedKind::DreamFixed,
        runner::SchedKind::DreamMapScore,
        runner::SchedKind::DreamSmartDrop,
        runner::SchedKind::DreamFull};

    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::VrGaming)
        .addScenario(workload::ScenarioPreset::ArSocial);
    for (const auto sys_preset : {hw::SystemPreset::Sys4k1Ws2Os,
                                  hw::SystemPreset::Sys4k1Os2Ws,
                                  hw::SystemPreset::Sys8k1Ws2Os,
                                  hw::SystemPreset::Sys8k1Os2Ws}) {
        grid.addSystem(sys_preset);
    }
    for (const auto kind : stages)
        grid.addScheduler(kind);
    grid.seeds(runner::defaultSeeds()).window(runner::kDefaultWindowUs);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));
    const auto cells = agg.cells();

    std::printf("Figure 9: VR_Gaming + AR_Social geomean UXCost "
                "improvement breakdown\n(vs MapScore with fixed "
                "alpha = beta = 1)\n\n");
    runner::Table t({"System", "Fixed(1,1)", "+ParamOpt", "+SmartDrop",
                     "+Supernet", "ParamOpt gain", "Drop gain",
                     "Supernet gain"});
    const auto by_system = engine::groupCells(
        cells, [](const engine::AggregateSink::Cell& c) {
            return c.system;
        });
    for (const auto& group : by_system) {
        // Geomean across the two scenarios, per optimisation stage.
        std::vector<double> stage_ux;
        for (const auto kind : stages) {
            std::vector<double> ux;
            for (const auto& cell : group.cells) {
                if (cell.scheduler == runner::toString(kind))
                    ux.push_back(cell.uxCost.mean);
            }
            stage_ux.push_back(runner::geomean(ux));
        }
        t.addRow({group.key, runner::fmt(stage_ux[0], 4),
                  runner::fmt(stage_ux[1], 4),
                  runner::fmt(stage_ux[2], 4),
                  runner::fmt(stage_ux[3], 4),
                  runner::fmtPct(1.0 - stage_ux[1] / stage_ux[0]),
                  runner::fmtPct(1.0 - stage_ux[2] / stage_ux[1]),
                  runner::fmtPct(1.0 - stage_ux[3] / stage_ux[2])});
    }
    t.print();
    std::printf("\npaper: ParamOpt 49.2%% (4K) / 21.0%% (8K); "
                "SmartDrop ~16.5%% / 13.8%%; Supernet 6-9%%\n");
    return 0;
}
