/**
 * @file
 * Figure 3 reproduction: the UXCost search space over the MapScore
 * parameters (alpha = starvation factor, beta = energy factor) in
 * [0,2]^2, shown as a coarse grid, plus the optimisation steps of the
 * shrinking-radius search overlaid as a step list. The paper uses
 * this to argue the space is well-conditioned and quick to search.
 *
 * The grid scan runs through the sweep engine (--jobs parallelises
 * it; --out streams the grid rows); the search evaluates each step's
 * candidate batch on the same worker pool.
 */

#include <cstdio>

#include "bench_main.h"
#include "engine/param_eval.h"
#include "engine/param_search.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const auto sys_preset = hw::SystemPreset::Sys4k1Os2Ws;
    const auto sc_preset = workload::ScenarioPreset::VrGaming;
    const auto system = hw::makeSystem(sys_preset);
    const auto scenario = workload::makeScenario(sc_preset);

    std::printf("Figure 3: UXCost over (alpha, beta) in [0,2]^2 — "
                "VR_Gaming on %s\n\n", system.name.c_str());

    constexpr int n = 9;
    engine::Engine eng(bench::engineOptions(opts));
    const auto grid = engine::paramSpaceGrid(sys_preset, sc_preset, n);
    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;
    const auto records =
        eng.run(grid, bench::sinkList({file_sink.get()}));
    const auto best = engine::bestParams(records);

    // Render the surface row by row (alpha down, beta across); the
    // engine's grid order is alpha-outer, beta-inner, so record
    // i * n + j is (alpha_i, beta_j).
    std::printf("%6s", "a\\b");
    for (int j = 0; j < n; ++j)
        std::printf("  %5.2f", 2.0 * j / (n - 1));
    std::printf("\n");
    for (int i = 0; i < n; ++i) {
        std::printf("%6.2f", 2.0 * i / (n - 1));
        for (int j = 0; j < n; ++j)
            std::printf("  %5.2f", records[size_t(i * n + j)].uxCost);
        std::printf("\n");
    }
    std::printf("\ngrid optimum: UXCost %.4f at (alpha=%.2f, "
                "beta=%.2f)\n\n", best.cost, best.alpha, best.beta);

    // Overlay: the shrinking-radius search from a corner start,
    // memoized on a transposition table — clamped and interpolated
    // candidates that revisit a point never re-simulate.
    engine::WorkerPool pool(opts.jobs);
    engine::ParamSearch search(system, scenario, pool);
    const auto result = search.optimize(0.2, 1.8);
    runner::Table t({"Step", "alpha", "beta", "UXCost", "radius",
                     "gap to grid optimum"});
    for (const auto& s : result.trajectory) {
        t.addRow({std::to_string(s.step), runner::fmt(s.alpha, 3),
                  runner::fmt(s.beta, 3), runner::fmt(s.cost, 4),
                  runner::fmt(s.radius, 3),
                  runner::fmtPct(s.cost / best.cost - 1.0)});
    }
    t.print();
    std::printf("\nsearch evaluations: %d (simulated %d, "
                "transposition hits %d; grid: %d)\n",
                result.evaluations, result.simulated,
                result.memoHits, n * n);
    return 0;
}
