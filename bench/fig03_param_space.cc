/**
 * @file
 * Figure 3 reproduction: the UXCost search space over the MapScore
 * parameters (alpha = starvation factor, beta = energy factor) in
 * [0,2]^2, shown as a coarse grid, plus the optimisation steps of the
 * shrinking-radius search overlaid as a step list. The paper uses
 * this to argue the space is well-conditioned and quick to search.
 */

#include <cstdio>

#include "runner/table.h"
#include "search_util.h"

using namespace dream;

int
main()
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::VrGaming);
    const auto eval = bench::makeEvaluator(system, scenario);

    std::printf("Figure 3: UXCost over (alpha, beta) in [0,2]^2 — "
                "VR_Gaming on %s\n\n", system.name.c_str());

    constexpr int n = 9;
    bench::GridPoint best{};
    const auto grid = bench::scanGrid(eval, n, &best);

    // Render the surface row by row (alpha down, beta across).
    std::printf("%6s", "a\\b");
    for (int j = 0; j < n; ++j)
        std::printf("  %5.2f", 2.0 * j / (n - 1));
    std::printf("\n");
    for (int i = 0; i < n; ++i) {
        std::printf("%6.2f", 2.0 * i / (n - 1));
        for (int j = 0; j < n; ++j)
            std::printf("  %5.2f", grid[size_t(i * n + j)].cost);
        std::printf("\n");
    }
    std::printf("\ngrid optimum: UXCost %.4f at (alpha=%.2f, "
                "beta=%.2f)\n\n", best.cost, best.alpha, best.beta);

    // Overlay: the shrinking-radius search from a corner start.
    core::ParamSearch search(0.5, 0.05, 0.0, 2.0);
    const auto result = search.optimize(eval, 0.2, 1.8);
    runner::Table t({"Step", "alpha", "beta", "UXCost", "radius",
                     "gap to grid optimum"});
    for (const auto& s : result.trajectory) {
        t.addRow({std::to_string(s.step), runner::fmt(s.alpha, 3),
                  runner::fmt(s.beta, 3), runner::fmt(s.cost, 4),
                  runner::fmt(s.radius, 3),
                  runner::fmtPct(s.cost / best.cost - 1.0)});
    }
    t.print();
    std::printf("\nsearch evaluations: %d (grid: %d)\n",
                result.evaluations, n * n);
    return 0;
}
