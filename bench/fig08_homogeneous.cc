/**
 * @file
 * Figure 8 reproduction: UXCost on the four homogeneous hardware
 * settings (2WS / 2OS at 4K and 8K PEs). The paper's observations:
 * the UXCost gap between DREAM and the baselines shrinks relative to
 * the heterogeneous settings (2.20x for Veltair, 1.26x for
 * Planaria), and on compute-resource-sufficient systems (8K) the
 * DREAM variants coincide (drop/Supernet overheads are negligible).
 *
 * One engine sweep covers the whole (scenario x system x scheduler x
 * seed) space; the per-system tables come from the sink layer's
 * grouping helper.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "bench_main.h"
#include "engine/engine.h"
#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const auto schedulers = runner::evaluationSchedulers();

    engine::SweepGrid grid;
    for (const auto sc_preset : workload::allScenarioPresets())
        grid.addScenario(sc_preset);
    for (const auto sys_preset : hw::homogeneousPresets())
        grid.addSystem(sys_preset);
    for (const auto kind : schedulers)
        grid.addScheduler(kind);
    grid.seeds(runner::defaultSeeds()).window(runner::kDefaultWindowUs);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));
    const auto cells = agg.cells();

    std::map<runner::SchedKind, std::vector<double>> ux_all;
    const auto by_system = engine::groupCells(
        cells, [](const engine::AggregateSink::Cell& c) {
            return c.system;
        });
    for (const auto& group : by_system) {
        std::printf("== Figure 8: %s ==\n", group.key.c_str());
        runner::Table ux({"Scenario", "FCFS", "Veltair", "Planaria",
                          "DRM-Map", "DRM-Drop", "DRM-Full"});
        const auto by_scenario = engine::groupCells(
            group.cells, [](const engine::AggregateSink::Cell& c) {
                return c.scenario;
            });
        for (const auto& scenario : by_scenario) {
            std::vector<std::string> row{scenario.key};
            for (size_t k = 0; k < schedulers.size(); ++k) {
                const auto& cell = engine::cellAt(
                    scenario.cells, scenario.key, group.key,
                    runner::toString(schedulers[k]));
                row.push_back(runner::fmt(cell.uxCost.mean, 4));
                ux_all[schedulers[k]].push_back(cell.uxCost.mean);
            }
            ux.addRow(row);
        }
        ux.print();
        std::printf("\n");
    }

    std::printf("== Figure 8 summary: geomean UXCost across "
                "scenario x homogeneous system ==\n");
    runner::Table summary({"Scheduler", "Geomean UXCost",
                           "vs DREAM-Full"});
    const double dream_full =
        runner::geomean(ux_all[runner::SchedKind::DreamFull]);
    for (const auto kind : schedulers) {
        const double g = runner::geomean(ux_all[kind]);
        summary.addRow({toString(kind), runner::fmt(g, 4),
                        runner::fmt(g / dream_full, 2) + "x"});
    }
    summary.print();
    std::printf("\npaper: the baseline-vs-DREAM gap on homogeneous "
                "hardware is smaller than on heterogeneous\n"
                "hardware (2.20x for Veltair, 1.26x for Planaria); "
                "compare with fig07_heterogeneous.\n");
    return 0;
}
