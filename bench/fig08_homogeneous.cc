/**
 * @file
 * Figure 8 reproduction: UXCost on the four homogeneous hardware
 * settings (2WS / 2OS at 4K and 8K PEs). The paper's observations:
 * the UXCost gap between DREAM and the baselines shrinks relative to
 * the heterogeneous settings (2.20x for Veltair, 1.26x for
 * Planaria), and on compute-resource-sufficient systems (8K) the
 * DREAM variants coincide (drop/Supernet overheads are negligible).
 */

#include <cstdio>
#include <map>
#include <vector>

#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main()
{
    const auto seeds = runner::defaultSeeds();
    const auto schedulers = runner::evaluationSchedulers();
    std::map<runner::SchedKind, std::vector<double>> ux_all;

    for (const auto sys_preset : hw::homogeneousPresets()) {
        const auto system = hw::makeSystem(sys_preset);
        std::printf("== Figure 8: %s ==\n", system.name.c_str());
        runner::Table ux({"Scenario", "FCFS", "Veltair", "Planaria",
                          "DRM-Map", "DRM-Drop", "DRM-Full"});
        for (const auto sc_preset : workload::allScenarioPresets()) {
            const auto scenario = workload::makeScenario(sc_preset);
            std::vector<std::string> row{toString(sc_preset)};
            for (const auto kind : schedulers) {
                auto sched = runner::makeScheduler(kind);
                const auto agg = runner::runSeeds(
                    system, scenario, *sched, runner::kDefaultWindowUs,
                    seeds);
                row.push_back(runner::fmt(agg.uxCost, 4));
                ux_all[kind].push_back(agg.uxCost);
            }
            ux.addRow(row);
        }
        ux.print();
        std::printf("\n");
    }

    std::printf("== Figure 8 summary: geomean UXCost across "
                "scenario x homogeneous system ==\n");
    runner::Table summary({"Scheduler", "Geomean UXCost",
                           "vs DREAM-Full"});
    const double dream_full =
        runner::geomean(ux_all[runner::SchedKind::DreamFull]);
    for (const auto kind : schedulers) {
        const double g = runner::geomean(ux_all[kind]);
        summary.addRow({toString(kind), runner::fmt(g, 4),
                        runner::fmt(g / dream_full, 2) + "x"});
    }
    summary.print();
    std::printf("\npaper: the baseline-vs-DREAM gap on homogeneous "
                "hardware is smaller than on heterogeneous\n"
                "hardware (2.20x for Veltair, 1.26x for Planaria); "
                "compare with fig07_heterogeneous.\n");
    return 0;
}
