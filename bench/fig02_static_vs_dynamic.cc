/**
 * @file
 * Figure 2 reproduction: deadline-violation rate of static vs
 * dynamic FCFS on the AR_Call workload across the four 4K
 * accelerator styles of Table 2. The paper reports dynamic FCFS
 * reducing the violation rate by 52.9% on average, motivating
 * dynamic scheduling for RTMM workloads.
 *
 * The whole evaluation is one engine sweep (--jobs / --out / --list /
 * --filter), and the reduction column comes from the sink layer's
 * scheduler-pair ratio helper.
 */

#include <cstdio>
#include <vector>

#include "bench_main.h"
#include "engine/engine.h"
#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);

    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::ArCall);
    for (const auto preset : hw::systemPresets4k())
        grid.addSystem(preset);
    grid.addScheduler(runner::SchedKind::StaticFcfs)
        .addScheduler(runner::SchedKind::Fcfs)
        .seeds(runner::defaultSeeds())
        .window(runner::kDefaultWindowUs);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));
    const auto cells = agg.cells();

    std::printf("Figure 2: deadline violation rate, AR_Call, static "
                "vs dynamic FCFS\n\n");
    runner::Table t({"System", "StaticFCFS", "DynamicFCFS",
                     "Reduction"});
    const auto ratios = engine::schedulerRatios(
        cells, runner::toString(runner::SchedKind::Fcfs),
        runner::toString(runner::SchedKind::StaticFcfs),
        [](const engine::AggregateSink::Cell& c) {
            return c.violationFraction.mean;
        });
    double sum_reduction = 0.0;
    for (const auto& r : ratios) {
        const double reduction =
            r.denominator > 0 ? r.reduction() : 0.0;
        sum_reduction += reduction;
        t.addRow({r.system, runner::fmtPct(r.denominator),
                  runner::fmtPct(r.numerator),
                  runner::fmtPct(reduction)});
    }
    t.print();
    std::printf("\npaper: dynamic FCFS decreases the deadline "
                "violation rate by 52.9%% on average\n");
    std::printf("measured average reduction: %s\n",
                runner::fmtPct(sum_reduction / double(ratios.size()))
                    .c_str());
    return 0;
}
