/**
 * @file
 * Figure 2 reproduction: deadline-violation rate of static vs
 * dynamic FCFS on the AR_Call workload across the four 4K
 * accelerator styles of Table 2. The paper reports dynamic FCFS
 * reducing the violation rate by 52.9% on average, motivating
 * dynamic scheduling for RTMM workloads.
 */

#include <cstdio>
#include <vector>

#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main()
{
    const auto seeds = runner::defaultSeeds();
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);

    std::printf("Figure 2: deadline violation rate, AR_Call, static "
                "vs dynamic FCFS\n\n");
    runner::Table t({"System", "StaticFCFS", "DynamicFCFS",
                     "Reduction"});
    double sum_reduction = 0.0;
    int n = 0;
    for (const auto preset : hw::systemPresets4k()) {
        const auto system = hw::makeSystem(preset);
        auto stat = runner::makeScheduler(runner::SchedKind::StaticFcfs);
        auto dyn = runner::makeScheduler(runner::SchedKind::Fcfs);
        const auto rs = runner::runSeeds(system, scenario, *stat,
                                         runner::kDefaultWindowUs,
                                         seeds);
        const auto rd = runner::runSeeds(system, scenario, *dyn,
                                         runner::kDefaultWindowUs,
                                         seeds);
        const double reduction =
            rs.violationFraction > 0
                ? 1.0 - rd.violationFraction / rs.violationFraction
                : 0.0;
        sum_reduction += reduction;
        ++n;
        t.addRow({system.name, runner::fmtPct(rs.violationFraction),
                  runner::fmtPct(rd.violationFraction),
                  runner::fmtPct(reduction)});
    }
    t.print();
    std::printf("\npaper: dynamic FCFS decreases the deadline "
                "violation rate by 52.9%% on average\n");
    std::printf("measured average reduction: %s\n",
                runner::fmtPct(sum_reduction / n).c_str());
    return 0;
}
