/**
 * @file
 * Sweep-throughput baseline: times the engine hot path with the
 * shared cost-table cache on and off and writes the numbers to
 * BENCH_sweep.json — the tracked perf baseline CI uploads per
 * commit. Two timed sections, each best-of-N repeats:
 *
 *  sweep   a dense (alpha, beta) grid over a deliberately short
 *          window, so the per-point FIXED cost — cost-table
 *          construction, scenario materialisation, scheduler setup —
 *          dominates. This is the cost the cache amortises: with the
 *          cache disabled every point builds its own lazy table (the
 *          pre-cache behaviour); enabled, the first point builds ONE
 *          frozen table and every other point shares it. Reported as
 *          points/sec per mode plus the speedup, and the two modes'
 *          records are asserted byte-identical before any number is
 *          written (the cache must never change results, only
 *          throughput).
 *
 *  frame   a small grid over a long window, so the steady-state
 *          per-frame scheduling cost dominates. Reported as an
 *          obs::LatencyHistogram over the grid points (point wall
 *          time / frames simulated): mean / p50 / p95 ns per frame.
 *
 * The frame grid doubles as the bench's protocol surface: --list /
 * --filter / --shard / --chunk / --out / --record-trace work on it
 * like on any other bench, so the CI orchestrator sweeps it; the
 * timed sections and the JSON baseline only run on a full
 * (non-subset) invocation. With --no-cost-cache both sections run
 * uncached only (no speedup line). --bench-out overrides the JSON
 * path (default BENCH_sweep.json).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_main.h"
#include "costmodel/cost_table_cache.h"
#include "engine/param_eval.h"
#include "obs/metrics.h"

using namespace dream;

namespace {

constexpr int kRepeats = 3;

/** One timed pass over a grid. */
struct PassResult {
    double seconds = 0.0; ///< best-of-repeats summed point wall time
    double pointsPerSec = 0.0;
    uint64_t frames = 0; ///< frames simulated per pass
    obs::LatencyHistogram nsPerFrame; ///< per-point wall / frames
    std::vector<engine::RunRecord> records;
};

/**
 * Run every grid point sequentially (a timed point must not share
 * the machine with sibling points), @p repeats times; keep the
 * minimum wall time per point and the records of the first
 * repetition.
 */
PassResult
timedPass(const engine::SweepGrid& grid, int repeats)
{
    PassResult pass;
    std::vector<double> best_ns(grid.size(), 0.0);
    for (int rep = 0; rep < repeats; ++rep) {
        // Every repetition pays the same cold-cache start: cached
        // mode must time the (single) table build, not inherit a
        // pre-warmed table from the previous repetition.
        cost::CostTableCache::global().clear();
        for (size_t i = 0; i < grid.size(); ++i) {
            const auto t0 = std::chrono::steady_clock::now();
            auto record = engine::runGridPoint(grid.point(i));
            const auto t1 = std::chrono::steady_clock::now();
            const double ns =
                std::chrono::duration<double, std::nano>(t1 - t0)
                    .count();
            if (rep == 0 || ns < best_ns[i])
                best_ns[i] = ns;
            if (rep == 0)
                pass.records.push_back(std::move(record));
        }
    }
    for (size_t i = 0; i < grid.size(); ++i) {
        pass.seconds += best_ns[i] * 1e-9;
        pass.frames += pass.records[i].totalFrames;
        if (pass.records[i].totalFrames > 0)
            pass.nsPerFrame.record(
                best_ns[i] / double(pass.records[i].totalFrames));
    }
    pass.pointsPerSec =
        pass.seconds > 0.0 ? double(grid.size()) / pass.seconds : 0.0;
    return pass;
}

/** The exact --out CSV bytes of a record list (identity probe). */
std::string
csvBytes(const std::vector<engine::RunRecord>& records)
{
    std::ostringstream out;
    {
        engine::CsvSink sink(out);
        for (const auto& r : records)
            sink.write(r);
        sink.close();
    }
    return out.str();
}

void
writeJson(const std::string& path, size_t sweep_points,
          double sweep_window_us, size_t frame_points,
          double frame_window_us, const PassResult& uncached,
          const PassResult* cached, const PassResult& frame,
          const cost::CostTableCache::Stats& stats)
{
    std::ofstream out(path);
    if (!out.is_open()) {
        std::fprintf(stderr,
                     "cannot open --bench-out file for writing: %s\n",
                     path.c_str());
        std::exit(2);
    }
    char buf[256];
    const auto num = [&](const char* fmt, auto... v) {
        std::snprintf(buf, sizeof buf, fmt, v...);
        out << buf;
    };
    out << "{\n";
    out << "  \"bench\": \"perf_hotpath\",\n";
    out << "  \"repeats\": " << kRepeats << ",\n";
    out << "  \"sweep\": {\n";
    out << "    \"grid_points\": " << sweep_points << ",\n";
    num("    \"window_us\": %.1f,\n", sweep_window_us);
    num("    \"uncached\": {\"seconds\": %.6f, "
        "\"points_per_sec\": %.2f}",
        uncached.seconds, uncached.pointsPerSec);
    if (cached) {
        num(",\n    \"cached\": {\"seconds\": %.6f, "
            "\"points_per_sec\": %.2f},\n",
            cached->seconds, cached->pointsPerSec);
        num("    \"speedup\": %.3f,\n",
            cached->seconds > 0.0 ? uncached.seconds / cached->seconds
                                  : 0.0);
        num("    \"cost_cache\": {\"hits\": %llu, \"misses\": %llu, "
            "\"evictions\": %llu, \"entries\": %llu}\n",
            static_cast<unsigned long long>(stats.hits),
            static_cast<unsigned long long>(stats.misses),
            static_cast<unsigned long long>(stats.evictions),
            static_cast<unsigned long long>(stats.entries));
    } else {
        out << "\n";
    }
    out << "  },\n";
    out << "  \"frame\": {\n";
    out << "    \"grid_points\": " << frame_points << ",\n";
    num("    \"window_us\": %.1f,\n", frame_window_us);
    out << "    \"frames\": " << frame.frames << ",\n";
    num("    \"ns_per_frame\": {\"mean\": %.1f, \"p50\": %.1f, "
        "\"p95\": %.1f}\n",
        frame.nsPerFrame.mean(), frame.nsPerFrame.quantile(0.5),
        frame.nsPerFrame.quantile(0.95));
    out << "  }\n";
    out << "}\n";
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    std::string bench_out = "BENCH_sweep.json";
    const auto opts = bench::parseArgs(
        argc, argv,
        {{"--bench-out", &bench_out,
          "perf baseline JSON path (default BENCH_sweep.json)"}});

    const auto sys_preset = hw::SystemPreset::Sys4k1Os2Ws;
    const auto sc_preset = workload::ScenarioPreset::VrGaming;

    // Sweep section: the window is deliberately tiny — the section
    // measures the per-point fixed cost the cache amortises, not
    // steady-state simulation (the frame section covers that).
    constexpr int sweep_n = 7;
    constexpr double sweep_window_us = 1e3;
    const auto sweep_grid = engine::paramSpaceGrid(
        sys_preset, sc_preset, sweep_n, sweep_window_us);

    // Frame section: several 60 fps periods — enough steady-state
    // frames for a per-frame cost.
    constexpr int frame_n = 3;
    constexpr double frame_window_us = 2e5;
    const auto frame_grid = engine::paramSpaceGrid(
        sys_preset, sc_preset, frame_n, frame_window_us);

    // The frame grid is the bench's protocol surface (CI sweeps it).
    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, frame_grid, file_sink.get()))
        return 0;

    std::printf("perf_hotpath: sweep %zu points @ %.0fus, frame %zu "
                "points @ %.0fus, best of %d\n\n",
                sweep_grid.size(), sweep_window_us, frame_grid.size(),
                frame_window_us, kRepeats);

    // Sweep section, uncached: the pre-cache behaviour (per-point
    // lazy tables) regardless of the --no-cost-cache flag.
    cost::CostTableCache::setEnabled(false);
    const PassResult uncached = timedPass(sweep_grid, kRepeats);
    std::printf("sweep uncached  %8.1f points/sec  (%.3fs)\n",
                uncached.pointsPerSec, uncached.seconds);

    PassResult cached;
    cost::CostTableCache::Stats stats;
    const bool measure_cached = opts.costCache;
    if (measure_cached) {
        cost::CostTableCache::setEnabled(true);
        cached = timedPass(sweep_grid, kRepeats);
        stats = cost::CostTableCache::global().stats();
        std::printf("sweep cached    %8.1f points/sec  (%.3fs)\n",
                    cached.pointsPerSec, cached.seconds);
        std::printf("speedup: %.2fx   cache: %llu hits, %llu misses, "
                    "%llu evictions\n",
                    cached.seconds > 0.0
                        ? uncached.seconds / cached.seconds
                        : 0.0,
                    static_cast<unsigned long long>(stats.hits),
                    static_cast<unsigned long long>(stats.misses),
                    static_cast<unsigned long long>(stats.evictions));

        // The gate before any number leaves this process: the cache
        // must not change a single output byte.
        if (csvBytes(uncached.records) != csvBytes(cached.records)) {
            std::fprintf(stderr, "FATAL: cached and uncached sweep "
                                 "records differ\n");
            return 1;
        }
        std::printf("records byte-identical between modes: yes\n");
    } else {
        std::printf("(--no-cost-cache: uncached measurement only)\n");
    }

    // Frame section, in the mode the flags selected.
    cost::CostTableCache::setEnabled(opts.costCache);
    const PassResult frame = timedPass(frame_grid, kRepeats);
    std::printf("\nframe           %8llu frames, ns/frame mean %.0f  "
                "p50 %.0f  p95 %.0f\n",
                static_cast<unsigned long long>(frame.frames),
                frame.nsPerFrame.mean(),
                frame.nsPerFrame.quantile(0.5),
                frame.nsPerFrame.quantile(0.95));

    // Stream the protocol grid's records to --out like every other
    // bench (identical rows to a subset/sharded run of the grid).
    if (file_sink) {
        for (const auto& r : frame.records)
            file_sink->write(r);
    }

    writeJson(bench_out, sweep_grid.size(), sweep_window_us,
              frame_grid.size(), frame_window_us, uncached,
              measure_cached ? &cached : nullptr, frame, stats);
    std::printf("wrote %s\n", bench_out.c_str());
    return 0;
}
