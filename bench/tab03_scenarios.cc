/**
 * @file
 * Table 3 reproduction: the five RTMM scenarios with their models,
 * FPS targets and dependencies, extended with each model's size and
 * estimated whole-model latency per accelerator dataflow (the data
 * the paper's scheduler consumes from its offline cost model), plus
 * a measured difficulty sweep: FCFS vs DREAM-Full UXCost per
 * scenario through the engine.
 */

#include <cstdio>
#include <vector>

#include "bench_main.h"
#include "costmodel/cost_table.h"
#include "engine/engine.h"
#include "hw/system.h"
#include "runner/experiment.h"
#include "runner/table.h"
#include "workload/scenario.h"

using namespace dream;

namespace {

double
modelLatencyUs(const cost::CostTable& costs, const models::Model& m,
               size_t acc)
{
    double sum = 0.0;
    for (const auto& l : m.layers)
        sum += costs.cost(l, acc).latencyUs;
    return sum;
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);

    engine::SweepGrid grid;
    for (const auto preset : workload::allScenarioPresets())
        grid.addScenario(preset);
    grid.addSystem(hw::SystemPreset::Sys4k1Ws2Os)
        .addScheduler(runner::SchedKind::Fcfs)
        .addScheduler(runner::SchedKind::DreamFull)
        .seeds(runner::defaultSeeds())
        .window(runner::kDefaultWindowUs);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    std::printf("Table 3: evaluated real-time workload scenarios\n");
    std::printf("(latency columns: whole-model estimate on a 2K-PE "
                "accelerator of each dataflow)\n\n");

    // One accelerator of each dataflow at the 2K size used in the 4K
    // heterogeneous systems.
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    hw::SystemConfig probe;
    probe.name = "probe";
    probe.accelerators = {system.accelerators[0]};
    probe.accelerators.push_back(system.accelerators[0]);
    probe.accelerators[1].name = "OS-2K";
    probe.accelerators[1].dataflow = hw::Dataflow::OutputStationary;

    for (const auto preset : workload::allScenarioPresets()) {
        const auto scenario = workload::makeScenario(preset);
        cost::CostTable costs(probe);

        runner::Table table({"Model", "FPS", "Dep", "Trigger", "MMACs",
                             "Weights(MB)", "WS-2K(ms)", "OS-2K(ms)",
                             "Load(WS)"});
        double total_load = 0.0;
        for (workload::TaskId t = 0;
             t < workload::TaskId(scenario.tasks.size()); ++t) {
            const auto& spec = scenario.tasks[t];
            costs.addModel(spec.model);
            const double ws_ms =
                modelLatencyUs(costs, spec.model, 0) / 1e3;
            const double os_ms =
                modelLatencyUs(costs, spec.model, 1) / 1e3;
            const double eff_fps =
                spec.fps * (spec.dependsOn == workload::kNoParent
                                ? 1.0
                                : spec.triggerProb);
            const double load = eff_fps * ws_ms / 1e3;
            total_load += load;
            table.addRow(
                {spec.model.name, runner::fmt(spec.fps, 0),
                 spec.dependsOn == workload::kNoParent
                     ? "-"
                     : scenario.tasks[spec.dependsOn].model.name,
                 runner::fmt(spec.triggerProb, 2),
                 runner::fmt(double(spec.model.totalMacs()) / 1e6, 0),
                 runner::fmt(double(spec.model.totalWeightBytes()) /
                                 (1024.0 * 1024.0),
                             1),
                 runner::fmt(ws_ms, 2), runner::fmt(os_ms, 2),
                 runner::fmtPct(load)});
        }
        std::printf("== %s ==\n", scenario.name.c_str());
        table.print();
        std::printf("aggregate WS-2K-equivalent load: %s\n\n",
                    runner::fmtPct(total_load).c_str());
    }

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));
    const auto cells = agg.cells();

    std::printf("== measured scenario difficulty (on %s) ==\n",
                hw::toString(hw::SystemPreset::Sys4k1Ws2Os).c_str());
    runner::Table measured({"Scenario", "FCFS UXCost",
                            "DREAM-Full UXCost", "DREAM reduction"});
    const auto ratios = engine::schedulerRatios(
        cells, runner::toString(runner::SchedKind::DreamFull),
        runner::toString(runner::SchedKind::Fcfs));
    for (const auto& r : ratios) {
        measured.addRow({r.scenario, runner::fmt(r.denominator, 4),
                         runner::fmt(r.numerator, 4),
                         runner::fmtPct(r.reduction())});
    }
    measured.print();
    return 0;
}
