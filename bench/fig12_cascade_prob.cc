/**
 * @file
 * Figure 12 reproduction: UXCost of VR_Gaming and AR_Social while
 * sweeping the ML-cascade-pipeline probability from 50% to 99% on the
 * 4K heterogeneous accelerators. The paper reports DREAM's advantage
 * growing with system load, and smart frame drop / Supernet switching
 * becoming effective: for AR_Social (99%) on 1WS+2OS,
 * DREAM-SmartDrop reduces UXCost by 48.1% over DREAM-MapScore, and
 * DREAM-Full by a further 65.5%.
 *
 * The cascade probability is a scenario axis of one engine sweep
 * (scenario names carry the "@p" suffix), so the whole figure runs
 * with --jobs / --out / --filter.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_main.h"
#include "engine/engine.h"
#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const double probs[] = {0.5, 0.9, 0.99};
    const workload::ScenarioPreset scenarios[] = {
        workload::ScenarioPreset::VrGaming,
        workload::ScenarioPreset::ArSocial};
    const hw::SystemPreset systems[] = {
        hw::SystemPreset::Sys4k1Ws2Os, hw::SystemPreset::Sys4k1Os2Ws};
    const auto schedulers = runner::evaluationSchedulers();

    const auto scenarioName = [](workload::ScenarioPreset preset,
                                 double prob) {
        return toString(preset) + "@p" + engine::formatValue(prob);
    };

    engine::SweepGrid grid;
    for (const auto sc_preset : scenarios) {
        for (const double prob : probs) {
            grid.addScenario(scenarioName(sc_preset, prob),
                             [sc_preset, prob]() {
                                 return workload::makeScenario(
                                     sc_preset, prob);
                             });
        }
    }
    for (const auto sys_preset : systems)
        grid.addSystem(sys_preset);
    for (const auto kind : schedulers)
        grid.addScheduler(kind);
    grid.seeds(runner::defaultSeeds()).window(runner::kDefaultWindowUs);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));
    const auto cells = agg.cells();

    for (const auto sys_preset : systems) {
        const std::string system = hw::toString(sys_preset);
        for (const auto sc_preset : scenarios) {
            std::printf("== Figure 12: %s on %s ==\n",
                        toString(sc_preset).c_str(), system.c_str());
            runner::Table t({"CascadeProb", "FCFS", "Veltair",
                             "Planaria", "DRM-Map", "DRM-Drop",
                             "DRM-Full"});
            for (const double prob : probs) {
                std::vector<std::string> row{runner::fmtPct(prob, 0)};
                for (const auto kind : schedulers) {
                    const auto& cell = engine::cellAt(
                        cells, scenarioName(sc_preset, prob), system,
                        runner::toString(kind));
                    row.push_back(runner::fmt(cell.uxCost.mean, 4));
                }
                t.addRow(row);
            }
            t.print();
            std::printf("\n");
        }
    }
    return 0;
}
