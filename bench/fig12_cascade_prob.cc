/**
 * @file
 * Figure 12 reproduction: UXCost of VR_Gaming and AR_Social while
 * sweeping the ML-cascade-pipeline probability from 50% to 99% on the
 * 4K heterogeneous accelerators. The paper reports DREAM's advantage
 * growing with system load, and smart frame drop / Supernet switching
 * becoming effective: for AR_Social (99%) on 1WS+2OS,
 * DREAM-SmartDrop reduces UXCost by 48.1% over DREAM-MapScore, and
 * DREAM-Full by a further 65.5%.
 */

#include <cstdio>

#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main()
{
    const auto seeds = runner::defaultSeeds();
    const double probs[] = {0.5, 0.9, 0.99};
    const workload::ScenarioPreset scenarios[] = {
        workload::ScenarioPreset::VrGaming,
        workload::ScenarioPreset::ArSocial};
    const hw::SystemPreset systems[] = {
        hw::SystemPreset::Sys4k1Ws2Os, hw::SystemPreset::Sys4k1Os2Ws};

    for (const auto sys_preset : systems) {
        const auto system = hw::makeSystem(sys_preset);
        for (const auto sc_preset : scenarios) {
            std::printf("== Figure 12: %s on %s ==\n",
                        toString(sc_preset).c_str(),
                        system.name.c_str());
            runner::Table t({"CascadeProb", "FCFS", "Veltair",
                             "Planaria", "DRM-Map", "DRM-Drop",
                             "DRM-Full"});
            for (const double prob : probs) {
                const auto scenario =
                    workload::makeScenario(sc_preset, prob);
                std::vector<std::string> row{
                    runner::fmtPct(prob, 0)};
                for (const auto kind : runner::evaluationSchedulers()) {
                    auto sched = runner::makeScheduler(kind);
                    const auto agg = runner::runSeeds(
                        system, scenario, *sched,
                        runner::kDefaultWindowUs, seeds);
                    row.push_back(runner::fmt(agg.uxCost, 4));
                }
                t.addRow(row);
            }
            t.print();
            std::printf("\n");
        }
    }
    return 0;
}
