/**
 * @file
 * Figure 14 reproduction: which Supernet subnets DREAM-Full actually
 * dispatched for the context-understanding OFA model, on the 4K
 * heterogeneous accelerators, under light (50% cascade) and heavy
 * (99% cascade) system load. The paper reports mostly the Original
 * subnet under light load and a majority of lighter variants under
 * heavy load.
 */

#include <cstdio>

#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main()
{
    const hw::SystemPreset systems[] = {hw::SystemPreset::Sys4k1Ws2Os,
                                        hw::SystemPreset::Sys4k1Os2Ws};
    const workload::ScenarioPreset scenarios[] = {
        workload::ScenarioPreset::VrGaming,
        workload::ScenarioPreset::ArSocial};
    const double probs[] = {0.5, 0.99};

    std::printf("Figure 14: executed Supernet subnets under "
                "DREAM-Full (shares of started frames)\n\n");
    runner::Table t({"System", "Scenario", "Cascade", "Original",
                     "v1", "v2", "v3 (lightest)"});
    for (const auto sys_preset : systems) {
        const auto system = hw::makeSystem(sys_preset);
        for (const auto sc_preset : scenarios) {
            for (const double prob : probs) {
                const auto scenario =
                    workload::makeScenario(sc_preset, prob);
                auto sched =
                    runner::makeScheduler(runner::SchedKind::DreamFull);
                const auto agg = runner::runSeeds(
                    system, scenario, *sched, runner::kDefaultWindowUs,
                    runner::defaultSeeds());
                // Find the Supernet task's variant tally.
                std::vector<std::string> row{system.name,
                                             toString(sc_preset),
                                             runner::fmtPct(prob, 0)};
                for (const auto& ts : agg.lastStats.tasks) {
                    if (ts.variantStarts.empty())
                        continue;
                    uint64_t total = 0;
                    for (const auto v : ts.variantStarts)
                        total += v;
                    for (const auto v : ts.variantStarts) {
                        row.push_back(runner::fmtPct(
                            total ? double(v) / double(total) : 0.0,
                            0));
                    }
                }
                t.addRow(row);
            }
        }
    }
    t.print();
    std::printf("\npaper: >80%% Original under 50%% cascade; >40-60%% "
                "lighter variants under heavy (99%%) load\n");
    return 0;
}
