/**
 * @file
 * Figure 14 reproduction: which Supernet subnets DREAM-Full actually
 * dispatched for the context-understanding OFA model, on the 4K
 * heterogeneous accelerators, under light (50% cascade) and heavy
 * (99% cascade) system load. The paper reports mostly the Original
 * subnet under light load and a majority of lighter variants under
 * heavy load.
 *
 * Variant shares ride as breakdown columns on every engine record
 * ("OFA_Supernet_v<i>_share"), so the figure aggregates shares
 * across all seeds instead of inspecting a single run, and --out
 * streams them per seed.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_main.h"
#include "engine/engine.h"
#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const hw::SystemPreset systems[] = {hw::SystemPreset::Sys4k1Ws2Os,
                                        hw::SystemPreset::Sys4k1Os2Ws};
    const workload::ScenarioPreset scenarios[] = {
        workload::ScenarioPreset::VrGaming,
        workload::ScenarioPreset::ArSocial};
    const double probs[] = {0.5, 0.99};

    const auto scenarioName = [](workload::ScenarioPreset preset,
                                 double prob) {
        return toString(preset) + "@p" + engine::formatValue(prob);
    };

    engine::SweepGrid grid;
    for (const auto sc_preset : scenarios) {
        for (const double prob : probs) {
            grid.addScenario(scenarioName(sc_preset, prob),
                             [sc_preset, prob]() {
                                 return workload::makeScenario(
                                     sc_preset, prob);
                             });
        }
    }
    for (const auto sys_preset : systems)
        grid.addSystem(sys_preset);
    grid.addScheduler(runner::SchedKind::DreamFull)
        .seeds(runner::defaultSeeds())
        .window(runner::kDefaultWindowUs);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));
    const auto cells = agg.cells();

    std::printf("Figure 14: executed Supernet subnets under "
                "DREAM-Full (shares of started frames,\nmean across "
                "seeds)\n\n");
    runner::Table t({"System", "Scenario", "Cascade", "Original",
                     "v1", "v2", "v3 (lightest)"});
    for (const auto sys_preset : systems) {
        const std::string system = hw::toString(sys_preset);
        for (const auto sc_preset : scenarios) {
            for (const double prob : probs) {
                const auto& cell = engine::cellAt(
                    cells, scenarioName(sc_preset, prob), system,
                    runner::toString(runner::SchedKind::DreamFull));
                std::vector<std::string> row{system,
                                             toString(sc_preset),
                                             runner::fmtPct(prob, 0)};
                for (const auto& kv : cell.breakdown)
                    row.push_back(runner::fmtPct(kv.second.mean, 0));
                t.addRow(row);
            }
        }
    }
    t.print();
    std::printf("\npaper: >80%% Original under 50%% cascade; >40-60%% "
                "lighter variants under heavy (99%%) load\n");
    return 0;
}
