/**
 * @file
 * Ablation: spatial-partition (slice) granularity. DESIGN.md models
 * each accelerator as divisible into 4 equal slices for Planaria's
 * fission. This sweep varies the granularity and shows its effect on
 * Planaria (which depends on fission) and DREAM (which does not).
 *
 * The granularity is a custom system axis of one engine sweep
 * ("4K-1OS+2WS/s<N>" entries), so the whole ablation runs with
 * --jobs / --out / --filter.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_main.h"
#include "engine/engine.h"
#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const uint32_t slice_counts[] = {1u, 2u, 4u, 8u};

    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::DroneIndoor);
    for (const uint32_t slices : slice_counts) {
        grid.addSystem(
            hw::toString(hw::SystemPreset::Sys4k1Os2Ws) + "/s" +
                std::to_string(slices),
            [slices]() {
                auto system =
                    hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
                for (auto& acc : system.accelerators)
                    acc.numSlices = slices;
                return system;
            });
    }
    grid.addScheduler(runner::SchedKind::Planaria)
        .addScheduler(runner::SchedKind::DreamFull)
        .seeds(runner::defaultSeeds())
        .window(runner::kDefaultWindowUs);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));
    const auto cells = agg.cells();

    std::printf("Ablation: accelerator slice granularity "
                "(Drone_Indoor)\n\n");
    runner::Table t({"Slices", "Planaria UXCost", "DREAM-Full UXCost"});
    for (const uint32_t slices : slice_counts) {
        const std::string system =
            hw::toString(hw::SystemPreset::Sys4k1Os2Ws) + "/s" +
            std::to_string(slices);
        std::vector<std::string> row{std::to_string(slices)};
        for (const auto kind : {runner::SchedKind::Planaria,
                                runner::SchedKind::DreamFull}) {
            const auto& cell =
                engine::cellAt(cells, "Drone_Indoor", system,
                               runner::toString(kind));
            row.push_back(runner::fmt(cell.uxCost.mean, 4));
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\nPlanaria's deadline-aware fission needs enough "
                "granularity to co-locate; DREAM's whole-\n"
                "accelerator layer routing is insensitive to it.\n");
    return 0;
}
