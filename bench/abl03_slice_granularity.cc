/**
 * @file
 * Ablation: spatial-partition (slice) granularity. DESIGN.md models
 * each accelerator as divisible into 4 equal slices for Planaria's
 * fission. This sweep varies the granularity and shows its effect on
 * Planaria (which depends on fission) and DREAM (which does not).
 */

#include <cstdio>

#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main()
{
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::DroneIndoor);

    std::printf("Ablation: accelerator slice granularity "
                "(Drone_Indoor)\n\n");
    runner::Table t({"Slices", "Planaria UXCost", "DREAM-Full UXCost"});
    for (const uint32_t slices : {1u, 2u, 4u, 8u}) {
        auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
        for (auto& acc : system.accelerators)
            acc.numSlices = slices;
        std::vector<std::string> row{std::to_string(slices)};
        for (const auto kind : {runner::SchedKind::Planaria,
                                runner::SchedKind::DreamFull}) {
            auto sched = runner::makeScheduler(kind);
            const auto agg = runner::runSeeds(
                system, scenario, *sched, runner::kDefaultWindowUs,
                runner::defaultSeeds());
            row.push_back(runner::fmt(agg.uxCost, 4));
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\nPlanaria's deadline-aware fission needs enough "
                "granularity to co-locate; DREAM's whole-\n"
                "accelerator layer routing is insensitive to it.\n");
    return 0;
}
