/**
 * @file
 * Hard-scenarios regression sweep: runs every entry of a versioned
 * hard-scenarios suite (scenarios/hard_v1.json — worst-case mixes
 * found by tools/dream_hunt) across the evaluation scheduler set, on
 * the suite's system / window / seeds. The full bench toolchain
 * applies for free: --shard/--chunk for dream_shard, --record-trace,
 * --metrics, dream_diff on the --out CSV — which is exactly how CI
 * gates the suite (.github/workflows/ci.yml, job hard-scenarios).
 *
 * Besides the sweep itself, the report compares each scheduler's
 * measured UXCost against the suite's recorded expected value;
 * --check-expected TOL turns drift beyond the relative tolerance
 * into exit code 1 (a self-contained gate when no golden CSV is at
 * hand).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_main.h"
#include "engine/engine.h"
#include "runner/experiment.h"
#include "runner/table.h"
#include "workload/scenario_suite.h"

using namespace dream;

int
main(int argc, char** argv)
{
    std::string suite_path = "scenarios/hard_v1.json";
    std::string check_tol;
    const std::vector<bench::ExtraFlag> extra = {
        {"--suite", &suite_path,
         "hard-scenarios suite JSON (default scenarios/hard_v1.json)"},
        {"--check-expected", &check_tol,
         "fail (exit 1) if any UXCost drifts beyond this relative "
         "tolerance from the suite's expected value"},
    };
    const auto opts = bench::parseArgs(argc, argv, extra);

    workload::HardScenarioSuite suite;
    try {
        suite = workload::loadHardScenarioSuite(suite_path);
    } catch (const std::runtime_error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    hw::SystemPreset preset = hw::SystemPreset::Sys4k1Ws2Os;
    for (const auto p : hw::allSystemPresets()) {
        if (hw::toString(p) == suite.system)
            preset = p;
    }

    const auto schedulers = runner::evaluationSchedulers();
    engine::SweepGrid grid;
    grid.addHardScenarios(suite)
        .addSystem(preset)
        .seeds(suite.seeds)
        .window(suite.windowUs);
    for (const auto kind : schedulers)
        grid.addScheduler(kind);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));

    std::printf("Hard-scenarios sweep: %zu adversarial mixes (%s) on "
                "%s, window %.0f us, %zu seed%s\n\n",
                suite.entries.size(), suite_path.c_str(),
                suite.system.c_str(), suite.windowUs,
                suite.seeds.size(),
                suite.seeds.size() == 1 ? "" : "s");

    // Expected UXCost per (entry, scheduler) from the suite file.
    std::map<std::pair<std::string, std::string>, double> expected;
    for (const auto& entry : suite.entries) {
        for (const auto& [sched, ux] : entry.expected)
            expected[{entry.name, sched}] = ux;
    }

    double worst_drift = 0.0;
    std::string worst_cell;
    runner::Table t({"Scenario", "Scheduler", "UXCost", "Expected",
                     "Drift", "Violated", "Dropped"});
    for (const auto& cell : agg.cells()) {
        const auto it = expected.find({cell.scenario, cell.scheduler});
        std::string exp_text = "-", drift_text = "-";
        if (it != expected.end()) {
            const double drift =
                std::fabs(cell.uxCost.mean - it->second) /
                std::max(std::fabs(it->second), 1e-12);
            exp_text = runner::fmt(it->second, 4);
            drift_text = runner::fmtPct(drift);
            if (drift > worst_drift) {
                worst_drift = drift;
                worst_cell = cell.scenario + "/" + cell.scheduler;
            }
        }
        t.addRow({cell.scenario, cell.scheduler,
                  runner::fmt(cell.uxCost.mean, 4), exp_text,
                  drift_text,
                  runner::fmtPct(cell.violationFraction.mean),
                  runner::fmtPct(cell.dropRate.mean)});
    }
    t.print();

    if (!check_tol.empty()) {
        char* end = nullptr;
        const double tol = std::strtod(check_tol.c_str(), &end);
        if (end == check_tol.c_str() || *end != '\0' ||
            !(tol >= 0.0)) {
            std::fprintf(stderr,
                         "invalid --check-expected value: %s\n",
                         check_tol.c_str());
            return 2;
        }
        if (worst_drift > tol) {
            std::fprintf(stderr,
                         "FAIL: UXCost drift %.3g on %s exceeds "
                         "--check-expected %.3g\n",
                         worst_drift, worst_cell.c_str(), tol);
            return 1;
        }
        std::printf("\nexpected-value check passed: worst drift "
                    "%.3g (tolerance %.3g)\n",
                    worst_drift, tol);
    }
    std::printf("\nthese mixes were found by tools/dream_hunt "
                "maximizing scheduler UXCost; regenerate with the\n"
                "policy in scenarios/README.md. CI sweeps this bench "
                "and gates the CSV with dream_diff.\n");
    return 0;
}
