/**
 * @file
 * Figure 11 reproduction: convergence of the MapScore parameter
 * optimisation — UXCost improvement per optimisation step. The paper
 * reports >25% UXCost improvement within two steps and convergence
 * to within 2% of the global minimum within five steps.
 *
 * The per-case 7x7 reference grid runs through the sweep engine
 * (--jobs / --out), and the search evaluates each step's candidate
 * batch on the same worker pool.
 */

#include <cstdio>
#include <string>

#include "bench_main.h"
#include "engine/param_eval.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const auto sys_preset = hw::SystemPreset::Sys4k1Os2Ws;
    const auto system = hw::makeSystem(sys_preset);
    const struct {
        const char* name;
        workload::ScenarioPreset preset;
        double a0, b0;
    } cases[] = {
        {"VR_Gaming", workload::ScenarioPreset::VrGaming, 1.73, 0.31},
        {"AR_Call", workload::ScenarioPreset::ArCall, 0.17, 1.61},
        {"AR_Social", workload::ScenarioPreset::ArSocial, 1.21, 1.87},
        {"Drone_Indoor", workload::ScenarioPreset::DroneIndoor, 1.9,
         0.1},
    };

    engine::WorkerPool pool(opts.jobs);
    auto file_sink = bench::makeFileSink(opts);

    // --list / --filter / --shard / --chunk address the per-case 7x7
    // reference grids. Row indices offset per grid (the scan order
    // below) so the --out file stays merge-ably ordered; --chunk
    // positions run globally across the grids via the Options
    // cursor.
    if (opts.list || opts.subsetRun()) {
        size_t next_base = 0;
        for (const auto& c : cases) {
            const auto grid =
                engine::paramSpaceGrid(sys_preset, c.preset, 7);
            bench::runOrList(opts, grid, file_sink.get(), c.name,
                             next_base);
            next_base += grid.size();
        }
        return 0;
    }

    std::printf("Figure 11: UXCost vs optimisation step (normalised "
                "to the step-0 value; gap vs 7x7 grid optimum)\n\n");
    runner::Table t({"Case", "Step0", "Step1", "Step2", "Step3",
                     "Step4+", "Final gap"});
    size_t next_base = 0;
    for (const auto& c : cases) {
        const auto scenario = workload::makeScenario(c.preset);
        const auto grid =
            engine::paramSpaceGrid(sys_preset, c.preset, 7);
        engine::ReindexSink shifted(file_sink.get(), next_base);
        // Recorded trace metadata carries the same global row index
        // the --out CSV does.
        auto eopts = bench::engineOptions(opts);
        eopts.traceIndexBase = next_base;
        next_base += grid.size();
        const auto records = engine::Engine(eopts).run(
            grid, bench::sinkList({&shifted}));
        const auto best = engine::bestParams(records);

        const auto eval =
            engine::makeBatchEvaluator(system, scenario, pool);
        core::ParamSearch search(0.5, 0.05, 0.0, 2.0);
        const auto result = search.optimize(eval, c.a0, c.b0);

        const double base = result.trajectory.front().cost;
        std::vector<std::string> row{c.name};
        for (int step = 0; step <= 4; ++step) {
            double cost = result.trajectory.back().cost;
            for (const auto& s : result.trajectory) {
                if (s.step == step) {
                    cost = s.cost;
                    break;
                }
            }
            row.push_back(runner::fmt(cost / base, 3));
        }
        row.push_back(
            runner::fmtPct(result.cost / best.cost - 1.0));
        t.addRow(row);
    }
    t.print();
    std::printf("\npaper: >25%% improvement within two steps; within "
                "2%% of the global minimum in five steps\n");
    return 0;
}
