/**
 * @file
 * Ablation: the maximum frame-drop rate bound (Condition 4 of the
 * Smart Frame Drop engine). The paper defaults to 2 drops per 10
 * frames and evaluates with a 20% cap; this sweep shows how the cap
 * trades the dropped task's frame rate against everyone else's
 * deadlines under heavy load.
 */

#include <cstdio>

#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main()
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario = workload::makeScenario(
        workload::ScenarioPreset::VrGaming, 0.99);

    std::printf("Ablation: max frame-drop rate (VR_Gaming @ 99%% "
                "cascade on %s)\n\n", system.name.c_str());
    runner::Table t({"Drop cap", "UXCost", "Violated", "Dropped",
                     "Energy(mJ)"});
    for (const double cap : {0.0, 0.1, 0.2, 0.4, 1.0}) {
        auto cfg = core::DreamConfig::full();
        cfg.maxDropRate = cap;
        cfg.smartDrop = cap > 0.0;
        auto sched = runner::makeDream(cfg);
        const auto agg = runner::runSeeds(system, scenario, *sched,
                                          runner::kDefaultWindowUs,
                                          runner::defaultSeeds());
        uint64_t dropped = 0;
        for (const auto& ts : agg.lastStats.tasks)
            dropped += ts.droppedFrames;
        t.addRow({runner::fmtPct(cap, 0), runner::fmt(agg.uxCost, 4),
                  runner::fmtPct(agg.violationFraction),
                  std::to_string(dropped),
                  runner::fmt(agg.energyMj, 1)});
    }
    t.print();
    std::printf("\npaper default: up to 2 drops per 10 frames; the "
                "evaluation uses a 20%% cap.\n");
    return 0;
}
