/**
 * @file
 * Ablation: the maximum frame-drop rate bound (Condition 4 of the
 * Smart Frame Drop engine). The paper defaults to 2 drops per 10
 * frames and evaluates with a 20% cap; this sweep shows how the cap
 * trades the dropped task's frame rate against everyone else's
 * deadlines under heavy load.
 *
 * The cap is a free parameter axis of one engine sweep; drop and
 * violation rates aggregate across all seeds.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_main.h"
#include "core/dream_scheduler.h"
#include "engine/engine.h"
#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);

    engine::SweepGrid grid;
    grid.addScenario("VR_Gaming@p0.99",
                     []() {
                         return workload::makeScenario(
                             workload::ScenarioPreset::VrGaming, 0.99);
                     })
        .addSystem(hw::SystemPreset::Sys4k1Ws2Os)
        .addScheduler("DREAM-DropCap",
                      [](const engine::ParamMap& params) {
                          const double cap =
                              engine::paramValue(params, "drop_cap");
                          auto cfg = core::DreamConfig::full();
                          cfg.maxDropRate = cap;
                          cfg.smartDrop = cap > 0.0;
                          return std::unique_ptr<sim::Scheduler>(
                              std::make_unique<core::DreamScheduler>(
                                  cfg));
                      })
        .addParam("drop_cap", {0.0, 0.1, 0.2, 0.4, 1.0})
        .seeds(runner::defaultSeeds())
        .window(runner::kDefaultWindowUs);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));

    std::printf("Ablation: max frame-drop rate (VR_Gaming @ 99%% "
                "cascade on %s)\n\n",
                hw::toString(hw::SystemPreset::Sys4k1Ws2Os).c_str());
    runner::Table t({"Drop cap", "UXCost", "Violated", "Drop rate",
                     "Energy(mJ)"});
    for (const auto& cell : agg.cells()) {
        t.addRow({runner::fmtPct(
                      engine::paramValue(cell.params, "drop_cap"), 0),
                  runner::fmt(cell.uxCost.mean, 4),
                  runner::fmtPct(cell.violationFraction.mean),
                  runner::fmtPct(cell.dropRate.mean),
                  runner::fmt(cell.energyMj.mean, 1)});
    }
    t.print();
    std::printf("\npaper default: up to 2 drops per 10 frames; the "
                "evaluation uses a 20%% cap.\n");
    return 0;
}
