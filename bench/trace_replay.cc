/**
 * @file
 * Trace replay bench: re-runs traces recorded with
 * `--record-trace DIR` (any bench) through the sweep engine and
 * reports how faithfully the replay reproduces the recorded
 * outcomes — the closing leg of the record -> replay -> dream_diff
 * regression loop.
 *
 *   fig02_static_vs_dynamic --record-trace traces --out orig.csv
 *   trace_replay --traces traces --out replayed.csv
 *   dream_diff --fail-on-diff orig.csv replayed.csv
 *
 * Each *.trace.csv is self-describing (its "# key=value" metadata
 * names the grid point), so the bench rebuilds every recorded
 * point — scenario/system presets, scheduler, seed, window — as a
 * one-point SweepGrid whose scenario axis is the recorded trace
 * (SweepGrid::addTraceReplay) and runs it through engine::Engine.
 * Result rows carry the original identity and indices (traces are
 * ordered by their recorded grid index), so the replayed CSV diffs
 * clean against the recording when replay is exact. All the shared
 * flags compose: --list/--filter/--shard/--chunk subset the replay
 * set, and --record-trace re-records the replayed runs for a
 * byte-level trace comparison.
 *
 * Parameterised grid points (non-empty params axis) and generated
 * scenarios ("Gen<seed>") are not replayable from metadata alone and
 * are rejected with a clear error (exit 2). A full run exits 1 when
 * any replay drifts from its recording, so the bench itself gates
 * regressions.
 */

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_main.h"
#include "engine/engine.h"
#include "engine/worker_pool.h"
#include "runner/experiment.h"
#include "runner/table.h"
#include "runner/trace.h"

using namespace dream;

namespace {

/** One recorded trace with its grid identity resolved to factories. */
struct ResolvedTrace {
    std::string file;
    std::shared_ptr<const workload::FrameTrace> trace;
    std::string scenario;
    hw::SystemPreset system = hw::SystemPreset::Sys4k2Ws;
    runner::SchedKind scheduler = runner::SchedKind::Fcfs;
    uint64_t seed = 0;
    double windowUs = 0.0;
    size_t index = 0; ///< recorded grid index (replay row order)
    std::function<workload::Scenario()> makeScenario;
};

[[noreturn]] void
fail(const std::string& file, const std::string& what)
{
    std::fprintf(stderr, "trace_replay: %s: %s\n", file.c_str(),
                 what.c_str());
    std::exit(2);
}

std::string
requireMeta(const workload::FrameTrace& trace, const std::string& file,
            const std::string& key)
{
    const std::string value = trace.metaValue(key);
    if (value.empty() && key != "params")
        fail(file, "metadata is missing '" + key +
                       "' (was the trace recorded with "
                       "--record-trace?)");
    return value;
}

/** Resolve a recorded scenario name ("AR_Call", "VR_Gaming@p0.9"). */
std::function<workload::Scenario()>
resolveScenario(const std::string& name, const std::string& file)
{
    std::string base = name;
    double cascade_prob = 0.5;
    const size_t at = name.rfind("@p");
    if (at != std::string::npos) {
        char* end = nullptr;
        cascade_prob = std::strtod(name.c_str() + at + 2, &end);
        if (end == name.c_str() + name.size())
            base = name.substr(0, at);
        else
            cascade_prob = 0.5; // "@p" was part of the name itself
    }
    for (const auto preset : workload::allScenarioPresets()) {
        if (workload::toString(preset) == base) {
            return [preset, cascade_prob]() {
                return workload::makeScenario(preset, cascade_prob);
            };
        }
    }
    fail(file, "cannot replay scenario '" + name +
                   "': not a Table 3 preset (generated scenarios "
                   "are not replayable from metadata)");
}

ResolvedTrace
loadTrace(const std::string& path)
{
    ResolvedTrace t;
    t.file = path;
    try {
        t.trace = std::make_shared<const workload::FrameTrace>(
            runner::readFrameTraceCsv(path));
    } catch (const std::runtime_error& e) {
        fail(path, e.what());
    }
    const auto& trace = *t.trace;

    t.scenario = requireMeta(trace, path, "scenario");
    t.makeScenario = resolveScenario(t.scenario, path);

    const std::string system = requireMeta(trace, path, "system");
    bool found = false;
    for (const auto preset : hw::allSystemPresets()) {
        if (hw::toString(preset) == system) {
            t.system = preset;
            found = true;
        }
    }
    if (!found)
        fail(path, "unknown system preset '" + system + "'");

    const std::string sched = requireMeta(trace, path, "scheduler");
    found = false;
    for (const auto kind : runner::allSchedKinds()) {
        if (runner::toString(kind) == sched) {
            t.scheduler = kind;
            found = true;
        }
    }
    if (!found)
        fail(path, "unknown scheduler '" + sched + "'");

    if (!trace.metaValue("params").empty())
        fail(path, "parameterised grid points (params=" +
                       trace.metaValue("params") +
                       ") are not replayable from metadata");

    // Numeric metadata parses strictly: a corrupted seed silently
    // becoming 0 (or a negative one wrapping through strtoull) would
    // replay different execution paths and report drift instead of
    // rejecting the file.
    const auto unsignedMeta = [&](const char* key) {
        const std::string value = requireMeta(trace, path, key);
        const bool digits =
            !value.empty() &&
            value.find_first_not_of("0123456789") == std::string::npos;
        errno = 0;
        const auto v = std::strtoull(value.c_str(), nullptr, 10);
        if (!digits || errno == ERANGE)
            fail(path, std::string("malformed ") + key +
                           " metadata '" + value + "'");
        return v;
    };
    t.seed = unsignedMeta("seed");
    {
        const std::string value = requireMeta(trace, path, "window_us");
        char* end = nullptr;
        t.windowUs = std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size() || t.windowUs <= 0.0)
            fail(path, "malformed window_us metadata '" + value + "'");
    }
    t.index = unsignedMeta("index");
    return t;
}

/** The one-point grid replaying @p t under its recorded identity. */
engine::SweepGrid
replayGrid(const ResolvedTrace& t)
{
    engine::SweepGrid grid;
    grid.addTraceReplay({t.scenario, t.makeScenario, t.trace});
    grid.addSystem(t.system);
    grid.addScheduler(t.scheduler);
    grid.seeds({t.seed});
    grid.window(t.windowUs);
    return grid;
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    std::string traces_dir;
    const std::vector<bench::ExtraFlag> extra_flags = {
        {"--traces", &traces_dir,
         "directory of *.trace.csv files recorded with "
         "--record-trace (required)"}};
    const auto opts = bench::parseArgs(argc, argv, extra_flags);
    if (traces_dir.empty()) {
        std::fprintf(stderr, "trace_replay: --traces DIR is required\n");
        bench::printUsage(argv[0], extra_flags);
        return 2;
    }

    std::vector<std::string> files;
    try {
        for (const auto& entry :
             std::filesystem::directory_iterator(traces_dir)) {
            const std::string path = entry.path().string();
            if (path.size() > 10 &&
                path.substr(path.size() - 10) == ".trace.csv")
                files.push_back(path);
        }
    } catch (const std::filesystem::filesystem_error& e) {
        std::fprintf(stderr, "trace_replay: cannot list %s: %s\n",
                     traces_dir.c_str(), e.what());
        return 2;
    }
    if (files.empty()) {
        std::fprintf(stderr, "trace_replay: no *.trace.csv files in %s\n",
                     traces_dir.c_str());
        return 2;
    }
    std::sort(files.begin(), files.end());

    std::vector<ResolvedTrace> traces;
    traces.reserve(files.size());
    for (const auto& f : files)
        traces.push_back(loadTrace(f));
    // Replay rows in the recorded grid order, so the replayed CSV
    // lines up with the original run's row for row.
    std::stable_sort(traces.begin(), traces.end(),
                     [](const ResolvedTrace& a, const ResolvedTrace& b) {
                         return a.index < b.index;
                     });

    // --shard K/N must partition the GLOBAL (filtered) replay
    // ordering, not each one-point grid separately (per-grid
    // sharding of a single point would put every replay on the last
    // shard). Rewrite it as the equivalent global --chunk, which the
    // per-grid cursor already rebases correctly.
    bench::Options run_opts = opts;
    if (opts.sharded) {
        size_t selected = 0;
        for (const auto& t : traces) {
            const auto grid = replayGrid(t);
            if (bench::filterSelects(opts, grid.point(0).key()))
                ++selected;
        }
        const auto range = opts.shard.range(selected);
        run_opts.sharded = false;
        run_opts.shard = {};
        run_opts.chunked = true;
        run_opts.chunk = {range.first, range.second};
    }

    auto file_sink = bench::makeFileSink(run_opts);
    bool handled = false;
    try {
        for (const auto& t : traces) {
            const auto grid = replayGrid(t);
            // Rows carry the RECORDED grid index (the one-point
            // grid's own index is 0), so a replayed file lines up
            // with the recording row for row — also for subset
            // recordings whose indices do not start at 0.
            if (!bench::runOrList(run_opts, grid, file_sink.get(),
                                  t.scenario.c_str(), t.index))
                handled = true;
        }
    } catch (const std::exception& e) {
        // E.g. a ReplaySource scenario/trace mismatch surfacing from
        // a worker thread.
        std::fprintf(stderr, "trace_replay: %s\n", e.what());
        return 2;
    }
    if (handled)
        return 0;

    std::printf("Trace replay: %zu recorded run(s) from %s, "
                "re-driven through the engine\n\n",
                traces.size(), traces_dir.c_str());
    runner::Table table({"Point", "Frames", "Violated rec/rep",
                         "Dropped rec/rep", "Energy drift", "Exact"});
    // Each replay is one grid point, so --jobs parallelism has to
    // come from the outer per-trace loop; records are written to
    // sinks in recorded order afterwards, keeping output
    // byte-identical for any --jobs value.
    std::vector<engine::RunRecord> replays(traces.size());
    try {
        engine::WorkerPool pool(opts.jobs);
        pool.parallelFor(traces.size(), [&](size_t i) {
            const auto grid = replayGrid(traces[i]);
            // Re-recorded traces carry the ORIGINAL index metadata
            // (the one-point grid's own index is 0).
            replays[i] = engine::runGridPoint(
                grid.point(0), opts.traceDir, traces[i].index);
            replays[i].index = traces[i].index;
        });
    } catch (const std::exception& e) {
        std::fprintf(stderr, "trace_replay: %s\n", e.what());
        return 2;
    }
    size_t drifted = 0;
    for (size_t i = 0; i < traces.size(); ++i) {
        const auto& t = traces[i];
        const engine::RunRecord& r = replays[i];
        if (file_sink)
            file_sink->write(r);

        // Expected aggregates from the recorded per-frame outcomes.
        uint64_t total = 0, violated = 0, dropped = 0;
        double energy = 0.0;
        for (const auto& fr : t.trace->frames) {
            energy += fr.energyMj;
            if (!fr.inWindow)
                continue;
            total += 1;
            violated += fr.violated ? 1 : 0;
            dropped += fr.dropped ? 1 : 0;
        }
        const double drift =
            energy > 0.0 ? std::fabs(r.energyMj - energy) / energy
                         : std::fabs(r.energyMj);
        // Counters must match exactly; the energy check allows only
        // summation-order noise (the trace sums per frame, the
        // simulator per dispatch — same addends, different order).
        const bool exact = r.totalFrames == total &&
                           r.violatedFrames == violated &&
                           r.droppedFrames == dropped &&
                           drift <= 1e-12;
        drifted += exact ? 0 : 1;
        table.addRow({r.key(), std::to_string(r.totalFrames),
                      std::to_string(violated) + "/" +
                          std::to_string(r.violatedFrames),
                      std::to_string(dropped) + "/" +
                          std::to_string(r.droppedFrames),
                      runner::fmtPct(drift, 3),
                      exact ? "yes" : "NO"});
    }
    table.print();
    std::printf("\n%zu/%zu replays reproduced the recorded outcomes "
                "exactly\n",
                traces.size() - drifted, traces.size());
    std::printf("gate the result files with: dream_diff "
                "--fail-on-diff <recorded.csv> <replayed.csv>\n");
    // A drifted replay is a regression signal: exit nonzero so the
    // bench itself can gate CI, not only the dream_diff step.
    return drifted == 0 ? 0 : 1;
}
