/**
 * @file
 * Table 2 reproduction: the eight evaluated accelerator systems
 * (sizes, styles, dataflow partitioning) plus the shared memory
 * parameters the paper specifies (8 MiB SRAM, 90 GB/s, 700 MHz).
 */

#include <cstdio>

#include "hw/system.h"
#include "runner/table.h"

using namespace dream;

int
main()
{
    std::printf("Table 2: evaluated accelerator hardware settings\n\n");
    runner::Table t({"System", "Total PEs", "Style",
                     "Sub-accelerators"});
    for (const auto preset : hw::allSystemPresets()) {
        const auto sys = hw::makeSystem(preset);
        std::string subs;
        for (const auto& acc : sys.accelerators) {
            if (!subs.empty())
                subs += " + ";
            subs += toString(acc.dataflow) + "(" +
                    std::to_string(acc.numPes) + ")";
        }
        t.addRow({sys.name, std::to_string(sys.totalPes()),
                  sys.homogeneous() ? "Homogeneous" : "Heterogeneous",
                  subs});
    }
    t.print();

    const auto probe = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto& acc = probe.accelerators.front();
    std::printf("\nshared parameters: %.0f MiB SRAM, %.0f GB/s "
                "off-chip bandwidth, %.0f MHz clock, %u slices per "
                "accelerator\n",
                double(acc.sramBytes) / (1024.0 * 1024.0), acc.dramGbps,
                acc.clockMhz, acc.numSlices);
    return 0;
}
