/**
 * @file
 * Table 2 reproduction: the eight evaluated accelerator systems
 * (sizes, styles, dataflow partitioning) plus the shared memory
 * parameters the paper specifies (8 MiB SRAM, 90 GB/s, 700 MHz),
 * extended with a measured characterisation sweep: DREAM-Full's
 * UXCost and violation rate on VR_Gaming per system, grouped into
 * the paper's homogeneous/heterogeneous halves via the sink layer.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_main.h"
#include "engine/engine.h"
#include "hw/system.h"
#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);

    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::VrGaming);
    for (const auto preset : hw::allSystemPresets())
        grid.addSystem(preset);
    grid.addScheduler(runner::SchedKind::DreamFull)
        .seeds(runner::defaultSeeds())
        .window(runner::kDefaultWindowUs);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));
    const auto cells = agg.cells();

    std::printf("Table 2: evaluated accelerator hardware settings\n"
                "(measured columns: DREAM-Full on VR_Gaming, mean "
                "across seeds)\n\n");
    const auto by_style = engine::groupCells(
        cells, [](const engine::AggregateSink::Cell& c) {
            // Recover the preset from the cell's system name to
            // group into the paper's two halves of Table 2.
            for (const auto preset : hw::allSystemPresets()) {
                if (hw::toString(preset) == c.system) {
                    return hw::makeSystem(preset).homogeneous()
                               ? std::string("Homogeneous")
                               : std::string("Heterogeneous");
                }
            }
            return std::string("?");
        });
    for (const auto& group : by_style) {
        std::printf("== %s ==\n", group.key.c_str());
        runner::Table t({"System", "Total PEs", "Sub-accelerators",
                         "UXCost", "Violated"});
        for (const auto& cell : group.cells) {
            hw::SystemConfig sys;
            for (const auto preset : hw::allSystemPresets()) {
                if (hw::toString(preset) == cell.system)
                    sys = hw::makeSystem(preset);
            }
            std::string subs;
            for (const auto& acc : sys.accelerators) {
                if (!subs.empty())
                    subs += " + ";
                subs += toString(acc.dataflow) + "(" +
                        std::to_string(acc.numPes) + ")";
            }
            t.addRow({sys.name, std::to_string(sys.totalPes()), subs,
                      runner::fmt(cell.uxCost.mean, 4),
                      runner::fmtPct(cell.violationFraction.mean)});
        }
        t.print();
        std::printf("\n");
    }

    const auto probe = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto& acc = probe.accelerators.front();
    std::printf("shared parameters: %.0f MiB SRAM, %.0f GB/s "
                "off-chip bandwidth, %.0f MHz clock, %u slices per "
                "accelerator\n",
                double(acc.sramBytes) / (1024.0 * 1024.0), acc.dramGbps,
                acc.clockMhz, acc.numSlices);
    return 0;
}
