/**
 * @file
 * Ablation: the dispatch engine's settle-vs-wait rule. DESIGN.md
 * calls this choice out: dispatching a layer onto a badly-matched
 * dataflow "because it is idle" can be worse than a short wait for
 * the preferred accelerator. settleFactor = 0 disables the rule
 * (pure greedy highest-MapScore dispatch); larger factors tolerate
 * ever worse placements before deferring.
 */

#include <cstdio>

#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main()
{
    std::printf("Ablation: settle-vs-wait rule of the DREAM dispatch "
                "engine\n\n");
    for (const auto sys_preset : {hw::SystemPreset::Sys4k1Ws2Os,
                                  hw::SystemPreset::Sys4k1Os2Ws}) {
        const auto system = hw::makeSystem(sys_preset);
        runner::Table t({"settleFactor", "VR_Gaming UXCost",
                         "AR_Social UXCost"});
        for (const double factor : {0.0, 1.5, 2.5, 5.0, 10.0}) {
            std::vector<std::string> row{
                factor == 0.0 ? "off" : runner::fmt(factor, 1)};
            for (const auto sc :
                 {workload::ScenarioPreset::VrGaming,
                  workload::ScenarioPreset::ArSocial}) {
                auto cfg = core::DreamConfig::full();
                cfg.settleFactor = factor;
                auto sched = runner::makeDream(cfg);
                const auto agg = runner::runSeeds(
                    system, workload::makeScenario(sc), *sched,
                    runner::kDefaultWindowUs, runner::defaultSeeds());
                row.push_back(runner::fmt(agg.uxCost, 4));
            }
            t.addRow(row);
        }
        std::printf("== %s ==\n", system.name.c_str());
        t.print();
        std::printf("\n");
    }
    return 0;
}
