/**
 * @file
 * Ablation: the dispatch engine's settle-vs-wait rule. DESIGN.md
 * calls this choice out: dispatching a layer onto a badly-matched
 * dataflow "because it is idle" can be worse than a short wait for
 * the preferred accelerator. settleFactor = 0 disables the rule
 * (pure greedy highest-MapScore dispatch); larger factors tolerate
 * ever worse placements before deferring.
 *
 * The factor is a free parameter axis of one engine sweep over both
 * scenarios and both 4K heterogeneous systems; tables group per
 * system via the sink layer.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_main.h"
#include "core/dream_scheduler.h"
#include "engine/engine.h"
#include "runner/experiment.h"
#include "runner/table.h"

using namespace dream;

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const std::vector<double> factors = {0.0, 1.5, 2.5, 5.0, 10.0};

    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::VrGaming)
        .addScenario(workload::ScenarioPreset::ArSocial)
        .addSystem(hw::SystemPreset::Sys4k1Ws2Os)
        .addSystem(hw::SystemPreset::Sys4k1Os2Ws)
        .addScheduler("DREAM-Settle",
                      [](const engine::ParamMap& params) {
                          auto cfg = core::DreamConfig::full();
                          cfg.settleFactor =
                              engine::paramValue(params, "settle");
                          return std::unique_ptr<sim::Scheduler>(
                              std::make_unique<core::DreamScheduler>(
                                  cfg));
                      })
        .addParam("settle", factors)
        .seeds(runner::defaultSeeds())
        .window(runner::kDefaultWindowUs);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));
    const auto cells = agg.cells();

    std::printf("Ablation: settle-vs-wait rule of the DREAM dispatch "
                "engine\n\n");
    const auto by_system = engine::groupCells(
        cells, [](const engine::AggregateSink::Cell& c) {
            return c.system;
        });
    for (const auto& group : by_system) {
        runner::Table t({"settleFactor", "VR_Gaming UXCost",
                         "AR_Social UXCost"});
        for (const double factor : factors) {
            std::vector<std::string> row{
                factor == 0.0 ? "off" : runner::fmt(factor, 1)};
            for (const char* scenario : {"VR_Gaming", "AR_Social"}) {
                const auto& cell = engine::cellAt(
                    group.cells, scenario, group.key, "DREAM-Settle",
                    {{"settle", factor}});
                row.push_back(runner::fmt(cell.uxCost.mean, 4));
            }
            t.addRow(row);
        }
        std::printf("== %s ==\n", group.key.c_str());
        t.print();
        std::printf("\n");
    }
    return 0;
}
