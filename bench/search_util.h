/**
 * @file
 * Shared helpers for the (alpha, beta) parameter-search benches
 * (Figures 3, 10, 11, 13): an evaluator that scores a parameter pair
 * by running a short simulation with fixed parameters, plus a grid
 * scan that locates the global optimum for comparison.
 */

#ifndef DREAM_BENCH_SEARCH_UTIL_H
#define DREAM_BENCH_SEARCH_UTIL_H

#include <vector>

#include "core/adaptivity.h"
#include "runner/experiment.h"

namespace dream {
namespace bench {

/** Window used for each parameter evaluation run. */
constexpr double kSearchWindowUs = 1e6;

/**
 * Cost function over (alpha, beta): UXCost (or another objective) of
 * a fixed-parameter DREAM run on (system, scenario).
 */
inline core::CostFn
makeEvaluator(const hw::SystemConfig& system,
              const workload::Scenario& scenario,
              metrics::Objective objective = metrics::Objective::UxCost,
              uint64_t seed = 11)
{
    return [&system, &scenario, objective, seed](double a, double b) {
        core::DreamConfig cfg = core::DreamConfig::fixedParams(a, b);
        cfg.smartDrop = true;
        core::DreamScheduler sched(cfg);
        const auto r = runner::runOnce(system, scenario, sched,
                                       kSearchWindowUs, seed);
        return metrics::evaluate(objective, r.stats);
    };
}

/** One grid point of the parameter-space scan. */
struct GridPoint {
    double alpha, beta, cost;
};

/** Scan [0,2]^2 on an n x n grid; returns points and the minimum. */
inline std::vector<GridPoint>
scanGrid(const core::CostFn& cost, int n, GridPoint* best_out)
{
    std::vector<GridPoint> points;
    GridPoint best{0, 0, 1e300};
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const double a = 2.0 * i / (n - 1);
            const double b = 2.0 * j / (n - 1);
            const double c = cost(a, b);
            points.push_back({a, b, c});
            if (c < best.cost)
                best = {a, b, c};
        }
    }
    if (best_out)
        *best_out = best;
    return points;
}

} // namespace bench
} // namespace dream

#endif // DREAM_BENCH_SEARCH_UTIL_H
