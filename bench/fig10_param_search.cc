/**
 * @file
 * Figure 10 reproduction: MapScore parameter search trajectories on
 * four workload-change cases in the 4K 1OS+2WS setting:
 *   (a) IDLE -> VR_Gaming    (random initial parameters)
 *   (b) IDLE -> AR_Call      (random initial parameters)
 *   (c) IDLE -> AR_Social    (random initial parameters)
 *   (d) VR_Gaming -> AR_Social (start from (a)'s locked parameters)
 * The paper reports convergence within 2% of the global optimum.
 *
 * Each case's 7x7 global-optimum reference grid runs through the
 * sweep engine (--jobs parallelises it, --out streams the rows; rows
 * are bit-identical for any --jobs value), and the search evaluates
 * each step's candidate batch on the same worker pool.
 */

#include <cstdio>
#include <map>
#include <memory>

#include "bench_main.h"
#include "engine/param_eval.h"
#include "engine/param_search.h"
#include "runner/table.h"

using namespace dream;

namespace {

struct Case {
    const char* name;
    workload::ScenarioPreset preset;
    double a0, b0;
};

} // namespace

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const auto sys_preset = hw::SystemPreset::Sys4k1Os2Ws;
    const auto system = hw::makeSystem(sys_preset);

    // "Random" boot-time initial points (fixed for reproducibility).
    Case cases[] = {
        {"(a) IDLE->VR_Gaming", workload::ScenarioPreset::VrGaming,
         1.73, 0.31},
        {"(b) IDLE->AR_Call", workload::ScenarioPreset::ArCall, 0.17,
         1.61},
        {"(c) IDLE->AR_Social", workload::ScenarioPreset::ArSocial,
         1.21, 1.87},
        {"(d) VR_Gaming->AR_Social",
         workload::ScenarioPreset::ArSocial, 0.0, 0.0},
    };

    engine::WorkerPool pool(opts.jobs);
    auto file_sink = bench::makeFileSink(opts);

    // --list / --filter / --shard / --chunk address the per-case 7x7
    // reference grids. Row indices offset per grid (the scan order
    // below) so the --out file stays merge-ably ordered; --chunk
    // positions run globally across the grids via the Options
    // cursor.
    if (opts.list || opts.subsetRun()) {
        size_t next_base = 0;
        for (const auto preset : {workload::ScenarioPreset::VrGaming,
                                  workload::ScenarioPreset::ArCall,
                                  workload::ScenarioPreset::ArSocial}) {
            const auto grid =
                engine::paramSpaceGrid(sys_preset, preset, 7);
            bench::runOrList(opts, grid, file_sink.get(),
                             workload::toString(preset).c_str(),
                             next_base);
            next_base += grid.size();
        }
        return 0;
    }

    // Cases (c) and (d) share the AR_Social reference grid: scan each
    // preset once and reuse (also keeps --out free of duplicate rows).
    // The memoized searcher is shared per preset too — case (d)
    // re-walks AR_Social terrain case (c) already simulated, so its
    // overlapping candidates come out of the transposition table.
    std::map<workload::ScenarioPreset, engine::ParamOptimum> optima;
    std::map<workload::ScenarioPreset, workload::Scenario> scenarios;
    std::map<workload::ScenarioPreset,
             std::unique_ptr<engine::ParamSearch>>
        searchers;
    size_t next_base = 0;

    double locked_a = 1.0, locked_b = 1.0;
    for (auto& c : cases) {
        if (scenarios.find(c.preset) == scenarios.end())
            scenarios.emplace(c.preset,
                              workload::makeScenario(c.preset));
        const auto& scenario = scenarios.at(c.preset);

        if (std::string(c.name).find("(d)") == 0) {
            // Case (d) starts from the parameters case (a) locked.
            c.a0 = locked_a;
            c.b0 = locked_b;
        }

        if (optima.find(c.preset) == optima.end()) {
            const auto grid =
                engine::paramSpaceGrid(sys_preset, c.preset, 7);
            engine::ReindexSink shifted(file_sink.get(), next_base);
            // Recorded trace metadata carries the same global row
            // index the --out CSV does.
            auto eopts = bench::engineOptions(opts);
            eopts.traceIndexBase = next_base;
            next_base += grid.size();
            const auto records = engine::Engine(eopts).run(
                grid, bench::sinkList({&shifted}));
            optima[c.preset] = engine::bestParams(records);
        }
        const auto best = optima[c.preset];

        if (searchers.find(c.preset) == searchers.end())
            searchers.emplace(
                c.preset, std::make_unique<engine::ParamSearch>(
                              system, scenario, pool));
        engine::ParamSearch& search = *searchers.at(c.preset);
        const auto result = search.optimize(c.a0, c.b0);
        if (std::string(c.name).find("(a)") == 0) {
            locked_a = result.alpha;
            locked_b = result.beta;
        }

        std::printf("== Figure 10 %s on %s ==\n", c.name,
                    system.name.c_str());
        runner::Table t({"Step", "alpha", "beta", "UXCost",
                         "gap to optimum"});
        for (const auto& s : result.trajectory) {
            t.addRow({std::to_string(s.step), runner::fmt(s.alpha, 3),
                      runner::fmt(s.beta, 3), runner::fmt(s.cost, 4),
                      runner::fmtPct(s.cost / best.cost - 1.0)});
        }
        t.print();
        std::printf("grid optimum %.4f at (%.2f, %.2f); search "
                    "reached %.4f (gap %s)\n",
                    best.cost, best.alpha, best.beta, result.cost,
                    runner::fmtPct(result.cost / best.cost - 1.0)
                        .c_str());
        std::printf("search evaluations: %d (simulated %d, "
                    "transposition hits %d)\n\n",
                    result.evaluations, result.simulated,
                    result.memoHits);
    }
    std::printf("paper: converges within 2%% of the global optimum "
                "across workload-change cases\n");
    return 0;
}
