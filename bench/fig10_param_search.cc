/**
 * @file
 * Figure 10 reproduction: MapScore parameter search trajectories on
 * four workload-change cases in the 4K 1OS+2WS setting:
 *   (a) IDLE -> VR_Gaming    (random initial parameters)
 *   (b) IDLE -> AR_Call      (random initial parameters)
 *   (c) IDLE -> AR_Social    (random initial parameters)
 *   (d) VR_Gaming -> AR_Social (start from (a)'s locked parameters)
 * The paper reports convergence within 2% of the global optimum.
 */

#include <cstdio>

#include "runner/table.h"
#include "search_util.h"

using namespace dream;

namespace {

struct Case {
    const char* name;
    workload::ScenarioPreset preset;
    double a0, b0;
};

} // namespace

int
main()
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);

    // "Random" boot-time initial points (fixed for reproducibility).
    Case cases[] = {
        {"(a) IDLE->VR_Gaming", workload::ScenarioPreset::VrGaming,
         1.73, 0.31},
        {"(b) IDLE->AR_Call", workload::ScenarioPreset::ArCall, 0.17,
         1.61},
        {"(c) IDLE->AR_Social", workload::ScenarioPreset::ArSocial,
         1.21, 1.87},
        {"(d) VR_Gaming->AR_Social",
         workload::ScenarioPreset::ArSocial, 0.0, 0.0},
    };

    double locked_a = 1.0, locked_b = 1.0;
    for (auto& c : cases) {
        const auto scenario = workload::makeScenario(c.preset);
        const auto eval = bench::makeEvaluator(system, scenario);

        if (std::string(c.name).find("(d)") == 0) {
            // Case (d) starts from the parameters case (a) locked.
            c.a0 = locked_a;
            c.b0 = locked_b;
        }

        bench::GridPoint best{};
        bench::scanGrid(eval, 7, &best);

        core::ParamSearch search(0.5, 0.05, 0.0, 2.0);
        const auto result = search.optimize(eval, c.a0, c.b0);
        if (std::string(c.name).find("(a)") == 0) {
            locked_a = result.alpha;
            locked_b = result.beta;
        }

        std::printf("== Figure 10 %s on %s ==\n", c.name,
                    system.name.c_str());
        runner::Table t({"Step", "alpha", "beta", "UXCost",
                         "gap to optimum"});
        for (const auto& s : result.trajectory) {
            t.addRow({std::to_string(s.step), runner::fmt(s.alpha, 3),
                      runner::fmt(s.beta, 3), runner::fmt(s.cost, 4),
                      runner::fmtPct(s.cost / best.cost - 1.0)});
        }
        t.print();
        std::printf("grid optimum %.4f at (%.2f, %.2f); search "
                    "reached %.4f (gap %s)\n\n",
                    best.cost, best.alpha, best.beta, result.cost,
                    runner::fmtPct(result.cost / best.cost - 1.0)
                        .c_str());
    }
    std::printf("paper: converges within 2%% of the global optimum "
                "across workload-change cases\n");
    return 0;
}
