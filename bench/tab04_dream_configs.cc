/**
 * @file
 * Table 4 reproduction (DREAM configuration variants) plus the
 * Table 1 / Table 5 qualitative capability matrix of all implemented
 * schedulers, extended with a measured column per Table 4 row: each
 * configuration's UXCost on VR_Gaming through one engine sweep.
 */

#include <cstdio>
#include <vector>

#include "bench_main.h"
#include "core/dream_config.h"
#include "engine/engine.h"
#include "runner/experiment.h"
#include "runner/table.h"
#include "sched/traits.h"

using namespace dream;

namespace {

const char*
mark(bool b)
{
    return b ? "yes" : "-";
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opts = bench::parseArgs(argc, argv);
    const runner::SchedKind variants[] = {
        runner::SchedKind::DreamMapScore,
        runner::SchedKind::DreamSmartDrop,
        runner::SchedKind::DreamFull};

    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::VrGaming)
        .addSystem(hw::SystemPreset::Sys4k1Ws2Os);
    for (const auto kind : variants)
        grid.addScheduler(kind);
    grid.seeds(runner::defaultSeeds()).window(runner::kDefaultWindowUs);

    auto file_sink = bench::makeFileSink(opts);
    if (!bench::runOrList(opts, grid, file_sink.get()))
        return 0;

    engine::AggregateSink agg;
    engine::Engine eng(bench::engineOptions(opts));
    eng.run(grid, bench::sinkList({&agg, file_sink.get()}));
    const auto cells = agg.cells();

    std::printf("Table 4: DREAM configurations used in the "
                "evaluation\n(measured column: VR_Gaming on %s, mean "
                "across seeds)\n\n",
                hw::toString(hw::SystemPreset::Sys4k1Ws2Os).c_str());
    runner::Table t4({"Configuration", "Param optimisation",
                      "Smart frame drop", "Supernet switching",
                      "UXCost"});
    const struct {
        runner::SchedKind kind;
        core::DreamConfig cfg;
    } rows[] = {
        {runner::SchedKind::DreamMapScore,
         core::DreamConfig::mapScore()},
        {runner::SchedKind::DreamSmartDrop,
         core::DreamConfig::smartDropConfig()},
        {runner::SchedKind::DreamFull, core::DreamConfig::full()},
    };
    for (const auto& r : rows) {
        const auto& cell = engine::cellAt(
            cells, "VR_Gaming",
            hw::toString(hw::SystemPreset::Sys4k1Ws2Os),
            runner::toString(r.kind));
        t4.addRow({runner::toString(r.kind),
                   mark(r.cfg.paramOptimization), mark(r.cfg.smartDrop),
                   mark(r.cfg.supernetSwitch),
                   runner::fmt(cell.uxCost.mean, 4)});
    }
    t4.print();

    std::printf("\nTables 1/5: RTMM challenge coverage per "
                "scheduler\n\n");
    runner::Table t1({"Scheduler", "Cascade", "Concurrent",
                      "Real-time", "Task dyn.", "Model dyn.", "Energy",
                      "Heterogeneity"});
    for (const auto& tr : sched::allSchedulerTraits()) {
        t1.addRow({tr.name, mark(tr.cascade), mark(tr.concurrent),
                   mark(tr.realTime), mark(tr.taskDynamicity),
                   mark(tr.modelDynamicity), mark(tr.energy),
                   mark(tr.heterogeneity)});
    }
    t1.print();
    return 0;
}
