/**
 * @file
 * Table 4 reproduction (DREAM configuration variants) plus the
 * Table 1 / Table 5 qualitative capability matrix of all implemented
 * schedulers.
 */

#include <cstdio>

#include "core/dream_config.h"
#include "runner/table.h"
#include "sched/traits.h"

using namespace dream;

namespace {

const char*
mark(bool b)
{
    return b ? "yes" : "-";
}

} // namespace

int
main()
{
    std::printf("Table 4: DREAM configurations used in the "
                "evaluation\n\n");
    runner::Table t4({"Configuration", "Param optimisation",
                      "Smart frame drop", "Supernet switching"});
    const struct {
        const char* name;
        core::DreamConfig cfg;
    } rows[] = {
        {"DREAM-MapScore", core::DreamConfig::mapScore()},
        {"DREAM-SmartDrop", core::DreamConfig::smartDropConfig()},
        {"DREAM-Full", core::DreamConfig::full()},
    };
    for (const auto& r : rows) {
        t4.addRow({r.name, mark(r.cfg.paramOptimization),
                   mark(r.cfg.smartDrop), mark(r.cfg.supernetSwitch)});
    }
    t4.print();

    std::printf("\nTables 1/5: RTMM challenge coverage per "
                "scheduler\n\n");
    runner::Table t1({"Scheduler", "Cascade", "Concurrent",
                      "Real-time", "Task dyn.", "Model dyn.", "Energy",
                      "Heterogeneity"});
    for (const auto& tr : sched::allSchedulerTraits()) {
        t1.addRow({tr.name, mark(tr.cascade), mark(tr.concurrent),
                   mark(tr.realTime), mark(tr.taskDynamicity),
                   mark(tr.modelDynamicity), mark(tr.energy),
                   mark(tr.heterogeneity)});
    }
    t1.print();
    return 0;
}
