/**
 * @file
 * Multi-accelerator target-system descriptions, including the eight
 * Table 2 presets evaluated in the paper.
 */

#ifndef DREAM_HW_SYSTEM_H
#define DREAM_HW_SYSTEM_H

#include <cstdint>
#include <string>
#include <vector>

#include "hw/accelerator.h"

namespace dream {
namespace hw {

/** A complete target platform: a set of sub-accelerators. */
struct SystemConfig {
    /** Display name, e.g. "4K-1WS+2OS". */
    std::string name;
    /** Sub-accelerators in the system. */
    std::vector<AcceleratorConfig> accelerators;

    /** Total PE count across sub-accelerators. */
    uint32_t totalPes() const;
    /** Number of sub-accelerators. */
    size_t size() const { return accelerators.size(); }
    /** True if all sub-accelerators share one dataflow. */
    bool homogeneous() const;
};

/** Identifier for the eight Table 2 presets. */
enum class SystemPreset {
    Sys4k2Ws,       ///< 4K PEs: 2x WS (2K each)
    Sys4k2Os,       ///< 4K PEs: 2x OS (2K each)
    Sys4k1Ws2Os,    ///< 4K PEs: 1x WS (2K) + 2x OS (1K each)
    Sys4k1Os2Ws,    ///< 4K PEs: 1x OS (2K) + 2x WS (1K each)
    Sys8k2Ws,       ///< 8K PEs: 2x WS (4K each)
    Sys8k2Os,       ///< 8K PEs: 2x OS (4K each)
    Sys8k1Ws2Os,    ///< 8K PEs: 1x WS (4K) + 2x OS (2K each)
    Sys8k1Os2Ws,    ///< 8K PEs: 1x OS (4K) + 2x WS (2K each)
};

/** Build a preset system from Table 2 of the paper. */
SystemConfig makeSystem(SystemPreset preset);

/** All eight Table 2 presets, in Table 2 order. */
std::vector<SystemPreset> allSystemPresets();

/** The four 4K presets (used by Figure 2 and Figure 12). */
std::vector<SystemPreset> systemPresets4k();

/** The four heterogeneous presets (Figure 7). */
std::vector<SystemPreset> heterogeneousPresets();

/** The four homogeneous presets (Figure 8). */
std::vector<SystemPreset> homogeneousPresets();

/** Display name of a preset (matches SystemConfig::name). */
std::string toString(SystemPreset preset);

} // namespace hw
} // namespace dream

#endif // DREAM_HW_SYSTEM_H
