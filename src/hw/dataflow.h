/**
 * @file
 * Dataflow taxonomy for dense ML accelerators.
 *
 * DREAM's evaluation platforms (Table 2 of the paper) combine
 * weight-stationary (WS, NVDLA-inspired) and output-stationary
 * (OS, ShiDianNao-inspired) sub-accelerators. The dataflow determines
 * which on-chip reuse a layer enjoys and therefore both the sustained
 * PE utilisation and the DRAM traffic of the analytical cost model.
 */

#ifndef DREAM_HW_DATAFLOW_H
#define DREAM_HW_DATAFLOW_H

#include <string>

namespace dream {
namespace hw {

/** Accelerator dataflow style. */
enum class Dataflow {
    /** Weight-stationary (NVDLA-like): weights pinned in PE registers. */
    WeightStationary,
    /** Output-stationary (ShiDianNao-like): psums pinned in PE registers. */
    OutputStationary,
};

/** Short human-readable name ("WS" / "OS"). */
std::string toString(Dataflow df);

} // namespace hw
} // namespace dream

#endif // DREAM_HW_DATAFLOW_H
