#include "hw/dataflow.h"

namespace dream {
namespace hw {

std::string
toString(Dataflow df)
{
    switch (df) {
      case Dataflow::WeightStationary:
        return "WS";
      case Dataflow::OutputStationary:
        return "OS";
    }
    return "??";
}

} // namespace hw
} // namespace dream
