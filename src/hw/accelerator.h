/**
 * @file
 * Static description of one sub-accelerator in a DREAM target system.
 */

#ifndef DREAM_HW_ACCELERATOR_H
#define DREAM_HW_ACCELERATOR_H

#include <cstdint>
#include <string>

#include "hw/dataflow.h"

namespace dream {
namespace hw {

/**
 * Static configuration of one accelerator.
 *
 * All evaluated systems in the paper share the memory subsystem
 * parameters (8 MiB SRAM, 90 GB/s DRAM, 700 MHz); they differ in PE
 * count and dataflow. Accelerators are divisible into @ref numSlices
 * equal slices so that spatial-fission schedulers (Planaria) can
 * co-locate jobs; whole-accelerator schedulers allocate every slice.
 */
struct AcceleratorConfig {
    /** Display name, e.g. "WS-2K". */
    std::string name;
    /** Number of processing elements (MAC units). */
    uint32_t numPes = 2048;
    /** Dataflow style of this accelerator. */
    Dataflow dataflow = Dataflow::WeightStationary;
    /** On-chip shared SRAM in bytes (paper: 8 MiB). */
    uint64_t sramBytes = 8ull * 1024 * 1024;
    /** Off-chip DRAM bandwidth in GB/s (paper: 90 GB/s). */
    double dramGbps = 90.0;
    /** Clock frequency in MHz (paper: 700 MHz). */
    double clockMhz = 700.0;
    /**
     * Spatial partition granularity. A job occupies 1..numSlices
     * slices and sees a proportional share of the PEs and bandwidth.
     */
    uint32_t numSlices = 4;

    /** PEs available to a job holding @p slices slices. */
    uint32_t pesForSlices(uint32_t slices) const;
    /** DRAM bytes/us available to a job holding @p slices slices. */
    double bandwidthBytesPerUsForSlices(uint32_t slices) const;
    /** Clock period in microseconds. */
    double cyclesToUs(double cycles) const;
};

} // namespace hw
} // namespace dream

#endif // DREAM_HW_ACCELERATOR_H
