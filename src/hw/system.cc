#include "hw/system.h"

#include <cassert>

namespace dream {
namespace hw {

uint32_t
SystemConfig::totalPes() const
{
    uint32_t total = 0;
    for (const auto& acc : accelerators)
        total += acc.numPes;
    return total;
}

bool
SystemConfig::homogeneous() const
{
    if (accelerators.empty())
        return true;
    const Dataflow df = accelerators.front().dataflow;
    for (const auto& acc : accelerators) {
        if (acc.dataflow != df)
            return false;
    }
    return true;
}

namespace {

AcceleratorConfig
makeAccel(const std::string& name, uint32_t pes, Dataflow df)
{
    AcceleratorConfig acc;
    acc.name = name;
    acc.numPes = pes;
    acc.dataflow = df;
    return acc;
}

} // anonymous namespace

SystemConfig
makeSystem(SystemPreset preset)
{
    constexpr auto ws = Dataflow::WeightStationary;
    constexpr auto os = Dataflow::OutputStationary;
    SystemConfig sys;
    sys.name = toString(preset);
    switch (preset) {
      case SystemPreset::Sys4k2Ws:
        sys.accelerators = {makeAccel("WS0-2K", 2048, ws),
                            makeAccel("WS1-2K", 2048, ws)};
        break;
      case SystemPreset::Sys4k2Os:
        sys.accelerators = {makeAccel("OS0-2K", 2048, os),
                            makeAccel("OS1-2K", 2048, os)};
        break;
      case SystemPreset::Sys4k1Ws2Os:
        sys.accelerators = {makeAccel("WS0-2K", 2048, ws),
                            makeAccel("OS0-1K", 1024, os),
                            makeAccel("OS1-1K", 1024, os)};
        break;
      case SystemPreset::Sys4k1Os2Ws:
        sys.accelerators = {makeAccel("OS0-2K", 2048, os),
                            makeAccel("WS0-1K", 1024, ws),
                            makeAccel("WS1-1K", 1024, ws)};
        break;
      case SystemPreset::Sys8k2Ws:
        sys.accelerators = {makeAccel("WS0-4K", 4096, ws),
                            makeAccel("WS1-4K", 4096, ws)};
        break;
      case SystemPreset::Sys8k2Os:
        sys.accelerators = {makeAccel("OS0-4K", 4096, os),
                            makeAccel("OS1-4K", 4096, os)};
        break;
      case SystemPreset::Sys8k1Ws2Os:
        sys.accelerators = {makeAccel("WS0-4K", 4096, ws),
                            makeAccel("OS0-2K", 2048, os),
                            makeAccel("OS1-2K", 2048, os)};
        break;
      case SystemPreset::Sys8k1Os2Ws:
        sys.accelerators = {makeAccel("OS0-4K", 4096, os),
                            makeAccel("WS0-2K", 2048, ws),
                            makeAccel("WS1-2K", 2048, ws)};
        break;
    }
    assert(!sys.accelerators.empty());
    return sys;
}

std::vector<SystemPreset>
allSystemPresets()
{
    return {SystemPreset::Sys4k2Ws,    SystemPreset::Sys4k2Os,
            SystemPreset::Sys4k1Ws2Os, SystemPreset::Sys4k1Os2Ws,
            SystemPreset::Sys8k2Ws,    SystemPreset::Sys8k2Os,
            SystemPreset::Sys8k1Ws2Os, SystemPreset::Sys8k1Os2Ws};
}

std::vector<SystemPreset>
systemPresets4k()
{
    return {SystemPreset::Sys4k2Ws, SystemPreset::Sys4k2Os,
            SystemPreset::Sys4k1Ws2Os, SystemPreset::Sys4k1Os2Ws};
}

std::vector<SystemPreset>
heterogeneousPresets()
{
    return {SystemPreset::Sys4k1Ws2Os, SystemPreset::Sys4k1Os2Ws,
            SystemPreset::Sys8k1Ws2Os, SystemPreset::Sys8k1Os2Ws};
}

std::vector<SystemPreset>
homogeneousPresets()
{
    return {SystemPreset::Sys4k2Ws, SystemPreset::Sys4k2Os,
            SystemPreset::Sys8k2Ws, SystemPreset::Sys8k2Os};
}

std::string
toString(SystemPreset preset)
{
    switch (preset) {
      case SystemPreset::Sys4k2Ws:
        return "4K-2WS";
      case SystemPreset::Sys4k2Os:
        return "4K-2OS";
      case SystemPreset::Sys4k1Ws2Os:
        return "4K-1WS+2OS";
      case SystemPreset::Sys4k1Os2Ws:
        return "4K-1OS+2WS";
      case SystemPreset::Sys8k2Ws:
        return "8K-2WS";
      case SystemPreset::Sys8k2Os:
        return "8K-2OS";
      case SystemPreset::Sys8k1Ws2Os:
        return "8K-1WS+2OS";
      case SystemPreset::Sys8k1Os2Ws:
        return "8K-1OS+2WS";
    }
    return "unknown";
}

} // namespace hw
} // namespace dream
