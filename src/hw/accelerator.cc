#include "hw/accelerator.h"

#include <algorithm>
#include <cassert>

namespace dream {
namespace hw {

uint32_t
AcceleratorConfig::pesForSlices(uint32_t slices) const
{
    assert(slices >= 1 && slices <= numSlices);
    return std::max<uint32_t>(1, numPes * slices / numSlices);
}

double
AcceleratorConfig::bandwidthBytesPerUsForSlices(uint32_t slices) const
{
    assert(slices >= 1 && slices <= numSlices);
    // GB/s == bytes/ns * 1e3 == bytes/us * 1e3.
    const double total_bytes_per_us = dramGbps * 1e3;
    return total_bytes_per_us * slices / numSlices;
}

double
AcceleratorConfig::cyclesToUs(double cycles) const
{
    return cycles / clockMhz; // MHz == cycles/us
}

} // namespace hw
} // namespace dream
