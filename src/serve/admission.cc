#include "serve/admission.h"

#include <algorithm>
#include <stdexcept>

namespace dream {
namespace serve {

AdmissionController::AdmissionController(
    const AdmissionConfig& config,
    const workload::Scenario& scenario, const cost::CostTable& costs)
    : config_(config), costs_(&costs),
      capacity_(double(costs.system().accelerators.size()))
{
    if (capacity_ <= 0.0)
        throw std::invalid_argument(
            "admission control needs at least one accelerator");

    // Precompute each task's degraded path: the lightest Supernet
    // variant by MACs (ties keep the lower index — deterministic).
    degradePath_.resize(scenario.tasks.size());
    degradeLatencyUs_.assign(scenario.tasks.size(), 0.0);
    for (size_t t = 0; t < scenario.tasks.size(); ++t) {
        const models::Model& model = scenario.tasks[t].model;
        if (!model.isSupernet())
            continue;
        size_t best = 0;
        uint64_t best_macs = 0;
        for (size_t v = 1; v <= model.variants.size(); ++v) {
            const uint64_t macs =
                models::totalMacs(model.variantPath(v));
            if (best == 0 || macs < best_macs) {
                best = v;
                best_macs = macs;
            }
        }
        degradePath_[t] = model.variantPath(best);
        degradeLatencyUs_[t] = pathLatencyUs(degradePath_[t]);
    }
}

double
AdmissionController::pathLatencyUs(
    const std::vector<models::Layer>& path) const
{
    double total = 0.0;
    for (const auto& layer : path)
        total += costs_->minLatencyUs(layer);
    return total;
}

void
AdmissionController::advanceTo(double now_us)
{
    // Drain the projected backlog at aggregate service capacity over
    // the virtual time elapsed since the last update.
    if (now_us > lastNowUs_) {
        backlogUs_ = std::max(
            0.0, backlogUs_ - (now_us - lastNowUs_) * capacity_);
        lastNowUs_ = now_us;
    }
}

AdmissionDecision
AdmissionController::offer(workload::FrameSpec& frame, double now_us,
                           size_t queue_depth)
{
    advanceTo(now_us);
    stats_.offered += 1;

    // A full queue rejects outright: degrading shrinks work, not the
    // number of live frames.
    if (config_.maxQueueDepth > 0 &&
        queue_depth >= config_.maxQueueDepth) {
        stats_.rejected += 1;
        return AdmissionDecision::Reject;
    }

    const double cost = pathLatencyUs(frame.path);
    const bool fits = config_.maxBacklogUs <= 0.0 ||
                      backlogUs_ + cost <= config_.maxBacklogUs;
    if (fits) {
        stats_.admitted += 1;
        backlogUs_ += cost;
        return AdmissionDecision::Admit;
    }

    if (config_.policy == OverloadPolicy::Degrade &&
        !degradePath_[frame.task].empty()) {
        frame.path = degradePath_[frame.task];
        stats_.degraded += 1;
        backlogUs_ += degradeLatencyUs_[frame.task];
        return AdmissionDecision::Degrade;
    }

    stats_.rejected += 1;
    return AdmissionDecision::Reject;
}

} // namespace serve
} // namespace dream
