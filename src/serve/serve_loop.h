/**
 * @file
 * Event-driven serve loop: drives the simulator incrementally as
 * arrivals land on a StreamSource — no end-of-window barrier. Each
 * drained frame passes the admission gate, then the simulator is
 * advanced to its arrival time before the frame is offered, which
 * preserves the offline event order exactly: with admission disabled,
 * the final RunStats is bit-identical to Simulator::run() over the
 * same source. Rolling-window telemetry (p50/p99 latency,
 * SLO-violation/drop/reject rates) is reported at fixed virtual-time
 * intervals and published through obs::MetricsRegistry.
 *
 * The loop exposes two driving styles over one state machine:
 * run() serves a whole StreamSource to the window end, and the
 * incremental begin()/offer()/advanceTo()/finish() primitives let a
 * serve::Cluster drive N loops (one per device) in virtual-time lock
 * step. run() is implemented exactly on the primitives, so a cluster
 * of one device is the same computation as the single-device loop.
 */

#ifndef DREAM_SERVE_SERVE_LOOP_H
#define DREAM_SERVE_SERVE_LOOP_H

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "costmodel/cost_table.h"
#include "hw/system.h"
#include "obs/metrics.h"
#include "obs/rolling.h"
#include "obs/telemetry.h"
#include "serve/admission.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "workload/scenario.h"
#include "workload/stream_source.h"

namespace dream {
namespace serve {

struct ServeConfig {
    /** Execution window Texec in microseconds. */
    double windowUs = 2e6;
    /** Workload randomness seed (cascade children etc.). */
    uint64_t seed = 1;
    /** Virtual-time spacing of rolling reports (0 = final only). */
    double reportIntervalUs = 2e5;
    /** Span of the rolling telemetry windows. */
    double rollingSpanUs = 5e5;
    AdmissionConfig admission;
    /** Optional metrics registry for the canonical serve schema
     *  (src/obs/README.md) plus the simulator's own hooks. */
    obs::MetricsRegistry* metrics = nullptr;
    /** Optional stream for one human-readable line per report. */
    std::ostream* log = nullptr;
    /** Prefix of every published serve metric key. A cluster rewrites
     *  this to "serve/dev<k>/" per device so N loops sharing one
     *  registry never collide (src/obs/README.md). */
    std::string metricsPrefix = "serve/";
    /** Tag of per-report log lines ("[<label>] t=..."). */
    std::string logLabel = "serve";
    /** Attach the simulator's own metric hooks (frames/*, sim/*,
     *  accel/*) to @ref metrics. A cluster disables this for N > 1:
     *  those keys are not device-namespaced, and their gauges would
     *  be last-writer-wins across devices. */
    bool attachSimMetrics = true;
};

/** One rolling-telemetry report, taken at virtual time tUs. */
struct ServeSnapshot {
    double tUs = 0.0;
    size_t queueDepth = 0;     ///< live frames in the simulator
    uint64_t windowSamples = 0;  ///< completions in the rolling span
    double p50Us = 0.0;        ///< NaN when the span has no samples
    double p99Us = 0.0;        ///< NaN when the span has no samples
    double violationRate = 0.0;  ///< violations / outcomes in span
    double dropRate = 0.0;       ///< scheduler drops / outcomes
    double rejectRate = 0.0;     ///< admission rejects / offers
    double backlogUs = 0.0;      ///< admission backlog projection
};

struct ServeResult {
    sim::RunStats stats;
    AdmissionStats admission;
    std::vector<ServeSnapshot> snapshots;
};

/**
 * One serving session over one (system, scenario, cost table). The
 * loop consumes a StreamSource until it is closed and drained; a
 * producer thread may keep pushing while run() executes, and the
 * result is deterministic regardless of producer timing because all
 * decisions key off virtual arrival times.
 */
class ServeLoop : public obs::FrameOutcomeSink {
public:
    ServeLoop(const hw::SystemConfig& system,
              const workload::Scenario& scenario,
              const cost::CostTable& costs, ServeConfig config);

    /** Serve the stream to the window end under @p sched. */
    ServeResult run(sim::Scheduler& sched,
                    workload::StreamSource& stream);

    // ------------------------------------------- incremental API
    // run() is exactly begin() + offer() per drained frame +
    // finish(). A cluster interleaves the offers of N loops in
    // global arrival order; each loop's device sees the identical
    // event sequence a standalone run over its share would.

    /** Reset per-serve state, bind @p sched, and open the stream.
     *  @p arrivals materialises cascade children (and, for run(),
     *  supplies the root frames); it must outlive finish(). */
    void begin(sim::Scheduler& sched,
               const workload::ArrivalSource& arrivals);

    /** Advance to just short of the frame's arrival, gate it through
     *  admission, and offer it to the simulator. Frames must be
     *  offered in nondecreasing arrival order. */
    AdmissionDecision offer(workload::FrameSpec frame);

    /** Drive the event loop (and rolling reports) up to
     *  min(@p t_us, window). The clock never moves backwards. */
    void advanceTo(double t_us);

    /** Drain to the window end, take the final snapshot, publish
     *  metrics, and return the result. */
    ServeResult finish();

    /** Live load gauges a cluster dispatcher routes on — pure
     *  functions of virtual time. Advances the rolling windows (and
     *  the admission backlog projection) to @p t_us, which must be
     *  nondecreasing across calls. */
    struct Gauges {
        double backlogUs = 0.0;    ///< admission backlog projection
        size_t liveFrames = 0;     ///< frames live in the simulator
        double violationRate = 0.0;  ///< rolling SLO-violation rate
    };
    Gauges pollGauges(double t_us);

    /** FrameOutcomeSink: feeds the rolling windows. */
    void onFrameOutcome(const obs::FrameOutcome& outcome) override;

private:
    void advanceWithReports(double target_us);
    ServeSnapshot takeSnapshot(double t_us);
    void publishMetrics(const ServeResult& result, double wall_ms);

    const hw::SystemConfig& system_;
    const workload::Scenario& scenario_;
    const cost::CostTable& costs_;
    ServeConfig config_;

    // Per-serve state (reset by begin()).
    std::unique_ptr<sim::Simulator> sim_;
    std::unique_ptr<AdmissionController> admission_;
    /** Pass-through tally when the admission gate is disabled. */
    AdmissionStats tally_;
    obs::SimTelemetry telemetry_;
    std::chrono::steady_clock::time_point wall0_;
    obs::RollingQuantileWindow latency_;
    obs::RollingEventCounter outcomes_;
    obs::RollingEventCounter violations_;
    obs::RollingEventCounter drops_;
    obs::RollingEventCounter offers_;
    obs::RollingEventCounter rejects_;
    std::vector<ServeSnapshot> snapshots_;
    double nextReportUs_ = 0.0;
};

} // namespace serve
} // namespace dream

#endif // DREAM_SERVE_SERVE_LOOP_H
