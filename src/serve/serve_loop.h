/**
 * @file
 * Event-driven serve loop: drives the simulator incrementally as
 * arrivals land on a StreamSource — no end-of-window barrier. Each
 * drained frame passes the admission gate, then the simulator is
 * advanced to its arrival time before the frame is offered, which
 * preserves the offline event order exactly: with admission disabled,
 * the final RunStats is bit-identical to Simulator::run() over the
 * same source. Rolling-window telemetry (p50/p99 latency,
 * SLO-violation/drop/reject rates) is reported at fixed virtual-time
 * intervals and published through obs::MetricsRegistry.
 */

#ifndef DREAM_SERVE_SERVE_LOOP_H
#define DREAM_SERVE_SERVE_LOOP_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "costmodel/cost_table.h"
#include "hw/system.h"
#include "obs/metrics.h"
#include "obs/rolling.h"
#include "obs/telemetry.h"
#include "serve/admission.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "workload/scenario.h"
#include "workload/stream_source.h"

namespace dream {
namespace serve {

struct ServeConfig {
    /** Execution window Texec in microseconds. */
    double windowUs = 2e6;
    /** Workload randomness seed (cascade children etc.). */
    uint64_t seed = 1;
    /** Virtual-time spacing of rolling reports (0 = final only). */
    double reportIntervalUs = 2e5;
    /** Span of the rolling telemetry windows. */
    double rollingSpanUs = 5e5;
    AdmissionConfig admission;
    /** Optional metrics registry for the canonical serve schema
     *  (src/obs/README.md) plus the simulator's own hooks. */
    obs::MetricsRegistry* metrics = nullptr;
    /** Optional stream for one human-readable line per report. */
    std::ostream* log = nullptr;
};

/** One rolling-telemetry report, taken at virtual time tUs. */
struct ServeSnapshot {
    double tUs = 0.0;
    size_t queueDepth = 0;     ///< live frames in the simulator
    uint64_t windowSamples = 0;  ///< completions in the rolling span
    double p50Us = 0.0;        ///< NaN when the span has no samples
    double p99Us = 0.0;        ///< NaN when the span has no samples
    double violationRate = 0.0;  ///< violations / outcomes in span
    double dropRate = 0.0;       ///< scheduler drops / outcomes
    double rejectRate = 0.0;     ///< admission rejects / offers
    double backlogUs = 0.0;      ///< admission backlog projection
};

struct ServeResult {
    sim::RunStats stats;
    AdmissionStats admission;
    std::vector<ServeSnapshot> snapshots;
};

/**
 * One serving session over one (system, scenario, cost table). The
 * loop consumes a StreamSource until it is closed and drained; a
 * producer thread may keep pushing while run() executes, and the
 * result is deterministic regardless of producer timing because all
 * decisions key off virtual arrival times.
 */
class ServeLoop : public obs::FrameOutcomeSink {
public:
    ServeLoop(const hw::SystemConfig& system,
              const workload::Scenario& scenario,
              const cost::CostTable& costs, ServeConfig config);

    /** Serve the stream to the window end under @p sched. */
    ServeResult run(sim::Scheduler& sched,
                    workload::StreamSource& stream);

    /** FrameOutcomeSink: feeds the rolling windows. */
    void onFrameOutcome(const obs::FrameOutcome& outcome) override;

private:
    void advanceWithReports(sim::Simulator& sim,
                            AdmissionController* admission,
                            double target_us);
    ServeSnapshot takeSnapshot(sim::Simulator& sim,
                               AdmissionController* admission,
                               double t_us);
    void publishMetrics(const ServeResult& result, double wall_ms);

    const hw::SystemConfig& system_;
    const workload::Scenario& scenario_;
    const cost::CostTable& costs_;
    ServeConfig config_;

    // Per-run rolling state (reset by run()).
    obs::RollingQuantileWindow latency_;
    obs::RollingEventCounter outcomes_;
    obs::RollingEventCounter violations_;
    obs::RollingEventCounter drops_;
    obs::RollingEventCounter offers_;
    obs::RollingEventCounter rejects_;
    std::vector<ServeSnapshot> snapshots_;
    double nextReportUs_ = 0.0;
};

} // namespace serve
} // namespace dream

#endif // DREAM_SERVE_SERVE_LOOP_H
