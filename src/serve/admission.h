/**
 * @file
 * Online admission control for serve mode: a bounded ingest gate in
 * front of the simulator. Each offered frame is either admitted,
 * admitted on a degraded (lightest Supernet variant) path, or
 * rejected, based on the live queue depth and a projected-backlog
 * estimate derived from the cost table's best-case path latencies.
 */

#ifndef DREAM_SERVE_ADMISSION_H
#define DREAM_SERVE_ADMISSION_H

#include <cstdint>
#include <vector>

#include "costmodel/cost_table.h"
#include "workload/frame_source.h"
#include "workload/scenario.h"

namespace dream {
namespace serve {

/** What to do with an arrival that would overload the system. */
enum class OverloadPolicy {
    /** Drop the frame at the door (never enters the simulator). */
    Reject,
    /**
     * Re-materialise the frame on its model's lightest Supernet
     * variant path; tasks without variants fall back to Reject.
     */
    Degrade,
};

struct AdmissionConfig {
    /** Reject when this many frames are live (0 = unbounded). */
    size_t maxQueueDepth = 0;
    /** Reject/degrade when the projected backlog would exceed this
     *  many microseconds of best-case work (0 = unbounded). */
    double maxBacklogUs = 0.0;
    OverloadPolicy policy = OverloadPolicy::Reject;

    /** True when any bound is active. */
    bool
    enabled() const
    {
        return maxQueueDepth > 0 || maxBacklogUs > 0.0;
    }
};

enum class AdmissionDecision { Admit, Degrade, Reject };

struct AdmissionStats {
    uint64_t offered = 0;
    uint64_t admitted = 0;  ///< admitted on the original path
    uint64_t degraded = 0;  ///< admitted on the degraded path
    uint64_t rejected = 0;
};

/**
 * The admission gate. Deterministic: decisions depend only on the
 * offered frame sequence, the queue depths the caller reports, and
 * the frozen cost table — never on wall time.
 *
 * The backlog model is intentionally simple (the gate must be cheap):
 * admitting a frame adds its best-case path latency, and the backlog
 * drains at the aggregate service rate (numAccels microseconds of
 * work per microsecond of virtual time). Cascade children admitted
 * inside the simulator bypass the gate — admission governs ingest,
 * dependent pipeline stages ride on their parent's admission.
 */
class AdmissionController {
public:
    AdmissionController(const AdmissionConfig& config,
                        const workload::Scenario& scenario,
                        const cost::CostTable& costs);

    /**
     * Decide one arrival at virtual time @p now_us with
     * @p queue_depth frames live in the simulator. On Degrade the
     * frame's path is replaced in place. Frames must be offered in
     * nondecreasing time order.
     */
    AdmissionDecision offer(workload::FrameSpec& frame, double now_us,
                            size_t queue_depth);

    /** Drain the backlog projection to @p now_us without deciding a
     *  frame (telemetry snapshots between arrivals). */
    void advanceTo(double now_us);

    /** Best-case work admitted but not yet projected-drained (us). */
    double backlogUs() const { return backlogUs_; }

    const AdmissionStats& stats() const { return stats_; }

private:
    double pathLatencyUs(
        const std::vector<models::Layer>& path) const;

    AdmissionConfig config_;
    const cost::CostTable* costs_;
    double capacity_;  ///< us of work drained per us (numAccels)
    /** Per task: the lightest Supernet variant path (empty when the
     *  task's model has no variants) and its best-case latency. */
    std::vector<std::vector<models::Layer>> degradePath_;
    std::vector<double> degradeLatencyUs_;
    double backlogUs_ = 0.0;
    double lastNowUs_ = 0.0;
    AdmissionStats stats_;
};

} // namespace serve
} // namespace dream

#endif // DREAM_SERVE_ADMISSION_H
