/**
 * @file
 * Cluster session router: decides which of N per-device DREAM
 * instances an arriving session (one root task and every cascade
 * descendant it triggers) is served on. Three pluggable policies:
 *
 *   round_robin            sessions cycle through devices in arrival
 *                          order;
 *   least_loaded           the device with the smallest projected
 *                          backlog (admission backlog + the best-case
 *                          work its committed sessions still have in
 *                          the window);
 *   finish_time_fairness   Shockwave-style: pick the device that
 *                          minimizes the worst ratio of projected
 *                          shared finish time to a session's ideal
 *                          isolated finish time, inflated by the
 *                          device's rolling SLO-violation rate.
 *
 * The determinism contract (ARCHITECTURE.md invariant 7): every
 * decision is a pure function of virtual time, the session's spec
 * (costed on the frozen table), and gauges that are themselves pure
 * functions of virtual time — never wall clock, thread timing or
 * RNG. A cluster run therefore replays bit-for-bit.
 */

#ifndef DREAM_SERVE_DISPATCHER_H
#define DREAM_SERVE_DISPATCHER_H

#include <cstddef>
#include <string>
#include <vector>

#include "costmodel/cost_table.h"
#include "workload/scenario.h"

namespace dream {
namespace serve {

enum class RouterPolicy {
    RoundRobin,
    LeastLoaded,
    FinishTimeFairness,
};

/** CLI name: "round_robin", "least_loaded", "finish_time_fairness". */
std::string toString(RouterPolicy policy);

/** Parse a CLI name; returns false on an unknown one. */
bool parseRouterPolicy(const std::string& name, RouterPolicy* out);

/** All policies, in a fixed comparison order. */
std::vector<RouterPolicy> allRouterPolicies();

/** Per-device live load, read from ServeLoop::pollGauges at the
 *  routing instant (all values are functions of virtual time). */
struct DeviceGauges {
    double backlogUs = 0.0;    ///< admission backlog projection (us)
    size_t liveFrames = 0;     ///< frames live in the device's sim
    double violationRate = 0.0;  ///< rolling SLO-violation rate
};

/**
 * The router. Stateful only in deterministic ways: the round-robin
 * cursor and the committed-session table advance once per routed
 * session, in arrival order.
 */
class Dispatcher {
public:
    Dispatcher(RouterPolicy policy, size_t devices,
               const workload::Scenario& scenario,
               const cost::CostTable& costs, double window_us);

    RouterPolicy policy() const { return policy_; }

    /**
     * Route the session of root task @p session arriving at
     * @p now_us. @p gauges must have one entry per device (it may be
     * empty for a single-device cluster, where the answer is always
     * 0). Records the assignment, so each session is routed once.
     */
    size_t route(workload::TaskId session, double now_us,
                 const std::vector<DeviceGauges>& gauges);

    /**
     * Expected best-case work of one frame of @p task in
     * microseconds of accelerator time: its model's default path on
     * the fastest accelerator per layer, plus the trigger-probability
     * weighted work of its cascade descendants.
     */
    double expectedFrameWorkUs(workload::TaskId task) const;

    /** Best-case service demand @p session still generates in
     *  [now_us, window): frame rate x expected per-frame work. */
    double remainingDemandUs(workload::TaskId session,
                             double now_us) const;

private:
    double sharedFinishUs(size_t device, double committed_us,
                          const DeviceGauges& gauge) const;

    RouterPolicy policy_;
    size_t devices_;
    const workload::Scenario* scenario_;
    double windowUs_;
    /** Aggregate drain rate: microseconds of best-case work retired
     *  per microsecond of virtual time (= accelerator count), the
     *  same capacity model as serve::AdmissionController. */
    double capacityUs_;
    /** Per task: expected per-frame work including descendants. */
    std::vector<double> frameWorkUs_;
    /** Committed sessions per device, in assignment order. */
    std::vector<std::vector<workload::TaskId>> assigned_;
    /** Per session: ideal isolated finish time recorded at
     *  assignment (Shockwave's denominator), us. */
    std::vector<double> isoFinishUs_;
    size_t nextRoundRobin_ = 0;
};

} // namespace serve
} // namespace dream

#endif // DREAM_SERVE_DISPATCHER_H
