#include "serve/dispatcher.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

namespace dream {
namespace serve {

std::string
toString(RouterPolicy policy)
{
    switch (policy) {
    case RouterPolicy::RoundRobin: return "round_robin";
    case RouterPolicy::LeastLoaded: return "least_loaded";
    case RouterPolicy::FinishTimeFairness:
        return "finish_time_fairness";
    }
    return "?";
}

bool
parseRouterPolicy(const std::string& name, RouterPolicy* out)
{
    for (const RouterPolicy policy : allRouterPolicies()) {
        if (name == toString(policy)) {
            if (out)
                *out = policy;
            return true;
        }
    }
    return false;
}

std::vector<RouterPolicy>
allRouterPolicies()
{
    return {RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
            RouterPolicy::FinishTimeFairness};
}

Dispatcher::Dispatcher(RouterPolicy policy, size_t devices,
                       const workload::Scenario& scenario,
                       const cost::CostTable& costs, double window_us)
    : policy_(policy), devices_(devices), scenario_(&scenario),
      windowUs_(window_us),
      capacityUs_(double(costs.system().accelerators.size())),
      assigned_(devices)
{
    if (devices_ == 0)
        throw std::invalid_argument(
            "Dispatcher needs at least one device");
    if (capacityUs_ <= 0.0)
        throw std::invalid_argument(
            "Dispatcher needs at least one accelerator per device");

    // Per-task best-case work of one frame: the default-path layers
    // on the fastest accelerator each, plus the trigger-probability
    // weighted expected work of the cascade descendants — the same
    // cost vocabulary as the admission gate's backlog model. Tasks
    // form a forest, so children have larger indices than their
    // roots only by construction of the generators; recurse via
    // childrenOf instead of assuming an order.
    const size_t n_tasks = scenario.tasks.size();
    std::vector<double> own(n_tasks, 0.0);
    for (size_t t = 0; t < n_tasks; ++t) {
        for (const auto& layer : scenario.tasks[t].model.layers)
            own[t] += costs.minLatencyUs(layer);
    }
    frameWorkUs_.assign(n_tasks, -1.0);
    // Iterative post-order over the dependency forest (memoized).
    const std::function<double(workload::TaskId)> expected =
        [&](workload::TaskId task) -> double {
        double& memo = frameWorkUs_[size_t(task)];
        if (memo >= 0.0)
            return memo;
        double work = own[size_t(task)];
        for (const workload::TaskId child :
             scenario.childrenOf(task)) {
            work += scenario.tasks[size_t(child)].triggerProb *
                    expected(child);
        }
        memo = work;
        return work;
    };
    for (size_t t = 0; t < n_tasks; ++t)
        expected(workload::TaskId(t));
    isoFinishUs_.assign(n_tasks, 0.0);
}

double
Dispatcher::expectedFrameWorkUs(workload::TaskId task) const
{
    return frameWorkUs_[size_t(task)];
}

double
Dispatcher::remainingDemandUs(workload::TaskId session,
                              double now_us) const
{
    const workload::TaskSpec& spec =
        scenario_->tasks[size_t(session)];
    const double until = std::min(windowUs_, spec.endUs);
    const double from = std::max(now_us, spec.startUs);
    const double span = std::max(0.0, until - from);
    return span / spec.periodUs() * frameWorkUs_[size_t(session)];
}

double
Dispatcher::sharedFinishUs(size_t device, double committed_us,
                           const DeviceGauges& gauge) const
{
    (void)device;
    return (gauge.backlogUs + committed_us) / capacityUs_;
}

size_t
Dispatcher::route(workload::TaskId session, double now_us,
                  const std::vector<DeviceGauges>& gauges)
{
    if (session < 0 || size_t(session) >= frameWorkUs_.size())
        throw std::invalid_argument(
            "Dispatcher: session id out of range");

    size_t device = 0;
    if (devices_ > 1) {
        static const DeviceGauges kNoGauges;
        const auto gauge = [&](size_t d) -> const DeviceGauges& {
            return d < gauges.size() ? gauges[d] : kNoGauges;
        };
        switch (policy_) {
        case RouterPolicy::RoundRobin:
            device = nextRoundRobin_++ % devices_;
            break;
        case RouterPolicy::LeastLoaded: {
            // Projected backlog: the admission gate's live backlog
            // plus the best-case work the device's committed
            // sessions still generate this window. Ties keep the
            // lower index — deterministic.
            double best = std::numeric_limits<double>::infinity();
            for (size_t d = 0; d < devices_; ++d) {
                double committed = gauge(d).backlogUs;
                for (const workload::TaskId s : assigned_[d])
                    committed += remainingDemandUs(s, now_us);
                if (committed < best) {
                    best = committed;
                    device = d;
                }
            }
            break;
        }
        case RouterPolicy::FinishTimeFairness: {
            // Shockwave-style greedy with a load guardrail. Pass 1
            // projects every device's shared finish time (admission
            // backlog + committed best-case demand + the new
            // session, over capacity), inflated by the device's
            // rolling SLO-violation rate — live telemetry closing
            // the loop on queueing the linear model misses. Pass 2
            // considers only devices within kLoadSlack of the
            // lightest projection and, among those, minimises the
            // device's worst post-placement finish-time-fairness
            // ratio (projected shared finish over the smallest
            // isolated finish recorded at assignment). The
            // guardrail matters: unconstrained worst-ratio greedy
            // co-locates heavy sessions (stacking heavies never
            // hurts the worst ratio as much as slowing a light
            // session), and the deadline-driven devices punish that
            // with queueing blowup the fractional-sharing model
            // never sees.
            const double demand_new = std::max(
                remainingDemandUs(session, now_us),
                frameWorkUs_[size_t(session)]);
            const double iso_new =
                std::max(demand_new / capacityUs_, 1e-9);
            std::vector<double> shared(devices_, 0.0);
            std::vector<double> iso_min(devices_, iso_new);
            double lightest =
                std::numeric_limits<double>::infinity();
            for (size_t d = 0; d < devices_; ++d) {
                double committed = demand_new;
                for (const workload::TaskId s : assigned_[d]) {
                    committed += remainingDemandUs(s, now_us);
                    iso_min[d] = std::min(iso_min[d],
                                          isoFinishUs_[size_t(s)]);
                }
                shared[d] = (1.0 + gauge(d).violationRate) *
                            sharedFinishUs(d, committed, gauge(d));
                lightest = std::min(lightest, shared[d]);
            }
            constexpr double kLoadSlack = 1.25;
            double best = std::numeric_limits<double>::infinity();
            for (size_t d = 0; d < devices_; ++d) {
                if (shared[d] > lightest * kLoadSlack)
                    continue;
                const double rho = shared[d] / iso_min[d];
                if (rho < best) {
                    best = rho;
                    device = d;
                }
            }
            isoFinishUs_[size_t(session)] = iso_new;
            break;
        }
        }
    } else if (policy_ == RouterPolicy::RoundRobin) {
        nextRoundRobin_++;
    }

    if (policy_ == RouterPolicy::FinishTimeFairness &&
        isoFinishUs_[size_t(session)] <= 0.0) {
        // Single-device clusters skip the scoring loop above but the
        // denominator must still be recorded once per session.
        isoFinishUs_[size_t(session)] = std::max(
            std::max(remainingDemandUs(session, now_us),
                     frameWorkUs_[size_t(session)]) /
                capacityUs_,
            1e-9);
    }
    assigned_[device].push_back(session);
    return device;
}

} // namespace serve
} // namespace dream
