#include "serve/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "workload/session_demux.h"

namespace dream {
namespace serve {

Cluster::Cluster(const hw::SystemConfig& system,
                 const workload::Scenario& scenario,
                 const cost::CostTable& costs, ClusterConfig config)
    : system_(system), scenario_(scenario), costs_(costs),
      config_(std::move(config))
{
    if (config_.devices == 0)
        throw std::invalid_argument(
            "Cluster needs at least one device");
    idealFrameUs_.assign(scenario.tasks.size(), 0.0);
    for (size_t t = 0; t < scenario.tasks.size(); ++t) {
        for (const auto& layer : scenario.tasks[t].model.layers)
            idealFrameUs_[t] += costs.minLatencyUs(layer);
    }
}

ClusterResult
Cluster::run(const SchedulerFactory& make_scheduler,
             workload::StreamSource& intake)
{
    const size_t n = config_.devices;

    std::vector<std::unique_ptr<sim::Scheduler>> scheds;
    std::vector<std::unique_ptr<ServeLoop>> loops;
    scheds.reserve(n);
    loops.reserve(n);
    for (size_t k = 0; k < n; ++k) {
        ServeConfig device_config = config_.serve;
        if (n > 1) {
            const std::string dev = "dev" + std::to_string(k);
            device_config.metricsPrefix += dev + "/";
            device_config.logLabel += "/" + dev;
            // The simulator's own metric keys (frames/*, sim/*,
            // accel/*) are not device-namespaced; their gauges would
            // be last-writer-wins across N simulators.
            device_config.attachSimMetrics = false;
        }
        loops.push_back(std::make_unique<ServeLoop>(
            system_, scenario_, costs_, device_config));
        scheds.push_back(make_scheduler());
        if (!scheds.back())
            throw std::invalid_argument(
                "Cluster: scheduler factory returned null");
    }

    workload::SessionDemux demux(intake, n);
    Dispatcher dispatcher(config_.router, n, scenario_, costs_,
                          config_.serve.windowUs);
    for (size_t k = 0; k < n; ++k)
        loops[k]->begin(*scheds[k], demux.stream(k));

    std::vector<DeviceGauges> gauges(n);
    while (true) {
        auto batch = intake.waitDrain();
        if (batch.empty())
            break; // closed and drained — end of the intake stream
        for (auto& frame : batch) {
            const double t_route = frame.arrivalUs - 1e-9;
            // Lock step: every device reaches the routing instant
            // before the decision reads any gauge, so the decision
            // depends only on virtual time. The 1e-9 margin is the
            // event loop's grouping epsilon (serve_loop.cc).
            for (size_t k = 0; k < n; ++k)
                loops[k]->advanceTo(t_route);
            size_t device;
            const int pinned = demux.assignment(frame.task);
            if (pinned >= 0) {
                device = size_t(pinned);
            } else {
                if (n > 1) {
                    for (size_t k = 0; k < n; ++k) {
                        const ServeLoop::Gauges g =
                            loops[k]->pollGauges(t_route);
                        gauges[k].backlogUs = g.backlogUs;
                        gauges[k].liveFrames = g.liveFrames;
                        gauges[k].violationRate = g.violationRate;
                    }
                }
                device = dispatcher.route(frame.task,
                                          frame.arrivalUs, gauges);
            }
            demux.push(std::move(frame), device);
            for (auto& routed : demux.stream(device).drain())
                loops[device]->offer(std::move(routed));
        }
    }
    demux.closeAll();

    ClusterResult result;
    result.devices.reserve(n);
    for (size_t k = 0; k < n; ++k)
        result.devices.push_back(loops[k]->finish());
    result.assignment = demux.assignments();
    result.assignment.resize(scenario_.tasks.size(), -1);

    for (const auto& device : result.devices) {
        result.admission.offered += device.admission.offered;
        result.admission.admitted += device.admission.admitted;
        result.admission.degraded += device.admission.degraded;
        result.admission.rejected += device.admission.rejected;
    }
    mergeStats(result);
    computeFairness(result);
    if (n > 1)
        publishClusterMetrics(result);
    return result;
}

void
Cluster::mergeStats(ClusterResult& result) const
{
    // A single-device cluster returns device 0's stats unchanged —
    // the bit-identity anchor to the pre-cluster serve path.
    if (result.devices.size() == 1) {
        result.stats = result.devices.front().stats;
        return;
    }
    sim::RunStats merged;
    const sim::RunStats& first = result.devices.front().stats;
    merged.windowUs = first.windowUs;
    merged.tasks = first.tasks;
    for (size_t k = 1; k < result.devices.size(); ++k) {
        const sim::RunStats& s = result.devices[k].stats;
        for (size_t t = 0; t < merged.tasks.size(); ++t) {
            sim::TaskStats& into = merged.tasks[t];
            const sim::TaskStats& from = s.tasks[t];
            into.totalFrames += from.totalFrames;
            into.completedFrames += from.completedFrames;
            into.violatedFrames += from.violatedFrames;
            into.droppedFrames += from.droppedFrames;
            into.energyMj += from.energyMj;
            into.worstCaseEnergyMj += from.worstCaseEnergyMj;
            into.sumLatencyUs += from.sumLatencyUs;
            for (size_t v = 0; v < into.variantStarts.size(); ++v)
                into.variantStarts[v] += from.variantStarts[v];
        }
    }
    for (const auto& device : result.devices) {
        const sim::RunStats& s = device.stats;
        merged.frames.insert(merged.frames.end(), s.frames.begin(),
                             s.frames.end());
        merged.contextSwitches += s.contextSwitches;
        merged.contextSwitchEnergyMj += s.contextSwitchEnergyMj;
        merged.schedulerInvocations += s.schedulerInvocations;
        merged.accelBusyUs.insert(merged.accelBusyUs.end(),
                                  s.accelBusyUs.begin(),
                                  s.accelBusyUs.end());
    }
    result.stats = std::move(merged);
}

void
Cluster::computeFairness(ClusterResult& result) const
{
    result.fairnessRatio.assign(result.devices.size(),
                                std::nan(""));
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    size_t finite = 0;
    for (size_t k = 0; k < result.devices.size(); ++k) {
        double latency_us = 0.0;
        double ideal_us = 0.0;
        for (const auto& f : result.devices[k].stats.frames) {
            if (!f.isCompleted())
                continue;
            latency_us += f.completionUs - f.arrivalUs;
            ideal_us += idealFrameUs_[size_t(f.task)];
        }
        if (ideal_us <= 0.0)
            continue;
        const double ratio = latency_us / ideal_us;
        result.fairnessRatio[k] = ratio;
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
        ++finite;
    }
    result.fairnessSpread =
        (finite >= 2 && lo > 0.0) ? hi / lo : 1.0;
}

void
Cluster::publishClusterMetrics(const ClusterResult& result) const
{
    obs::MetricsRegistry* m = config_.serve.metrics;
    if (!m)
        return;
    // Cluster rollups under the un-namespaced serve/* keys — the
    // same schema a single-device run publishes, so dream_prof's
    // aggregate serve table renders either way — plus the cluster
    // gauges (src/obs/README.md).
    const std::string& p = config_.serve.metricsPrefix;
    const AdmissionStats& a = result.admission;
    m->count(p + "frames/offered", a.offered);
    m->count(p + "frames/admitted", a.admitted);
    m->count(p + "frames/degraded", a.degraded);
    m->count(p + "frames/rejected", a.rejected);
    size_t reports = 0;
    double backlog_us = 0.0;
    for (const auto& device : result.devices) {
        reports += device.snapshots.size();
        for (const auto& s : device.snapshots) {
            m->histogram(p + "queue_depth")
                .record(double(s.queueDepth));
            m->histogram(p + "rolling/p99_us").record(s.p99Us);
        }
        if (!device.snapshots.empty())
            backlog_us += device.snapshots.back().backlogUs;
    }
    m->count(p + "reports", reports);
    m->gaugeSet(p + "backlog_us", backlog_us);
    m->gaugeSet(p + "cluster/devices",
                double(result.devices.size()));
    m->gaugeSet(p + "cluster/fairness_spread",
                result.fairnessSpread);
    for (size_t k = 0; k < result.fairnessRatio.size(); ++k) {
        if (std::isfinite(result.fairnessRatio[k]))
            m->gaugeSet(p + "dev" + std::to_string(k) +
                            "/fairness_ratio",
                        result.fairnessRatio[k]);
    }
}

} // namespace serve
} // namespace dream
