/**
 * @file
 * Cluster serving: N per-device DREAM instances behind one
 * dispatcher. Each device slot is a full serving pipeline — its own
 * Simulator, StreamSource, AdmissionController and ServeLoop — and a
 * workload::SessionDemux pins every arriving session (one root task
 * plus its cascade descendants) to exactly one device. The cluster
 * drains the intake stream in global arrival order and drives all
 * device loops in virtual-time lock step: before a session is
 * routed, every device has advanced to the routing instant, so the
 * dispatcher's gauges are pure functions of virtual time and an
 * N-device run replays bit-for-bit (ARCHITECTURE.md invariant 7).
 *
 * A single-device cluster *is* the single-device serve path — same
 * ServeLoop primitives, same metric keys, same log lines — so
 * tools/dream_serve has no legacy code path to keep in sync.
 */

#ifndef DREAM_SERVE_CLUSTER_H
#define DREAM_SERVE_CLUSTER_H

#include <functional>
#include <memory>
#include <vector>

#include "costmodel/cost_table.h"
#include "hw/system.h"
#include "serve/dispatcher.h"
#include "serve/serve_loop.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "workload/scenario.h"
#include "workload/stream_source.h"

namespace dream {
namespace serve {

struct ClusterConfig {
    /** Device slots (>= 1). Every slot serves the same system preset
     *  with its own simulator. */
    size_t devices = 1;
    RouterPolicy router = RouterPolicy::FinishTimeFairness;
    /**
     * Per-device serve template. With devices > 1 the cluster
     * rewrites metricsPrefix to "<prefix>dev<k>/", tags log lines
     * with the device, and detaches the simulator's un-namespaced
     * metric hooks; with devices == 1 it is used verbatim, which
     * keeps the single-device output bit-identical to a plain
     * ServeLoop::run.
     */
    ServeConfig serve;
};

struct ClusterResult {
    /** Per-device results, in device order. */
    std::vector<ServeResult> devices;
    /** Merged run stats: per-task tallies summed (sessions are
     *  disjoint across devices), frames concatenated in device
     *  order, per-accelerator busy time concatenated. For a
     *  single-device cluster this is device 0's stats unchanged. */
    sim::RunStats stats;
    /** Summed admission tallies. */
    AdmissionStats admission;
    /** Root-task -> device routing table (-1 = never arrived). */
    std::vector<int> assignment;
    /**
     * Per-device finish-time-fairness ratio: the sum of completed
     * frames' latencies over the sum of their best-case (default
     * path, fastest accelerator) service demands. 1.0 = every frame
     * finished as if alone on an ideal device; NaN = the device
     * completed nothing.
     */
    std::vector<double> fairnessRatio;
    /** max/min of the finite per-device ratios (1.0 when fewer than
     *  two devices completed frames) — the bench/cluster_route
     *  fairness metric. */
    double fairnessSpread = 1.0;
};

/**
 * The cluster. One instance runs one (system, scenario, cost table)
 * across N simulated devices; run() consumes an intake StreamSource
 * until it is closed and drained, exactly like ServeLoop::run does
 * for one device.
 */
class Cluster {
public:
    /** Builds one scheduler per device (each device schedules
     *  independently). */
    using SchedulerFactory =
        std::function<std::unique_ptr<sim::Scheduler>()>;

    Cluster(const hw::SystemConfig& system,
            const workload::Scenario& scenario,
            const cost::CostTable& costs, ClusterConfig config);

    /** Serve the intake stream to the window end. */
    ClusterResult run(const SchedulerFactory& make_scheduler,
                      workload::StreamSource& intake);

private:
    void mergeStats(ClusterResult& result) const;
    void computeFairness(ClusterResult& result) const;
    void publishClusterMetrics(const ClusterResult& result) const;

    const hw::SystemConfig& system_;
    const workload::Scenario& scenario_;
    const cost::CostTable& costs_;
    ClusterConfig config_;
    /** Per task: best-case own-path service demand (us), the
     *  fairness denominator. */
    std::vector<double> idealFrameUs_;
};

} // namespace serve
} // namespace dream

#endif // DREAM_SERVE_CLUSTER_H
