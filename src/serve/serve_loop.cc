#include "serve/serve_loop.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <ostream>
#include <utility>

namespace dream {
namespace serve {

ServeLoop::ServeLoop(const hw::SystemConfig& system,
                     const workload::Scenario& scenario,
                     const cost::CostTable& costs, ServeConfig config)
    : system_(system), scenario_(scenario), costs_(costs),
      config_(std::move(config)),
      latency_(config_.rollingSpanUs),
      outcomes_(config_.rollingSpanUs),
      violations_(config_.rollingSpanUs),
      drops_(config_.rollingSpanUs), offers_(config_.rollingSpanUs),
      rejects_(config_.rollingSpanUs)
{
}

void
ServeLoop::onFrameOutcome(const obs::FrameOutcome& outcome)
{
    outcomes_.record(outcome.tUs);
    if (outcome.violated)
        violations_.record(outcome.tUs);
    if (outcome.dropped)
        drops_.record(outcome.tUs);
    else
        latency_.record(outcome.tUs,
                        outcome.completionUs - outcome.arrivalUs);
}

ServeSnapshot
ServeLoop::takeSnapshot(double t_us)
{
    if (admission_)
        admission_->advanceTo(t_us);
    latency_.advanceTo(t_us);
    outcomes_.advanceTo(t_us);
    violations_.advanceTo(t_us);
    drops_.advanceTo(t_us);
    offers_.advanceTo(t_us);
    rejects_.advanceTo(t_us);

    const double nan = std::nan("");
    const obs::LatencyHistogram h = latency_.snapshot();
    ServeSnapshot s;
    s.tUs = t_us;
    s.queueDepth = sim_->liveFrames();
    s.windowSamples = h.count();
    s.p50Us = h.quantile(0.5);
    s.p99Us = h.quantile(0.99);
    const uint64_t n_out = outcomes_.count();
    s.violationRate =
        n_out ? double(violations_.count()) / double(n_out) : nan;
    s.dropRate = n_out ? double(drops_.count()) / double(n_out) : nan;
    const uint64_t n_off = offers_.count();
    s.rejectRate =
        n_off ? double(rejects_.count()) / double(n_off) : nan;
    s.backlogUs = admission_ ? admission_->backlogUs() : 0.0;

    if (config_.log) {
        char buf[224];
        std::snprintf(buf, sizeof buf,
                      "[%s] t=%.0fus live=%zu p50=%.1fus "
                      "p99=%.1fus viol=%.1f%% drop=%.1f%% "
                      "rej=%.1f%% backlog=%.0fus",
                      config_.logLabel.c_str(), s.tUs, s.queueDepth,
                      s.p50Us, s.p99Us, 100.0 * s.violationRate,
                      100.0 * s.dropRate, 100.0 * s.rejectRate,
                      s.backlogUs);
        *config_.log << buf << '\n';
    }
    return s;
}

void
ServeLoop::advanceWithReports(double target_us)
{
    const double limit = std::min(target_us, config_.windowUs);
    while (nextReportUs_ < limit) {
        sim_->advanceTo(nextReportUs_);
        snapshots_.push_back(takeSnapshot(nextReportUs_));
        nextReportUs_ += config_.reportIntervalUs;
    }
    sim_->advanceTo(limit);
}

void
ServeLoop::begin(sim::Scheduler& sched,
                 const workload::ArrivalSource& arrivals)
{
    // Fresh rolling state per serve.
    latency_ = obs::RollingQuantileWindow(config_.rollingSpanUs);
    outcomes_ = obs::RollingEventCounter(config_.rollingSpanUs);
    violations_ = obs::RollingEventCounter(config_.rollingSpanUs);
    drops_ = obs::RollingEventCounter(config_.rollingSpanUs);
    offers_ = obs::RollingEventCounter(config_.rollingSpanUs);
    rejects_ = obs::RollingEventCounter(config_.rollingSpanUs);
    snapshots_.clear();
    nextReportUs_ = config_.reportIntervalUs > 0.0
                        ? config_.reportIntervalUs
                        : std::numeric_limits<double>::infinity();
    tally_ = AdmissionStats{};

    wall0_ = std::chrono::steady_clock::now();

    sim::SimConfig sim_config;
    sim_config.windowUs = config_.windowUs;
    sim_config.seed = config_.seed;
    sim_config.arrivals = &arrivals;
    telemetry_ = obs::SimTelemetry{};
    telemetry_.metrics =
        config_.attachSimMetrics ? config_.metrics : nullptr;
    telemetry_.outcomes = this;
    sim_config.telemetry = &telemetry_;
    sim_ = std::make_unique<sim::Simulator>(system_, scenario_,
                                            costs_, sim_config);

    admission_.reset();
    if (config_.admission.enabled())
        admission_ = std::make_unique<AdmissionController>(
            config_.admission, scenario_, costs_);

    sim_->beginStream(sched);
}

AdmissionDecision
ServeLoop::offer(workload::FrameSpec frame)
{
    // Advance the simulator to just short of the arrival before
    // offering it. The margin matches the event loop's 1e-9 grouping
    // epsilon: a completion that lands within epsilon before the
    // arrival must still find the arrival pending, so both are
    // handled as one event group exactly like the offline run.
    advanceWithReports(frame.arrivalUs - 1e-9);
    offers_.record(frame.arrivalUs);
    if (admission_) {
        const AdmissionDecision decision = admission_->offer(
            frame, frame.arrivalUs, sim_->liveFrames());
        if (decision == AdmissionDecision::Reject) {
            rejects_.record(frame.arrivalUs);
            return decision;
        }
        sim_->offerArrival(frame);
        return decision;
    }
    tally_.offered += 1;
    tally_.admitted += 1;
    sim_->offerArrival(frame);
    return AdmissionDecision::Admit;
}

void
ServeLoop::advanceTo(double t_us)
{
    advanceWithReports(t_us);
}

ServeResult
ServeLoop::finish()
{
    advanceWithReports(config_.windowUs);

    ServeResult result;
    result.stats = sim_->finishStream();
    snapshots_.push_back(takeSnapshot(config_.windowUs));
    result.admission = admission_ ? admission_->stats() : tally_;
    result.snapshots = std::move(snapshots_);
    snapshots_.clear();

    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0_)
            .count();
    publishMetrics(result, wall_ms);
    return result;
}

ServeLoop::Gauges
ServeLoop::pollGauges(double t_us)
{
    if (admission_)
        admission_->advanceTo(t_us);
    outcomes_.advanceTo(t_us);
    violations_.advanceTo(t_us);

    Gauges g;
    g.backlogUs = admission_ ? admission_->backlogUs() : 0.0;
    g.liveFrames = sim_ ? sim_->liveFrames() : 0;
    const uint64_t n_out = outcomes_.count();
    g.violationRate =
        n_out ? double(violations_.count()) / double(n_out) : 0.0;
    return g;
}

ServeResult
ServeLoop::run(sim::Scheduler& sched,
               workload::StreamSource& stream)
{
    begin(sched, stream);
    while (true) {
        auto batch = stream.waitDrain();
        if (batch.empty())
            break; // closed and drained — end of stream
        for (auto& frame : batch)
            offer(std::move(frame));
    }
    return finish();
}

void
ServeLoop::publishMetrics(const ServeResult& result, double wall_ms)
{
    if (!config_.metrics)
        return;
    obs::MetricsRegistry& m = *config_.metrics;
    const std::string& p = config_.metricsPrefix;
    const AdmissionStats& a = result.admission;
    m.count(p + "frames/offered", a.offered);
    m.count(p + "frames/admitted", a.admitted);
    m.count(p + "frames/degraded", a.degraded);
    m.count(p + "frames/rejected", a.rejected);
    m.count(p + "reports", result.snapshots.size());
    for (const auto& s : result.snapshots) {
        m.histogram(p + "queue_depth").record(double(s.queueDepth));
        // NaN-valued snapshots (empty spans) are dropped by record().
        m.histogram(p + "rolling/p99_us").record(s.p99Us);
    }
    const ServeSnapshot& last = result.snapshots.back();
    if (std::isfinite(last.p50Us))
        m.gaugeSet(p + "rolling/latency_p50_us", last.p50Us);
    if (std::isfinite(last.p99Us))
        m.gaugeSet(p + "rolling/latency_p99_us", last.p99Us);
    if (std::isfinite(last.violationRate))
        m.gaugeSet(p + "rolling/violation_rate",
                   last.violationRate);
    if (std::isfinite(last.dropRate))
        m.gaugeSet(p + "rolling/drop_rate", last.dropRate);
    if (std::isfinite(last.rejectRate))
        m.gaugeSet(p + "rolling/reject_rate", last.rejectRate);
    m.gaugeSet(p + "backlog_us", last.backlogUs);
    // Wall clock is host-dependent: volatile, like the scheduler's
    // decision-latency histogram.
    m.gaugeSet(p + "wall_ms", wall_ms);
    m.markVolatile(p + "wall_ms");
}

} // namespace serve
} // namespace dream
