/**
 * @file
 * Sliding-window telemetry for serve mode: exact quantiles and event
 * rates over the trailing span of virtual time. Samples are keyed by
 * the simulator clock, never wall time, so rolling reports are as
 * deterministic as the run that produced them.
 */

#ifndef DREAM_OBS_ROLLING_H
#define DREAM_OBS_ROLLING_H

#include <cstdint>
#include <deque>

#include "obs/metrics.h"

namespace dream {
namespace obs {

/**
 * Exact quantiles over the samples recorded in the trailing
 * @c spanUs() of virtual time. quantile()/mean() delegate to a
 * LatencyHistogram built over the live window, so a rolling window
 * and a LatencyHistogram fed the same samples agree bit-for-bit —
 * the property tests/test_serve.cc pins.
 *
 * Samples must be recorded in nondecreasing time order (the
 * simulator's event order guarantees this). Eviction keeps samples
 * with t > cutoff, cutoff = now - span.
 */
class RollingQuantileWindow {
public:
    explicit RollingQuantileWindow(double span_us);

    /** Record @p value at virtual time @p t_us (NaN values kept out
     *  by LatencyHistogram at snapshot time). */
    void record(double t_us, double value);

    /** Slide the window forward to @p t_us, evicting aged samples.
     *  Time never moves backwards; stale calls are no-ops. */
    void advanceTo(double t_us);

    /** Exact-quantile histogram over the current window samples. */
    LatencyHistogram snapshot() const;

    /** Exact quantile over the window (NaN when empty). */
    double quantile(double q) const { return snapshot().quantile(q); }
    double mean() const { return snapshot().mean(); }

    uint64_t count() const { return uint64_t(samples_.size()); }
    bool empty() const { return samples_.empty(); }
    double spanUs() const { return spanUs_; }

private:
    struct Sample {
        double tUs;
        double value;
    };

    void evict(double now_us);

    double spanUs_;
    double lastUs_ = 0.0;
    std::deque<Sample> samples_;
};

/**
 * Count of events in the trailing @c spanUs() of virtual time, for
 * rolling rates (SLO violations, drops, rejects per window).
 */
class RollingEventCounter {
public:
    explicit RollingEventCounter(double span_us);

    /** Record one event at virtual time @p t_us. */
    void record(double t_us);

    /** Slide the window forward to @p t_us. */
    void advanceTo(double t_us);

    /** Events currently inside the window. */
    uint64_t count() const { return uint64_t(events_.size()); }
    double spanUs() const { return spanUs_; }

private:
    double spanUs_;
    double lastUs_ = 0.0;
    std::deque<double> events_;
};

} // namespace obs
} // namespace dream

#endif // DREAM_OBS_ROLLING_H
