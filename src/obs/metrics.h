/**
 * @file
 * The metrics half of the telemetry layer: counters, gauges and an
 * exact-quantile latency histogram collected into a MetricsRegistry.
 *
 * Determinism contract: registries merge associatively and every
 * derived statistic (quantiles, sums) is computed from the sorted
 * sample set, so a registry merged from per-point registries in grid
 * index order dumps byte-identical JSON for any worker count —
 * `--metrics` obeys the same `--jobs N == --jobs 1` contract as
 * `--out`. Wall-clock measurements (scheduler decision time, worker
 * busy seconds) are inherently run-dependent; mark them volatile and
 * they stay out of the canonical dump.
 */

#ifndef DREAM_OBS_METRICS_H
#define DREAM_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace dream {
namespace obs {

/**
 * Exact latency quantiles over a stored sample set. "Exact" as
 * opposed to bucketed estimators: every sample is kept and quantiles
 * come from the sorted set with linear interpolation (the same rule
 * as engine::AggregateSink), so p99.9 of a merged registry equals
 * p99.9 of the union of samples — merging is concatenation and the
 * result is independent of merge order. NaN samples are ignored
 * (a never-completed frame must not poison the distribution).
 */
class LatencyHistogram {
public:
    /** Record one sample; NaN is dropped. */
    void record(double value);

    /** Append every sample of @p other. */
    void merge(const LatencyHistogram& other);

    /** Recorded (non-NaN) sample count. */
    uint64_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** Smallest / largest sample; NaN when empty. */
    double min() const;
    double max() const;
    /** Sum over the sorted samples (deterministic); 0 when empty. */
    double sum() const;
    /** sum() / count(); NaN when empty. */
    double mean() const;

    /**
     * The q-quantile (q in [0, 1]) of the sample set, linearly
     * interpolated between the two nearest order statistics; NaN
     * when empty.
     */
    double quantile(double q) const;

    /** The samples, sorted ascending. */
    const std::vector<double>& sorted() const;

private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * A named bag of counters (uint64, additive), gauges (double,
 * additive on merge — per-run totals such as busy microseconds sum
 * across runs) and latency histograms. Names are free-form
 * "area/detail" paths; the JSON dump orders every section by name.
 */
class MetricsRegistry {
public:
    /** Add @p delta to counter @p name (created at 0). */
    void count(const std::string& name, uint64_t delta = 1);
    /** Add @p delta to gauge @p name (created at 0). */
    void gaugeAdd(const std::string& name, double delta);
    /** Set gauge @p name to @p value. */
    void gaugeSet(const std::string& name, double value);
    /** The histogram @p name, created empty on first use. */
    LatencyHistogram& histogram(const std::string& name);

    /**
     * Mark metric @p name as wall-clock volatile: it is kept in the
     * registry (profilers may read it) but excluded from writeJson
     * unless include_volatile is set, so the canonical dump stays
     * deterministic across hosts and worker counts.
     */
    void markVolatile(const std::string& name);

    /** True when nothing has been recorded. */
    bool empty() const
    {
        return counters_.empty() && gauges_.empty() &&
               histograms_.empty();
    }

    /**
     * Fold @p other into this registry: counters and gauges add,
     * histograms concatenate their samples, volatile marks union.
     */
    void merge(const MetricsRegistry& other);

    /**
     * Dump as a JSON object with "counters", "gauges" and
     * "histograms" sections, each ordered by metric name. Histograms
     * dump the fixed layout {count, min, max, sum, mean, p50, p90,
     * p99, p999}; statistics of an empty histogram are null. Doubles
     * render with runner::preciseDouble, so equal sample sets dump
     * equal bytes.
     */
    void writeJson(std::ostream& out,
                   bool include_volatile = false) const;

    const std::map<std::string, uint64_t>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, double>& gauges() const
    {
        return gauges_;
    }
    const std::map<std::string, LatencyHistogram>& histograms() const
    {
        return histograms_;
    }

private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, LatencyHistogram> histograms_;
    std::set<std::string> volatile_;
};

} // namespace obs
} // namespace dream

#endif // DREAM_OBS_METRICS_H
