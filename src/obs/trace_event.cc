#include "obs/trace_event.h"

#include <cmath>

#include "runner/table.h"

namespace dream {
namespace obs {

namespace {

/** JSON string literal with the usual control escapes. */
std::string
jsonQuote(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n";  break;
          case '\r': out += "\\r";  break;
          case '\t': out += "\\t";  break;
          default:   out += c;      break;
        }
    }
    out += '"';
    return out;
}

/** A double as a JSON value: null for NaN/inf. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    return runner::preciseDouble(v);
}

} // anonymous namespace

TraceArgs&
TraceArgs::str(const std::string& key, const std::string& value)
{
    kv_.push_back({key, jsonQuote(value)});
    return *this;
}

TraceArgs&
TraceArgs::num(const std::string& key, double value)
{
    kv_.push_back({key, jsonNumber(value)});
    return *this;
}

TraceArgs&
TraceArgs::integer(const std::string& key, long long value)
{
    kv_.push_back({key, std::to_string(value)});
    return *this;
}

void
TraceEventSink::processName(const std::string& name)
{
    TraceEvent e;
    e.name = "process_name";
    e.ph = 'M';
    e.args.push_back({"name", jsonQuote(name)});
    events_.push_back(std::move(e));
}

void
TraceEventSink::threadName(int64_t tid, const std::string& name)
{
    TraceEvent e;
    e.name = "thread_name";
    e.ph = 'M';
    e.tid = tid;
    e.args.push_back({"name", jsonQuote(name)});
    events_.push_back(std::move(e));
}

void
TraceEventSink::runMeta(const TraceArgs& args)
{
    TraceEvent e;
    e.name = "dream_meta";
    e.ph = 'M';
    e.args = args.items();
    events_.push_back(std::move(e));
}

void
TraceEventSink::span(int64_t tid, const std::string& name,
                     const std::string& cat, double ts_us,
                     double dur_us, const TraceArgs& args)
{
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ph = 'X';
    e.tsUs = ts_us;
    e.durUs = dur_us;
    e.tid = tid;
    e.args = args.items();
    events_.push_back(std::move(e));
}

void
TraceEventSink::instant(int64_t tid, const std::string& name,
                        const std::string& cat, double ts_us,
                        const TraceArgs& args)
{
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ph = 'i';
    e.tsUs = ts_us;
    e.tid = tid;
    e.args = args.items();
    events_.push_back(std::move(e));
}

void
TraceEventSink::writeJson(std::ostream& out) const
{
    out << "[\n";
    for (size_t i = 0; i < events_.size(); ++i) {
        const TraceEvent& e = events_[i];
        out << "{\"name\": " << jsonQuote(e.name);
        if (!e.cat.empty())
            out << ", \"cat\": " << jsonQuote(e.cat);
        out << ", \"ph\": \"" << e.ph << '"';
        if (e.ph != 'M') {
            out << ", \"ts\": " << jsonNumber(e.tsUs);
            if (e.ph == 'X')
                out << ", \"dur\": " << jsonNumber(e.durUs);
            if (e.ph == 'i')
                out << ", \"s\": \"t\"";
        }
        out << ", \"pid\": " << pid_ << ", \"tid\": " << e.tid;
        if (!e.args.empty()) {
            out << ", \"args\": {";
            for (size_t a = 0; a < e.args.size(); ++a) {
                if (a)
                    out << ", ";
                out << jsonQuote(e.args[a].first) << ": "
                    << e.args[a].second;
            }
            out << '}';
        }
        out << '}' << (i + 1 < events_.size() ? "," : "") << '\n';
    }
    out << "]\n";
}

} // namespace obs
} // namespace dream
