/**
 * @file
 * The tracing half of the telemetry layer: a TraceEventSink records
 * typed spans and instants and serialises them as Chrome trace-event
 * JSON (the array-of-events format), so any run opens directly in
 * Perfetto / chrome://tracing.
 *
 * Conventions used by the simulator hooks (src/obs/README.md has the
 * full map): `pid` is the grid point (EngineOptions::traceIndexBase
 * + point.index), `tid` 0..N-1 are the system's accelerators, tid N
 * is the scheduler track and tid N+1 the frame-lifecycle track.
 * Timestamps are simulated microseconds — exactly the unit the
 * trace-event format expects — and events are appended in event-loop
 * order, so `ts` is monotonically non-decreasing per track (the
 * invariant tools/dream_prof --check enforces).
 */

#ifndef DREAM_OBS_TRACE_EVENT_H
#define DREAM_OBS_TRACE_EVENT_H

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace dream {
namespace obs {

/**
 * Argument list of one trace event. Values are pre-rendered as JSON
 * (strings escaped, doubles via runner::preciseDouble) so the sink
 * stores plain pairs and serialisation is a straight join.
 */
class TraceArgs {
public:
    TraceArgs& str(const std::string& key, const std::string& value);
    TraceArgs& num(const std::string& key, double value);
    TraceArgs& integer(const std::string& key, long long value);

    const std::vector<std::pair<std::string, std::string>>& items()
        const
    {
        return kv_;
    }

private:
    std::vector<std::pair<std::string, std::string>> kv_;
};

/** One recorded event (see writeJson for the serialised form). */
struct TraceEvent {
    std::string name;
    std::string cat;
    char ph = 'X';   ///< 'X' span, 'i' instant, 'M' metadata
    double tsUs = 0.0;
    double durUs = 0.0; ///< 'X' only
    int64_t tid = 0;
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Collects the events of ONE simulation run (one grid point — one
 * pid) and serialises them on demand. Not thread-safe; the engine
 * gives every grid point its own sink, mirroring the one-Simulator-
 * per-point isolation that makes `--jobs` deterministic.
 */
class TraceEventSink {
public:
    explicit TraceEventSink(int64_t pid = 0) : pid_(pid) {}

    int64_t pid() const { return pid_; }
    size_t size() const { return events_.size(); }
    const std::vector<TraceEvent>& events() const { return events_; }

    /** 'M' metadata naming the process (grid point key). */
    void processName(const std::string& name);
    /** 'M' metadata naming track @p tid. */
    void threadName(int64_t tid, const std::string& name);
    /**
     * 'M' metadata event "dream_meta" carrying run identity
     * (window_us, seed, ...) for tools/dream_prof. Viewers ignore
     * unknown metadata names, so the file stays Perfetto-loadable.
     */
    void runMeta(const TraceArgs& args);

    /** A complete span ('X') of @p dur_us on track @p tid. */
    void span(int64_t tid, const std::string& name,
              const std::string& cat, double ts_us, double dur_us,
              const TraceArgs& args = {});
    /** A thread-scoped instant ('i') on track @p tid. */
    void instant(int64_t tid, const std::string& name,
                 const std::string& cat, double ts_us,
                 const TraceArgs& args = {});

    /**
     * Serialise as a Chrome trace-event JSON array, one event per
     * line, in recording order. Fields: name, cat, ph, ts, dur (X),
     * s ("t", instants), pid, tid, args.
     */
    void writeJson(std::ostream& out) const;

private:
    int64_t pid_;
    std::vector<TraceEvent> events_;
};

} // namespace obs
} // namespace dream

#endif // DREAM_OBS_TRACE_EVENT_H
