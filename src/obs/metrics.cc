#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "runner/table.h"

namespace dream {
namespace obs {

void
LatencyHistogram::record(double value)
{
    if (std::isnan(value))
        return;
    samples_.push_back(value);
    sorted_ = false;
}

void
LatencyHistogram::merge(const LatencyHistogram& other)
{
    if (other.samples_.empty())
        return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
}

const std::vector<double>&
LatencyHistogram::sorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    return samples_;
}

double
LatencyHistogram::min() const
{
    return samples_.empty() ? std::numeric_limits<double>::quiet_NaN()
                            : sorted().front();
}

double
LatencyHistogram::max() const
{
    return samples_.empty() ? std::numeric_limits<double>::quiet_NaN()
                            : sorted().back();
}

double
LatencyHistogram::sum() const
{
    // Accumulate in sorted order so the merge order of per-point
    // registries can never change the rounding of the total.
    double total = 0.0;
    for (const double v : sorted())
        total += v;
    return total;
}

double
LatencyHistogram::mean() const
{
    if (samples_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return sum() / double(samples_.size());
}

double
LatencyHistogram::quantile(double q) const
{
    if (samples_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    const auto& s = sorted();
    if (q <= 0.0)
        return s.front();
    if (q >= 1.0)
        return s.back();
    const double pos = q * double(s.size() - 1);
    const size_t lo = size_t(pos);
    const double frac = pos - double(lo);
    if (lo + 1 >= s.size())
        return s.back();
    return s[lo] + frac * (s[lo + 1] - s[lo]);
}

void
MetricsRegistry::count(const std::string& name, uint64_t delta)
{
    counters_[name] += delta;
}

void
MetricsRegistry::gaugeAdd(const std::string& name, double delta)
{
    gauges_[name] += delta;
}

void
MetricsRegistry::gaugeSet(const std::string& name, double value)
{
    gauges_[name] = value;
}

LatencyHistogram&
MetricsRegistry::histogram(const std::string& name)
{
    return histograms_[name];
}

void
MetricsRegistry::markVolatile(const std::string& name)
{
    volatile_.insert(name);
}

void
MetricsRegistry::merge(const MetricsRegistry& other)
{
    for (const auto& kv : other.counters_)
        counters_[kv.first] += kv.second;
    for (const auto& kv : other.gauges_)
        gauges_[kv.first] += kv.second;
    for (const auto& kv : other.histograms_)
        histograms_[kv.first].merge(kv.second);
    volatile_.insert(other.volatile_.begin(), other.volatile_.end());
}

namespace {

/** JSON string literal (metric names never need full escaping, but
 *  quote defensively anyway). */
std::string
jsonName(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/** A double as a JSON value: null for NaN/inf (not representable). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    return runner::preciseDouble(v);
}

} // anonymous namespace

void
MetricsRegistry::writeJson(std::ostream& out,
                           bool include_volatile) const
{
    const auto skip = [&](const std::string& name) {
        return !include_volatile && volatile_.count(name) != 0;
    };

    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& kv : counters_) {
        if (skip(kv.first))
            continue;
        out << (first ? "\n" : ",\n") << "    " << jsonName(kv.first)
            << ": " << kv.second;
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto& kv : gauges_) {
        if (skip(kv.first))
            continue;
        out << (first ? "\n" : ",\n") << "    " << jsonName(kv.first)
            << ": " << jsonNumber(kv.second);
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& kv : histograms_) {
        if (skip(kv.first))
            continue;
        const LatencyHistogram& h = kv.second;
        out << (first ? "\n" : ",\n") << "    " << jsonName(kv.first)
            << ": {\"count\": " << h.count()
            << ", \"min\": " << jsonNumber(h.min())
            << ", \"max\": " << jsonNumber(h.max())
            << ", \"sum\": " << jsonNumber(h.sum())
            << ", \"mean\": " << jsonNumber(h.mean())
            << ", \"p50\": " << jsonNumber(h.quantile(0.50))
            << ", \"p90\": " << jsonNumber(h.quantile(0.90))
            << ", \"p99\": " << jsonNumber(h.quantile(0.99))
            << ", \"p999\": " << jsonNumber(h.quantile(0.999))
            << "}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
}

} // namespace obs
} // namespace dream
