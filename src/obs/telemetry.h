/**
 * @file
 * The null-by-default handle the simulator's instrumentation hangs
 * off. A Simulator with SimConfig::telemetry == nullptr (the
 * default) pays one pointer test per hook site and records nothing —
 * no files, no allocations; with a SimTelemetry attached, either
 * half may be enabled independently (`--trace-events` without
 * `--metrics`, and vice versa).
 */

#ifndef DREAM_OBS_TELEMETRY_H
#define DREAM_OBS_TELEMETRY_H

#include "obs/metrics.h"
#include "obs/trace_event.h"

namespace dream {
namespace obs {

/** The telemetry outputs of one simulation run; either may be null. */
struct SimTelemetry {
    TraceEventSink* trace = nullptr;
    MetricsRegistry* metrics = nullptr;
};

} // namespace obs
} // namespace dream

#endif // DREAM_OBS_TELEMETRY_H
