/**
 * @file
 * The null-by-default handle the simulator's instrumentation hangs
 * off. A Simulator with SimConfig::telemetry == nullptr (the
 * default) pays one pointer test per hook site and records nothing —
 * no files, no allocations; with a SimTelemetry attached, either
 * half may be enabled independently (`--trace-events` without
 * `--metrics`, and vice versa).
 */

#ifndef DREAM_OBS_TELEMETRY_H
#define DREAM_OBS_TELEMETRY_H

#include "obs/metrics.h"
#include "obs/trace_event.h"

namespace dream {
namespace obs {

/**
 * One terminal frame outcome (completion or drop), emitted by the
 * simulator at the virtual time the frame left the system. Frames
 * still in flight at the window end never produce an outcome.
 */
struct FrameOutcome {
    int task = 0;
    int frameIdx = 0;
    /** Virtual time of the outcome event (us). */
    double tUs = 0.0;
    double arrivalUs = 0.0;
    double deadlineUs = 0.0;
    /** Completion time; NaN when the frame was dropped. */
    double completionUs = 0.0;
    bool violated = false;
    bool dropped = false;
};

/**
 * Receives frame outcomes as they happen — the push feed serve-mode
 * rolling-window telemetry hangs off. Like the other telemetry
 * halves, attaching one observes the run without perturbing it.
 */
class FrameOutcomeSink {
public:
    virtual ~FrameOutcomeSink() = default;
    virtual void onFrameOutcome(const FrameOutcome& outcome) = 0;
};

/** The telemetry outputs of one simulation run; any may be null. */
struct SimTelemetry {
    TraceEventSink* trace = nullptr;
    MetricsRegistry* metrics = nullptr;
    FrameOutcomeSink* outcomes = nullptr;
};

} // namespace obs
} // namespace dream

#endif // DREAM_OBS_TELEMETRY_H
