#include "obs/rolling.h"

#include <algorithm>
#include <stdexcept>

namespace dream {
namespace obs {

RollingQuantileWindow::RollingQuantileWindow(double span_us)
    : spanUs_(span_us)
{
    if (!(span_us > 0.0))
        throw std::invalid_argument(
            "rolling window span must be positive");
}

void
RollingQuantileWindow::evict(double now_us)
{
    const double cutoff = now_us - spanUs_;
    while (!samples_.empty() && samples_.front().tUs <= cutoff)
        samples_.pop_front();
}

void
RollingQuantileWindow::record(double t_us, double value)
{
    advanceTo(t_us);
    samples_.push_back(Sample{t_us, value});
}

void
RollingQuantileWindow::advanceTo(double t_us)
{
    lastUs_ = std::max(lastUs_, t_us);
    evict(lastUs_);
}

LatencyHistogram
RollingQuantileWindow::snapshot() const
{
    LatencyHistogram h;
    for (const auto& s : samples_)
        h.record(s.value);
    return h;
}

RollingEventCounter::RollingEventCounter(double span_us)
    : spanUs_(span_us)
{
    if (!(span_us > 0.0))
        throw std::invalid_argument(
            "rolling window span must be positive");
}

void
RollingEventCounter::record(double t_us)
{
    advanceTo(t_us);
    events_.push_back(t_us);
}

void
RollingEventCounter::advanceTo(double t_us)
{
    lastUs_ = std::max(lastUs_, t_us);
    const double cutoff = lastUs_ - spanUs_;
    while (!events_.empty() && events_.front() <= cutoff)
        events_.pop_front();
}

} // namespace obs
} // namespace dream
