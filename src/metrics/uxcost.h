/**
 * @file
 * UXCost (Algorithm 2): the paper's EDP-like user-experience metric.
 *
 * UXCost = (sum of per-model deadline-violation rates) *
 *          (sum of per-model worst-case-normalised energies),
 * with a 1/(2*frames) violation floor for models that never violate
 * so a zero rate cannot zero the product. Dropped frames count as
 * violations (completion time = infinity, Section 4.2.1).
 */

#ifndef DREAM_METRICS_UXCOST_H
#define DREAM_METRICS_UXCOST_H

#include "sim/stats.h"

namespace dream {
namespace metrics {

/** UXCost of a finished run (Algorithm 2). */
double uxCost(const sim::RunStats& stats);

/**
 * UXCost variants used by the Figure 13 ablation: optimise only the
 * deadline-violation term or only the energy term.
 */
enum class Objective {
    UxCost,       ///< deadline violation rate x normalised energy
    DlvRateOnly,  ///< sum of per-model deadline-violation rates
    EnergyOnly,   ///< sum of per-model normalised energies
};

/** Evaluate @p objective on @p stats. */
double evaluate(Objective objective, const sim::RunStats& stats);

/** Display name of an objective. */
const char* toString(Objective objective);

} // namespace metrics
} // namespace dream

#endif // DREAM_METRICS_UXCOST_H
