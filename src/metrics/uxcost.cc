#include "metrics/uxcost.h"

namespace dream {
namespace metrics {

double
uxCost(const sim::RunStats& stats)
{
    return stats.overallDlvRate() * stats.overallNormEnergy();
}

double
evaluate(Objective objective, const sim::RunStats& stats)
{
    switch (objective) {
      case Objective::UxCost:
        return uxCost(stats);
      case Objective::DlvRateOnly:
        return stats.overallDlvRate();
      case Objective::EnergyOnly:
        return stats.overallNormEnergy();
    }
    return 0.0;
}

const char*
toString(Objective objective)
{
    switch (objective) {
      case Objective::UxCost:
        return "UXCost";
      case Objective::DlvRateOnly:
        return "DLVRate";
      case Objective::EnergyOnly:
        return "Energy";
    }
    return "??";
}

} // namespace metrics
} // namespace dream
