/**
 * @file
 * Precomputed latency/energy tables for a target system.
 *
 * DREAM's inputs include "latency and energy information for each layer
 * for each accelerator in the system generated offline using a cost
 * model or a simulator" (Section 4, Figure 4). CostTable is that
 * artefact: it memoises estimateLayer() for every (layer shape,
 * accelerator, slice allocation) and offers the aggregate queries the
 * scoring algorithms need (average / sum / min across accelerators).
 *
 * Every entry also carries its cross-accelerator aggregates
 * (LayerAgg), computed once when the entry is built, and view()
 * exposes an entry through a single hash lookup — the scoring hot
 * path (MapScore line 8/9/13 needs per-accelerator AND aggregate
 * costs of the same layer) pays one lookup per layer instead of one
 * per query.
 *
 * freeze() turns a pre-warmed table immutable: further lookups of
 * unknown layers throw instead of lazily extending the cache. A
 * frozen table is safe to share across threads (concurrent const
 * lookups never mutate), which is what CostTableCache hands out.
 */

#ifndef DREAM_COSTMODEL_COST_TABLE_H
#define DREAM_COSTMODEL_COST_TABLE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "costmodel/layer_cost.h"
#include "hw/system.h"
#include "models/model.h"

namespace dream {
namespace cost {

/** Shape key identifying a layer for memoisation. */
struct LayerKey {
    uint32_t kind, inH, inW, inC, outC, kH, kW, stride, groups, repeat;

    bool operator==(const LayerKey&) const = default;
};

/** Total order over LayerKey (canonical model-set serialisation). */
bool operator<(const LayerKey& a, const LayerKey& b);

/** FNV-1a style hash for LayerKey. */
struct LayerKeyHash {
    size_t operator()(const LayerKey& k) const;
};

/** Make the memoisation key for a layer. */
LayerKey makeKey(const models::Layer& layer);

/**
 * Cross-accelerator aggregates of one layer's full-slice costs,
 * precomputed when the layer's entry is built. Values are computed
 * with the exact accumulation order of the original per-call loops
 * (ascending accelerator index), so switching callers to the
 * precomputed fields is bit-identical.
 */
struct LayerAgg {
    double avgLatencyUs = 0.0;
    double sumLatencyUs = 0.0;
    double minLatencyUs = 0.0;
    double sumEnergyMj = 0.0;
    double maxEnergyMj = 0.0;
};

/**
 * Latency/energy lookup for one target system.
 *
 * Lookups are lazy: the first query for a given layer computes and
 * caches the full (accelerator x slice) cost matrix. addModel() can
 * pre-warm the cache offline, matching the paper's flow; freeze()
 * then locks the table for thread-safe sharing.
 */
class CostTable {
public:
    explicit CostTable(const hw::SystemConfig& system);

    /** Pre-compute costs for every layer of a model (incl. variants). */
    void addModel(const models::Model& model);

    /**
     * Lock the table: lookups of layers not already cached throw
     * std::logic_error instead of lazily computing. After freeze(),
     * const lookups never mutate, so the table may be shared across
     * threads without synchronisation.
     */
    void freeze() { frozen_ = true; }
    /** True once freeze() was called. */
    bool frozen() const { return frozen_; }

    /** Number of accelerators in the target system. */
    size_t numAccelerators() const { return system_.size(); }
    /** The target system. */
    const hw::SystemConfig& system() const { return system_; }
    /** Number of distinct layer shapes cached. */
    size_t numLayers() const { return cache_.size(); }

    /** Cost of @p layer on accelerator @p acc with all slices. */
    const LayerCost& cost(const models::Layer& layer, size_t acc) const;
    /** Cost of @p layer on accelerator @p acc with @p slices slices. */
    const LayerCost& cost(const models::Layer& layer, size_t acc,
                          uint32_t slices) const;

    /** Mean full-slice latency of @p layer across accelerators. */
    double avgLatencyUs(const models::Layer& layer) const;
    /** Sum of full-slice latencies of @p layer across accelerators. */
    double sumLatencyUs(const models::Layer& layer) const;
    /** Minimum full-slice latency of @p layer across accelerators. */
    double minLatencyUs(const models::Layer& layer) const;
    /** Sum of full-slice energies of @p layer across accelerators. */
    double sumEnergyMj(const models::Layer& layer) const;
    /** Worst-case (max across accelerators) energy of @p layer. */
    double maxEnergyMj(const models::Layer& layer) const;

private:
    /** Per-layer cost matrix: [accelerator][slices-1]. */
    struct Entry {
        std::vector<std::vector<LayerCost>> byAccel;
        LayerAgg agg;
    };

public:
    /**
     * One layer's entry behind a single hash lookup: per-accelerator
     * costs plus the precomputed aggregates. Valid as long as the
     * table lives (entries are never erased).
     */
    class LayerView {
    public:
        /** Cost on accelerator @p acc with all slices. */
        const LayerCost& cost(size_t acc) const
        {
            return entry_->byAccel[acc].back();
        }
        /** Cost on accelerator @p acc with @p slices slices. */
        const LayerCost& cost(size_t acc, uint32_t slices) const
        {
            return entry_->byAccel[acc][slices - 1];
        }
        /** The precomputed cross-accelerator aggregates. */
        const LayerAgg& agg() const { return entry_->agg; }

    private:
        friend class CostTable;
        explicit LayerView(const Entry* entry) : entry_(entry) {}
        const Entry* entry_;
    };

    /** The entry for @p layer (computed now if absent and unfrozen). */
    LayerView view(const models::Layer& layer) const
    {
        return LayerView(&entryFor(layer));
    }

private:
    const Entry& entryFor(const models::Layer& layer) const;

    hw::SystemConfig system_;
    bool frozen_ = false;
    mutable std::unordered_map<LayerKey, Entry, LayerKeyHash> cache_;
};

} // namespace cost
} // namespace dream

#endif // DREAM_COSTMODEL_COST_TABLE_H
