/**
 * @file
 * Precomputed latency/energy tables for a target system.
 *
 * DREAM's inputs include "latency and energy information for each layer
 * for each accelerator in the system generated offline using a cost
 * model or a simulator" (Section 4, Figure 4). CostTable is that
 * artefact: it memoises estimateLayer() for every (layer shape,
 * accelerator, slice allocation) and offers the aggregate queries the
 * scoring algorithms need (average / sum / min across accelerators).
 */

#ifndef DREAM_COSTMODEL_COST_TABLE_H
#define DREAM_COSTMODEL_COST_TABLE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "costmodel/layer_cost.h"
#include "hw/system.h"
#include "models/model.h"

namespace dream {
namespace cost {

/** Shape key identifying a layer for memoisation. */
struct LayerKey {
    uint32_t kind, inH, inW, inC, outC, kH, kW, stride, groups, repeat;

    bool operator==(const LayerKey&) const = default;
};

/** FNV-1a style hash for LayerKey. */
struct LayerKeyHash {
    size_t operator()(const LayerKey& k) const;
};

/** Make the memoisation key for a layer. */
LayerKey makeKey(const models::Layer& layer);

/**
 * Latency/energy lookup for one target system.
 *
 * Lookups are lazy: the first query for a given layer computes and
 * caches the full (accelerator x slice) cost matrix. addModel() can
 * pre-warm the cache offline, matching the paper's flow.
 */
class CostTable {
public:
    explicit CostTable(const hw::SystemConfig& system);

    /** Pre-compute costs for every layer of a model (incl. variants). */
    void addModel(const models::Model& model);

    /** Number of accelerators in the target system. */
    size_t numAccelerators() const { return system_.size(); }
    /** The target system. */
    const hw::SystemConfig& system() const { return system_; }

    /** Cost of @p layer on accelerator @p acc with all slices. */
    const LayerCost& cost(const models::Layer& layer, size_t acc) const;
    /** Cost of @p layer on accelerator @p acc with @p slices slices. */
    const LayerCost& cost(const models::Layer& layer, size_t acc,
                          uint32_t slices) const;

    /** Mean full-slice latency of @p layer across accelerators. */
    double avgLatencyUs(const models::Layer& layer) const;
    /** Sum of full-slice latencies of @p layer across accelerators. */
    double sumLatencyUs(const models::Layer& layer) const;
    /** Minimum full-slice latency of @p layer across accelerators. */
    double minLatencyUs(const models::Layer& layer) const;
    /** Sum of full-slice energies of @p layer across accelerators. */
    double sumEnergyMj(const models::Layer& layer) const;
    /** Worst-case (max across accelerators) energy of @p layer. */
    double maxEnergyMj(const models::Layer& layer) const;

private:
    /** Per-layer cost matrix: [accelerator][slices-1]. */
    struct Entry {
        std::vector<std::vector<LayerCost>> byAccel;
    };

    const Entry& entryFor(const models::Layer& layer) const;

    hw::SystemConfig system_;
    mutable std::unordered_map<LayerKey, Entry, LayerKeyHash> cache_;
};

} // namespace cost
} // namespace dream

#endif // DREAM_COSTMODEL_COST_TABLE_H
