#include "costmodel/cost_table.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <tuple>

namespace dream {
namespace cost {

size_t
LayerKeyHash::operator()(const LayerKey& k) const
{
    size_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(k.kind);
    mix(k.inH);
    mix(k.inW);
    mix(k.inC);
    mix(k.outC);
    mix((uint64_t(k.kH) << 32) | k.kW);
    mix((uint64_t(k.stride) << 32) | k.groups);
    mix(k.repeat);
    return h;
}

bool
operator<(const LayerKey& a, const LayerKey& b)
{
    return std::tie(a.kind, a.inH, a.inW, a.inC, a.outC, a.kH, a.kW,
                    a.stride, a.groups, a.repeat) <
           std::tie(b.kind, b.inH, b.inW, b.inC, b.outC, b.kH, b.kW,
                    b.stride, b.groups, b.repeat);
}

LayerKey
makeKey(const models::Layer& layer)
{
    return LayerKey{uint32_t(layer.kind), layer.inH,    layer.inW,
                    layer.inC,            layer.outC,   layer.kH,
                    layer.kW,             layer.stride, layer.groups,
                    layer.repeat};
}

CostTable::CostTable(const hw::SystemConfig& system) : system_(system)
{
    assert(!system_.accelerators.empty());
}

const CostTable::Entry&
CostTable::entryFor(const models::Layer& layer) const
{
    const LayerKey key = makeKey(layer);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;
    if (frozen_)
        throw std::logic_error(
            "layer missing from frozen cost table (model not "
            "pre-warmed via addModel before freeze)");

    Entry e;
    e.byAccel.resize(system_.size());
    for (size_t a = 0; a < system_.size(); ++a) {
        const auto& acc = system_.accelerators[a];
        e.byAccel[a].resize(acc.numSlices);
        for (uint32_t s = 1; s <= acc.numSlices; ++s)
            e.byAccel[a][s - 1] = estimateLayer(layer, acc, s);
    }
    // Aggregates over the full-slice column, accumulated in ascending
    // accelerator order — the exact order of the former per-call
    // loops, so the precomputed values are bit-identical to them.
    e.agg.minLatencyUs = e.byAccel[0].back().latencyUs;
    e.agg.maxEnergyMj = e.byAccel[0].back().energyMj;
    for (size_t a = 0; a < system_.size(); ++a) {
        const LayerCost& full = e.byAccel[a].back();
        e.agg.sumLatencyUs += full.latencyUs;
        e.agg.sumEnergyMj += full.energyMj;
        if (a > 0) {
            e.agg.minLatencyUs =
                std::min(e.agg.minLatencyUs, full.latencyUs);
            e.agg.maxEnergyMj =
                std::max(e.agg.maxEnergyMj, full.energyMj);
        }
    }
    e.agg.avgLatencyUs = e.agg.sumLatencyUs / double(system_.size());
    return cache_.emplace(key, std::move(e)).first->second;
}

void
CostTable::addModel(const models::Model& model)
{
    for (const auto& l : model.layers)
        entryFor(l);
    for (const auto& v : model.variants) {
        for (const auto& l : v.bodyLayers)
            entryFor(l);
    }
}

const LayerCost&
CostTable::cost(const models::Layer& layer, size_t acc) const
{
    return cost(layer, acc, system_.accelerators[acc].numSlices);
}

const LayerCost&
CostTable::cost(const models::Layer& layer, size_t acc,
                uint32_t slices) const
{
    assert(acc < system_.size());
    assert(slices >= 1 && slices <= system_.accelerators[acc].numSlices);
    return entryFor(layer).byAccel[acc][slices - 1];
}

double
CostTable::avgLatencyUs(const models::Layer& layer) const
{
    return entryFor(layer).agg.avgLatencyUs;
}

double
CostTable::sumLatencyUs(const models::Layer& layer) const
{
    return entryFor(layer).agg.sumLatencyUs;
}

double
CostTable::minLatencyUs(const models::Layer& layer) const
{
    return entryFor(layer).agg.minLatencyUs;
}

double
CostTable::sumEnergyMj(const models::Layer& layer) const
{
    return entryFor(layer).agg.sumEnergyMj;
}

double
CostTable::maxEnergyMj(const models::Layer& layer) const
{
    return entryFor(layer).agg.maxEnergyMj;
}

} // namespace cost
} // namespace dream
