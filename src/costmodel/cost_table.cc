#include "costmodel/cost_table.h"

#include <algorithm>
#include <cassert>

namespace dream {
namespace cost {

size_t
LayerKeyHash::operator()(const LayerKey& k) const
{
    size_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(k.kind);
    mix(k.inH);
    mix(k.inW);
    mix(k.inC);
    mix(k.outC);
    mix((uint64_t(k.kH) << 32) | k.kW);
    mix((uint64_t(k.stride) << 32) | k.groups);
    mix(k.repeat);
    return h;
}

LayerKey
makeKey(const models::Layer& layer)
{
    return LayerKey{uint32_t(layer.kind), layer.inH,    layer.inW,
                    layer.inC,            layer.outC,   layer.kH,
                    layer.kW,             layer.stride, layer.groups,
                    layer.repeat};
}

CostTable::CostTable(const hw::SystemConfig& system) : system_(system)
{
    assert(!system_.accelerators.empty());
}

const CostTable::Entry&
CostTable::entryFor(const models::Layer& layer) const
{
    const LayerKey key = makeKey(layer);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    Entry e;
    e.byAccel.resize(system_.size());
    for (size_t a = 0; a < system_.size(); ++a) {
        const auto& acc = system_.accelerators[a];
        e.byAccel[a].resize(acc.numSlices);
        for (uint32_t s = 1; s <= acc.numSlices; ++s)
            e.byAccel[a][s - 1] = estimateLayer(layer, acc, s);
    }
    return cache_.emplace(key, std::move(e)).first->second;
}

void
CostTable::addModel(const models::Model& model)
{
    for (const auto& l : model.layers)
        entryFor(l);
    for (const auto& v : model.variants) {
        for (const auto& l : v.bodyLayers)
            entryFor(l);
    }
}

const LayerCost&
CostTable::cost(const models::Layer& layer, size_t acc) const
{
    return cost(layer, acc, system_.accelerators[acc].numSlices);
}

const LayerCost&
CostTable::cost(const models::Layer& layer, size_t acc,
                uint32_t slices) const
{
    assert(acc < system_.size());
    assert(slices >= 1 && slices <= system_.accelerators[acc].numSlices);
    return entryFor(layer).byAccel[acc][slices - 1];
}

double
CostTable::avgLatencyUs(const models::Layer& layer) const
{
    return sumLatencyUs(layer) / double(system_.size());
}

double
CostTable::sumLatencyUs(const models::Layer& layer) const
{
    double sum = 0.0;
    for (size_t a = 0; a < system_.size(); ++a)
        sum += cost(layer, a).latencyUs;
    return sum;
}

double
CostTable::minLatencyUs(const models::Layer& layer) const
{
    double best = cost(layer, 0).latencyUs;
    for (size_t a = 1; a < system_.size(); ++a)
        best = std::min(best, cost(layer, a).latencyUs);
    return best;
}

double
CostTable::sumEnergyMj(const models::Layer& layer) const
{
    double sum = 0.0;
    for (size_t a = 0; a < system_.size(); ++a)
        sum += cost(layer, a).energyMj;
    return sum;
}

double
CostTable::maxEnergyMj(const models::Layer& layer) const
{
    double worst = cost(layer, 0).energyMj;
    for (size_t a = 1; a < system_.size(); ++a)
        worst = std::max(worst, cost(layer, a).energyMj);
    return worst;
}

} // namespace cost
} // namespace dream
