#include "costmodel/layer_cost.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dream {
namespace cost {

namespace {

using models::Layer;
using models::LayerKind;
using hw::Dataflow;

/** NVDLA-style WS array geometry: input-channel lanes per PE column. */
constexpr uint32_t kWsIcLanes = 64;
/** OS grid folds up to this many output channels concurrently. */
constexpr uint32_t kOsOcFold = 16;
/** Weight-feed width bounding OS execution of FC/RNN layers. */
constexpr uint32_t kOsWeightFeedWidth = 256;
/** Temporal pipeline fill/drain constant (reuse steps to amortise). */
constexpr double kRampSteps = 8.0;
/**
 * Sustained-vs-peak compute derate. Covers tiling DMA stalls,
 * layer-edge bubbles, im2col/halo overheads and non-MAC ops that a
 * cycle-level model (MAESTRO) charges but a roofline does not.
 */
constexpr double kComputeEfficiency = 0.12;
/** Achievable fraction of peak DRAM bandwidth. */
constexpr double kBandwidthEfficiency = 0.45;
/** Weights above this fraction of SRAM cannot stay resident. */
constexpr double kWeightResidencyFraction = 0.75;

/**
 * PE-count quantisation: fraction of PEs busy given `work` parallel
 * iterations mapped onto `pes` PEs (edge-tile effect).
 */
double
quantisedUtil(double work, double pes)
{
    if (work <= 0 || pes <= 0)
        return 0.0;
    if (work < pes)
        return work / pes;
    const double passes = std::ceil(work / pes);
    return work / (passes * pes);
}

/** Temporal ramp: r reuse steps against pipeline fill/drain. */
double
ramp(double r)
{
    return r / (r + kRampSteps);
}

} // anonymous namespace

double
spatialUtilisation(const Layer& layer, Dataflow df, uint32_t pes)
{
    const double positions = double(layer.outPositions());
    switch (df) {
      case Dataflow::WeightStationary: {
        // (icg x outC) weight lanes; depthwise starves the ic lanes.
        // A grouped fallback mapping (splitting channels across
        // kernel positions) floors the starvation at 1/8.
        const double ic_util = std::max(
            0.125, std::min<double>(1.0, double(layer.inCPerGroup()) /
                                             kWsIcLanes));
        const double oc_lanes = std::max(1.0, double(pes) / kWsIcLanes);
        const double oc_util =
            quantisedUtil(double(layer.outC) * layer.kH * layer.kW,
                          oc_lanes);
        return std::max(1e-4, ic_util * oc_util);
      }
      case Dataflow::OutputStationary: {
        // Output positions (x folded channels) mapped onto the grid.
        // FC/RNN layers map output neurons spatially instead but are
        // limited by the weight-feed width (one fresh weight per PE
        // per cycle cannot be sustained beyond the SRAM port width).
        const bool fc_like = layer.outPositions() == 1;
        const double fold = fc_like ? kOsWeightFeedWidth : kOsOcFold;
        const double work =
            positions * std::min<double>(layer.outC, fold);
        return std::max(1e-4, quantisedUtil(work, pes));
      }
    }
    return 1e-4;
}

namespace {

/** Temporal reuse steps per dataflow (drives the ramp factor). */
double
temporalReuse(const Layer& layer, Dataflow df)
{
    switch (df) {
      case Dataflow::WeightStationary:
        // Weights stay resident across output positions (and RNN steps).
        return double(layer.outPositions()) * layer.repeat;
      case Dataflow::OutputStationary:
        // Partial sums stay resident across the accumulation depth.
        return double(layer.accumulationDepth());
    }
    return 1.0;
}

/** SRAM traffic in bytes per dataflow. */
double
sramTrafficBytes(const Layer& layer, Dataflow df)
{
    const double macs = double(layer.macs());
    const double out_bytes = double(layer.outputBytes());
    switch (df) {
      case Dataflow::WeightStationary: {
        // Weights fill once; inputs broadcast 16-wide; psums spill
        // beyond the 64-deep accumulators.
        const double acc_spills =
            std::ceil(double(layer.accumulationDepth()) / 64.0);
        return double(layer.weightBytes()) + macs / 16.0 +
               2.0 * out_bytes * acc_spills;
      }
      case Dataflow::OutputStationary: {
        // Psums stay in PEs; weights stream; inputs reuse either the
        // sliding window (convs) or the output-channel fold (FC).
        const double reuse = std::max<double>(
            double(layer.kH) * layer.kW,
            std::min<double>(layer.outC, 16.0));
        return out_bytes + macs / 16.0 + macs / reuse / 4.0;
      }
    }
    return 0.0;
}

} // anonymous namespace

double
dramTrafficBytes(const Layer& layer, Dataflow df, uint64_t sram_bytes)
{
    const double weight_bytes = double(layer.weightBytes());
    const double act_bytes =
        double(layer.inputBytes() + layer.outputBytes());
    double traffic = weight_bytes + act_bytes;

    // Recurrent layers whose weights cannot stay SRAM-resident
    // (leaving room for activations / double-buffering) refetch them
    // every step: the GNMT effect.
    if (layer.kind == LayerKind::Rnn && layer.repeat > 1 &&
        weight_bytes > kWeightResidencyFraction * double(sram_bytes)) {
        traffic += weight_bytes * (layer.repeat - 1);
    }

    // OS refetches weights per output tile when the map is large.
    if (df == Dataflow::OutputStationary) {
        const double tiles =
            std::ceil(double(layer.outPositions()) / 4096.0);
        traffic += weight_bytes * std::max(0.0, tiles - 1.0);
    }

    // Working sets beyond the buffer incur tiling refetch.
    const double working_set = weight_bytes + act_bytes;
    if (working_set > double(sram_bytes)) {
        const double excess = working_set / double(sram_bytes) - 1.0;
        traffic *= 1.0 + 0.5 * std::min(excess, 2.0);
    }
    return traffic;
}

LayerCost
estimateLayer(const Layer& layer, const hw::AcceleratorConfig& acc,
              uint32_t slices)
{
    assert(slices >= 1 && slices <= acc.numSlices);
    const double pes = double(acc.pesForSlices(slices));
    const double macs = double(layer.macs());

    const double util = spatialUtilisation(layer, acc.dataflow,
                                           uint32_t(pes));
    const double r = ramp(temporalReuse(layer, acc.dataflow));
    const double compute_cycles =
        macs / (pes * kComputeEfficiency * util * r);

    const double dram_bytes =
        dramTrafficBytes(layer, acc.dataflow, acc.sramBytes);
    const double bytes_per_us =
        acc.bandwidthBytesPerUsForSlices(slices) * kBandwidthEfficiency;
    const double bytes_per_cycle = bytes_per_us / acc.clockMhz;
    const double mem_cycles = dram_bytes / bytes_per_cycle;

    const double cycles = std::max(compute_cycles, mem_cycles) +
                          kDispatchOverheadCycles;

    const EnergyConstants ec;
    const double sram_bytes = sramTrafficBytes(layer, acc.dataflow);
    const double energy_pj = macs * ec.macPj +
                             sram_bytes * ec.sramPjPerByte +
                             dram_bytes * ec.dramPjPerByte;

    LayerCost c;
    c.latencyUs = acc.cyclesToUs(cycles);
    // Static energy: leakage of the allocated PEs over the layer's
    // residency (W * us = uJ; -> mJ).
    const double static_mj =
        c.latencyUs * ec.staticWattsPerKPe * (pes / 1024.0) * 1e-3;
    c.energyMj = energy_pj * 1e-9 + static_mj; // pJ -> mJ
    return c;
}

LayerCost
estimateLayer(const Layer& layer, const hw::AcceleratorConfig& acc)
{
    return estimateLayer(layer, acc, acc.numSlices);
}

double
contextSwitchEnergyMj(uint64_t outgoing_activation_bytes,
                      uint64_t incoming_activation_bytes)
{
    const EnergyConstants ec;
    const double bytes = double(outgoing_activation_bytes) +
                         double(incoming_activation_bytes);
    return bytes * ec.dramPjPerByte * 1e-9;
}

double
contextSwitchLatencyUs(uint64_t bytes, const hw::AcceleratorConfig& acc,
                       uint32_t slices)
{
    const double bytes_per_us =
        acc.bandwidthBytesPerUsForSlices(slices) * kBandwidthEfficiency;
    return double(bytes) / bytes_per_us;
}

} // namespace cost
} // namespace dream
