#include "costmodel/cost_table_cache.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "obs/metrics.h"

namespace dream {
namespace cost {

namespace {

/** Append a value's canonical bytes to @p out. Doubles go by bit
 *  pattern: the key must distinguish exactly what the cost model
 *  distinguishes, no more ("90.0" vs "90" formatting) and no less
 *  (negative zero aside, distinct bits give distinct costs). */
void
appendBits(std::string& out, uint64_t v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

void
appendDouble(std::string& out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    appendBits(out, bits);
}

std::atomic<bool> g_enabled{true};

} // anonymous namespace

std::string
systemFingerprint(const hw::SystemConfig& system)
{
    std::string fp;
    fp += system.name;
    fp += '\0';
    appendBits(fp, system.accelerators.size());
    for (const auto& acc : system.accelerators) {
        fp += acc.name;
        fp += '\0';
        appendBits(fp, acc.numPes);
        appendBits(fp, uint64_t(acc.dataflow));
        appendBits(fp, acc.sramBytes);
        appendDouble(fp, acc.dramGbps);
        appendDouble(fp, acc.clockMhz);
        appendBits(fp, acc.numSlices);
    }
    return fp;
}

TableKey
makeTableKey(const hw::SystemConfig& system,
             const workload::Scenario& scenario)
{
    TableKey key;
    key.system = systemFingerprint(system);
    for (const auto& task : scenario.tasks) {
        for (const auto& l : task.model.layers)
            key.layers.push_back(makeKey(l));
        for (const auto& v : task.model.variants) {
            for (const auto& l : v.bodyLayers)
                key.layers.push_back(makeKey(l));
        }
    }
    // Canonical form: the model SET, not the task list — scenarios
    // that run the same networks in a different task arrangement
    // produce the same table.
    std::sort(key.layers.begin(), key.layers.end());
    key.layers.erase(
        std::unique(key.layers.begin(), key.layers.end()),
        key.layers.end());
    return key;
}

size_t
TableKeyHash::operator()(const TableKey& k) const
{
    size_t h = 1469598103934665603ull;
    auto mix = [&h](uint8_t b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    for (const char c : k.system)
        mix(uint8_t(c));
    const LayerKeyHash layer_hash;
    for (const auto& l : k.layers) {
        const size_t lh = layer_hash(l);
        for (size_t i = 0; i < sizeof lh; ++i)
            mix(uint8_t(lh >> (8 * i)));
    }
    return h;
}

CostTableCache::CostTableCache(size_t capacity) : capacity_(capacity)
{
}

uint64_t
CostTableCache::evictOverCapacityLocked()
{
    uint64_t evicted = 0;
    while (map_.size() > capacity_ && !lru_.empty()) {
        map_.erase(lru_.back());
        lru_.pop_back();
        ++evicted;
    }
    evictions_ += evicted;
    return evicted;
}

CostTableCache::Result
CostTableCache::acquire(const hw::SystemConfig& system,
                        const workload::Scenario& scenario)
{
    TableKey key = makeTableKey(system, scenario);

    std::lock_guard<std::mutex> lock(mu_);
    Result r;
    auto it = map_.find(key);
    if (it != map_.end()) {
        ++hits_;
        r.hit = true;
        r.table = it->second.table;
        // Refresh LRU position.
        lru_.splice(lru_.begin(), lru_, it->second.lruPos);
        return r;
    }

    // Build UNDER the lock: a second worker missing on the same key
    // blocks here and then hits, so each distinct pair is built
    // exactly once and the miss count is the distinct-key count.
    ++misses_;
    auto table = std::make_shared<CostTable>(system);
    for (const auto& task : scenario.tasks)
        table->addModel(task.model);
    table->freeze();
    r.table = table;

    lru_.push_front(key);
    map_.emplace(std::move(key), Slot{r.table, lru_.begin()});
    r.evicted = evictOverCapacityLocked();
    return r;
}

CostTableCache::Stats
CostTableCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return Stats{hits_, misses_, evictions_, map_.size()};
}

void
CostTableCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

size_t
CostTableCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
}

void
CostTableCache::setCapacity(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity;
    evictOverCapacityLocked();
}

CostTableCache&
CostTableCache::global()
{
    static CostTableCache instance;
    return instance;
}

bool
CostTableCache::enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
CostTableCache::setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

std::shared_ptr<const CostTable>
acquireCostTable(const hw::SystemConfig& system,
                 const workload::Scenario& scenario,
                 obs::MetricsRegistry* metrics)
{
    if (!CostTableCache::enabled()) {
        // Bypass: a private lazy table, exactly the pre-cache
        // behaviour (and the --no-cost-cache reference mode).
        auto table = std::make_shared<CostTable>(system);
        for (const auto& task : scenario.tasks)
            table->addModel(task.model);
        return table;
    }
    const CostTableCache::Result r =
        CostTableCache::global().acquire(system, scenario);
    if (metrics) {
        // Scheduling history decides which point gets the miss, so
        // the counters are volatile: present for profiling
        // (dream_prof --metrics), excluded from the canonical dump.
        for (const char* name :
             {"costcache/hit", "costcache/miss", "costcache/evict"})
            metrics->markVolatile(name);
        metrics->count("costcache/hit", r.hit ? 1 : 0);
        metrics->count("costcache/miss", r.hit ? 0 : 1);
        metrics->count("costcache/evict", r.evicted);
    }
    return r.table;
}

} // namespace cost
} // namespace dream
