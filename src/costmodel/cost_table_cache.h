/**
 * @file
 * Process-wide cache of pre-warmed, frozen CostTables.
 *
 * Sweeps pay a large fixed tax per grid point when every point
 * builds its own CostTable: a 10k-point parameter scan over one
 * (system, model set) pair re-runs the analytical cost model 10k
 * times for identical inputs. CostTableCache keys tables by the
 * canonical identity of that pair — every SystemConfig field plus
 * the sorted, deduplicated set of layer-shape keys across the
 * scenario's models and Supernet variants — and hands out immutable
 * shared tables, so each distinct pair is built exactly once per
 * process.
 *
 * Determinism argument: a CostTable is a pure function of
 * (SystemConfig, layer-shape set). The key captures both inputs
 * exactly (full equality compare, no hash truncation), tables are
 * pre-warmed via addModel() and frozen before they are published, and
 * frozen lookups never mutate — so a cached run computes the same
 * numbers as an uncached one, byte for byte, at any --jobs value.
 * Only the hit/miss/evict counters depend on scheduling history;
 * they are marked volatile in the metrics registry.
 */

#ifndef DREAM_COSTMODEL_COST_TABLE_CACHE_H
#define DREAM_COSTMODEL_COST_TABLE_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "costmodel/cost_table.h"
#include "workload/scenario.h"

namespace dream {

namespace obs {
class MetricsRegistry;
}

namespace cost {

/**
 * Canonical identity of a (system, model set) pair. Exact: equality
 * compares every field, so two pairs share a table only when their
 * cost tables would be identical.
 */
struct TableKey {
    /** Canonical serialisation of every SystemConfig field. */
    std::string system;
    /** Sorted, deduplicated layer-shape keys of the model set. */
    std::vector<LayerKey> layers;

    bool operator==(const TableKey&) const = default;
};

/** FNV-1a over the key's canonical bytes (bucket index only). */
struct TableKeyHash {
    size_t operator()(const TableKey& k) const;
};

/** Canonical serialisation of a system (also the contextKey input of
 *  engine::ParamSearch). Doubles serialise by bit pattern. */
std::string systemFingerprint(const hw::SystemConfig& system);

/** The cache key of (system, the scenario's model set). */
TableKey makeTableKey(const hw::SystemConfig& system,
                      const workload::Scenario& scenario);

/**
 * Thread-safe LRU cache of frozen CostTables. Tables build under the
 * cache lock, so concurrent workers missing on the same key build it
 * once (the second worker hits), and the miss count equals the
 * number of distinct keys seen (modulo evictions).
 */
class CostTableCache {
public:
    /** Default capacity: far above any bench's distinct-pair count. */
    static constexpr size_t kDefaultCapacity = 64;

    struct Result {
        std::shared_ptr<const CostTable> table;
        bool hit = false;      ///< served from the cache
        uint64_t evicted = 0;  ///< entries evicted by this acquire
    };

    struct Stats {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        size_t entries = 0;
    };

    explicit CostTableCache(size_t capacity = kDefaultCapacity);

    /**
     * The frozen table for (system, scenario's model set): built and
     * pre-warmed now on a miss, shared on a hit. The returned
     * shared_ptr keeps the table alive past eviction.
     */
    Result acquire(const hw::SystemConfig& system,
                   const workload::Scenario& scenario);

    Stats stats() const;
    /** Drop every entry and zero the counters (tests, perf passes). */
    void clear();
    size_t capacity() const;
    /** Evicts LRU entries immediately if over the new capacity. */
    void setCapacity(size_t capacity);

    /** The process-wide instance engine/runner acquire from. */
    static CostTableCache& global();
    /** Global kill switch (--no-cost-cache): when false,
     *  acquireCostTable() builds private tables and never touches
     *  the cache. Default true. */
    static bool enabled();
    static void setEnabled(bool on);

private:
    uint64_t evictOverCapacityLocked();

    mutable std::mutex mu_;
    size_t capacity_;
    /** Keys in LRU order, most recent first. */
    std::list<TableKey> lru_;
    struct Slot {
        std::shared_ptr<const CostTable> table;
        std::list<TableKey>::iterator lruPos;
    };
    std::unordered_map<TableKey, Slot, TableKeyHash> map_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
};

/**
 * The one entry point run paths use: a pre-warmed table for
 * (system, scenario) — shared via the global cache when enabled,
 * private (lazy, like the pre-cache code) when disabled. When
 * @p metrics is non-null and the cache is enabled, records the
 * outcome as counters costcache/{hit,miss,evict}, marked volatile
 * (hit order is scheduling-dependent, so the canonical --metrics
 * dump must not depend on it).
 */
std::shared_ptr<const CostTable>
acquireCostTable(const hw::SystemConfig& system,
                 const workload::Scenario& scenario,
                 obs::MetricsRegistry* metrics = nullptr);

} // namespace cost
} // namespace dream

#endif // DREAM_COSTMODEL_COST_TABLE_CACHE_H
