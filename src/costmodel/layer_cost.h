/**
 * @file
 * Analytical latency/energy model for one layer on one accelerator.
 *
 * Plays the role MAESTRO plays in the paper: an offline cost model
 * whose per-(layer, accelerator) outputs feed the scheduler. The model
 * is a dataflow-aware roofline:
 *
 *   compute cycles = MACs / (PEs * spatialUtil * temporalRamp)
 *   memory cycles  = DRAM bytes / (bytes per cycle)
 *   latency        = max(compute, memory) + dispatch overhead
 *
 * Spatial utilisation is structural per dataflow:
 *  - WS (NVDLA-style) maps (input-channel x output-channel) lanes, so
 *    depthwise layers with one input channel per group collapse to
 *    1/icLanes utilisation, while deep convs and FC saturate.
 *  - OS (ShiDianNao-style) maps output positions, so large spatial
 *    maps saturate while FC layers (one output position) starve.
 *
 * Temporal ramp models pipeline fill/drain: WS needs weight reuse
 * across output positions; OS needs deep accumulation per output.
 *
 * Energy = MAC + SRAM + DRAM components with per-dataflow SRAM
 * amplification (WS spills partial sums; OS streams weights).
 */

#ifndef DREAM_COSTMODEL_LAYER_COST_H
#define DREAM_COSTMODEL_LAYER_COST_H

#include <cstdint>

#include "hw/accelerator.h"
#include "models/layer.h"
#include "models/model.h"

namespace dream {
namespace cost {

/** Cost of one layer execution on one accelerator allocation. */
struct LayerCost {
    double latencyUs = 0.0;  ///< end-to-end layer latency
    double energyMj = 0.0;   ///< energy in millijoules
};

/** Technology constants of the energy model (45 nm derived). */
struct EnergyConstants {
    double macPj = 0.5;    ///< per int8 MAC (incl. register traffic)
    double sramPjPerByte = 2.0;
    double dramPjPerByte = 40.0;
    /**
     * Static (leakage + clock-tree) power per 1024 allocated PEs, in
     * watts. Charged for the full layer latency, so poorly-matched
     * (slow) placements waste energy — the effect DREAM's energy
     * preference score exploits.
     */
    double staticWattsPerKPe = 0.075;
};

/** Fixed per-layer dispatch/configuration overhead in cycles. */
constexpr double kDispatchOverheadCycles = 500.0;

/**
 * Estimate latency and energy of @p layer on @p acc when granted
 * @p slices of the accelerator's spatial slices.
 */
LayerCost estimateLayer(const models::Layer& layer,
                        const hw::AcceleratorConfig& acc,
                        uint32_t slices);

/** estimateLayer() with all slices (whole accelerator). */
LayerCost estimateLayer(const models::Layer& layer,
                        const hw::AcceleratorConfig& acc);

/**
 * Spatial PE utilisation of @p layer under the accelerator dataflow
 * with @p pes PEs (exposed for testing).
 */
double spatialUtilisation(const models::Layer& layer, hw::Dataflow df,
                          uint32_t pes);

/**
 * DRAM traffic in bytes for @p layer under @p df with @p sram_bytes
 * of on-chip buffer (exposed for testing).
 */
double dramTrafficBytes(const models::Layer& layer, hw::Dataflow df,
                        uint64_t sram_bytes);

/**
 * Energy of switching an accelerator between two models: flush the
 * outgoing model's live activations to DRAM and fetch the incoming
 * model's (Section 3.4 of the paper).
 */
double contextSwitchEnergyMj(uint64_t outgoing_activation_bytes,
                             uint64_t incoming_activation_bytes);

/**
 * Latency of moving @p bytes of context-switch traffic over the DRAM
 * interface share of a @p slices allocation on @p acc.
 */
double contextSwitchLatencyUs(uint64_t bytes,
                              const hw::AcceleratorConfig& acc,
                              uint32_t slices);

} // namespace cost
} // namespace dream

#endif // DREAM_COSTMODEL_LAYER_COST_H
