/**
 * @file
 * Experiment harness: one-call execution of (system, scenario,
 * scheduler) runs with CostTable pre-warming, multi-seed averaging
 * and a scheduler factory covering every scheduler in the repo.
 */

#ifndef DREAM_RUNNER_EXPERIMENT_H
#define DREAM_RUNNER_EXPERIMENT_H

#include <memory>
#include <vector>

#include "core/dream_config.h"
#include "core/dream_scheduler.h"
#include "hw/system.h"
#include "metrics/uxcost.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

namespace dream {
namespace runner {

/** Every scheduler evaluated in the paper. */
enum class SchedKind {
    Fcfs,
    StaticFcfs,
    Veltair,
    Planaria,
    DreamFixed,     ///< MapScore with fixed alpha = beta = 1
    DreamMapScore,  ///< Table 4 row 1
    DreamSmartDrop, ///< Table 4 row 2
    DreamFull,      ///< Table 4 row 3
};

/** Instantiate a scheduler. */
std::unique_ptr<sim::Scheduler> makeScheduler(SchedKind kind);

/** Instantiate a DREAM scheduler with an explicit config. */
std::unique_ptr<core::DreamScheduler>
makeDream(const core::DreamConfig& config);

/** The scheduler set of Figures 7, 8 and 12. */
std::vector<SchedKind> evaluationSchedulers();

/** Every SchedKind, in declaration order (name-lookup registries). */
std::vector<SchedKind> allSchedKinds();

/** Display name of a scheduler kind. */
const char* toString(SchedKind kind);

/** Result of one run. */
struct RunResult {
    sim::RunStats stats;
    double uxCost = 0.0;
};

/** Multi-seed aggregate (arithmetic means). */
struct AggregateResult {
    double uxCost = 0.0;
    double dlvRate = 0.0;      ///< overall (summed per-task) DLV rate
    double normEnergy = 0.0;   ///< overall normalised energy
    double energyMj = 0.0;     ///< total actual energy
    double violationFraction = 0.0;
    /** Stats of the last seed's run (for detail inspection). */
    sim::RunStats lastStats;
};

/** Execute one window under @p sched. */
RunResult runOnce(const hw::SystemConfig& system,
                  const workload::Scenario& scenario,
                  sim::Scheduler& sched, double window_us,
                  uint64_t seed);

/** Execute one window per seed and aggregate. */
AggregateResult runSeeds(const hw::SystemConfig& system,
                         const workload::Scenario& scenario,
                         sim::Scheduler& sched, double window_us,
                         const std::vector<uint64_t>& seeds);

/** Default evaluation window (2 s, the paper's Texec example). */
constexpr double kDefaultWindowUs = 2e6;

/** Default seed set for multi-seed averaging. */
std::vector<uint64_t> defaultSeeds();

} // namespace runner
} // namespace dream

#endif // DREAM_RUNNER_EXPERIMENT_H
