#include "runner/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace dream {
namespace runner {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
            }
        }
        os << "\n";
    };
    emit(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_)
        emit(row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtPct(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, v * 100.0);
    return buf;
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double log_sum = 0.0;
    for (const double v : values)
        log_sum += std::log(std::max(v, 1e-300));
    return std::exp(log_sum / double(values.size()));
}

} // namespace runner
} // namespace dream
