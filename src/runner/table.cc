#include "runner/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dream {
namespace runner {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
            }
        }
        os << "\n";
    };
    emit(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_)
        emit(row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtPct(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, v * 100.0);
    return buf;
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double log_sum = 0.0;
    for (const double v : values)
        log_sum += std::log(std::max(v, 1e-300));
    return std::exp(log_sum / double(values.size()));
}

std::string
csvQuote(const std::string& s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

bool
readCsvRecord(std::istream& in, std::vector<std::string>& cells)
{
    cells.clear();
    int c = in.get();
    if (c == std::istream::traits_type::eof())
        return false;

    std::string cell;
    bool quoted = false;
    for (;; c = in.get()) {
        if (c == std::istream::traits_type::eof()) {
            if (quoted)
                throw std::runtime_error(
                    "unterminated quoted CSV cell");
            break;
        }
        if (quoted) {
            if (c == '"') {
                if (in.peek() == '"') {
                    cell += '"';
                    in.get();
                } else {
                    quoted = false;
                }
            } else {
                cell += char(c);
            }
            continue;
        }
        if (c == '"' && cell.empty()) {
            quoted = true;
        } else if (c == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else if (c == '\n') {
            break;
        } else if (c != '\r') {
            cell += char(c);
        }
    }
    cells.push_back(std::move(cell));
    return true;
}

std::string
preciseDouble(double v)
{
    char buf[40];
    // Shortest round-trip: 15 digits suffice for most values, 17
    // always do.
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    return buf; // non-finite: strtod-compatible "nan"/"inf"/"-inf"
}

} // namespace runner
} // namespace dream
