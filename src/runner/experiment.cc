#include "runner/experiment.h"

#include "costmodel/cost_table_cache.h"
#include "sched/fcfs.h"
#include "sched/planaria.h"
#include "sched/static_fcfs.h"
#include "sched/veltair.h"

namespace dream {
namespace runner {

std::unique_ptr<sim::Scheduler>
makeScheduler(SchedKind kind)
{
    switch (kind) {
      case SchedKind::Fcfs:
        return std::make_unique<sched::FcfsScheduler>();
      case SchedKind::StaticFcfs:
        return std::make_unique<sched::StaticFcfsScheduler>();
      case SchedKind::Veltair:
        return std::make_unique<sched::VeltairScheduler>();
      case SchedKind::Planaria:
        return std::make_unique<sched::PlanariaScheduler>();
      case SchedKind::DreamFixed:
        return makeDream(core::DreamConfig::fixedParams());
      case SchedKind::DreamMapScore:
        return makeDream(core::DreamConfig::mapScore());
      case SchedKind::DreamSmartDrop:
        return makeDream(core::DreamConfig::smartDropConfig());
      case SchedKind::DreamFull:
        return makeDream(core::DreamConfig::full());
    }
    return nullptr;
}

std::unique_ptr<core::DreamScheduler>
makeDream(const core::DreamConfig& config)
{
    return std::make_unique<core::DreamScheduler>(config);
}

std::vector<SchedKind>
evaluationSchedulers()
{
    return {SchedKind::Fcfs,          SchedKind::Veltair,
            SchedKind::Planaria,      SchedKind::DreamMapScore,
            SchedKind::DreamSmartDrop, SchedKind::DreamFull};
}

std::vector<SchedKind>
allSchedKinds()
{
    return {SchedKind::Fcfs,           SchedKind::StaticFcfs,
            SchedKind::Veltair,        SchedKind::Planaria,
            SchedKind::DreamFixed,     SchedKind::DreamMapScore,
            SchedKind::DreamSmartDrop, SchedKind::DreamFull};
}

const char*
toString(SchedKind kind)
{
    switch (kind) {
      case SchedKind::Fcfs:
        return "FCFS";
      case SchedKind::StaticFcfs:
        return "StaticFCFS";
      case SchedKind::Veltair:
        return "Veltair";
      case SchedKind::Planaria:
        return "Planaria";
      case SchedKind::DreamFixed:
        return "DREAM-Fixed";
      case SchedKind::DreamMapScore:
        return "DREAM-MapScore";
      case SchedKind::DreamSmartDrop:
        return "DREAM-SmartDrop";
      case SchedKind::DreamFull:
        return "DREAM-Full";
    }
    return "??";
}

RunResult
runOnce(const hw::SystemConfig& system,
        const workload::Scenario& scenario, sim::Scheduler& sched,
        double window_us, uint64_t seed)
{
    // Route through the shared cache: the multi-seed / multi-
    // scheduler loops above this call (runSeeds, bench sweeps,
    // ParamSearch evaluations) repeat one (system, model set) pair
    // many times — each repeat now reuses one frozen table instead
    // of rebuilding it.
    const std::shared_ptr<const cost::CostTable> costs =
        cost::acquireCostTable(system, scenario);

    sim::SimConfig cfg;
    cfg.windowUs = window_us;
    cfg.seed = seed;
    sim::Simulator simulator(system, scenario, *costs, cfg);

    RunResult r;
    r.stats = simulator.run(sched);
    r.uxCost = metrics::uxCost(r.stats);
    return r;
}

AggregateResult
runSeeds(const hw::SystemConfig& system,
         const workload::Scenario& scenario, sim::Scheduler& sched,
         double window_us, const std::vector<uint64_t>& seeds)
{
    AggregateResult agg;
    for (const uint64_t seed : seeds) {
        RunResult r = runOnce(system, scenario, sched, window_us, seed);
        agg.uxCost += r.uxCost;
        agg.dlvRate += r.stats.overallDlvRate();
        agg.normEnergy += r.stats.overallNormEnergy();
        agg.energyMj += r.stats.totalEnergyMj();
        agg.violationFraction += r.stats.violationFraction();
        agg.lastStats = std::move(r.stats);
    }
    const double n = double(seeds.size());
    agg.uxCost /= n;
    agg.dlvRate /= n;
    agg.normEnergy /= n;
    agg.energyMj /= n;
    agg.violationFraction /= n;
    return agg;
}

std::vector<uint64_t>
defaultSeeds()
{
    return {11, 23, 47};
}

} // namespace runner
} // namespace dream
