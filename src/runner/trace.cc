#include "runner/trace.h"

#include <sstream>

namespace dream {
namespace runner {

void
writeFrameTraceCsv(std::ostream& os, const sim::RunStats& stats,
                   const workload::Scenario& scenario)
{
    os << "model,frame,arrival_us,deadline_us,completion_us,"
          "latency_us,violated,dropped,variant,energy_mj\n";
    for (const auto& fr : stats.frames) {
        const auto& model = scenario.tasks[size_t(fr.task)].model;
        const bool completed = fr.completionUs >= 0.0;
        os << model.name << ',' << fr.frameIdx << ',' << fr.arrivalUs
           << ',' << fr.deadlineUs << ','
           << (completed ? fr.completionUs : -1.0) << ','
           << (completed ? fr.completionUs - fr.arrivalUs : -1.0)
           << ',' << (fr.violated ? 1 : 0) << ','
           << (fr.dropped ? 1 : 0) << ',' << fr.variant << ','
           << fr.energyMj << '\n';
    }
}

std::string
frameTraceCsv(const sim::RunStats& stats,
              const workload::Scenario& scenario)
{
    std::ostringstream os;
    writeFrameTraceCsv(os, stats, scenario);
    return os.str();
}

} // namespace runner
} // namespace dream
