#include "runner/trace.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "runner/table.h"

namespace dream {
namespace runner {

const std::string&
frameTraceCsvHeader()
{
    static const std::string header =
        "task,model,frame,arrival_us,deadline_us,completion_us,"
        "latency_us,violated,dropped,in_window,variant,energy_mj";
    return header;
}

void
writeFrameTraceCsv(std::ostream& os, const sim::RunStats& stats,
                   const workload::Scenario& scenario,
                   const TraceMeta& meta)
{
    for (const auto& kv : meta) {
        // "# key=value" has no escape syntax: a newline would turn
        // the rest of the value into a bogus header line, and '=' in
        // the key would shift the split point. Refuse loudly rather
        // than record a trace that cannot be read back.
        if (kv.first.find_first_of("=\n\r") != std::string::npos ||
            kv.second.find_first_of("\n\r") != std::string::npos)
            throw std::invalid_argument(
                "frame-trace metadata cannot represent '" + kv.first +
                "=" + kv.second + "'");
        os << "# " << kv.first << '=' << kv.second << '\n';
    }
    os << frameTraceCsvHeader() << '\n';
    for (const auto& fr : stats.frames) {
        const auto& model = scenario.tasks[size_t(fr.task)].model;
        const bool completed = fr.isCompleted();
        os << fr.task << ',' << csvQuote(model.name) << ','
           << fr.frameIdx << ',' << preciseDouble(fr.arrivalUs) << ','
           << preciseDouble(fr.deadlineUs) << ',';
        if (completed) {
            os << preciseDouble(fr.completionUs) << ','
               << preciseDouble(fr.completionUs - fr.arrivalUs);
        } else {
            os << ','; // empty completion + latency: never completed
        }
        os << ',' << (fr.violated ? 1 : 0) << ','
           << (fr.dropped ? 1 : 0) << ',' << (fr.inWindow ? 1 : 0)
           << ',' << fr.variant << ',' << preciseDouble(fr.energyMj)
           << '\n';
    }
}

std::string
frameTraceCsv(const sim::RunStats& stats,
              const workload::Scenario& scenario, const TraceMeta& meta)
{
    std::ostringstream os;
    writeFrameTraceCsv(os, stats, scenario, meta);
    return os.str();
}

namespace {

[[noreturn]] void
rowError(size_t row, const std::string& what)
{
    throw std::runtime_error("frame-trace CSV row " +
                             std::to_string(row) + ": " + what);
}

double
parseDouble(const std::string& cell, size_t row, const char* column)
{
    if (cell.empty())
        rowError(row, std::string("empty '") + column + "' cell");
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end != cell.c_str() + cell.size())
        rowError(row, std::string("malformed '") + column +
                          "' value '" + cell + "'");
    return v;
}

/** Empty cell -> NaN (never-completed frames). */
double
parseOptionalDouble(const std::string& cell, size_t row, const char* column)
{
    if (cell.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return parseDouble(cell, row, column);
}

int
parseInt(const std::string& cell, size_t row, const char* column)
{
    char* end = nullptr;
    const long v = std::strtol(cell.c_str(), &end, 10);
    if (cell.empty() || end != cell.c_str() + cell.size())
        rowError(row, std::string("malformed '") + column +
                          "' value '" + cell + "'");
    return int(v);
}

bool
parseFlag(const std::string& cell, size_t row, const char* column)
{
    if (cell == "0")
        return false;
    if (cell == "1")
        return true;
    rowError(row, std::string("malformed '") + column + "' flag '" +
                      cell + "' (want 0 or 1)");
}

} // anonymous namespace

workload::FrameTrace
readFrameTraceCsv(std::istream& in)
{
    workload::FrameTrace trace;

    // Leading "# key=value" metadata lines.
    while (in.peek() == '#') {
        std::string line;
        std::getline(in, line);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        size_t start = 1;
        while (start < line.size() && line[start] == ' ')
            ++start;
        const size_t eq = line.find('=', start);
        if (eq == std::string::npos)
            throw std::runtime_error(
                "frame-trace metadata line without '=': " + line);
        trace.meta.emplace_back(line.substr(start, eq - start),
                                line.substr(eq + 1));
    }

    std::vector<std::string> cells;
    if (!readCsvRecord(in, cells))
        throw std::runtime_error("frame-trace CSV has no header");
    {
        std::string header;
        for (size_t i = 0; i < cells.size(); ++i)
            header += (i ? "," : "") + cells[i];
        if (header != frameTraceCsvHeader())
            throw std::runtime_error(
                "unexpected frame-trace CSV header '" + header +
                "', expected '" + frameTraceCsvHeader() + "'");
    }
    const size_t n_columns = cells.size();

    while (readCsvRecord(in, cells)) {
        const size_t row = trace.frames.size() + 1;
        if (cells.size() != n_columns)
            rowError(row, "has " + std::to_string(cells.size()) +
                              " cells, header has " +
                              std::to_string(n_columns));
        workload::TraceFrame fr;
        fr.task = parseInt(cells[0], row, "task");
        fr.model = cells[1];
        fr.frameIdx = parseInt(cells[2], row, "frame");
        fr.arrivalUs = parseDouble(cells[3], row, "arrival_us");
        fr.deadlineUs = parseDouble(cells[4], row, "deadline_us");
        fr.completionUs =
            parseOptionalDouble(cells[5], row, "completion_us");
        fr.latencyUs =
            parseOptionalDouble(cells[6], row, "latency_us");
        if (std::isnan(fr.completionUs) != std::isnan(fr.latencyUs))
            rowError(row, "completion_us and latency_us must be "
                          "empty together");
        fr.violated = parseFlag(cells[7], row, "violated");
        fr.dropped = parseFlag(cells[8], row, "dropped");
        fr.inWindow = parseFlag(cells[9], row, "in_window");
        fr.variant = parseInt(cells[10], row, "variant");
        fr.energyMj = parseDouble(cells[11], row, "energy_mj");
        trace.frames.push_back(std::move(fr));
    }
    return trace;
}

workload::FrameTrace
readFrameTraceCsv(const std::string& path)
{
    std::ifstream in(path);
    if (!in.is_open())
        throw std::runtime_error("cannot open frame-trace CSV: " + path);
    try {
        return readFrameTraceCsv(in);
    } catch (const std::runtime_error& e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

} // namespace runner
} // namespace dream
