/**
 * @file
 * Frame-trace export: write a run's per-frame outcomes as CSV for
 * offline analysis (latency CDFs, violation timelines, plotting the
 * paper's figures from raw data).
 */

#ifndef DREAM_RUNNER_TRACE_H
#define DREAM_RUNNER_TRACE_H

#include <ostream>
#include <string>

#include "sim/stats.h"
#include "workload/scenario.h"

namespace dream {
namespace runner {

/**
 * Render the run's frame trace as CSV (header + one row per frame):
 * model,frame,arrival_us,deadline_us,completion_us,latency_us,
 * violated,dropped,variant,energy_mj
 */
void writeFrameTraceCsv(std::ostream& os, const sim::RunStats& stats,
                        const workload::Scenario& scenario);

/** writeFrameTraceCsv() into a string. */
std::string frameTraceCsv(const sim::RunStats& stats,
                          const workload::Scenario& scenario);

} // namespace runner
} // namespace dream

#endif // DREAM_RUNNER_TRACE_H
