/**
 * @file
 * Frame-trace I/O: write a run's per-frame outcomes as CSV for
 * offline analysis (latency CDFs, violation timelines, plotting the
 * paper's figures from raw data) and parse an exported trace back
 * into typed records for replay (workload::ReplaySource) and
 * regression comparison.
 */

#ifndef DREAM_RUNNER_TRACE_H
#define DREAM_RUNNER_TRACE_H

#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.h"
#include "workload/replay_source.h"
#include "workload/scenario.h"

namespace dream {
namespace runner {

/** Optional "# key=value" metadata lines of a frame-trace CSV. */
using TraceMeta = std::vector<std::pair<std::string, std::string>>;

/** The frame-trace CSV header line (no trailing newline). */
const std::string& frameTraceCsvHeader();

/**
 * Render the run's frame trace as CSV (header + one row per admitted
 * frame, in admission order):
 * task,model,frame,arrival_us,deadline_us,completion_us,latency_us,
 * violated,dropped,in_window,variant,energy_mj
 *
 * Model names are csvQuote()d, so commas/quotes round-trip; times
 * use shortest-round-trip formatting (preciseDouble), so a replayed
 * trace reproduces the recorded doubles bit for bit; the
 * completion/latency cells of never-completed frames are empty (the
 * reader maps them to NaN), never a -1 sentinel a consumer could
 * mistake for a negative latency.
 *
 * @p meta lines ("# key=value"), if any, precede the header — the
 * engine's --record-trace recorder stores the grid-point identity
 * there so a trace file is self-describing. Throws
 * std::invalid_argument on metadata the line format cannot represent
 * (newlines anywhere, '=' in a key) rather than writing a trace the
 * reader cannot parse.
 */
void writeFrameTraceCsv(std::ostream& os, const sim::RunStats& stats,
                        const workload::Scenario& scenario,
                        const TraceMeta& meta = {});

/** writeFrameTraceCsv() into a string. */
std::string frameTraceCsv(const sim::RunStats& stats,
                          const workload::Scenario& scenario,
                          const TraceMeta& meta = {});

/**
 * Parse a frame-trace CSV (as written by writeFrameTraceCsv) back
 * into typed per-frame records, including any leading "# key=value"
 * metadata lines. Empty completion/latency cells map to NaN.
 *
 * @throws std::runtime_error on an unexpected header, a row with the
 * wrong cell count, or a malformed numeric/flag cell (the error
 * names the row and cell).
 */
workload::FrameTrace readFrameTraceCsv(std::istream& in);

/** readFrameTraceCsv from a file; the error names @p path. */
workload::FrameTrace readFrameTraceCsv(const std::string& path);

} // namespace runner
} // namespace dream

#endif // DREAM_RUNNER_TRACE_H
