/**
 * @file
 * Fixed-width console table printer used by the bench harness to
 * emit the rows/series each paper table and figure reports, plus the
 * low-level CSV cell quoting/record reading shared by every CSV
 * producer and consumer in the repo (engine result sinks, the
 * merge/diff toolchain, frame traces).
 */

#ifndef DREAM_RUNNER_TABLE_H
#define DREAM_RUNNER_TABLE_H

#include <istream>
#include <string>
#include <vector>

namespace dream {
namespace runner {

/** Minimal aligned-column table writer. */
class Table {
public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row of preformatted cells. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns (header + separator + rows). */
    std::string str() const;

    /** Render and write to stdout. */
    void print() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits fraction digits. */
std::string fmt(double v, int digits = 4);

/** Format a percentage (0.123 -> "12.3%"). */
std::string fmtPct(double v, int digits = 1);

/** Geometric mean of positive values (NaN on empty input — an empty
 *  geomean has no identity, and a silent 0 would read as a perfect
 *  score in lower-is-better tables). */
double geomean(const std::vector<double>& values);

// ------------------------------------------------- CSV primitives
//
// One quoting rule and one record reader for every CSV the repo
// writes or parses. engine::csvQuote / the result-CSV reader and the
// frame-trace round trip all sit on these, so a cell that one layer
// writes always parses back identically in another.

/**
 * Quote one CSV cell RFC-4180 style: cells containing a comma,
 * quote, newline or carriage return are wrapped in double quotes
 * with embedded quotes doubled; all other cells pass through
 * verbatim. ('\r' is quoted too: readCsvRecord strips bare CRs —
 * Windows line endings — so an unquoted CR would not round-trip.)
 */
std::string csvQuote(const std::string& cell);

/**
 * Split one logical CSV record off @p in into unquoted cells.
 * Handles quoted cells (including embedded newlines and doubled
 * quotes) and CRLF line endings. Returns false at end of input.
 *
 * @throws std::runtime_error on an unterminated quoted cell.
 */
bool readCsvRecord(std::istream& in, std::vector<std::string>& cells);

/**
 * Shortest decimal rendering of @p v that parses back to exactly
 * the same double (tries %.15g, %.16g, %.17g). The frame-trace
 * writer uses it so recorded arrival/deadline times replay
 * bit-for-bit; non-finite values render as strtod-compatible
 * "nan"/"inf"/"-inf".
 */
std::string preciseDouble(double v);

} // namespace runner
} // namespace dream

#endif // DREAM_RUNNER_TABLE_H
