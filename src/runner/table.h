/**
 * @file
 * Fixed-width console table printer used by the bench harness to
 * emit the rows/series each paper table and figure reports.
 */

#ifndef DREAM_RUNNER_TABLE_H
#define DREAM_RUNNER_TABLE_H

#include <string>
#include <vector>

namespace dream {
namespace runner {

/** Minimal aligned-column table writer. */
class Table {
public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row of preformatted cells. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns (header + separator + rows). */
    std::string str() const;

    /** Render and write to stdout. */
    void print() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits fraction digits. */
std::string fmt(double v, int digits = 4);

/** Format a percentage (0.123 -> "12.3%"). */
std::string fmtPct(double v, int digits = 1);

/** Geometric mean of positive values (NaN on empty input — an empty
 *  geomean has no identity, and a silent 0 would read as a perfect
 *  score in lower-is-better tables). */
double geomean(const std::vector<double>& values);

} // namespace runner
} // namespace dream

#endif // DREAM_RUNNER_TABLE_H
