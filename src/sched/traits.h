/**
 * @file
 * Qualitative capability matrix of the implemented schedulers
 * (Tables 1 and 5 of the paper).
 */

#ifndef DREAM_SCHED_TRAITS_H
#define DREAM_SCHED_TRAITS_H

#include <string>
#include <vector>

namespace dream {
namespace sched {

/** Which RTMM challenges a scheduler addresses (Table 1 / Table 5). */
struct SchedulerTraits {
    std::string name;
    bool cascade = false;           ///< handles model cascades
    bool concurrent = false;        ///< handles concurrent pipelines
    bool realTime = false;          ///< deadline aware
    bool taskDynamicity = false;    ///< adapts to task-level changes
    bool modelDynamicity = false;   ///< adapts to model-level changes
    bool energy = false;            ///< optimises energy
    bool heterogeneity = false;     ///< dataflow/size aware placement
};

/** Capability rows for every scheduler in this repository. */
std::vector<SchedulerTraits> allSchedulerTraits();

} // namespace sched
} // namespace dream

#endif // DREAM_SCHED_TRAITS_H
