#include "sched/fcfs.h"

#include <algorithm>

namespace dream {
namespace sched {

sim::Plan
FcfsScheduler::plan(const sim::SchedulerContext& ctx)
{
    sim::Plan p;

    // Oldest request first (by arrival, then id for determinism).
    std::vector<const sim::Request*> ready = ctx.ready;
    std::sort(ready.begin(), ready.end(),
              [](const sim::Request* a, const sim::Request* b) {
                  if (a->arrivalUs != b->arrivalUs)
                      return a->arrivalUs < b->arrivalUs;
                  return a->id < b->id;
              });

    // Whole-model granularity onto idle accelerators in
    // longest-idle-first order ("the first resource that became
    // available"); placement-blind by design.
    std::vector<size_t> idle;
    for (size_t a = 0; a < ctx.numAccels(); ++a) {
        if (ctx.accel(a).idle())
            idle.push_back(a);
    }
    std::sort(idle.begin(), idle.end(), [&ctx](size_t a, size_t b) {
        return ctx.accel(a).busyUntilUs < ctx.accel(b).busyUntilUs;
    });

    size_t next_ready = 0;
    for (const size_t a : idle) {
        if (next_ready >= ready.size())
            break;
        const sim::Request* req = ready[next_ready++];
        sim::Dispatch d;
        d.requestId = req->id;
        d.numLayers = req->remainingLayers();
        d.accel = int(a);
        d.slices = 0; // whole accelerator
        p.dispatches.push_back(d);
    }
    return p;
}

} // namespace sched
} // namespace dream
