/**
 * @file
 * Static FCFS baseline for the Figure 2 motivation study.
 *
 * Builds one offline timetable for the whole window assuming the
 * worst-case dynamic paths (every cascade triggers, no skip gates or
 * early exits fire, Supernets run the Original subnet), then replays
 * those fixed (start time, accelerator) reservations at run time.
 * Reservations for work that never materialises (an untriggered
 * cascade, a skipped block) are wasted, which is exactly the static
 * scheduling weakness Section 2.2 of the paper describes.
 */

#ifndef DREAM_SCHED_STATIC_FCFS_H
#define DREAM_SCHED_STATIC_FCFS_H

#include <cstdint>
#include <map>
#include <vector>

#include "sim/scheduler.h"

namespace dream {
namespace sched {

/** Offline-timetable FCFS at model granularity. */
class StaticFcfsScheduler : public sim::Scheduler {
public:
    std::string name() const override { return "StaticFCFS"; }

    void reset(const sim::SchedulerContext& ctx) override;
    sim::Plan plan(const sim::SchedulerContext& ctx) override;

    /** One offline reservation (exposed for testing). */
    struct Slot {
        workload::TaskId task = 0;
        int frameIdx = 0;
        int accel = 0;
        double startUs = 0.0;
        double endUs = 0.0;
        bool used = false;
    };

    /** The offline timetable built by reset(). */
    const std::vector<Slot>& timetable() const { return slots_; }

private:
    void buildTimetable(const sim::SchedulerContext& ctx);

    std::vector<Slot> slots_;
    /** (task, frameIdx) -> slot index. */
    std::map<std::pair<workload::TaskId, int>, size_t> slotIndex_;
};

} // namespace sched
} // namespace dream

#endif // DREAM_SCHED_STATIC_FCFS_H
