#include "sched/traits.h"

namespace dream {
namespace sched {

std::vector<SchedulerTraits>
allSchedulerTraits()
{
    std::vector<SchedulerTraits> rows;

    SchedulerTraits fcfs;
    fcfs.name = "FCFS";
    fcfs.concurrent = true;
    rows.push_back(fcfs);

    SchedulerTraits static_fcfs;
    static_fcfs.name = "StaticFCFS";
    rows.push_back(static_fcfs);

    SchedulerTraits veltair;
    veltair.name = "Veltair";
    veltair.cascade = true;
    veltair.concurrent = true;
    veltair.realTime = true;
    rows.push_back(veltair);

    SchedulerTraits planaria;
    planaria.name = "Planaria";
    planaria.cascade = true;
    planaria.concurrent = true;
    planaria.realTime = true;
    planaria.heterogeneity = true;
    rows.push_back(planaria);

    SchedulerTraits mapscore;
    mapscore.name = "DREAM-MapScore";
    mapscore.cascade = true;
    mapscore.concurrent = true;
    mapscore.realTime = true;
    mapscore.taskDynamicity = true;
    mapscore.modelDynamicity = true;
    mapscore.energy = true;
    mapscore.heterogeneity = true;
    rows.push_back(mapscore);

    SchedulerTraits full = mapscore;
    full.name = "DREAM-Full";
    rows.push_back(full);

    return rows;
}

} // namespace sched
} // namespace dream
