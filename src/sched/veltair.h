/**
 * @file
 * Veltair-style baseline: adaptive layer-block scheduling.
 *
 * VELTAIR (Liu et al., ASPLOS'22) targets multi-tenant DL serving on
 * a homogeneous CPU cluster and schedules *layer blocks* — groups of
 * consecutive layers sized adaptively to balance scheduling conflicts
 * against scheduling overhead. Per the paper's methodology (§5.1) we
 * model its layer-blocking scheme and scheduler: earliest-deadline-
 * first block dispatch, with an adaptive block-latency threshold that
 * shrinks under contention. The homogeneous-cluster assumption means
 * placement is heterogeneity-blind (first idle accelerator), and no
 * energy awareness — its documented weaknesses on RTMM workloads.
 */

#ifndef DREAM_SCHED_VELTAIR_H
#define DREAM_SCHED_VELTAIR_H

#include "sim/scheduler.h"

namespace dream {
namespace sched {

/** Tunables of the Veltair-style baseline. */
struct VeltairConfig {
    /** Block latency target with a single ready request (us). */
    double baseBlockLatencyUs = 4000.0;
    /** Lower bound on the adaptive threshold (us). */
    double minBlockLatencyUs = 500.0;
};

/** Adaptive layer-block EDF scheduler. */
class VeltairScheduler : public sim::Scheduler {
public:
    explicit VeltairScheduler(VeltairConfig config = {})
        : config_(config)
    {}

    std::string name() const override { return "Veltair"; }

    sim::Plan plan(const sim::SchedulerContext& ctx) override;

    /**
     * Number of layers of @p req to group into the next block so the
     * block latency stays under @p threshold_us on @p accel
     * (exposed for testing). Always at least one layer.
     */
    size_t blockLength(const sim::SchedulerContext& ctx,
                       const sim::Request& req, size_t accel,
                       double threshold_us) const;

private:
    VeltairConfig config_;
};

} // namespace sched
} // namespace dream

#endif // DREAM_SCHED_VELTAIR_H
