#include "sched/veltair.h"

#include <algorithm>

namespace dream {
namespace sched {

size_t
VeltairScheduler::blockLength(const sim::SchedulerContext& ctx,
                              const sim::Request& req, size_t accel,
                              double threshold_us) const
{
    double acc_latency = 0.0;
    size_t n = 0;
    for (size_t i = req.nextLayer; i < req.path.size(); ++i) {
        acc_latency +=
            ctx.costs->cost(req.path[i], accel).latencyUs;
        ++n;
        if (acc_latency >= threshold_us)
            break;
    }
    return std::max<size_t>(1, n);
}

sim::Plan
VeltairScheduler::plan(const sim::SchedulerContext& ctx)
{
    sim::Plan p;

    // EDF among ready requests.
    std::vector<const sim::Request*> ready = ctx.ready;
    std::sort(ready.begin(), ready.end(),
              [](const sim::Request* a, const sim::Request* b) {
                  if (a->deadlineUs != b->deadlineUs)
                      return a->deadlineUs < b->deadlineUs;
                  return a->id < b->id;
              });

    // Adaptive threshold: more contention -> smaller blocks (fewer
    // scheduling conflicts), as in VELTAIR's adaptive compilation.
    const double threshold =
        std::max(config_.minBlockLatencyUs,
                 config_.baseBlockLatencyUs /
                     double(std::max<size_t>(1, ready.size())));

    // Heterogeneity-blind placement (homogeneous-cluster assumption):
    // idle accelerators in longest-idle-first order.
    std::vector<size_t> idle;
    for (size_t a = 0; a < ctx.numAccels(); ++a) {
        if (ctx.accel(a).idle())
            idle.push_back(a);
    }
    std::sort(idle.begin(), idle.end(), [&ctx](size_t a, size_t b) {
        return ctx.accel(a).busyUntilUs < ctx.accel(b).busyUntilUs;
    });

    size_t next_ready = 0;
    for (const size_t a : idle) {
        if (next_ready >= ready.size())
            break;
        const sim::Request* req = ready[next_ready++];
        sim::Dispatch d;
        d.requestId = req->id;
        d.numLayers = blockLength(ctx, *req, a, threshold);
        d.accel = int(a);
        d.slices = 0;
        p.dispatches.push_back(d);
    }
    return p;
}

} // namespace sched
} // namespace dream
