/**
 * @file
 * Planaria-style baseline: deadline-aware spatial fission.
 *
 * Planaria (Ghodrati et al., MICRO'20) dynamically splits an
 * accelerator into sub-arrays and co-locates DNNs, allocating each
 * task the fewest resources that still meet its deadline ("task
 * throttling") so other tasks can co-run. Per the paper's methodology
 * we model its scheduling component on the slice-divisible
 * accelerators of this simulator: EDF-ordered layer-wise dispatch,
 * per-task minimal slice allocation against the predicted remaining
 * latency, spatial co-location of multiple tasks per accelerator.
 * It is deadline-aware and latency-aware but energy-blind and has no
 * dynamicity adaptation, frame dropping or Supernet switching.
 */

#ifndef DREAM_SCHED_PLANARIA_H
#define DREAM_SCHED_PLANARIA_H

#include "sim/scheduler.h"

namespace dream {
namespace sched {

/** Deadline-aware spatial-fission scheduler. */
class PlanariaScheduler : public sim::Scheduler {
public:
    std::string name() const override { return "Planaria"; }

    sim::Plan plan(const sim::SchedulerContext& ctx) override;

    /**
     * Predicted remaining latency of @p req if every remaining layer
     * runs on @p accel with @p slices slices (exposed for testing).
     */
    static double remainingLatencyUs(const sim::SchedulerContext& ctx,
                                     const sim::Request& req,
                                     size_t accel, uint32_t slices);
};

} // namespace sched
} // namespace dream

#endif // DREAM_SCHED_PLANARIA_H
