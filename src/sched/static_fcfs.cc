#include "sched/static_fcfs.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dream {
namespace sched {

namespace {

/** Worst-case whole-model latency on an accelerator (full slices). */
double
worstCaseModelLatencyUs(const models::Model& model,
                        const cost::CostTable& costs, size_t acc)
{
    double sum = 0.0;
    for (const auto& l : model.layers)
        sum += costs.cost(l, acc).latencyUs;
    return sum;
}

/** Grace period before abandoning a reservation whose work never
 *  materialised, as a fraction of the task period. */
constexpr double kAbandonGraceFraction = 1.0;

} // anonymous namespace

void
StaticFcfsScheduler::buildTimetable(const sim::SchedulerContext& ctx)
{
    const auto& scenario = *ctx.scenario;
    const auto& costs = *ctx.costs;

    // Virtual worst-case frame releases. Dependent tasks are assumed
    // released after the parent's mean worst-case latency.
    struct VirtualFrame {
        workload::TaskId task;
        int frameIdx;
        double releaseUs;
    };
    std::vector<VirtualFrame> virtuals;
    std::vector<double> release_offset(scenario.tasks.size(), 0.0);
    for (workload::TaskId t = 0; t < workload::TaskId(
             scenario.tasks.size()); ++t) {
        const auto& spec = scenario.tasks[t];
        if (spec.dependsOn == workload::kNoParent)
            continue;
        const auto& parent = scenario.tasks[spec.dependsOn].model;
        double avg = 0.0;
        for (size_t a = 0; a < ctx.numAccels(); ++a)
            avg += worstCaseModelLatencyUs(parent, costs, a);
        release_offset[t] = release_offset[spec.dependsOn] +
                            avg / double(ctx.numAccels());
    }
    for (workload::TaskId t = 0; t < workload::TaskId(
             scenario.tasks.size()); ++t) {
        const auto& spec = scenario.tasks[t];
        const double period = spec.periodUs();
        const double until = std::min(ctx.windowUs, spec.endUs);
        for (int idx = 0;; ++idx) {
            const double at = spec.startUs + release_offset[t] +
                              double(idx) * period;
            if (at >= until - 1e-3)
                break;
            virtuals.push_back({t, idx, at});
        }
    }
    std::sort(virtuals.begin(), virtuals.end(),
              [](const VirtualFrame& a, const VirtualFrame& b) {
                  if (a.releaseUs != b.releaseUs)
                      return a.releaseUs < b.releaseUs;
                  return a.task < b.task;
              });

    // Greedy FCFS packing onto the accelerator that frees earliest.
    std::vector<double> free_at(ctx.numAccels(), 0.0);
    slots_.clear();
    slotIndex_.clear();
    for (const auto& vf : virtuals) {
        size_t best = 0;
        for (size_t a = 1; a < free_at.size(); ++a) {
            if (free_at[a] < free_at[best])
                best = a;
        }
        const double start = std::max(vf.releaseUs, free_at[best]);
        const double latency = worstCaseModelLatencyUs(
            scenario.tasks[vf.task].model, costs, best);
        Slot slot;
        slot.task = vf.task;
        slot.frameIdx = vf.frameIdx;
        slot.accel = int(best);
        slot.startUs = start;
        slot.endUs = start + latency;
        free_at[best] = slot.endUs;
        slotIndex_[{vf.task, vf.frameIdx}] = slots_.size();
        slots_.push_back(slot);
    }
}

void
StaticFcfsScheduler::reset(const sim::SchedulerContext& ctx)
{
    buildTimetable(ctx);
}

sim::Plan
StaticFcfsScheduler::plan(const sim::SchedulerContext& ctx)
{
    sim::Plan p;
    double next_wake = std::numeric_limits<double>::infinity();

    // Index ready requests by (task, frame).
    std::map<std::pair<workload::TaskId, int>, const sim::Request*>
        ready;
    for (const auto* req : ctx.ready)
        ready[{req->task, req->frameIdx}] = req;

    std::vector<bool> accel_claimed(ctx.numAccels(), false);
    for (auto& slot : slots_) {
        if (slot.used || slot.startUs > ctx.nowUs) {
            if (!slot.used && slot.startUs > ctx.nowUs)
                next_wake = std::min(next_wake, slot.startUs);
            continue;
        }
        const auto it = ready.find({slot.task, slot.frameIdx});
        if (it == ready.end()) {
            // Reserved work has not materialised. Hold the
            // reservation for a grace period, then abandon it.
            const double grace =
                ctx.scenario->tasks[slot.task].periodUs() *
                kAbandonGraceFraction;
            if (ctx.nowUs >= slot.startUs + grace)
                slot.used = true;
            else
                next_wake = std::min(next_wake, slot.startUs + grace);
            continue;
        }
        const auto& acc = ctx.accel(size_t(slot.accel));
        if (!acc.idle() || accel_claimed[size_t(slot.accel)])
            continue;
        sim::Dispatch d;
        d.requestId = it->second->id;
        d.numLayers = it->second->remainingLayers();
        d.accel = slot.accel;
        d.slices = 0;
        p.dispatches.push_back(d);
        accel_claimed[size_t(slot.accel)] = true;
        slot.used = true;
        ready.erase(it);
    }

    if (p.empty() && std::isfinite(next_wake))
        p.wakeUpUs = next_wake;
    return p;
}

} // namespace sched
} // namespace dream
