#include "sched/planaria.h"

#include <algorithm>
#include <limits>

#include "sim/cost_cache.h"

namespace dream {
namespace sched {

double
PlanariaScheduler::remainingLatencyUs(const sim::SchedulerContext& ctx,
                                      const sim::Request& req,
                                      size_t accel, uint32_t slices)
{
    // Planaria's internal prediction scales the full-allocation
    // latency by the slice fraction (its sub-arrays scale PEs and
    // bandwidth proportionally); the simulator charges exact costs.
    const auto& cache = sim::ensureCostCache(req, *ctx.costs);
    const double full = cache.suffixByAcc[accel][req.nextLayer];
    const uint32_t num_slices =
        ctx.system->accelerators[accel].numSlices;
    return full * double(num_slices) / double(slices);
}

sim::Plan
PlanariaScheduler::plan(const sim::SchedulerContext& ctx)
{
    sim::Plan p;

    // EDF order (deadline-driven priority).
    std::vector<const sim::Request*> ready = ctx.ready;
    std::sort(ready.begin(), ready.end(),
              [](const sim::Request* a, const sim::Request* b) {
                  if (a->deadlineUs != b->deadlineUs)
                      return a->deadlineUs < b->deadlineUs;
                  return a->id < b->id;
              });

    // Track slice claims made within this planning round.
    std::vector<uint32_t> free(ctx.numAccels());
    for (size_t a = 0; a < ctx.numAccels(); ++a)
        free[a] = ctx.accel(a).freeSlices;

    for (const auto* req : ready) {
        const double slack = req->deadlineUs - ctx.nowUs;

        // Task throttling: the smallest allocation on any accelerator
        // whose predicted remaining latency meets the deadline.
        int best_acc = -1;
        uint32_t best_slices = 0;
        double best_latency = std::numeric_limits<double>::max();
        bool best_meets = false;
        for (size_t a = 0; a < ctx.numAccels(); ++a) {
            for (uint32_t s = 1; s <= free[a]; ++s) {
                const double lat =
                    remainingLatencyUs(ctx, *req, a, s);
                const bool meets = lat <= slack;
                // Prefer: meets-deadline with fewest slices, then
                // (when nothing meets) the fastest full allocation.
                bool better = false;
                if (meets && !best_meets) {
                    better = true;
                } else if (meets && best_meets) {
                    better = s < best_slices ||
                             (s == best_slices && lat < best_latency);
                } else if (!meets && !best_meets) {
                    better = lat < best_latency;
                }
                if (better) {
                    best_acc = int(a);
                    best_slices = s;
                    best_latency = lat;
                    best_meets = meets;
                }
                if (meets)
                    break; // smallest s on this accel found
            }
        }
        if (best_acc < 0)
            continue; // no free capacity anywhere

        // Layer-wise dispatch: Planaria re-fissions at layer bounds.
        sim::Dispatch d;
        d.requestId = req->id;
        d.numLayers = 1;
        d.accel = best_acc;
        d.slices = best_slices;
        p.dispatches.push_back(d);
        free[size_t(best_acc)] -= best_slices;
    }
    return p;
}

} // namespace sched
} // namespace dream
