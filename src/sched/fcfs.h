/**
 * @file
 * Dynamic first-come-first-served baseline: serves the oldest ready
 * request at model granularity on the first idle accelerator
 * (Nexus/Clockwork-style FCFS, Section 5.1 baseline (1)).
 */

#ifndef DREAM_SCHED_FCFS_H
#define DREAM_SCHED_FCFS_H

#include "sim/scheduler.h"

namespace dream {
namespace sched {

/** Dynamic FCFS at model granularity. */
class FcfsScheduler : public sim::Scheduler {
public:
    std::string name() const override { return "FCFS"; }

    sim::Plan plan(const sim::SchedulerContext& ctx) override;
};

} // namespace sched
} // namespace dream

#endif // DREAM_SCHED_FCFS_H
