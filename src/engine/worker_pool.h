/**
 * @file
 * A minimal fork-join worker pool for the sweep engine.
 *
 * parallelFor() shards an index range across std::threads via an
 * atomic work counter. Work items must be independent; determinism is
 * the caller's contract (the engine writes results into a pre-sized
 * vector by index, so the schedule never affects the output).
 */

#ifndef DREAM_ENGINE_WORKER_POOL_H
#define DREAM_ENGINE_WORKER_POOL_H

#include <cstddef>
#include <functional>

namespace dream {
namespace engine {

/** Fork-join helper running index ranges on up to N threads. */
class WorkerPool {
public:
    /**
     * @param jobs  worker count; values <= 0 select
     *              std::thread::hardware_concurrency().
     */
    explicit WorkerPool(int jobs = 1);

    /** Effective worker count (always >= 1). */
    int jobs() const { return jobs_; }

    /**
     * Invoke @p body(i) for every i in [0, n). With jobs() == 1 the
     * loop runs inline on the calling thread (no thread is spawned).
     * The first exception thrown by any worker is rethrown on the
     * calling thread after all workers joined.
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t)>& body) const;

    /** Worker count used for jobs <= 0 (hardware concurrency). */
    static int defaultJobs();

private:
    int jobs_;
};

} // namespace engine
} // namespace dream

#endif // DREAM_ENGINE_WORKER_POOL_H
