/**
 * @file
 * A minimal fork-join worker pool for the sweep engine.
 *
 * parallelFor() shards an index range across std::threads via an
 * atomic work counter. Work items must be independent; determinism is
 * the caller's contract (the engine writes results into a pre-sized
 * vector by index, so the schedule never affects the output).
 */

#ifndef DREAM_ENGINE_WORKER_POOL_H
#define DREAM_ENGINE_WORKER_POOL_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace dream {
namespace engine {

/** Fork-join helper running index ranges on up to N threads. */
class WorkerPool {
public:
    /**
     * Per-worker occupancy of the most recent parallelFor: how many
     * items the worker claimed from the shared counter, how many of
     * those were steals (claims after its first — work it took
     * because it finished early), wall time spent inside the body
     * and wall time spent idle (from its first claim to the join).
     * Wall-clock numbers — report them as volatile telemetry, never
     * in deterministic output.
     */
    struct WorkerStats {
        uint64_t items = 0;
        uint64_t steals = 0;
        double busySeconds = 0.0;
        double idleSeconds = 0.0;
    };

    /**
     * @param jobs  worker count; values <= 0 select
     *              std::thread::hardware_concurrency().
     */
    explicit WorkerPool(int jobs = 1);

    /** Effective worker count (always >= 1). */
    int jobs() const { return jobs_; }

    /**
     * Invoke @p body(i) for every i in [0, n). With jobs() == 1 the
     * loop runs inline on the calling thread (no thread is spawned).
     * The first exception thrown by any worker is rethrown on the
     * calling thread after all workers joined.
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t)>& body) const;

    /** Worker count used for jobs <= 0 (hardware concurrency). */
    static int defaultJobs();

    /**
     * Occupancy of the most recent parallelFor, one entry per worker
     * slot that participated (slot 0 is the calling thread). Empty
     * before the first run. Not thread-safe against a concurrent
     * parallelFor on the same pool.
     */
    const std::vector<WorkerStats>& lastRunStats() const
    {
        return stats_;
    }

private:
    int jobs_;
    mutable std::vector<WorkerStats> stats_;
};

} // namespace engine
} // namespace dream

#endif // DREAM_ENGINE_WORKER_POOL_H
