#include "engine/result_sink.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "runner/table.h"

namespace dream {
namespace engine {

namespace {

std::string
paramFragment(const ParamMap& params)
{
    std::string out;
    for (const auto& kv : params) {
        if (!out.empty())
            out += ',';
        out += kv.first + '=' + formatValue(kv.second);
    }
    return out;
}

} // anonymous namespace

std::string
jsonString(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n";  break;
          case '\r': out += "\\r";  break;
          case '\t': out += "\\t";  break;
          default:   out += c;      break;
        }
    }
    out += '"';
    return out;
}

std::string
csvQuote(const std::string& s)
{
    // One quoting rule repo-wide: result sinks, the merge/diff
    // toolchain and the frame-trace writer all share
    // runner::csvQuote, so cells round-trip across layers.
    return runner::csvQuote(s);
}

const std::vector<std::string>&
csvIdentityColumns()
{
    static const std::vector<std::string> columns = {
        "index", "scenario", "system", "scheduler"};
    return columns;
}

const std::vector<std::string>&
csvMetricColumns()
{
    static const std::vector<std::string> columns = {
        "seed", "window_us", "ux_cost", "dlv_rate", "norm_energy",
        "energy_mj", "violation_frac", "drop_rate", "total_frames",
        "violated_frames", "dropped_frames", "sched_invocations"};
    return columns;
}

std::string
csvHeaderLine(const std::vector<std::string>& param_columns,
              const std::vector<std::string>& breakdown_columns)
{
    std::string out = "index,scenario,system,scheduler";
    for (const auto& name : param_columns)
        out += ',' + csvQuote(name);
    for (const auto& name : csvMetricColumns())
        out += ',' + name;
    for (const auto& name : breakdown_columns)
        out += ',' + csvQuote(name);
    return out;
}

double
RunRecord::breakdownValue(const std::string& name) const
{
    for (const auto& kv : breakdown) {
        if (kv.first == name)
            return kv.second;
    }
    return std::numeric_limits<double>::quiet_NaN();
}

std::string
RunRecord::cellKey() const
{
    std::string out = scenario + '/' + system + '/' + scheduler;
    const std::string params_frag = paramFragment(params);
    if (!params_frag.empty())
        out += '/' + params_frag;
    return out;
}

std::string
RunRecord::key() const
{
    return cellKey() + "/seed=" + std::to_string(seed);
}

// ---------------------------------------------------------------- CSV

CsvSink::CsvSink(std::ostream& out) : out_(&out) {}

CsvSink::CsvSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get())
{}

CsvSink::~CsvSink()
{
    close();
}

bool
CsvSink::ok() const
{
    return !owned_ || owned_->is_open();
}

void
CsvSink::write(const RunRecord& r)
{
    assert(!flushed_ && "CsvSink reused after close()");
    pending_.push_back(r);
}

void
CsvSink::close()
{
    if (flushed_ || !out_)
        return;
    flushed_ = true;

    // Breakdown header: union over all records, first-seen order
    // (deterministic — records arrive in grid-index order).
    std::vector<std::string> breakdown_columns;
    for (const auto& r : pending_) {
        for (const auto& kv : r.breakdown) {
            if (std::find(breakdown_columns.begin(),
                          breakdown_columns.end(),
                          kv.first) == breakdown_columns.end())
                breakdown_columns.push_back(kv.first);
        }
    }

    if (!pending_.empty()) {
        std::vector<std::string> param_columns;
        for (const auto& kv : pending_.front().params)
            param_columns.push_back(kv.first);
        *out_ << csvHeaderLine(param_columns, breakdown_columns)
              << '\n';
    }
    for (const auto& r : pending_) {
        *out_ << r.index << ',' << csvQuote(r.scenario) << ','
              << csvQuote(r.system) << ',' << csvQuote(r.scheduler);
        for (const auto& kv : r.params)
            *out_ << ',' << formatValue(kv.second);
        *out_ << ',' << r.seed << ',' << formatValue(r.windowUs)
              << ',' << formatValue(r.uxCost) << ','
              << formatValue(r.dlvRate) << ','
              << formatValue(r.normEnergy) << ','
              << formatValue(r.energyMj) << ','
              << formatValue(r.violationFraction) << ','
              << formatValue(r.dropRate) << ',' << r.totalFrames
              << ',' << r.violatedFrames << ',' << r.droppedFrames
              << ',' << r.schedulerInvocations;
        for (const auto& name : breakdown_columns) {
            const double v = r.breakdownValue(name);
            *out_ << ',';
            if (!std::isnan(v))
                *out_ << formatValue(v);
        }
        *out_ << '\n';
    }
    pending_.clear();
    out_->flush();
}

// --------------------------------------------------------------- read

namespace {

using runner::readCsvRecord;

/** Parse and structurally validate a result-CSV header. */
CsvSchema
parseSchema(const std::vector<std::string>& header)
{
    CsvSchema schema;
    schema.columns = header;

    const auto& identity = csvIdentityColumns();
    const auto& metrics = csvMetricColumns();
    if (header.size() < identity.size() + metrics.size())
        throw std::runtime_error("result CSV header has only " +
                                 std::to_string(header.size()) +
                                 " columns");
    for (size_t i = 0; i < identity.size(); ++i) {
        if (header[i] != identity[i])
            throw std::runtime_error(
                "result CSV header column " + std::to_string(i) +
                " is '" + header[i] + "', expected '" + identity[i] +
                "'");
    }

    // Parameter columns run from the identity prefix to the fixed
    // metric span (located by its first column, "seed" — a free
    // parameter axis must not reuse a fixed column name).
    size_t seed_at = identity.size();
    while (seed_at < header.size() && header[seed_at] != metrics[0])
        ++seed_at;
    if (seed_at + metrics.size() > header.size())
        throw std::runtime_error(
            "result CSV header has no '" + metrics[0] +
            "' metric span");
    for (size_t i = 0; i < metrics.size(); ++i) {
        if (header[seed_at + i] != metrics[i])
            throw std::runtime_error(
                "result CSV metric column mismatch: '" +
                header[seed_at + i] + "', expected '" + metrics[i] +
                "'");
    }

    schema.paramColumns.assign(header.begin() + long(identity.size()),
                               header.begin() + long(seed_at));
    schema.breakdownColumns.assign(
        header.begin() + long(seed_at + metrics.size()),
        header.end());
    return schema;
}

} // anonymous namespace

size_t
CsvSchema::columnIndex(const std::string& name) const
{
    for (size_t i = 0; i < columns.size(); ++i) {
        if (columns[i] == name)
            return i;
    }
    return std::string::npos;
}

uint64_t
CsvTable::rowIndex(size_t r) const
{
    return std::strtoull(rows.at(r).at(0).c_str(), nullptr, 10);
}

std::string
CsvTable::rowKey(size_t r) const
{
    const auto& row = rows.at(r);
    const size_t n_params = schema.paramColumns.size();
    std::string out = row.at(1) + '/' + row.at(2) + '/' + row.at(3);
    std::string params_frag;
    for (size_t i = 0; i < n_params; ++i) {
        if (!params_frag.empty())
            params_frag += ',';
        params_frag += schema.paramColumns[i] + '=' + row.at(4 + i);
    }
    if (!params_frag.empty())
        out += '/' + params_frag;
    return out + "/seed=" + row.at(4 + n_params);
}

CsvTable
readResultCsv(std::istream& in)
{
    CsvTable table;
    std::vector<std::string> cells;
    if (!readCsvRecord(in, cells))
        return table; // empty file: a rowless (e.g. empty-shard) run
    table.schema = parseSchema(cells);
    while (readCsvRecord(in, cells)) {
        if (cells.size() != table.schema.columns.size())
            throw std::runtime_error(
                "result CSV row " +
                std::to_string(table.rows.size() + 1) + " has " +
                std::to_string(cells.size()) + " cells, header has " +
                std::to_string(table.schema.columns.size()));
        table.rows.push_back(cells);
    }
    return table;
}

CsvTable
readResultCsv(const std::string& path)
{
    std::ifstream in(path);
    if (!in.is_open())
        throw std::runtime_error("cannot open result CSV: " + path);
    try {
        return readResultCsv(in);
    } catch (const std::runtime_error& e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

// --------------------------------------------------------------- JSON

JsonSink::JsonSink(std::ostream& out) : out_(&out) {}

JsonSink::JsonSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get())
{}

JsonSink::~JsonSink()
{
    close();
}

bool
JsonSink::ok() const
{
    return !owned_ || owned_->is_open();
}

void
JsonSink::write(const RunRecord& r)
{
    *out_ << (opened_ ? ",\n" : "[\n");
    opened_ = true;
    *out_ << "  {\"index\": " << r.index
          << ", \"scenario\": " << jsonString(r.scenario)
          << ", \"system\": " << jsonString(r.system)
          << ", \"scheduler\": " << jsonString(r.scheduler)
          << ", \"params\": {";
    bool first = true;
    for (const auto& kv : r.params) {
        if (!first)
            *out_ << ", ";
        first = false;
        *out_ << jsonString(kv.first) << ": " << formatValue(kv.second);
    }
    *out_ << "}, \"breakdown\": {";
    first = true;
    for (const auto& kv : r.breakdown) {
        if (!first)
            *out_ << ", ";
        first = false;
        *out_ << jsonString(kv.first) << ": " << formatValue(kv.second);
    }
    *out_ << "}, \"seed\": " << r.seed
          << ", \"window_us\": " << formatValue(r.windowUs)
          << ", \"ux_cost\": " << formatValue(r.uxCost)
          << ", \"dlv_rate\": " << formatValue(r.dlvRate)
          << ", \"norm_energy\": " << formatValue(r.normEnergy)
          << ", \"energy_mj\": " << formatValue(r.energyMj)
          << ", \"violation_frac\": "
          << formatValue(r.violationFraction)
          << ", \"drop_rate\": " << formatValue(r.dropRate)
          << ", \"total_frames\": " << r.totalFrames
          << ", \"violated_frames\": " << r.violatedFrames
          << ", \"dropped_frames\": " << r.droppedFrames
          << ", \"sched_invocations\": " << r.schedulerInvocations
          << "}";
}

void
JsonSink::close()
{
    if (closed_ || !out_)
        return;
    *out_ << (opened_ ? "\n]\n" : "[]\n");
    out_->flush();
    closed_ = true;
}

// ---------------------------------------------------------- aggregate

double
AggregateSink::percentile(std::vector<double> values, double pct)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank =
        std::clamp(pct, 0.0, 100.0) / 100.0 * double(values.size() - 1);
    const size_t lo = size_t(rank);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - double(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

void
AggregateSink::write(const RunRecord& r)
{
    const std::string key = r.cellKey();
    auto it = cells_.find(key);
    if (it == cells_.end()) {
        order_.push_back(key);
        Samples s;
        s.scenario = r.scenario;
        s.system = r.system;
        s.scheduler = r.scheduler;
        s.params = r.params;
        it = cells_.emplace(key, std::move(s)).first;
    }
    Samples& s = it->second;
    s.uxCost.push_back(r.uxCost);
    s.dlvRate.push_back(r.dlvRate);
    s.normEnergy.push_back(r.normEnergy);
    s.energyMj.push_back(r.energyMj);
    s.violationFraction.push_back(r.violationFraction);
    s.dropRate.push_back(r.dropRate);
    for (const auto& kv : r.breakdown) {
        auto col = std::find_if(
            s.breakdown.begin(), s.breakdown.end(),
            [&](const auto& c) { return c.first == kv.first; });
        if (col == s.breakdown.end()) {
            s.breakdown.push_back({kv.first, {}});
            col = std::prev(s.breakdown.end());
        }
        col->second.push_back(kv.second);
    }
}

namespace {

AggregateSink::Summary
summarize(const std::vector<double>& v)
{
    AggregateSink::Summary s;
    if (v.empty())
        return s;
    double sum = 0.0;
    s.min = v.front();
    s.max = v.front();
    for (const double x : v) {
        sum += x;
        s.min = std::min(s.min, x);
        s.max = std::max(s.max, x);
    }
    s.mean = sum / double(v.size());
    s.p50 = AggregateSink::percentile(v, 50.0);
    s.p99 = AggregateSink::percentile(v, 99.0);
    return s;
}

} // anonymous namespace

std::vector<AggregateSink::Cell>
AggregateSink::cells() const
{
    std::vector<Cell> out;
    out.reserve(order_.size());
    for (const auto& key : order_) {
        const Samples& s = cells_.at(key);
        Cell c;
        c.key = key;
        c.scenario = s.scenario;
        c.system = s.system;
        c.scheduler = s.scheduler;
        c.params = s.params;
        c.runs = s.uxCost.size();
        c.uxCost = summarize(s.uxCost);
        c.dlvRate = summarize(s.dlvRate);
        c.normEnergy = summarize(s.normEnergy);
        c.energyMj = summarize(s.energyMj);
        c.violationFraction = summarize(s.violationFraction);
        c.dropRate = summarize(s.dropRate);
        for (const auto& col : s.breakdown)
            c.breakdown.push_back({col.first, summarize(col.second)});
        out.push_back(std::move(c));
    }
    return out;
}

const AggregateSink::Summary*
AggregateSink::Cell::breakdownSummary(const std::string& name) const
{
    for (const auto& kv : breakdown) {
        if (kv.first == name)
            return &kv.second;
    }
    return nullptr;
}

// ------------------------------------------------- report helpers

double
meanUxCost(const AggregateSink::Cell& cell)
{
    return cell.uxCost.mean;
}

std::vector<CellGroup>
groupCells(const std::vector<AggregateSink::Cell>& cells,
           const std::function<std::string(const AggregateSink::Cell&)>&
               key)
{
    std::vector<CellGroup> groups;
    for (const auto& cell : cells) {
        const std::string k = key(cell);
        auto it = std::find_if(
            groups.begin(), groups.end(),
            [&](const CellGroup& g) { return g.key == k; });
        if (it == groups.end()) {
            groups.push_back({k, {}});
            it = std::prev(groups.end());
        }
        it->cells.push_back(cell);
    }
    return groups;
}

const AggregateSink::Cell*
findCell(const std::vector<AggregateSink::Cell>& cells,
         const std::string& scenario, const std::string& system,
         const std::string& scheduler, const ParamMap& params)
{
    for (const auto& cell : cells) {
        if (cell.scenario == scenario && cell.system == system &&
            cell.scheduler == scheduler &&
            (params.empty() || cell.params == params)) {
            return &cell;
        }
    }
    return nullptr;
}

const AggregateSink::Cell&
cellAt(const std::vector<AggregateSink::Cell>& cells,
       const std::string& scenario, const std::string& system,
       const std::string& scheduler, const ParamMap& params)
{
    const auto* cell =
        findCell(cells, scenario, system, scheduler, params);
    if (!cell) {
        std::string key = scenario + '/' + system + '/' + scheduler;
        for (const auto& kv : params)
            key += '/' + kv.first + '=' + formatValue(kv.second);
        throw std::out_of_range("no aggregated cell for " + key);
    }
    return *cell;
}

std::vector<SchedulerRatio>
schedulerRatios(const std::vector<AggregateSink::Cell>& cells,
                const std::string& numerator_sched,
                const std::string& denominator_sched,
                const CellMetric& metric)
{
    std::vector<SchedulerRatio> out;
    for (const auto& num : cells) {
        if (num.scheduler != numerator_sched)
            continue;
        const auto* den = findCell(cells, num.scenario, num.system,
                                   denominator_sched, num.params);
        if (!den)
            continue;
        SchedulerRatio r;
        r.scenario = num.scenario;
        r.system = num.system;
        r.params = num.params;
        r.numerator = metric(num);
        r.denominator = metric(*den);
        r.ratio = r.denominator != 0.0
                      ? r.numerator / r.denominator
                      : std::numeric_limits<double>::quiet_NaN();
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace engine
} // namespace dream
