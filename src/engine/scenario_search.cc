#include "engine/scenario_search.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "engine/engine.h"
#include "engine/sweep_grid.h"
#include "workload/rng.h"
#include "workload/scenario_suite.h"

namespace dream {
namespace engine {

namespace {

uint64_t
fnv1a(uint64_t h, const void* data, size_t n)
{
    const auto* bytes = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Exact candidate identity: the canonical spec serialisation (every
 * knob shortest-round-trip, so bit-equal specs — and only those —
 * collide) plus the generation seed.
 */
uint64_t
candidateKey(const workload::ScenarioGenSpec& spec, uint64_t genSeed)
{
    const std::string s = workload::serializeGenSpec(spec);
    uint64_t h = 1469598103934665603ull;
    h = fnv1a(h, s.data(), s.size());
    h = fnv1a(h, &genSeed, sizeof genSeed);
    return h;
}

uint64_t
nextU64(uint64_t& state)
{
    state = workload::rng::splitmix64(state);
    return state;
}

double
clampTo(double v, double lo, double hi)
{
    return std::min(hi, std::max(lo, v));
}

ScenarioSearch::Options
validated(ScenarioSearch::Options opts)
{
    assert(opts.budget > 0 && opts.starts > 0 &&
           opts.neighbors > 0 && opts.maxShrinks > 0);
    assert(opts.windowUs > 0.0);
    std::string why;
    if (!workload::validateGenSpec(opts.base, &why)) {
        assert(false && "ScenarioSearch base spec invalid");
    }
    return opts;
}

/** The engine-backed evaluator: one SweepGrid batch per call. */
ScenarioSearch::BatchEvalFn
makeEngineEvaluator(const ScenarioSearch::Options& opts)
{
    return [opts](const std::vector<
               std::pair<workload::ScenarioGenSpec, uint64_t>>& pts) {
        SweepGrid grid;
        for (size_t i = 0; i < pts.size(); ++i) {
            const workload::ScenarioGenSpec spec = pts[i].first;
            const uint64_t seed = pts[i].second;
            grid.addScenario("cand" + std::to_string(i),
                             [spec, seed]() {
                                 const workload::ScenarioGenerator
                                     gen(spec);
                                 return gen.generate(seed);
                             });
        }
        grid.addSystem(opts.system);
        grid.addScheduler(opts.scheduler);
        const bool baseline =
            opts.scheduler != runner::SchedKind::Fcfs;
        if (baseline)
            grid.addScheduler(runner::SchedKind::Fcfs);
        grid.seeds({opts.simSeed});
        grid.window(opts.windowUs);

        const Engine engine(EngineOptions(opts.jobs));
        const std::vector<RunRecord> records = engine.run(grid);
        // Flat order: scenario slowest, scheduler next, seed fastest
        // — candidate i owns records [i*per, i*per + per).
        const size_t per = baseline ? 2 : 1;
        assert(records.size() == pts.size() * per);
        std::vector<std::pair<double, double>> out(pts.size());
        for (size_t i = 0; i < pts.size(); ++i) {
            const double target = records[i * per].uxCost;
            const double fcfs =
                baseline ? records[i * per + 1].uxCost : target;
            out[i] = {target, fcfs};
        }
        return out;
    };
}

} // anonymous namespace

ScenarioSearch::ScenarioSearch(Options opts)
    : opts_(validated(opts)), evaluate_(makeEngineEvaluator(opts_))
{
}

ScenarioSearch::ScenarioSearch(BatchEvalFn evaluate, Options opts)
    : opts_(validated(opts)), evaluate_(std::move(evaluate))
{
}

std::vector<ScenarioSearch::Candidate>
ScenarioSearch::memoizedBatch(
    const std::vector<std::pair<workload::ScenarioGenSpec, uint64_t>>&
        pts)
{
    // Resolve each point against the transposition table; the first
    // in-batch occurrence of a missing identity simulates, duplicates
    // read the table afterwards (so simulations() == tableSize()
    // always holds). Points beyond the simulation budget are dropped.
    std::vector<uint64_t> keys(pts.size());
    std::vector<char> resolved(pts.size(), 0);
    std::vector<size_t> need;
    std::unordered_map<uint64_t, size_t> in_batch;
    const uint64_t budget = uint64_t(opts_.budget);
    for (size_t i = 0; i < pts.size(); ++i) {
        keys[i] = candidateKey(pts[i].first, pts[i].second);
        if (table_.count(keys[i])) {
            ++hits_;
            resolved[i] = 1;
        } else if (in_batch.emplace(keys[i], i).second) {
            if (simulations_ + need.size() < budget) {
                need.push_back(i);
                resolved[i] = 1;
            } else {
                in_batch.erase(keys[i]); // over budget: dropped
            }
        } else {
            ++hits_;
            resolved[i] = 1;
        }
    }
    if (!need.empty()) {
        std::vector<std::pair<workload::ScenarioGenSpec, uint64_t>>
            sub;
        sub.reserve(need.size());
        for (const size_t i : need)
            sub.push_back(pts[i]);
        const auto costs = evaluate_(sub);
        assert(costs.size() == sub.size());
        simulations_ += need.size();
        for (size_t k = 0; k < need.size(); ++k) {
            Candidate c;
            c.spec = sub[k].first;
            c.genSeed = sub[k].second;
            c.uxTarget = costs[k].first;
            c.uxBaseline = costs[k].second;
            c.value = opts_.goal == Goal::MaxGap
                          ? c.uxTarget - c.uxBaseline
                          : c.uxTarget;
            table_.emplace(keys[need[k]], c);
            evaluated_.push_back(c);
        }
    }
    std::vector<Candidate> out;
    out.reserve(pts.size());
    for (size_t i = 0; i < pts.size(); ++i) {
        if (resolved[i])
            out.push_back(table_.at(keys[i]));
    }
    return out;
}

std::pair<workload::ScenarioGenSpec, uint64_t>
ScenarioSearch::mutate(const workload::ScenarioGenSpec& spec,
                       uint64_t genSeed, double radius,
                       uint64_t& rng) const
{
    using workload::rng::nextUniform;
    workload::ScenarioGenSpec s = spec;

    // The generation seed is the cheapest axis of variation — a
    // reroll lands on an entirely different mix of the same flavour —
    // so it mutates most often.
    if (nextUniform(rng) < 0.5)
        genSeed = nextU64(rng);

    const auto step = [&](double scale) {
        return (2.0 * nextUniform(rng) - 1.0) * radius * scale;
    };

    if (nextUniform(rng) < 0.35)
        s.targetLoad = clampTo(s.targetLoad + step(4.0), 0.0, 12.0);
    if (nextUniform(rng) < 0.35) {
        s.supernetProb = s.supernetProb < 0.0
                             ? nextUniform(rng)
                             : clampTo(s.supernetProb + step(1.0),
                                       0.0, 1.0);
    }
    if (nextUniform(rng) < 0.35) {
        const double v = s.skipProbMin < 0.0
                             ? 0.9 * nextUniform(rng)
                             : clampTo(s.skipProbMin + step(0.5),
                                       0.0, 0.95);
        s.skipProbMin = s.skipProbMax = v;
    }
    if (nextUniform(rng) < 0.35) {
        const double v = s.exitProbMin < 0.0
                             ? 0.9 * nextUniform(rng)
                             : clampTo(s.exitProbMin + step(0.5),
                                       0.0, 0.95);
        s.exitProbMin = s.exitProbMax = v;
    }
    if (nextUniform(rng) < 0.35)
        s.chainProb = clampTo(s.chainProb + step(0.5), 0.0, 1.0);
    if (nextUniform(rng) < 0.35)
        s.activationProb =
            clampTo(s.activationProb + step(0.5), 0.0, 1.0);
    if (nextUniform(rng) < 0.35)
        s.minTriggerProb = clampTo(s.minTriggerProb + step(0.5),
                                   0.05, s.maxTriggerProb);
    if (nextUniform(rng) < 0.35) {
        const int delta =
            int((2.0 * nextUniform(rng) - 1.0) * radius * 3.0);
        s.maxTasks = std::min(12, std::max(s.minTasks,
                                           s.maxTasks + delta));
    }
    return {s, genSeed};
}

ScenarioSearch::Candidate
ScenarioSearch::climbFrom(const Candidate& start, uint64_t& rng)
{
    Candidate cur = start;
    double radius = 1.0;
    int shrinks = 0;
    while (shrinks < opts_.maxShrinks &&
           simulations_ < uint64_t(opts_.budget)) {
        std::vector<std::pair<workload::ScenarioGenSpec, uint64_t>>
            batch;
        batch.reserve(size_t(opts_.neighbors));
        for (int n = 0; n < opts_.neighbors; ++n)
            batch.push_back(
                mutate(cur.spec, cur.genSeed, radius, rng));
        const std::vector<Candidate> results = memoizedBatch(batch);
        if (results.empty())
            break;
        const Candidate* best = &results.front();
        for (const Candidate& c : results) {
            if (c.value > best->value)
                best = &c;
        }
        if (best->value > cur.value) {
            cur = *best;
        } else {
            radius *= 0.5;
            ++shrinks;
        }
    }
    return cur;
}

ScenarioSearch::Result
ScenarioSearch::run()
{
    uint64_t rng = opts_.searchSeed;

    // Depth-0 pass: probe every start in ONE memoized batch. Start 0
    // is the base spec itself; the rest scatter across the knob
    // space (radius 1 mutations of the base, which jump disabled
    // knobs to fresh uniform draws).
    std::vector<std::pair<workload::ScenarioGenSpec, uint64_t>>
        starts;
    starts.reserve(size_t(opts_.starts));
    starts.emplace_back(opts_.base, nextU64(rng));
    for (int s = 1; s < opts_.starts; ++s) {
        auto cand = mutate(opts_.base, 0, 1.0, rng);
        cand.second = nextU64(rng); // always a fresh mix
        starts.push_back(std::move(cand));
    }
    const std::vector<Candidate> probes = memoizedBatch(starts);

    // Best-first exploration (ties: start order), with the
    // ParamSearch dominance cut mirrored for maximization: a start
    // whose probe value is already below a completed climb's optimum
    // is pruned.
    std::vector<size_t> order(probes.size());
    std::iota(order.begin(), order.end(), size_t(0));
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return probes[a].value > probes[b].value;
                     });

    bool have = false;
    double incumbent = 0.0;
    for (const size_t k : order) {
        if (simulations_ >= uint64_t(opts_.budget))
            break;
        if (have && probes[k].value < incumbent) {
            ++pruned_;
            continue;
        }
        const Candidate c = climbFrom(probes[k], rng);
        if (!have || c.value > incumbent)
            incumbent = c.value;
        have = true;
    }

    // The frontier is every distinct candidate ever evaluated,
    // hardest first. Sorting the deterministic evaluation-order list
    // (never the hash table) keeps the result byte-stable.
    Result result;
    result.frontier = evaluated_;
    std::stable_sort(result.frontier.begin(), result.frontier.end(),
                     [](const Candidate& a, const Candidate& b) {
                         return a.value > b.value;
                     });
    if (!result.frontier.empty())
        result.best = result.frontier.front();
    return result;
}

} // namespace engine
} // namespace dream
