/**
 * @file
 * The parallel sweep engine: executes every point of a SweepGrid on
 * a WorkerPool and delivers RunRecords to result sinks.
 *
 * Determinism contract: each grid point is simulated with its own
 * Simulator, CostTable and scheduler instance, seeded from the grid
 * point alone, and records are collected into a pre-sized vector by
 * flat index. Sinks therefore observe the exact same byte stream for
 * any worker count — `--jobs 8` equals `--jobs 1`.
 */

#ifndef DREAM_ENGINE_ENGINE_H
#define DREAM_ENGINE_ENGINE_H

#include <string>
#include <utility>
#include <vector>

#include "engine/result_sink.h"
#include "engine/sweep_grid.h"

namespace dream {

namespace obs {
class MetricsRegistry;
}

namespace engine {

/** Engine knobs. */
struct EngineOptions {
    EngineOptions() = default;
    EngineOptions(int jobs_, std::string trace_dir = {})
        : jobs(jobs_), traceDir(std::move(trace_dir))
    {}

    /** Worker threads; <= 0 selects hardware concurrency. */
    int jobs = 1;
    /**
     * When non-empty, every executed grid point writes its per-frame
     * trace to "<traceDir>/<sanitized point key>.trace.csv" (created
     * on demand), with the point's identity as "# key=value"
     * metadata — the record side of the record -> replay ->
     * dream_diff regression loop. Replayable via
     * workload::ReplaySource / SweepGrid::addTraceReplay /
     * bench/trace_replay.
     */
    std::string traceDir;
    /**
     * Added to point.index in recorded "# index=" metadata. Benches
     * that stream several grids into one result file (ReindexSink)
     * pass their per-grid row base here, so a trace's metadata index
     * always equals the point's row index in the --out CSV.
     * traceEventDir uses the same base as the events' pid.
     */
    size_t traceIndexBase = 0;
    /**
     * When non-empty, every executed grid point writes its telemetry
     * event trace (Chrome trace-event JSON, openable in Perfetto) to
     * "<traceEventDir>/<sanitized point key>-<hash>.trace.json" —
     * the same per-point naming discipline as traceDir. The events'
     * pid is traceIndexBase + point.index.
     */
    std::string traceEventDir;
    /**
     * When non-null, every executed grid point collects an
     * obs::MetricsRegistry which the engine merges into this one in
     * flat-index order after the workers join — so the merged
     * registry (and its JSON dump) is byte-identical for any --jobs
     * value, like every other engine output. Caller-owned; several
     * runs may accumulate into one registry.
     */
    obs::MetricsRegistry* metrics = nullptr;
};

/** Grid-point predicate for subset runs (--filter). */
using PointFilter = std::function<bool(const SweepGrid::Point&)>;

/**
 * One shard of a distributed run: shard @c index of @c count
 * (1-based, "K/N" on the command line). A shard is the K-th
 * contiguous key range of the deterministic grid ordering — after
 * any point filter — so the N shards partition every run exactly
 * (disjoint, covering, balanced to within one point) and
 * concatenating shard results in shard order reproduces the
 * unsharded ordering.
 */
struct ShardSpec {
    int index = 1; ///< 1-based shard number K
    int count = 1; ///< total shards N

    /** True for a real partition (anything but the whole 1/1). */
    bool active() const { return count != 1 || index != 1; }
    /** 1 <= K <= N. */
    bool valid() const { return count >= 1 && index >= 1 &&
                                index <= count; }

    /**
     * Parse "K/N" into @p out. Returns false (and leaves @p out
     * untouched) on malformed or invalid input.
     */
    static bool parse(const std::string& text, ShardSpec* out);

    /** "K/N". */
    std::string toString() const;

    /**
     * Half-open position range [begin, end) of this shard within an
     * ordered sequence of @p total elements. Ranges of shards
     * 1..count tile [0, total); sizes differ by at most one; shards
     * beyond @p total are empty.
     */
    std::pair<size_t, size_t> range(size_t total) const;

    /** True if position @p pos of @p total falls in this shard. */
    bool contains(size_t pos, size_t total) const;
};

/**
 * An explicit position-range chunk of a run: the half-open range
 * [begin, end) of positions in the filtered grid ordering ("B:E" on
 * the command line, "B:" for to-the-end). The finer-grained sibling
 * of ShardSpec: where a shard is the K-th of N equal ranges, a chunk
 * names its positions directly, so one host can split a run into
 * M >> N chunks and hand them to N workers dynamically as each
 * finishes (tools/dream_shard) instead of committing to a static
 * partition up front.
 *
 * For benches that stream several grids into one file, chunk
 * positions are global across the whole run (the concatenation of
 * every grid's filtered ordering, in scan order) — slice() rebases
 * the global range onto one grid's window.
 */
struct ChunkSpec {
    /** Open end: the chunk extends to the end of the ordering. */
    static constexpr size_t npos = size_t(-1);

    size_t begin = 0;  ///< first position
    size_t end = npos; ///< one past the last position

    /** True for a real sub-range (anything but the whole 0:npos). */
    bool active() const { return begin != 0 || end != npos; }
    /** begin <= end. */
    bool valid() const { return begin <= end; }

    /**
     * Parse "B:E" (or "B:") into @p out. Returns false (and leaves
     * @p out untouched) on malformed or invalid input.
     */
    static bool parse(const std::string& text, ChunkSpec* out);

    /** "B:E", or "B:" when the end is open. */
    std::string toString() const;

    /**
     * The chunk clamped to an ordered sequence of @p total elements:
     * a half-open position range within [0, total].
     */
    std::pair<size_t, size_t> range(size_t total) const;

    /** True if position @p pos of @p total falls in this chunk. */
    bool contains(size_t pos, size_t total) const;

    /**
     * The part of this global chunk that falls in the position
     * window [base, base + count), rebased to the window — i.e. the
     * local chunk a grid owning global positions base .. base+count
     * should run. Slices over consecutive windows tile the global
     * range exactly.
     */
    ChunkSpec slice(size_t base, size_t count) const;
};

/**
 * Simulate one grid point in isolation (runs on worker threads).
 * Points of a trace-replay scenario (point.trace set) run through a
 * workload::ReplaySource. A non-empty @p trace_dir records the run's
 * frame trace, with @p trace_index_base added to the recorded
 * "# index=" metadata (see EngineOptions).
 */
RunRecord runGridPoint(const SweepGrid::Point& point,
                       const std::string& trace_dir = {},
                       size_t trace_index_base = 0);

/**
 * runGridPoint with the full option set: frame-trace recording
 * (opts.traceDir), telemetry event traces (opts.traceEventDir) and —
 * when @p metrics_out is non-null — per-run metrics collected into
 * it (the engine merges the per-point registries; opts.metrics
 * itself is NOT touched here, so workers stay share-nothing).
 */
RunRecord runGridPoint(const SweepGrid::Point& point,
                       const EngineOptions& opts,
                       obs::MetricsRegistry* metrics_out);

/**
 * The trace-file name a grid point records to under
 * EngineOptions::traceDir: the point key with every character
 * outside [A-Za-z0-9._=+-] replaced by '_', plus "-<hash>" of the
 * raw key (so keys that sanitize identically cannot overwrite each
 * other's file) and ".trace.csv". A pure function of the key —
 * re-recording a replayed point lands on the same name.
 */
std::string traceFileName(const SweepGrid::Point& point);

/**
 * The telemetry event-trace file a grid point writes under
 * EngineOptions::traceEventDir: the same sanitized-key-plus-hash
 * stem as traceFileName, with extension ".trace.json".
 */
std::string traceEventFileName(const SweepGrid::Point& point);

/**
 * Fill a record's metric fields — including breakdown columns such
 * as Supernet variant shares — from finished run stats (identity
 * fields — scenario, system, scheduler, params, seed, window — are
 * the caller's). Lets benches that run simulations outside the
 * engine still stream rows through result sinks.
 */
void fillMetrics(RunRecord& record, const sim::RunStats& stats);

/** Parallel sweep driver. */
class Engine {
public:
    explicit Engine(EngineOptions opts = {}) : opts_(std::move(opts))
    {}
    /** Engine({N}) shorthand: N worker threads, no trace recording. */
    explicit Engine(int jobs) : opts_(jobs) {}

    /**
     * Execute every point of @p grid, then deliver all records to
     * @p sinks in flat-index order. Sinks are not closed (a sink may
     * accumulate several runs); callers or sink destructors close.
     *
     * @return all records, indexed by flat grid index.
     */
    std::vector<RunRecord>
    run(const SweepGrid& grid,
        const std::vector<ResultSink*>& sinks = {}) const;

    /**
     * Execute only the grid points @p select accepts (a null filter
     * accepts all). Records keep their original grid index but are
     * returned — and delivered to sinks — compacted in ascending
     * index order, so a filtered run is byte-identical for any
     * --jobs value too.
     */
    std::vector<RunRecord> run(const SweepGrid& grid,
                               const std::vector<ResultSink*>& sinks,
                               const PointFilter& select) const;

    /**
     * Execute one shard of a (possibly filtered) run: the points
     * @p select accepts are put in ascending index order, then only
     * the @p shard-th contiguous range of that sequence runs. The
     * N shards of a grid partition the filtered run exactly, so
     * merging their records (by ascending grid index) reproduces
     * the unsharded run byte for byte.
     *
     * @throws std::invalid_argument on an invalid shard spec.
     */
    std::vector<RunRecord> run(const SweepGrid& grid,
                               const std::vector<ResultSink*>& sinks,
                               const PointFilter& select,
                               const ShardSpec& shard) const;

    /**
     * Execute one explicit position-range chunk of a (possibly
     * filtered) run: the points @p select accepts are put in
     * ascending index order, then only positions [chunk.begin,
     * chunk.end) of that sequence run (clamped to its length).
     * Chunks that tile the filtered ordering partition the run
     * exactly, so merging their records reproduces the unsharded
     * run byte for byte — the protocol tools/dream_shard drives.
     *
     * @throws std::invalid_argument on an invalid chunk spec.
     */
    std::vector<RunRecord> run(const SweepGrid& grid,
                               const std::vector<ResultSink*>& sinks,
                               const PointFilter& select,
                               const ChunkSpec& chunk) const;

    /**
     * Execute exactly the grid points @p indices (ascending flat
     * indices a caller has already selected). For callers that have
     * materialised the selection themselves — e.g. bench_main's
     * --chunk path, which needs the selected positions for the
     * global cursor anyway — so the engine does not repeat the
     * filter scan.
     */
    std::vector<RunRecord> run(const SweepGrid& grid,
                               const std::vector<ResultSink*>& sinks,
                               const std::vector<size_t>& indices)
        const;

    int jobs() const { return opts_.jobs; }

private:
    EngineOptions opts_;
};

} // namespace engine
} // namespace dream

#endif // DREAM_ENGINE_ENGINE_H
