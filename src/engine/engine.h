/**
 * @file
 * The parallel sweep engine: executes every point of a SweepGrid on
 * a WorkerPool and delivers RunRecords to result sinks.
 *
 * Determinism contract: each grid point is simulated with its own
 * Simulator, CostTable and scheduler instance, seeded from the grid
 * point alone, and records are collected into a pre-sized vector by
 * flat index. Sinks therefore observe the exact same byte stream for
 * any worker count — `--jobs 8` equals `--jobs 1`.
 */

#ifndef DREAM_ENGINE_ENGINE_H
#define DREAM_ENGINE_ENGINE_H

#include <vector>

#include "engine/result_sink.h"
#include "engine/sweep_grid.h"

namespace dream {
namespace engine {

/** Engine knobs. */
struct EngineOptions {
    /** Worker threads; <= 0 selects hardware concurrency. */
    int jobs = 1;
};

/** Grid-point predicate for subset runs (--filter). */
using PointFilter = std::function<bool(const SweepGrid::Point&)>;

/** Simulate one grid point in isolation (runs on worker threads). */
RunRecord runGridPoint(const SweepGrid::Point& point);

/**
 * Fill a record's metric fields — including breakdown columns such
 * as Supernet variant shares — from finished run stats (identity
 * fields — scenario, system, scheduler, params, seed, window — are
 * the caller's). Lets benches that run simulations outside the
 * engine still stream rows through result sinks.
 */
void fillMetrics(RunRecord& record, const sim::RunStats& stats);

/** Parallel sweep driver. */
class Engine {
public:
    explicit Engine(EngineOptions opts = {}) : opts_(opts) {}

    /**
     * Execute every point of @p grid, then deliver all records to
     * @p sinks in flat-index order. Sinks are not closed (a sink may
     * accumulate several runs); callers or sink destructors close.
     *
     * @return all records, indexed by flat grid index.
     */
    std::vector<RunRecord>
    run(const SweepGrid& grid,
        const std::vector<ResultSink*>& sinks = {}) const;

    /**
     * Execute only the grid points @p select accepts (a null filter
     * accepts all). Records keep their original grid index but are
     * returned — and delivered to sinks — compacted in ascending
     * index order, so a filtered run is byte-identical for any
     * --jobs value too.
     */
    std::vector<RunRecord> run(const SweepGrid& grid,
                               const std::vector<ResultSink*>& sinks,
                               const PointFilter& select) const;

    int jobs() const { return opts_.jobs; }

private:
    EngineOptions opts_;
};

} // namespace engine
} // namespace dream

#endif // DREAM_ENGINE_ENGINE_H
