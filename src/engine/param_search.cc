#include "engine/param_search.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <numeric>

#include "core/dream_config.h"
#include "core/dream_scheduler.h"
#include "costmodel/cost_table_cache.h"
#include "runner/experiment.h"

namespace dream {
namespace engine {

namespace {

uint64_t
fnv1a(uint64_t h, const void* data, size_t n)
{
    const auto* bytes = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
    return h;
}

uint64_t
mixBits(uint64_t h, uint64_t v)
{
    return fnv1a(h, &v, sizeof v);
}

uint64_t
mixDouble(uint64_t h, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return mixBits(h, bits);
}

/**
 * Canonical context key: what the transposition table's values are a
 * function of. A table is only valid for one (system, model set,
 * objective, seed, window, search bounds) combination — searchers
 * with equal keys compute equal costs at equal points.
 */
uint64_t
makeContextKey(const hw::SystemConfig& system,
               const workload::Scenario& scenario,
               const ParamSearch::Options& opts)
{
    uint64_t h = 1469598103934665603ull;
    const std::string sys = cost::systemFingerprint(system);
    h = fnv1a(h, sys.data(), sys.size());
    h = fnv1a(h, scenario.name.data(), scenario.name.size());
    h = mixBits(h, scenario.tasks.size());
    for (const auto& task : scenario.tasks) {
        h = fnv1a(h, task.model.name.data(), task.model.name.size());
        h = mixDouble(h, task.fps);
        h = mixBits(h, uint64_t(int64_t(task.dependsOn)));
        h = mixDouble(h, task.triggerProb);
        h = mixDouble(h, task.startUs);
        h = mixDouble(h, task.endUs);
        h = mixBits(h, task.model.layers.size());
        for (const auto& l : task.model.layers) {
            const cost::LayerKey key = cost::makeKey(l);
            h = fnv1a(h, &key, sizeof key);
        }
        h = mixBits(h, task.model.variants.size());
        for (const auto& v : task.model.variants) {
            h = mixBits(h, v.bodyLayers.size());
            for (const auto& l : v.bodyLayers) {
                const cost::LayerKey key = cost::makeKey(l);
                h = fnv1a(h, &key, sizeof key);
            }
        }
    }
    h = mixBits(h, uint64_t(opts.objective));
    h = mixBits(h, opts.seed);
    h = mixDouble(h, opts.windowUs);
    h = mixDouble(h, opts.initialRadius);
    h = mixDouble(h, opts.radiusThreshold);
    h = mixDouble(h, opts.paramMin);
    h = mixDouble(h, opts.paramMax);
    return h;
}

ParamSearch::Options
validated(ParamSearch::Options opts)
{
    assert(opts.paramMin <= opts.paramMax);
    assert(opts.initialRadius > 0.0 && opts.radiusThreshold > 0.0);
    return opts;
}

} // anonymous namespace

size_t
ParamSearch::PointKeyHash::operator()(const PointKey& k) const
{
    uint64_t h = 1469598103934665603ull;
    h = mixBits(h, k.alphaBits);
    h = mixBits(h, k.betaBits);
    return size_t(h);
}

ParamSearch::ParamSearch(const hw::SystemConfig& system,
                         const workload::Scenario& scenario,
                         const WorkerPool& pool, Options opts)
    : opts_(validated(opts)),
      contextKey_(makeContextKey(system, scenario, opts_))
{
    // Like makeBatchEvaluator, but honouring opts_.windowUs: a
    // batch of fixed-parameter smart-drop DREAM runs on the pool.
    // Each run routes through the shared cost cache (experiment.cc),
    // so the whole search builds ONE cost table.
    const Options o = opts_;
    evaluate_ = [&system, &scenario, &pool,
                 o](const std::vector<std::pair<double, double>>& pts) {
        std::vector<double> out(pts.size());
        pool.parallelFor(pts.size(), [&](size_t i) {
            core::DreamConfig cfg = core::DreamConfig::fixedParams(
                pts[i].first, pts[i].second);
            cfg.smartDrop = true;
            core::DreamScheduler sched(cfg);
            const auto r = runner::runOnce(system, scenario, sched,
                                           o.windowUs, o.seed);
            out[i] = metrics::evaluate(o.objective, r.stats);
        });
        return out;
    };
}

ParamSearch::ParamSearch(const hw::SystemConfig& system,
                         const workload::Scenario& scenario,
                         const WorkerPool& pool)
    : ParamSearch(system, scenario, pool, Options())
{
}

ParamSearch::ParamSearch(core::BatchCostFn evaluate, Options opts)
    : opts_(validated(opts)), evaluate_(std::move(evaluate))
{
}

ParamSearch::ParamSearch(core::BatchCostFn evaluate)
    : ParamSearch(std::move(evaluate), Options())
{
}

core::BatchCostFn
ParamSearch::memoizedBatch()
{
    return [this](const std::vector<std::pair<double, double>>& pts) {
        const auto make_key = [](const std::pair<double, double>& p) {
            PointKey k;
            std::memcpy(&k.alphaBits, &p.first, sizeof k.alphaBits);
            std::memcpy(&k.betaBits, &p.second, sizeof k.betaBits);
            return k;
        };

        std::vector<double> out(pts.size());
        std::vector<PointKey> keys(pts.size());
        std::vector<char> pending(pts.size(), 0);
        // First occurrences of keys missing from the table, in batch
        // order — the only points that simulate.
        std::vector<size_t> need;
        std::unordered_map<PointKey, size_t, PointKeyHash> in_batch;
        for (size_t i = 0; i < pts.size(); ++i) {
            keys[i] = make_key(pts[i]);
            const auto it = table_.find(keys[i]);
            if (it != table_.end()) {
                out[i] = it->second;
                ++hits_;
            } else if (in_batch.emplace(keys[i], i).second) {
                need.push_back(i);
                pending[i] = 1;
            } else {
                // Duplicate within the batch: the first occurrence
                // simulates, this one reads the table afterwards.
                ++hits_;
                pending[i] = 1;
            }
        }
        if (!need.empty()) {
            std::vector<std::pair<double, double>> sub;
            sub.reserve(need.size());
            for (const size_t i : need)
                sub.push_back(pts[i]);
            const std::vector<double> costs = evaluate_(sub);
            assert(costs.size() == sub.size());
            simulations_ += need.size();
            for (size_t k = 0; k < need.size(); ++k)
                table_.emplace(keys[need[k]], costs[k]);
        }
        for (size_t i = 0; i < pts.size(); ++i) {
            if (pending[i])
                out[i] = table_.at(keys[i]);
        }
        return out;
    };
}

core::SearchResult
ParamSearch::runFrom(double a0, double b0)
{
    const uint64_t hits0 = hits_;
    const uint64_t sims0 = simulations_;
    const core::ParamSearch search(opts_.initialRadius,
                                   opts_.radiusThreshold,
                                   opts_.paramMin, opts_.paramMax);
    core::SearchResult r = search.optimize(memoizedBatch(), a0, b0);
    r.memoHits = int(hits_ - hits0);
    r.simulated = int(simulations_ - sims0);
    return r;
}

core::SearchResult
ParamSearch::optimize(double a0, double b0)
{
    return runFrom(a0, b0);
}

core::SearchResult
ParamSearch::optimize(
    const std::vector<std::pair<double, double>>& starts)
{
    assert(!starts.empty());
    const uint64_t hits0 = hits_;
    const uint64_t sims0 = simulations_;

    // Depth-0 pass: probe every start in ONE memoized batch (the
    // searches below then deepen radius by radius from the
    // surviving starts).
    const auto clamp = [this](double v) {
        return std::min(opts_.paramMax, std::max(opts_.paramMin, v));
    };
    std::vector<std::pair<double, double>> probes;
    probes.reserve(starts.size());
    for (const auto& s : starts)
        probes.push_back({clamp(s.first), clamp(s.second)});
    const std::vector<double> probe_cost = memoizedBatch()(probes);

    // Best-first exploration order (ties: original start order).
    std::vector<size_t> order(starts.size());
    std::iota(order.begin(), order.end(), size_t(0));
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return probe_cost[a] < probe_cost[b];
                     });

    core::SearchResult best;
    best.cost = std::numeric_limits<double>::max();
    bool have = false;
    double incumbent = std::numeric_limits<double>::max();
    for (const size_t k : order) {
        // Bound: a start whose own cost is already worse than a
        // completed search's optimum is dominated — cut it.
        if (have && probe_cost[k] > incumbent) {
            ++pruned_;
            continue;
        }
        core::SearchResult r = runFrom(starts[k].first,
                                       starts[k].second);
        incumbent = std::min(incumbent, r.cost);
        if (!have || r.cost < best.cost) {
            best = r;
            have = true;
        }
    }
    // Report the whole multi-start call's transposition traffic on
    // the returned result (the probe batch included).
    best.memoHits = int(hits_ - hits0);
    best.simulated = int(simulations_ - sims0);
    return best;
}

} // namespace engine
} // namespace dream
