/**
 * @file
 * Adversarial scenario hunting: a memoized multi-start search over
 * workload::ScenarioGenSpec knobs x generation seed that MAXIMIZES a
 * chosen scheduler's UXCost (or its gap over FCFS) — the mirror image
 * of ParamSearch, which minimizes over (alpha, beta) at a fixed
 * scenario. Where every other sweep in the repo asks "how well does
 * DREAM do on these mixes?", the hunt asks "which mixes hurt it
 * most?" — and every answer is reproducible from (spec, genSeed)
 * alone, ready to be persisted into the hard-scenarios suite
 * (workload/scenario_suite.h) and re-swept in CI.
 *
 * Structure mirrors ParamSearch deliberately:
 *  - a transposition table keyed by the candidate's exact identity
 *    (serializeGenSpec(spec) + genSeed) — a (spec, seed) pair is
 *    never simulated twice, across rounds, starts and run() calls;
 *  - batch evaluation with in-batch dedup, so duplicate candidates
 *    inside one round cost one simulation (tests assert
 *    simulations() == tableSize());
 *  - a depth-0 probe pass over all starts, explored best-first, with
 *    starts dominated by the incumbent pruned.
 *
 * Candidates are evaluated through engine::Engine as ordinary sweep
 * grids (target scheduler + FCFS baseline per candidate), so --jobs
 * parallelism and the process-wide cost-table cache apply unchanged.
 * The search trajectory is a pure function of (Options, searchSeed):
 * the evaluator consumes no randomness, so results are byte-identical
 * for any worker count.
 */

#ifndef DREAM_ENGINE_SCENARIO_SEARCH_H
#define DREAM_ENGINE_SCENARIO_SEARCH_H

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hw/system.h"
#include "runner/experiment.h"
#include "workload/scenario_gen.h"

namespace dream {
namespace engine {

/** Memoized multi-start hunt for worst-case generated scenarios. */
class ScenarioSearch {
public:
    /** What "hard" means. */
    enum class Goal {
        /** Maximize the target scheduler's UXCost outright. */
        MaxUxCost,
        /**
         * Maximize (target UXCost - FCFS UXCost): mixes where the
         * smart scheduler does WORSE than the naive baseline.
         */
        MaxGap,
    };

    struct Options {
        /** Scheduler under attack. */
        runner::SchedKind scheduler = runner::SchedKind::DreamFull;
        Goal goal = Goal::MaxUxCost;
        /** System the candidates are simulated on. */
        hw::SystemPreset system = hw::SystemPreset::Sys4k1Ws2Os;
        /** Hard cap on distinct (spec, seed) simulations. */
        int budget = 160;
        /** Independent probe starts (start 0 is the base spec). */
        int starts = 6;
        /** Neighbours drawn per hill-climbing round. */
        int neighbors = 8;
        /** Mutation-radius halvings before a start is abandoned. */
        int maxShrinks = 3;
        /** Seed of the search trajectory (mutation draws). */
        uint64_t searchSeed = 1;
        /** Simulation seed every candidate is evaluated with. */
        uint64_t simSeed = 11;
        /** Simulated window per evaluation (microseconds). */
        double windowUs = 1e6;
        /** Worker threads for candidate batches (engine --jobs). */
        int jobs = 1;
        /** Spec the mutations start from (pool must be default). */
        workload::ScenarioGenSpec base;
    };

    /** One evaluated (spec, genSeed) point. */
    struct Candidate {
        workload::ScenarioGenSpec spec;
        uint64_t genSeed = 0;
        /** Objective value (higher = harder), per Options::goal. */
        double value = 0.0;
        /** Target scheduler's UXCost. */
        double uxTarget = 0.0;
        /** FCFS baseline UXCost on the same mix. */
        double uxBaseline = 0.0;
    };

    struct Result {
        /** The hardest mix found (frontier.front()). */
        Candidate best;
        /**
         * Every distinct candidate evaluated, hardest first (ties:
         * evaluation order). Deterministic for a given (Options,
         * searchSeed) — reports built from it are byte-stable.
         */
        std::vector<Candidate> frontier;
    };

    /**
     * Batched candidate evaluator: (uxTarget, uxBaseline) per
     * (spec, genSeed), in order. Must be deterministic.
     */
    using BatchEvalFn =
        std::function<std::vector<std::pair<double, double>>(
            const std::vector<
                std::pair<workload::ScenarioGenSpec, uint64_t>>&)>;

    /**
     * Engine-backed search: candidates are evaluated as SweepGrid
     * batches (one scenario-axis value per candidate, the target
     * scheduler plus FCFS) on an internal Engine with opts.jobs
     * workers.
     */
    explicit ScenarioSearch(Options opts);

    /**
     * Search over an explicit evaluator (tests, custom objectives).
     */
    ScenarioSearch(BatchEvalFn evaluate, Options opts);

    /** Run the hunt. Repeated calls extend the same memo table. */
    Result run();

    /** Distinct candidates actually simulated. */
    uint64_t simulations() const { return simulations_; }
    /** Evaluations served from the transposition table. */
    uint64_t transpositionHits() const { return hits_; }
    /** Distinct (spec, genSeed) identities held. */
    size_t tableSize() const { return table_.size(); }
    /** Starts cut by the incumbent bound. */
    uint64_t prunedStarts() const { return pruned_; }

private:
    /** Evaluate a batch through the memo; appends new Candidates. */
    std::vector<Candidate> memoizedBatch(
        const std::vector<
            std::pair<workload::ScenarioGenSpec, uint64_t>>& pts);

    Candidate climbFrom(const Candidate& start, uint64_t& rng);
    std::pair<workload::ScenarioGenSpec, uint64_t>
    mutate(const workload::ScenarioGenSpec& spec, uint64_t genSeed,
           double radius, uint64_t& rng) const;

    Options opts_;
    BatchEvalFn evaluate_;
    /** Memo: candidate identity hash -> evaluated candidate. */
    std::unordered_map<uint64_t, Candidate> table_;
    /** Every distinct evaluated candidate, in evaluation order. */
    std::vector<Candidate> evaluated_;
    uint64_t simulations_ = 0;
    uint64_t hits_ = 0;
    uint64_t pruned_ = 0;
};

} // namespace engine
} // namespace dream

#endif // DREAM_ENGINE_SCENARIO_SEARCH_H
