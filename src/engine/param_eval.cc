#include "engine/param_eval.h"

#include <cassert>
#include <limits>

#include "core/dream_config.h"
#include "core/dream_scheduler.h"
#include "runner/experiment.h"

namespace dream {
namespace engine {

core::CostFn
makeEvaluator(const hw::SystemConfig& system,
              const workload::Scenario& scenario,
              metrics::Objective objective, uint64_t seed)
{
    return [&system, &scenario, objective, seed](double a, double b) {
        core::DreamConfig cfg = core::DreamConfig::fixedParams(a, b);
        cfg.smartDrop = true;
        core::DreamScheduler sched(cfg);
        const auto r = runner::runOnce(system, scenario, sched,
                                       kSearchWindowUs, seed);
        return metrics::evaluate(objective, r.stats);
    };
}

core::BatchCostFn
makeBatchEvaluator(const hw::SystemConfig& system,
                   const workload::Scenario& scenario,
                   const WorkerPool& pool, metrics::Objective objective,
                   uint64_t seed)
{
    return [&system, &scenario, &pool, objective,
            seed](const std::vector<std::pair<double, double>>& pts) {
        const core::CostFn eval =
            makeEvaluator(system, scenario, objective, seed);
        std::vector<double> out(pts.size());
        pool.parallelFor(pts.size(), [&](size_t i) {
            out[i] = eval(pts[i].first, pts[i].second);
        });
        return out;
    };
}

void
attachBatchTuner(core::DreamScheduler& sched,
                 const hw::SystemConfig& system,
                 const workload::Scenario& scenario,
                 const WorkerPool& pool, metrics::Objective objective,
                 uint64_t seed)
{
    sched.tuner().setBatchEvaluator(
        makeBatchEvaluator(system, scenario, pool, objective, seed));
}

SchedulerSpec
dreamFixedParamScheduler()
{
    SchedulerSpec spec;
    spec.name = "DREAM-Fixed";
    spec.make = [](const ParamMap& params) {
        core::DreamConfig cfg = core::DreamConfig::fixedParams(
            paramValue(params, "alpha"), paramValue(params, "beta"));
        cfg.smartDrop = true;
        return std::unique_ptr<sim::Scheduler>(
            std::make_unique<core::DreamScheduler>(cfg));
    };
    return spec;
}

SweepGrid
paramSpaceGrid(hw::SystemPreset system, workload::ScenarioPreset scenario,
               int n, double window_us, uint64_t seed)
{
    assert(n >= 2 && "parameter grid needs at least 2 points per axis");
    SweepGrid grid;
    grid.addScenario(scenario)
        .addSystem(system)
        .linspaceParam("alpha", 0.0, 2.0, n)
        .linspaceParam("beta", 0.0, 2.0, n)
        .seeds({seed})
        .window(window_us);
    const SchedulerSpec sched = dreamFixedParamScheduler();
    grid.addScheduler(sched.name, sched.make);
    return grid;
}

ParamOptimum
bestParams(const std::vector<RunRecord>& records)
{
    assert(!records.empty());
    ParamOptimum best;
    best.cost = std::numeric_limits<double>::max();
    for (const auto& r : records) {
        if (r.uxCost < best.cost) {
            best.alpha = paramValue(r.params, "alpha");
            best.beta = paramValue(r.params, "beta");
            best.cost = r.uxCost;
        }
    }
    return best;
}

} // namespace engine
} // namespace dream
