/**
 * @file
 * Result records and sinks of the sweep engine.
 *
 * Every grid point produces one RunRecord. The engine delivers
 * records to sinks in flat-index order after all workers joined, so
 * sink output is byte-identical for any --jobs value. CsvSink and
 * JsonSink stream rows to a file/stream; AggregateSink folds records
 * into per-cell summaries (mean/p50/p99/min/max of UXCost, drop
 * rate, energy, ...), where a cell is a grid point minus the seed.
 */

#ifndef DREAM_ENGINE_RESULT_SINK_H
#define DREAM_ENGINE_RESULT_SINK_H

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/sweep_grid.h"

namespace dream {
namespace engine {

/** Metrics of one simulated grid point. */
struct RunRecord {
    size_t index = 0;
    std::string scenario;
    std::string system;
    std::string scheduler;
    ParamMap params;
    uint64_t seed = 0;
    double windowUs = 0.0;

    double uxCost = 0.0;
    double dlvRate = 0.0;    ///< sum of per-task DLV rates (Alg. 2)
    double normEnergy = 0.0; ///< sum of per-task normalised energies
    double energyMj = 0.0;
    double violationFraction = 0.0;
    double dropRate = 0.0;   ///< dropped / total frames
    uint64_t totalFrames = 0;
    uint64_t violatedFrames = 0;
    uint64_t droppedFrames = 0;
    uint64_t schedulerInvocations = 0;

    /** Grid identity incl. seed (matches SweepGrid::Point::key()). */
    std::string key() const;
    /** Grid identity without the seed (the aggregation cell). */
    std::string cellKey() const;
};

/** Receives every RunRecord of an engine run, in index order. */
class ResultSink {
public:
    virtual ~ResultSink() = default;

    /** Consume one record. */
    virtual void write(const RunRecord& record) = 0;

    /** Flush/finalise output. Idempotent; also called by dtors. */
    virtual void close() {}
};

/** Streams records as CSV rows (header emitted on first write). */
class CsvSink : public ResultSink {
public:
    /** Write to a caller-owned stream. */
    explicit CsvSink(std::ostream& out);
    /** Write to a file (truncates). */
    explicit CsvSink(const std::string& path);
    ~CsvSink() override;

    /** False if a file path could not be opened for writing. */
    bool ok() const;

    void write(const RunRecord& record) override;
    void close() override;

private:
    std::unique_ptr<std::ofstream> owned_;
    std::ostream* out_;
    bool headerWritten_ = false;
};

/** Streams records as a JSON array of objects. */
class JsonSink : public ResultSink {
public:
    /** Write to a caller-owned stream. */
    explicit JsonSink(std::ostream& out);
    /** Write to a file (truncates). */
    explicit JsonSink(const std::string& path);
    ~JsonSink() override;

    /** False if a file path could not be opened for writing. */
    bool ok() const;

    void write(const RunRecord& record) override;
    void close() override;

private:
    std::unique_ptr<std::ofstream> owned_;
    std::ostream* out_;
    bool opened_ = false;
    bool closed_ = false;
};

/** Per-cell (grid point minus seed) statistical aggregation. */
class AggregateSink : public ResultSink {
public:
    /** Distribution summary of one metric across a cell's seeds. */
    struct Summary {
        double mean = 0.0;
        double p50 = 0.0;
        double p99 = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    /** Aggregated results of one cell. */
    struct Cell {
        std::string key;
        std::string scenario;
        std::string system;
        std::string scheduler;
        ParamMap params;
        size_t runs = 0;
        Summary uxCost;
        Summary dlvRate;
        Summary normEnergy;
        Summary energyMj;
        Summary violationFraction;
        Summary dropRate;
    };

    void write(const RunRecord& record) override;

    /** Summarised cells in first-seen (i.e. grid index) order. */
    std::vector<Cell> cells() const;

    /**
     * Linear-interpolated percentile of @p values (pct in [0, 100]);
     * 0 on empty input. Exposed for unit testing.
     */
    static double percentile(std::vector<double> values, double pct);

private:
    struct Samples {
        std::string scenario, system, scheduler;
        ParamMap params;
        std::vector<double> uxCost, dlvRate, normEnergy, energyMj,
            violationFraction, dropRate;
    };

    std::vector<std::string> order_;
    std::unordered_map<std::string, Samples> cells_;
};

} // namespace engine
} // namespace dream

#endif // DREAM_ENGINE_RESULT_SINK_H
