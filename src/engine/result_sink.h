/**
 * @file
 * Result records and sinks of the sweep engine.
 *
 * Every grid point produces one RunRecord. The engine delivers
 * records to sinks in flat-index order after all workers joined, so
 * sink output is byte-identical for any --jobs value. CsvSink
 * buffers rows and emits them on close (the header needs the union
 * of breakdown columns); JsonSink streams rows to a file/stream;
 * AggregateSink folds records into per-cell summaries
 * (mean/p50/p99/min/max of UXCost, drop rate, energy, ...), where a
 * cell is a grid point minus the seed.
 *
 * Records additionally carry named breakdown columns (e.g. Supernet
 * variant shares), and the report helpers at the bottom (groupCells,
 * findCell, schedulerRatios) turn aggregated cells into the grouped
 * tables and ratio columns the paper's figures report.
 */

#ifndef DREAM_ENGINE_RESULT_SINK_H
#define DREAM_ENGINE_RESULT_SINK_H

#include <cstdint>
#include <fstream>
#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/sweep_grid.h"

namespace dream {
namespace engine {

/** Metrics of one simulated grid point. */
struct RunRecord {
    size_t index = 0;
    std::string scenario;
    std::string system;
    std::string scheduler;
    ParamMap params;
    uint64_t seed = 0;
    double windowUs = 0.0;

    double uxCost = 0.0;
    double dlvRate = 0.0;    ///< sum of per-task DLV rates (Alg. 2)
    double normEnergy = 0.0; ///< sum of per-task normalised energies
    double energyMj = 0.0;
    double violationFraction = 0.0;
    double dropRate = 0.0;   ///< dropped / total frames
    uint64_t totalFrames = 0;
    uint64_t violatedFrames = 0;
    uint64_t droppedFrames = 0;
    uint64_t schedulerInvocations = 0;

    /**
     * Named breakdown columns beyond the fixed metrics, e.g. the
     * Supernet variant shares of Figure 14 ("OFA_Supernet_v0_share",
     * ...). Filled by fillMetrics() from the run's stats; empty for
     * runs without breakdown-carrying features. CsvSink takes its
     * breakdown header from the first record; JsonSink emits them as
     * a per-record object; AggregateSink summarises them per cell.
     */
    std::vector<std::pair<std::string, double>> breakdown;

    /** Value of breakdown column @p name; NaN if absent. */
    double breakdownValue(const std::string& name) const;

    /** Grid identity incl. seed (matches SweepGrid::Point::key()). */
    std::string key() const;
    /** Grid identity without the seed (the aggregation cell). */
    std::string cellKey() const;
};

/** Receives every RunRecord of an engine run, in index order. */
class ResultSink {
public:
    virtual ~ResultSink() = default;

    /** Consume one record. */
    virtual void write(const RunRecord& record) = 0;

    /** Flush/finalise output. Idempotent; also called by dtors. */
    virtual void close() {}
};

/**
 * Forwards records to an inner sink with a constant added to every
 * record index. Benches that stream several grids into one sink use
 * it (one wrapper per grid, base = rows of the grids before it) to
 * keep the file's index column globally unique and increasing in
 * canonical row order — the property dream_merge sorts sharded rows
 * back into place by. close() is a no-op: the inner sink outlives
 * the wrappers and is closed by its owner.
 */
class ReindexSink : public ResultSink {
public:
    /** A null @p inner turns every write into a no-op. */
    ReindexSink(ResultSink* inner, size_t base)
        : inner_(inner), base_(base)
    {}

    void write(const RunRecord& record) override
    {
        if (!inner_)
            return;
        RunRecord shifted = record;
        shifted.index += base_;
        inner_->write(shifted);
    }

private:
    ResultSink* inner_;
    size_t base_;
};

/**
 * Writes records as CSV rows. Rows are buffered and emitted on
 * close() (also called by the destructor), because the header's
 * breakdown columns are the union over all records in first-seen
 * order — a grid whose first point lacks a breakdown-carrying
 * feature (e.g. a generated scenario without a Supernet) must not
 * drop the columns of later points. Records with absent columns get
 * blank cells, so every row has the same column count.
 */
class CsvSink : public ResultSink {
public:
    /** Write to a caller-owned stream. */
    explicit CsvSink(std::ostream& out);
    /** Write to a file (truncates). */
    explicit CsvSink(const std::string& path);
    ~CsvSink() override;

    /** False if a file path could not be opened for writing. */
    bool ok() const;

    void write(const RunRecord& record) override;
    void close() override;

private:
    std::unique_ptr<std::ofstream> owned_;
    std::ostream* out_;
    std::vector<RunRecord> pending_;
    bool flushed_ = false;
};

/** Streams records as a JSON array of objects. */
class JsonSink : public ResultSink {
public:
    /** Write to a caller-owned stream. */
    explicit JsonSink(std::ostream& out);
    /** Write to a file (truncates). */
    explicit JsonSink(const std::string& path);
    ~JsonSink() override;

    /** False if a file path could not be opened for writing. */
    bool ok() const;

    void write(const RunRecord& record) override;
    void close() override;

private:
    std::unique_ptr<std::ofstream> owned_;
    std::ostream* out_;
    bool opened_ = false;
    bool closed_ = false;
};

/** Per-cell (grid point minus seed) statistical aggregation. */
class AggregateSink : public ResultSink {
public:
    /** Distribution summary of one metric across a cell's seeds. */
    struct Summary {
        double mean = 0.0;
        double p50 = 0.0;
        double p99 = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    /** Aggregated results of one cell. */
    struct Cell {
        std::string key;
        std::string scenario;
        std::string system;
        std::string scheduler;
        ParamMap params;
        size_t runs = 0;
        Summary uxCost;
        Summary dlvRate;
        Summary normEnergy;
        Summary energyMj;
        Summary violationFraction;
        Summary dropRate;
        /** Breakdown columns, summarised per name (record order). */
        std::vector<std::pair<std::string, Summary>> breakdown;

        /** Summary of breakdown column @p name; nullptr if absent. */
        const Summary* breakdownSummary(const std::string& name) const;
    };

    void write(const RunRecord& record) override;

    /** Summarised cells in first-seen (i.e. grid index) order. */
    std::vector<Cell> cells() const;

    /**
     * Linear-interpolated percentile of @p values (pct in [0, 100]);
     * 0 on empty input. Exposed for unit testing.
     */
    static double percentile(std::vector<double> values, double pct);

private:
    struct Samples {
        std::string scenario, system, scheduler;
        ParamMap params;
        std::vector<double> uxCost, dlvRate, normEnergy, energyMj,
            violationFraction, dropRate;
        std::vector<std::pair<std::string, std::vector<double>>>
            breakdown;
    };

    std::vector<std::string> order_;
    std::unordered_map<std::string, Samples> cells_;
};

// -------------------------------------------- CSV schema + reader
//
// The counterpart of CsvSink: schema introspection over a result
// CSV's header and a reader returning the raw (unquoted) cell text
// of every row. The merge/diff tools are built on this — raw cells
// round-trip byte-identically through csvQuote(), numbers are only
// parsed where a comparison needs them.

/** Quote one CSV cell the way CsvSink does (RFC-4180 style). */
std::string csvQuote(const std::string& cell);

/** Escape + quote a JSON string value the way JsonSink does. */
std::string jsonString(const std::string& value);

/**
 * The fixed identity columns every result CSV starts with
 * ("index", "scenario", "system", "scheduler").
 */
const std::vector<std::string>& csvIdentityColumns();

/**
 * The fixed metric columns between the parameter and breakdown
 * spans ("seed", "window_us", ..., "sched_invocations").
 */
const std::vector<std::string>& csvMetricColumns();

/**
 * The header line (no trailing newline) of a result CSV with the
 * given parameter and breakdown column names. Shared by CsvSink and
 * dream_merge so a merged file reproduces the writer's bytes.
 */
std::string
csvHeaderLine(const std::vector<std::string>& param_columns,
              const std::vector<std::string>& breakdown_columns);

/** Introspected structure of one result CSV header. */
struct CsvSchema {
    /** Every header column, in file order. */
    std::vector<std::string> columns;
    /** Free-parameter columns (between "scheduler" and "seed"). */
    std::vector<std::string> paramColumns;
    /** Breakdown columns (after "sched_invocations"). */
    std::vector<std::string> breakdownColumns;

    /** Column position of @p name; npos if absent. */
    size_t columnIndex(const std::string& name) const;

    /** First breakdown column position (== columns.size() if none). */
    size_t breakdownBegin() const
    {
        return columns.size() - breakdownColumns.size();
    }
};

/** One result CSV: schema plus raw cell text per row. */
struct CsvTable {
    CsvSchema schema;
    /** Raw (unquoted) cells; every row has schema.columns.size(). */
    std::vector<std::vector<std::string>> rows;

    /** True for a file with no rows (and thus no header). */
    bool empty() const { return rows.empty(); }

    /** Numeric value of row @p r's "index" column. */
    uint64_t rowIndex(size_t r) const;
    /**
     * Grid-point identity of row @p r — scenario, system,
     * scheduler, parameter values and seed, formatted like
     * SweepGrid::Point::key() ("VR/4K-2WS/FCFS/alpha=1/seed=11").
     */
    std::string rowKey(size_t r) const;
};

/**
 * Parse a result CSV produced by CsvSink. An empty stream yields an
 * empty table (CsvSink writes no header for a rowless run — the
 * empty-shard case).
 *
 * @throws std::runtime_error on a malformed header (fixed columns
 * missing or out of order), an inconsistent cell count, or invalid
 * quoting.
 */
CsvTable readResultCsv(std::istream& in);

/** readResultCsv from a file; the error names @p path. */
CsvTable readResultCsv(const std::string& path);

// ------------------------------------------------- report helpers
//
// Small composable views over AggregateSink::cells() that benches use
// to render grouped tables and scheduler-pair ratio columns without
// hand-rolled map plumbing.

/** Selects the reported metric of a cell (default: mean UXCost). */
using CellMetric = std::function<double(const AggregateSink::Cell&)>;

/** The default report metric: the cell's mean UXCost. */
double meanUxCost(const AggregateSink::Cell& cell);

/** Cells sharing one group key, in first-seen (grid) order. */
struct CellGroup {
    std::string key;
    std::vector<AggregateSink::Cell> cells;
};

/**
 * Group @p cells by @p key (e.g. the system name for the per-system
 * tables of Figures 7/8). Groups and members keep first-seen order,
 * so output is deterministic for any --jobs value.
 */
std::vector<CellGroup>
groupCells(const std::vector<AggregateSink::Cell>& cells,
           const std::function<std::string(const AggregateSink::Cell&)>&
               key);

/**
 * The cell with the given identity (empty @p params matches any);
 * nullptr if absent.
 */
const AggregateSink::Cell*
findCell(const std::vector<AggregateSink::Cell>& cells,
         const std::string& scenario, const std::string& system,
         const std::string& scheduler, const ParamMap& params = {});

/**
 * findCell for report code where absence is a bench bug: throws
 * std::out_of_range naming the missing cell instead of returning
 * nullptr (so a mismatched grid/report axis fails loudly, not with a
 * null dereference).
 */
const AggregateSink::Cell&
cellAt(const std::vector<AggregateSink::Cell>& cells,
       const std::string& scenario, const std::string& system,
       const std::string& scheduler, const ParamMap& params = {});

/** One scheduler-pair ratio row (numerator / denominator metric). */
struct SchedulerRatio {
    std::string scenario;
    std::string system;
    ParamMap params;
    double numerator = 0.0;
    double denominator = 0.0;
    double ratio = 0.0;

    /** The relative reduction 1 - ratio (Figure 2's headline). */
    double reduction() const { return 1.0 - ratio; }
};

/**
 * Ratio columns between two scheduler axis values: for every
 * (scenario, system, params) cell pair present for both schedulers,
 * metric(@p numerator_sched) / metric(@p denominator_sched), in grid
 * order. Pairs missing either side are skipped.
 */
std::vector<SchedulerRatio>
schedulerRatios(const std::vector<AggregateSink::Cell>& cells,
                const std::string& numerator_sched,
                const std::string& denominator_sched,
                const CellMetric& metric = meanUxCost);

} // namespace engine
} // namespace dream

#endif // DREAM_ENGINE_RESULT_SINK_H
