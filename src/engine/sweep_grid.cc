#include "engine/sweep_grid.h"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace dream {
namespace engine {

double
paramValue(const ParamMap& params, const std::string& name)
{
    for (const auto& kv : params) {
        if (kv.first == name)
            return kv.second;
    }
    // Loud in every build type: a scheduler factory reading a
    // parameter the grid does not sweep is a setup bug, and a silent
    // fallback would yield plausible-looking but wrong results.
    throw std::out_of_range("SweepGrid has no parameter axis named '" +
                            name + "'");
}

std::string
formatValue(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

namespace {

/** Key fragment "a=0.25,b=1.5" of a parameter map (empty if none). */
std::string
paramFragment(const ParamMap& params)
{
    std::string out;
    for (const auto& kv : params) {
        if (!out.empty())
            out += ',';
        out += kv.first + '=' + formatValue(kv.second);
    }
    return out;
}

} // anonymous namespace

std::string
SweepGrid::Point::cellKey() const
{
    std::string out = scenario + '/' + system + '/' + scheduler;
    const std::string params_frag = paramFragment(params);
    if (!params_frag.empty())
        out += '/' + params_frag;
    return out;
}

std::string
SweepGrid::Point::key() const
{
    return cellKey() + "/seed=" + std::to_string(seed);
}

SweepGrid&
SweepGrid::addScenario(workload::ScenarioPreset preset,
                       double cascade_prob)
{
    std::string name = workload::toString(preset);
    if (cascade_prob != 0.5)
        name += "@p" + formatValue(cascade_prob);
    return addScenario(std::move(name), [preset, cascade_prob]() {
        return workload::makeScenario(preset, cascade_prob);
    });
}

SweepGrid&
SweepGrid::addScenario(std::string name,
                       std::function<workload::Scenario()> make)
{
    scenarios_.push_back({std::move(name), std::move(make), nullptr});
    return *this;
}

SweepGrid&
SweepGrid::addTraceReplay(TraceReplaySpec spec)
{
    assert(spec.trace && "trace replay needs a recorded trace");
    scenarios_.push_back({std::move(spec.name), std::move(spec.make),
                          std::move(spec.trace)});
    return *this;
}

SweepGrid&
SweepGrid::addTraceReplays(std::vector<TraceReplaySpec> specs)
{
    for (auto& spec : specs)
        addTraceReplay(std::move(spec));
    return *this;
}

SweepGrid&
SweepGrid::addGeneratedScenarios(const workload::ScenarioGenSpec& spec,
                                 int count, uint64_t seed0)
{
    assert(count > 0);
    // One shared generator: factories run on worker threads, and
    // ScenarioGenerator::generate is const and stateless, so sharing
    // is safe. Names come from the generator ("Gen<seed>") so grid
    // keys, sink rows and --filter all address generated scenarios.
    auto gen = std::make_shared<workload::ScenarioGenerator>(spec);
    for (int i = 0; i < count; ++i) {
        const uint64_t seed = seed0 + uint64_t(i);
        addScenario("Gen" + std::to_string(seed),
                    [gen, seed]() { return gen->generate(seed); });
    }
    return *this;
}

SweepGrid&
SweepGrid::addHardScenarios(const workload::HardScenarioSuite& suite)
{
    // Entries already passed loadHardScenarioSuite validation; each
    // becomes one scenario-axis value named after the entry, its
    // mix re-generated from (spec, genSeed) on demand. The suite's
    // system, window and seeds are deliberately NOT applied — the
    // caller decides those axes (bench/hard_scenarios mirrors the
    // suite exactly; a hunt may re-evaluate entries elsewhere).
    for (const auto& entry : suite.entries) {
        const workload::ScenarioGenSpec spec = entry.spec;
        const uint64_t seed = entry.genSeed;
        const std::string name = entry.name;
        addScenario(name, [spec, seed, name]() {
            const workload::ScenarioGenerator gen(spec);
            workload::Scenario s = gen.generate(seed);
            s.name = name;
            return s;
        });
    }
    return *this;
}

SweepGrid&
SweepGrid::addSystem(hw::SystemPreset preset)
{
    return addSystem(hw::toString(preset),
                     [preset]() { return hw::makeSystem(preset); });
}

SweepGrid&
SweepGrid::addSystem(std::string name,
                     std::function<hw::SystemConfig()> make)
{
    systems_.push_back({std::move(name), std::move(make)});
    return *this;
}

SweepGrid&
SweepGrid::addScheduler(runner::SchedKind kind)
{
    return addScheduler(runner::toString(kind), [kind](const ParamMap&) {
        return runner::makeScheduler(kind);
    });
}

SweepGrid&
SweepGrid::addScheduler(std::string name, SchedulerFactory make)
{
    schedulers_.push_back({std::move(name), std::move(make)});
    return *this;
}

SweepGrid&
SweepGrid::addParam(std::string name, std::vector<double> values)
{
    assert(!values.empty() && "parameter axis needs values");
    params_.push_back({std::move(name), std::move(values)});
    return *this;
}

SweepGrid&
SweepGrid::linspaceParam(std::string name, double lo, double hi, int n)
{
    assert(n >= 1);
    std::vector<double> values;
    values.reserve(size_t(n));
    for (int i = 0; i < n; ++i)
        values.push_back(n == 1 ? lo : lo + (hi - lo) * i / (n - 1));
    return addParam(std::move(name), std::move(values));
}

SweepGrid&
SweepGrid::seeds(std::vector<uint64_t> s)
{
    assert(!s.empty() && "seed list must not be empty");
    seeds_ = std::move(s);
    return *this;
}

SweepGrid&
SweepGrid::window(double us)
{
    assert(us > 0.0);
    windowUs_ = us;
    return *this;
}

size_t
SweepGrid::size() const
{
    size_t n = scenarios_.size() * systems_.size() *
               schedulers_.size() * seeds_.size();
    for (const auto& axis : params_)
        n *= axis.values.size();
    return n;
}

SweepGrid::Point
SweepGrid::point(size_t index) const
{
    assert(index < size());

    Point p;
    p.index = index;
    p.windowUs = windowUs_;

    // Decode row-major with the seed fastest, then parameter axes in
    // reverse declaration order, then scheduler, system, scenario.
    size_t rem = index;
    const size_t seed_i = rem % seeds_.size();
    rem /= seeds_.size();
    p.seed = seeds_[seed_i];

    p.params.resize(params_.size());
    for (size_t k = params_.size(); k-- > 0;) {
        const auto& axis = params_[k];
        const size_t vi = rem % axis.values.size();
        rem /= axis.values.size();
        p.params[k] = {axis.name, axis.values[vi]};
    }

    const size_t sched_i = rem % schedulers_.size();
    rem /= schedulers_.size();
    const size_t sys_i = rem % systems_.size();
    rem /= systems_.size();
    const size_t sc_i = rem;
    assert(sc_i < scenarios_.size());

    p.scenario = scenarios_[sc_i].name;
    p.system = systems_[sys_i].name;
    p.scheduler = schedulers_[sched_i].name;
    p.makeScenario = &scenarios_[sc_i].make;
    p.makeSystem = &systems_[sys_i].make;
    p.makeScheduler = &schedulers_[sched_i].make;
    p.trace = scenarios_[sc_i].trace.get();
    return p;
}

} // namespace engine
} // namespace dream
