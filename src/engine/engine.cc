#include "engine/engine.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "costmodel/cost_table_cache.h"
#include "engine/worker_pool.h"
#include "metrics/uxcost.h"
#include "obs/telemetry.h"
#include "runner/table.h"
#include "runner/trace.h"
#include "sim/simulator.h"

namespace dream {
namespace engine {

bool
ShardSpec::parse(const std::string& text, ShardSpec* out)
{
    const size_t slash = text.find('/');
    if (slash == 0 || slash == std::string::npos ||
        slash + 1 >= text.size())
        return false;
    char* end = nullptr;
    const long k = std::strtol(text.c_str(), &end, 10);
    if (end != text.c_str() + slash)
        return false;
    const char* n_begin = text.c_str() + slash + 1;
    const long n = std::strtol(n_begin, &end, 10);
    if (end != text.c_str() + text.size())
        return false;
    // Range-check before narrowing: huge K/N must be rejected, not
    // silently wrapped into a small (or whole-grid) shard.
    if (k < 1 || n < 1 || k > INT_MAX || n > INT_MAX)
        return false;
    const ShardSpec spec{int(k), int(n)};
    if (!spec.valid())
        return false;
    *out = spec;
    return true;
}

std::string
ShardSpec::toString() const
{
    return std::to_string(index) + '/' + std::to_string(count);
}

std::pair<size_t, size_t>
ShardSpec::range(size_t total) const
{
    assert(valid());
    const size_t k = size_t(index);
    const size_t n = size_t(count);
    return {total * (k - 1) / n, total * k / n};
}

bool
ShardSpec::contains(size_t pos, size_t total) const
{
    const auto r = range(total);
    return pos >= r.first && pos < r.second;
}

bool
ChunkSpec::parse(const std::string& text, ChunkSpec* out)
{
    const size_t colon = text.find(':');
    if (colon == std::string::npos)
        return false;
    // Digits only on both sides ("B:E", or "B:" for an open end):
    // strtoull would silently accept signs and whitespace. Overflow
    // is just as silent (saturates to ULLONG_MAX == npos), so it is
    // rejected too — a typo'd huge range must not quietly become an
    // empty or open-ended chunk.
    const auto digits = [](const char* s, size_t n) {
        if (n == 0)
            return false;
        for (size_t i = 0; i < n; ++i) {
            if (s[i] < '0' || s[i] > '9')
                return false;
        }
        return true;
    };
    const auto parse_pos = [](const char* s, size_t* value) {
        errno = 0;
        *value = std::strtoull(s, nullptr, 10);
        return errno != ERANGE;
    };
    if (!digits(text.c_str(), colon))
        return false;
    ChunkSpec spec;
    if (!parse_pos(text.c_str(), &spec.begin))
        return false;
    const size_t tail = text.size() - colon - 1;
    if (tail == 0) {
        spec.end = npos;
    } else {
        if (!digits(text.c_str() + colon + 1, tail))
            return false;
        if (!parse_pos(text.c_str() + colon + 1, &spec.end))
            return false;
    }
    if (!spec.valid())
        return false;
    *out = spec;
    return true;
}

std::string
ChunkSpec::toString() const
{
    return std::to_string(begin) + ':' +
           (end == npos ? std::string() : std::to_string(end));
}

std::pair<size_t, size_t>
ChunkSpec::range(size_t total) const
{
    assert(valid());
    const size_t lo = std::min(begin, total);
    return {lo, std::max(lo, std::min(end, total))};
}

bool
ChunkSpec::contains(size_t pos, size_t total) const
{
    const auto r = range(total);
    return pos >= r.first && pos < r.second;
}

ChunkSpec
ChunkSpec::slice(size_t base, size_t count) const
{
    assert(valid());
    const size_t lo =
        begin <= base ? 0 : std::min(begin - base, count);
    const size_t hi =
        end == npos ? count
                    : (end <= base ? 0 : std::min(end - base, count));
    return {lo, std::max(lo, hi)};
}

namespace {

/** Sanitized key + "-<hash>" stem shared by every per-point file. */
std::string
pointFileStem(const SweepGrid::Point& point)
{
    std::string name = point.key();
    // FNV-1a over the RAW key: two keys that sanitize identically
    // (e.g. "Mix A" vs "Mix@A") must not overwrite each other's
    // trace file — the hash suffix keeps the names distinct while
    // staying a pure function of the key, so a replay re-records to
    // the same file name.
    uint64_t hash = 1469598103934665603ull;
    for (const char c : name) {
        hash ^= uint64_t(uint8_t(c));
        hash *= 1099511628211ull;
    }
    for (char& c : name) {
        const bool keep =
            (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
            (c >= '0' && c <= '9') || c == '.' || c == '_' ||
            c == '=' || c == '+' || c == '-';
        if (!keep)
            c = '_';
    }
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "-%08x",
                  unsigned(hash & 0xffffffffu));
    return name + suffix;
}

} // anonymous namespace

std::string
traceFileName(const SweepGrid::Point& point)
{
    return pointFileStem(point) + ".trace.csv";
}

std::string
traceEventFileName(const SweepGrid::Point& point)
{
    return pointFileStem(point) + ".trace.json";
}

namespace {

/** Record one run's frame trace under @p trace_dir (see
 *  EngineOptions::traceDir). Throws on I/O failure — a sweep that
 *  silently recorded nothing must not look like a successful
 *  recording. */
void
recordTrace(const std::string& trace_dir, const SweepGrid::Point& point,
            size_t index_base, const workload::Scenario& scenario,
            const sim::RunStats& stats)
{
    std::filesystem::create_directories(trace_dir);
    const std::string path = trace_dir + '/' + traceFileName(point);
    std::ofstream out(path);
    if (!out.is_open())
        throw std::runtime_error("cannot open trace file for "
                                 "writing: " + path);
    runner::TraceMeta meta;
    meta.push_back({"scenario", point.scenario});
    meta.push_back({"system", point.system});
    meta.push_back({"scheduler", point.scheduler});
    std::string params;
    for (const auto& kv : point.params) {
        if (!params.empty())
            params += ',';
        params += kv.first + '=' + formatValue(kv.second);
    }
    meta.push_back({"params", params});
    meta.push_back({"seed", std::to_string(point.seed)});
    meta.push_back({"window_us", runner::preciseDouble(point.windowUs)});
    meta.push_back({"index", std::to_string(index_base + point.index)});
    runner::writeFrameTraceCsv(out, stats, scenario, meta);
    if (!out)
        throw std::runtime_error("short write to trace file: " + path);
}

/** Write one run's telemetry event trace (Chrome trace-event JSON)
 *  under @p dir. Throws on I/O failure, like recordTrace. */
void
recordTraceEvents(const std::string& dir,
                  const SweepGrid::Point& point,
                  const obs::TraceEventSink& sink)
{
    std::filesystem::create_directories(dir);
    const std::string path = dir + '/' + traceEventFileName(point);
    std::ofstream out(path);
    if (!out.is_open())
        throw std::runtime_error("cannot open trace-event file for "
                                 "writing: " + path);
    sink.writeJson(out);
    if (!out)
        throw std::runtime_error("short write to trace-event file: " +
                                 path);
}

} // anonymous namespace

RunRecord
runGridPoint(const SweepGrid::Point& point, const std::string& trace_dir,
             size_t trace_index_base)
{
    EngineOptions opts;
    opts.traceDir = trace_dir;
    opts.traceIndexBase = trace_index_base;
    return runGridPoint(point, opts, nullptr);
}

RunRecord
runGridPoint(const SweepGrid::Point& point, const EngineOptions& opts,
             obs::MetricsRegistry* metrics_out)
{
    // Materialise everything locally: workers share nothing MUTABLE.
    // The cost table is the exception that proves the rule — a frozen
    // immutable table shared through the process-wide cache, so a
    // sweep builds each distinct (system, model set) table once
    // instead of once per point (see cost_table_cache.h for the
    // determinism argument; --no-cost-cache restores private lazy
    // tables).
    const workload::Scenario scenario = (*point.makeScenario)();
    const hw::SystemConfig system = (*point.makeSystem)();
    const std::shared_ptr<const cost::CostTable> costs =
        cost::acquireCostTable(system, scenario, metrics_out);

    auto sched = (*point.makeScheduler)(point.params);
    assert(sched && "scheduler factory returned nullptr");

    sim::SimConfig cfg;
    cfg.windowUs = point.windowUs;
    cfg.seed = point.seed;
    std::unique_ptr<workload::ReplaySource> replay;
    if (point.trace) {
        // Trace-replay scenario: inject the recorded arrival/deadline
        // sequence; paths re-materialise from (scenario, seed).
        replay = std::make_unique<workload::ReplaySource>(
            scenario, cfg.seed, *point.trace);
        cfg.arrivals = replay.get();
    }

    // Telemetry: one sink/registry pair per point (share-nothing);
    // pid = the point's global row index, so traces from several
    // grids line up with the --out rows. Identity metadata goes in
    // up front — process_name names the track group in Perfetto,
    // dream_meta carries what dream_prof needs (the window for
    // utilization, the key for the report).
    const size_t global_index = opts.traceIndexBase + point.index;
    obs::TraceEventSink trace_sink{int64_t(global_index)};
    obs::SimTelemetry telemetry;
    if (!opts.traceEventDir.empty()) {
        trace_sink.processName(point.key());
        trace_sink.runMeta(
            obs::TraceArgs()
                .str("key", point.key())
                .num("window_us", point.windowUs)
                .integer("seed", (long long) point.seed)
                .integer("index", (long long) global_index));
        telemetry.trace = &trace_sink;
    }
    if (metrics_out)
        telemetry.metrics = metrics_out;
    if (telemetry.trace || telemetry.metrics)
        cfg.telemetry = &telemetry;

    sim::Simulator simulator(system, scenario, *costs, cfg);
    const sim::RunStats stats = simulator.run(*sched);
    if (!opts.traceDir.empty())
        recordTrace(opts.traceDir, point, opts.traceIndexBase,
                    scenario, stats);
    if (!opts.traceEventDir.empty())
        recordTraceEvents(opts.traceEventDir, point, trace_sink);

    RunRecord r;
    r.index = point.index;
    r.scenario = point.scenario;
    r.system = point.system;
    r.scheduler = point.scheduler;
    r.params = point.params;
    r.seed = point.seed;
    r.windowUs = point.windowUs;
    fillMetrics(r, stats);
    return r;
}

void
fillMetrics(RunRecord& r, const sim::RunStats& stats)
{
    r.uxCost = metrics::uxCost(stats);
    r.dlvRate = stats.overallDlvRate();
    r.normEnergy = stats.overallNormEnergy();
    r.energyMj = stats.totalEnergyMj();
    r.violationFraction = stats.violationFraction();
    r.totalFrames = stats.totalFrames();
    r.violatedFrames = stats.totalViolated();
    r.droppedFrames = 0;
    for (const auto& t : stats.tasks)
        r.droppedFrames += t.droppedFrames;
    r.dropRate = r.totalFrames == 0
                     ? 0.0
                     : double(r.droppedFrames) / double(r.totalFrames);
    r.schedulerInvocations = stats.schedulerInvocations;

    // Breakdown columns: Supernet variant shares of started frames
    // (Figure 14). Columns are named after the model so the same
    // network lines up across scenarios; tasks sharing one Supernet
    // model within a scenario pool their starts before the shares
    // are taken.
    r.breakdown.clear();
    std::vector<std::pair<std::string, std::vector<uint64_t>>> pooled;
    for (const auto& task : stats.tasks) {
        if (task.variantStarts.empty())
            continue;
        auto it = std::find_if(
            pooled.begin(), pooled.end(),
            [&](const auto& p) { return p.first == task.model; });
        if (it == pooled.end()) {
            pooled.push_back({task.model, task.variantStarts});
            continue;
        }
        it->second.resize(
            std::max(it->second.size(), task.variantStarts.size()));
        for (size_t i = 0; i < task.variantStarts.size(); ++i)
            it->second[i] += task.variantStarts[i];
    }
    for (const auto& p : pooled) {
        uint64_t total = 0;
        for (const uint64_t v : p.second)
            total += v;
        for (size_t i = 0; i < p.second.size(); ++i) {
            r.breakdown.push_back(
                {p.first + "_v" + std::to_string(i) + "_share",
                 total == 0 ? 0.0
                            : double(p.second[i]) / double(total)});
        }
    }
}

std::vector<RunRecord>
Engine::run(const SweepGrid& grid,
            const std::vector<ResultSink*>& sinks) const
{
    return run(grid, sinks, PointFilter{});
}

std::vector<RunRecord>
Engine::run(const SweepGrid& grid, const std::vector<ResultSink*>& sinks,
            const PointFilter& select) const
{
    return run(grid, sinks, select, ShardSpec{});
}

namespace {

/** Indices of the points @p select accepts, in ascending order. */
std::vector<size_t>
selectedIndices(const SweepGrid& grid, const PointFilter& select)
{
    const size_t n = grid.size();
    std::vector<size_t> indices;
    indices.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (!select || select(grid.point(i)))
            indices.push_back(i);
    }
    return indices;
}

/** Run @p indices on a pool and deliver records in index order. */
std::vector<RunRecord>
runIndices(const SweepGrid& grid, const std::vector<size_t>& indices,
           const std::vector<ResultSink*>& sinks, const EngineOptions& opts)
{
    std::vector<RunRecord> records(indices.size());
    // One registry per point, merged in flat-index order AFTER the
    // pool joins: workers never touch shared telemetry state, so the
    // merged registry — like the record vector — is byte-identical
    // for any worker count.
    std::vector<obs::MetricsRegistry> point_metrics(
        opts.metrics ? indices.size() : 0);
    WorkerPool pool(opts.jobs);
    pool.parallelFor(indices.size(), [&](size_t k) {
        records[k] = runGridPoint(
            grid.point(indices[k]), opts,
            opts.metrics ? &point_metrics[k] : nullptr);
    });
    if (opts.metrics) {
        for (const auto& m : point_metrics)
            opts.metrics->merge(m);
        // Pool-level occupancy (wall clock, hence volatile: kept for
        // profiling, excluded from the canonical dump).
        const auto& workers = pool.lastRunStats();
        for (size_t w = 0; w < workers.size(); ++w) {
            const std::string prefix =
                "engine/worker/" + std::to_string(w) + '/';
            for (const char* name :
                 {"items", "steals", "busy_s", "idle_s"})
                opts.metrics->markVolatile(prefix + name);
            opts.metrics->count(prefix + "items", workers[w].items);
            opts.metrics->count(prefix + "steals", workers[w].steals);
            opts.metrics->gaugeAdd(prefix + "busy_s",
                                   workers[w].busySeconds);
            opts.metrics->gaugeAdd(prefix + "idle_s",
                                   workers[w].idleSeconds);
        }
    }

    for (ResultSink* sink : sinks) {
        if (!sink)
            continue;
        for (const auto& r : records)
            sink->write(r);
    }
    return records;
}

} // anonymous namespace

std::vector<RunRecord>
Engine::run(const SweepGrid& grid, const std::vector<ResultSink*>& sinks,
            const PointFilter& select, const ShardSpec& shard) const
{
    if (!shard.valid())
        throw std::invalid_argument("invalid shard spec " +
                                    std::to_string(shard.index) + '/' +
                                    std::to_string(shard.count));

    std::vector<size_t> indices = selectedIndices(grid, select);
    if (shard.active()) {
        // Key-range partition of the filtered, index-ordered run.
        const auto r = shard.range(indices.size());
        indices = std::vector<size_t>(indices.begin() + long(r.first),
                                      indices.begin() + long(r.second));
    }
    return runIndices(grid, indices, sinks, opts_);
}

std::vector<RunRecord>
Engine::run(const SweepGrid& grid, const std::vector<ResultSink*>& sinks,
            const PointFilter& select, const ChunkSpec& chunk) const
{
    if (!chunk.valid())
        throw std::invalid_argument("invalid chunk spec " +
                                    chunk.toString());

    std::vector<size_t> indices = selectedIndices(grid, select);
    if (chunk.active()) {
        // Explicit position range of the filtered ordering.
        const auto r = chunk.range(indices.size());
        indices = std::vector<size_t>(indices.begin() + long(r.first),
                                      indices.begin() + long(r.second));
    }
    return runIndices(grid, indices, sinks, opts_);
}

std::vector<RunRecord>
Engine::run(const SweepGrid& grid, const std::vector<ResultSink*>& sinks,
            const std::vector<size_t>& indices) const
{
    return runIndices(grid, indices, sinks, opts_);
}

} // namespace engine
} // namespace dream
