#include "engine/engine.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "costmodel/cost_table.h"
#include "engine/worker_pool.h"
#include "metrics/uxcost.h"
#include "sim/simulator.h"

namespace dream {
namespace engine {

bool
ShardSpec::parse(const std::string& text, ShardSpec* out)
{
    const size_t slash = text.find('/');
    if (slash == 0 || slash == std::string::npos ||
        slash + 1 >= text.size())
        return false;
    char* end = nullptr;
    const long k = std::strtol(text.c_str(), &end, 10);
    if (end != text.c_str() + slash)
        return false;
    const char* n_begin = text.c_str() + slash + 1;
    const long n = std::strtol(n_begin, &end, 10);
    if (end != text.c_str() + text.size())
        return false;
    // Range-check before narrowing: huge K/N must be rejected, not
    // silently wrapped into a small (or whole-grid) shard.
    if (k < 1 || n < 1 || k > INT_MAX || n > INT_MAX)
        return false;
    const ShardSpec spec{int(k), int(n)};
    if (!spec.valid())
        return false;
    *out = spec;
    return true;
}

std::string
ShardSpec::toString() const
{
    return std::to_string(index) + '/' + std::to_string(count);
}

std::pair<size_t, size_t>
ShardSpec::range(size_t total) const
{
    assert(valid());
    const size_t k = size_t(index);
    const size_t n = size_t(count);
    return {total * (k - 1) / n, total * k / n};
}

bool
ShardSpec::contains(size_t pos, size_t total) const
{
    const auto r = range(total);
    return pos >= r.first && pos < r.second;
}

bool
ChunkSpec::parse(const std::string& text, ChunkSpec* out)
{
    const size_t colon = text.find(':');
    if (colon == std::string::npos)
        return false;
    // Digits only on both sides ("B:E", or "B:" for an open end):
    // strtoull would silently accept signs and whitespace. Overflow
    // is just as silent (saturates to ULLONG_MAX == npos), so it is
    // rejected too — a typo'd huge range must not quietly become an
    // empty or open-ended chunk.
    const auto digits = [](const char* s, size_t n) {
        if (n == 0)
            return false;
        for (size_t i = 0; i < n; ++i) {
            if (s[i] < '0' || s[i] > '9')
                return false;
        }
        return true;
    };
    const auto parse_pos = [](const char* s, size_t* value) {
        errno = 0;
        *value = std::strtoull(s, nullptr, 10);
        return errno != ERANGE;
    };
    if (!digits(text.c_str(), colon))
        return false;
    ChunkSpec spec;
    if (!parse_pos(text.c_str(), &spec.begin))
        return false;
    const size_t tail = text.size() - colon - 1;
    if (tail == 0) {
        spec.end = npos;
    } else {
        if (!digits(text.c_str() + colon + 1, tail))
            return false;
        if (!parse_pos(text.c_str() + colon + 1, &spec.end))
            return false;
    }
    if (!spec.valid())
        return false;
    *out = spec;
    return true;
}

std::string
ChunkSpec::toString() const
{
    return std::to_string(begin) + ':' +
           (end == npos ? std::string() : std::to_string(end));
}

std::pair<size_t, size_t>
ChunkSpec::range(size_t total) const
{
    assert(valid());
    const size_t lo = std::min(begin, total);
    return {lo, std::max(lo, std::min(end, total))};
}

bool
ChunkSpec::contains(size_t pos, size_t total) const
{
    const auto r = range(total);
    return pos >= r.first && pos < r.second;
}

ChunkSpec
ChunkSpec::slice(size_t base, size_t count) const
{
    assert(valid());
    const size_t lo =
        begin <= base ? 0 : std::min(begin - base, count);
    const size_t hi =
        end == npos ? count
                    : (end <= base ? 0 : std::min(end - base, count));
    return {lo, std::max(lo, hi)};
}

RunRecord
runGridPoint(const SweepGrid::Point& point)
{
    // Materialise everything locally: workers share nothing mutable.
    const workload::Scenario scenario = (*point.makeScenario)();
    const hw::SystemConfig system = (*point.makeSystem)();
    cost::CostTable costs(system);
    for (const auto& t : scenario.tasks)
        costs.addModel(t.model);

    auto sched = (*point.makeScheduler)(point.params);
    assert(sched && "scheduler factory returned nullptr");

    sim::SimConfig cfg;
    cfg.windowUs = point.windowUs;
    cfg.seed = point.seed;
    sim::Simulator simulator(system, scenario, costs, cfg);
    const sim::RunStats stats = simulator.run(*sched);

    RunRecord r;
    r.index = point.index;
    r.scenario = point.scenario;
    r.system = point.system;
    r.scheduler = point.scheduler;
    r.params = point.params;
    r.seed = point.seed;
    r.windowUs = point.windowUs;
    fillMetrics(r, stats);
    return r;
}

void
fillMetrics(RunRecord& r, const sim::RunStats& stats)
{
    r.uxCost = metrics::uxCost(stats);
    r.dlvRate = stats.overallDlvRate();
    r.normEnergy = stats.overallNormEnergy();
    r.energyMj = stats.totalEnergyMj();
    r.violationFraction = stats.violationFraction();
    r.totalFrames = stats.totalFrames();
    r.violatedFrames = stats.totalViolated();
    r.droppedFrames = 0;
    for (const auto& t : stats.tasks)
        r.droppedFrames += t.droppedFrames;
    r.dropRate = r.totalFrames == 0
                     ? 0.0
                     : double(r.droppedFrames) / double(r.totalFrames);
    r.schedulerInvocations = stats.schedulerInvocations;

    // Breakdown columns: Supernet variant shares of started frames
    // (Figure 14). Columns are named after the model so the same
    // network lines up across scenarios; tasks sharing one Supernet
    // model within a scenario pool their starts before the shares
    // are taken.
    r.breakdown.clear();
    std::vector<std::pair<std::string, std::vector<uint64_t>>> pooled;
    for (const auto& task : stats.tasks) {
        if (task.variantStarts.empty())
            continue;
        auto it = std::find_if(
            pooled.begin(), pooled.end(),
            [&](const auto& p) { return p.first == task.model; });
        if (it == pooled.end()) {
            pooled.push_back({task.model, task.variantStarts});
            continue;
        }
        it->second.resize(
            std::max(it->second.size(), task.variantStarts.size()));
        for (size_t i = 0; i < task.variantStarts.size(); ++i)
            it->second[i] += task.variantStarts[i];
    }
    for (const auto& p : pooled) {
        uint64_t total = 0;
        for (const uint64_t v : p.second)
            total += v;
        for (size_t i = 0; i < p.second.size(); ++i) {
            r.breakdown.push_back(
                {p.first + "_v" + std::to_string(i) + "_share",
                 total == 0 ? 0.0
                            : double(p.second[i]) / double(total)});
        }
    }
}

std::vector<RunRecord>
Engine::run(const SweepGrid& grid,
            const std::vector<ResultSink*>& sinks) const
{
    return run(grid, sinks, PointFilter{});
}

std::vector<RunRecord>
Engine::run(const SweepGrid& grid, const std::vector<ResultSink*>& sinks,
            const PointFilter& select) const
{
    return run(grid, sinks, select, ShardSpec{});
}

namespace {

/** Indices of the points @p select accepts, in ascending order. */
std::vector<size_t>
selectedIndices(const SweepGrid& grid, const PointFilter& select)
{
    const size_t n = grid.size();
    std::vector<size_t> indices;
    indices.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (!select || select(grid.point(i)))
            indices.push_back(i);
    }
    return indices;
}

/** Run @p indices on a pool and deliver records in index order. */
std::vector<RunRecord>
runIndices(const SweepGrid& grid, const std::vector<size_t>& indices,
           const std::vector<ResultSink*>& sinks, int jobs)
{
    std::vector<RunRecord> records(indices.size());
    WorkerPool pool(jobs);
    pool.parallelFor(indices.size(), [&](size_t k) {
        records[k] = runGridPoint(grid.point(indices[k]));
    });

    for (ResultSink* sink : sinks) {
        if (!sink)
            continue;
        for (const auto& r : records)
            sink->write(r);
    }
    return records;
}

} // anonymous namespace

std::vector<RunRecord>
Engine::run(const SweepGrid& grid, const std::vector<ResultSink*>& sinks,
            const PointFilter& select, const ShardSpec& shard) const
{
    if (!shard.valid())
        throw std::invalid_argument("invalid shard spec " +
                                    std::to_string(shard.index) + '/' +
                                    std::to_string(shard.count));

    std::vector<size_t> indices = selectedIndices(grid, select);
    if (shard.active()) {
        // Key-range partition of the filtered, index-ordered run.
        const auto r = shard.range(indices.size());
        indices = std::vector<size_t>(indices.begin() + long(r.first),
                                      indices.begin() + long(r.second));
    }
    return runIndices(grid, indices, sinks, opts_.jobs);
}

std::vector<RunRecord>
Engine::run(const SweepGrid& grid, const std::vector<ResultSink*>& sinks,
            const PointFilter& select, const ChunkSpec& chunk) const
{
    if (!chunk.valid())
        throw std::invalid_argument("invalid chunk spec " +
                                    chunk.toString());

    std::vector<size_t> indices = selectedIndices(grid, select);
    if (chunk.active()) {
        // Explicit position range of the filtered ordering.
        const auto r = chunk.range(indices.size());
        indices = std::vector<size_t>(indices.begin() + long(r.first),
                                      indices.begin() + long(r.second));
    }
    return runIndices(grid, indices, sinks, opts_.jobs);
}

std::vector<RunRecord>
Engine::run(const SweepGrid& grid, const std::vector<ResultSink*>& sinks,
            const std::vector<size_t>& indices) const
{
    return runIndices(grid, indices, sinks, opts_.jobs);
}

} // namespace engine
} // namespace dream
