#include "engine/engine.h"

#include <cassert>

#include "costmodel/cost_table.h"
#include "engine/worker_pool.h"
#include "metrics/uxcost.h"
#include "sim/simulator.h"

namespace dream {
namespace engine {

RunRecord
runGridPoint(const SweepGrid::Point& point)
{
    // Materialise everything locally: workers share nothing mutable.
    const workload::Scenario scenario = (*point.makeScenario)();
    const hw::SystemConfig system = (*point.makeSystem)();
    cost::CostTable costs(system);
    for (const auto& t : scenario.tasks)
        costs.addModel(t.model);

    auto sched = (*point.makeScheduler)(point.params);
    assert(sched && "scheduler factory returned nullptr");

    sim::SimConfig cfg;
    cfg.windowUs = point.windowUs;
    cfg.seed = point.seed;
    sim::Simulator simulator(system, scenario, costs, cfg);
    const sim::RunStats stats = simulator.run(*sched);

    RunRecord r;
    r.index = point.index;
    r.scenario = point.scenario;
    r.system = point.system;
    r.scheduler = point.scheduler;
    r.params = point.params;
    r.seed = point.seed;
    r.windowUs = point.windowUs;
    fillMetrics(r, stats);
    return r;
}

void
fillMetrics(RunRecord& r, const sim::RunStats& stats)
{
    r.uxCost = metrics::uxCost(stats);
    r.dlvRate = stats.overallDlvRate();
    r.normEnergy = stats.overallNormEnergy();
    r.energyMj = stats.totalEnergyMj();
    r.violationFraction = stats.violationFraction();
    r.totalFrames = stats.totalFrames();
    r.violatedFrames = stats.totalViolated();
    r.droppedFrames = 0;
    for (const auto& t : stats.tasks)
        r.droppedFrames += t.droppedFrames;
    r.dropRate = r.totalFrames == 0
                     ? 0.0
                     : double(r.droppedFrames) / double(r.totalFrames);
    r.schedulerInvocations = stats.schedulerInvocations;
}

std::vector<RunRecord>
Engine::run(const SweepGrid& grid,
            const std::vector<ResultSink*>& sinks) const
{
    const size_t n = grid.size();
    std::vector<RunRecord> records(n);

    WorkerPool pool(opts_.jobs);
    pool.parallelFor(
        n, [&](size_t i) { records[i] = runGridPoint(grid.point(i)); });

    for (ResultSink* sink : sinks) {
        if (!sink)
            continue;
        for (const auto& r : records)
            sink->write(r);
    }
    return records;
}

} // namespace engine
} // namespace dream
