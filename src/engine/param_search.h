/**
 * @file
 * Memoized (alpha, beta) search on the sweep engine — the
 * transposition-table upgrade of core::ParamSearch (the ROADMAP's
 * "memoized search" item, the AlphaBetaSearch + Dictionary idiom).
 *
 * The shrinking-radius search of Section 3.6 re-visits parameter
 * points constantly: clamped candidates collapse onto bounds,
 * interpolated moves land on already-probed pairs, and consecutive
 * searches over one workload (Figure 10's case (c) -> (d)) re-walk
 * the same region. engine::ParamSearch wraps the core search with a
 * transposition table keyed by the exact (alpha, beta) bit patterns,
 * scoped to a canonical context key over (system, scenario,
 * objective, seed, window, search config) — a simulated point is
 * never re-run, and the table survives across optimize() calls on
 * one searcher.
 *
 * Determinism: the memo only short-circuits re-evaluations of a
 * deterministic evaluator at bit-identical points, so optimize()
 * returns the exact SearchResult (trajectory included) the
 * un-memoized batched search returns — asserted in
 * tests/test_param_search.cc.
 *
 * The multi-start overload is the iterative-deepening/branch-and-
 * bound layer: all starts are probed in one batch first (depth-0
 * pass), explored best-first, and a start whose probe cost already
 * exceeds the incumbent full-search optimum is pruned against that
 * UXCost bound (a heuristic dominance cut: descending from a
 * clearly-dominated start into the same basin the incumbent already
 * searched is wasted simulation; the memo makes the occasional
 * shared descent free anyway).
 */

#ifndef DREAM_ENGINE_PARAM_SEARCH_H
#define DREAM_ENGINE_PARAM_SEARCH_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/adaptivity.h"
#include "engine/param_eval.h"
#include "engine/worker_pool.h"

namespace dream {
namespace engine {

/** Memoized, optionally multi-start (alpha, beta) searcher. */
class ParamSearch {
public:
    struct Options {
        double initialRadius = 0.5;
        double radiusThreshold = 0.05;
        double paramMin = 0.0;
        double paramMax = 2.0;
        metrics::Objective objective = metrics::Objective::UxCost;
        uint64_t seed = kSearchSeed;
        double windowUs = kSearchWindowUs;
    };

    /**
     * Search over fixed-parameter DREAM simulations of
     * (system, scenario), batching candidate evaluations on @p pool
     * (captured by reference, like makeBatchEvaluator).
     */
    ParamSearch(const hw::SystemConfig& system,
                const workload::Scenario& scenario,
                const WorkerPool& pool, Options opts);
    ParamSearch(const hw::SystemConfig& system,
                const workload::Scenario& scenario,
                const WorkerPool& pool);

    /**
     * Search over an explicit batched cost function (tests,
     * non-simulation objectives). The context key is 0.
     */
    ParamSearch(core::BatchCostFn evaluate, Options opts);
    explicit ParamSearch(core::BatchCostFn evaluate);

    /**
     * Run the memoized search from (a0, b0). Identical SearchResult
     * to core::ParamSearch::optimize with the same evaluator;
     * memoHits/simulated report this call's transposition traffic.
     */
    core::SearchResult optimize(double a0, double b0);

    /**
     * Branch-and-bound multi-start: probe every start in one batch,
     * explore in ascending probe-cost order, prune starts whose
     * probe cost exceeds the incumbent optimum. Returns the best
     * full-search result (ties: earliest start in @p starts order).
     */
    core::SearchResult
    optimize(const std::vector<std::pair<double, double>>& starts);

    /** Cost-function executions across this searcher's lifetime. */
    uint64_t simulations() const { return simulations_; }
    /** Evaluations served from the transposition table. */
    uint64_t transpositionHits() const { return hits_; }
    /** Distinct (alpha, beta) points held. */
    size_t tableSize() const { return table_.size(); }
    /** Starts cut by the incumbent bound. */
    uint64_t prunedStarts() const { return pruned_; }
    /**
     * Canonical hash of (system fingerprint, scenario structure,
     * objective, seed, window, search config) — the scope of this
     * table. Two searchers with equal context keys may share memo
     * state; 0 for the explicit-cost-function constructor.
     */
    uint64_t contextKey() const { return contextKey_; }

private:
    /** Exact transposition key: the candidate's clamped bits. */
    struct PointKey {
        uint64_t alphaBits = 0;
        uint64_t betaBits = 0;
        bool operator==(const PointKey&) const = default;
    };
    struct PointKeyHash {
        size_t operator()(const PointKey& k) const;
    };

    core::BatchCostFn memoizedBatch();
    core::SearchResult runFrom(double a0, double b0);

    Options opts_;
    core::BatchCostFn evaluate_;
    std::unordered_map<PointKey, double, PointKeyHash> table_;
    uint64_t contextKey_ = 0;
    uint64_t simulations_ = 0;
    uint64_t hits_ = 0;
    uint64_t pruned_ = 0;
};

} // namespace engine
} // namespace dream

#endif // DREAM_ENGINE_PARAM_SEARCH_H
