#include "engine/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dream {
namespace engine {

WorkerPool::WorkerPool(int jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs())
{}

int
WorkerPool::defaultJobs()
{
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : int(hc);
}

void
WorkerPool::parallelFor(size_t n,
                        const std::function<void(size_t)>& body) const
{
    if (n == 0)
        return;

    const size_t workers =
        std::min<size_t>(size_t(jobs_), n);
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;

    const auto worker = [&]() {
        while (true) {
            const size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                // Drain the remaining work so peers exit promptly.
                next.store(n);
                return;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w)
        threads.emplace_back(worker);
    worker();
    for (auto& t : threads)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace engine
} // namespace dream
