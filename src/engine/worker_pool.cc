#include "engine/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dream {
namespace engine {

WorkerPool::WorkerPool(int jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs())
{}

int
WorkerPool::defaultJobs()
{
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : int(hc);
}

void
WorkerPool::parallelFor(size_t n,
                        const std::function<void(size_t)>& body) const
{
    stats_.clear();
    if (n == 0)
        return;

    using clock = std::chrono::steady_clock;
    const auto seconds = [](clock::duration d) {
        return std::chrono::duration<double>(d).count();
    };
    const auto t0 = clock::now();

    const size_t workers =
        std::min<size_t>(size_t(jobs_), n);
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            body(i);
        stats_.resize(1);
        stats_[0].items = n;
        stats_[0].busySeconds = seconds(clock::now() - t0);
        return;
    }

    stats_.resize(workers);
    std::atomic<size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;

    const auto worker = [&](size_t slot) {
        WorkerStats& ws = stats_[slot];
        while (true) {
            const size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            if (ws.items > 0)
                ws.steals += 1;
            ws.items += 1;
            const auto b0 = clock::now();
            try {
                body(i);
            } catch (...) {
                ws.busySeconds += seconds(clock::now() - b0);
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                // Drain the remaining work so peers exit promptly.
                next.store(n);
                return;
            }
            ws.busySeconds += seconds(clock::now() - b0);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w)
        threads.emplace_back(worker, w);
    worker(0);
    for (auto& t : threads)
        t.join();

    const double makespan = seconds(clock::now() - t0);
    for (auto& ws : stats_)
        ws.idleSeconds = std::max(0.0, makespan - ws.busySeconds);

    if (error)
        std::rethrow_exception(error);
}

} // namespace engine
} // namespace dream
