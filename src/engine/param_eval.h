/**
 * @file
 * (alpha, beta) parameter-space evaluation on the sweep engine —
 * the engine-side home of what bench/search_util.h used to provide
 * for Figures 3, 10, 11 and 13.
 *
 * makeEvaluator() scores a single parameter pair by running a short
 * fixed-parameter DREAM simulation; makeBatchEvaluator() evaluates a
 * batch of pairs concurrently on a WorkerPool (feeding
 * core::ParamSearch's batched optimize()); paramSpaceGrid() declares
 * the [0, 2]^2 scan of the parameter space as a SweepGrid so the
 * full grid runs through Engine::run() with any --jobs value.
 */

#ifndef DREAM_ENGINE_PARAM_EVAL_H
#define DREAM_ENGINE_PARAM_EVAL_H

#include <vector>

#include "core/adaptivity.h"
#include "core/dream_scheduler.h"
#include "engine/engine.h"
#include "engine/sweep_grid.h"
#include "engine/worker_pool.h"
#include "metrics/uxcost.h"

namespace dream {
namespace engine {

/** Window used for each parameter evaluation run. */
constexpr double kSearchWindowUs = 1e6;

/** Default seed of parameter evaluation runs. */
constexpr uint64_t kSearchSeed = 11;

/**
 * Cost function over (alpha, beta): the objective of a
 * fixed-parameter smart-drop DREAM run on (system, scenario).
 * Captures @p system and @p scenario by reference.
 */
core::CostFn
makeEvaluator(const hw::SystemConfig& system,
              const workload::Scenario& scenario,
              metrics::Objective objective = metrics::Objective::UxCost,
              uint64_t seed = kSearchSeed);

/**
 * Batched variant: evaluates each pair of a batch concurrently on
 * @p pool. Results are positionally identical to calling
 * makeEvaluator()'s function per pair. Captures @p system,
 * @p scenario and @p pool by reference.
 */
core::BatchCostFn
makeBatchEvaluator(const hw::SystemConfig& system,
                   const workload::Scenario& scenario,
                   const WorkerPool& pool,
                   metrics::Objective objective =
                       metrics::Objective::UxCost,
                   uint64_t seed = kSearchSeed);

/**
 * Install a batched candidate evaluator on @p sched's online tuner
 * (ROADMAP item "OnlineTuner trial windows reuse the batched
 * evaluator"): tuning rounds in simulation studies then evaluate
 * their candidate (alpha, beta) pairs concurrently on @p pool in
 * forked short runs instead of consuming consecutive live trial
 * windows. Captures @p system, @p scenario and @p pool by reference.
 */
void attachBatchTuner(core::DreamScheduler& sched,
                      const hw::SystemConfig& system,
                      const workload::Scenario& scenario,
                      const WorkerPool& pool,
                      metrics::Objective objective =
                          metrics::Objective::UxCost,
                      uint64_t seed = kSearchSeed);

/**
 * Scheduler axis of parameter sweeps: fixed-(alpha, beta) DREAM with
 * smart drop, reading the grid parameters "alpha" and "beta".
 */
SchedulerSpec dreamFixedParamScheduler();

/**
 * The n x n scan of (alpha, beta) in [0, 2]^2 used as the global-
 * optimum reference of Figures 3, 10 and 11, as an engine grid:
 * one scenario, one system, dreamFixedParamScheduler(), and
 * linspace parameter axes "alpha" (outer) and "beta" (inner).
 */
SweepGrid paramSpaceGrid(hw::SystemPreset system,
                         workload::ScenarioPreset scenario, int n,
                         double window_us = kSearchWindowUs,
                         uint64_t seed = kSearchSeed);

/** Minimum-UXCost point of a parameter sweep's records. */
struct ParamOptimum {
    double alpha = 0.0;
    double beta = 0.0;
    double cost = 0.0;
};

/**
 * Locate the optimum over @p records (first record wins ties, i.e.
 * row-major grid order).
 */
ParamOptimum bestParams(const std::vector<RunRecord>& records);

} // namespace engine
} // namespace dream

#endif // DREAM_ENGINE_PARAM_EVAL_H
