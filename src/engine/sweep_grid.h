/**
 * @file
 * Declarative cartesian sweep grids for the experiment engine.
 *
 * A SweepGrid is the cross product of four axis families:
 * scenarios x systems x scheduler factories x free parameters, times
 * a seed list. Every flat index in [0, size()) decodes to one Point
 * (seed varies fastest, then the last parameter axis, ... scenario
 * slowest), so results are addressable and reproducible regardless
 * of execution order.
 */

#ifndef DREAM_ENGINE_SWEEP_GRID_H
#define DREAM_ENGINE_SWEEP_GRID_H

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hw/system.h"
#include "runner/experiment.h"
#include "sim/scheduler.h"
#include "workload/replay_source.h"
#include "workload/scenario.h"
#include "workload/scenario_gen.h"
#include "workload/scenario_suite.h"

namespace dream {
namespace engine {

/** Free-parameter values keyed by axis name, in axis order. */
using ParamMap = std::vector<std::pair<std::string, double>>;

/**
 * Value of parameter @p name in @p params; throws std::out_of_range
 * if no such parameter axis exists.
 */
double paramValue(const ParamMap& params, const std::string& name);

/**
 * Deterministic numeric formatting ("%.9g") shared by grid keys and
 * result sinks, so identical doubles always render identically.
 */
std::string formatValue(double v);

/**
 * Builds a scheduler for one grid point. The factory receives the
 * point's free-parameter values so parameterised schedulers (e.g.
 * fixed-(alpha, beta) DREAM) can be swept. Factories run on worker
 * threads and must be pure (no shared mutable state).
 */
using SchedulerFactory = std::function<std::unique_ptr<sim::Scheduler>(
    const ParamMap&)>;

/** One named value of the scenario axis. */
struct ScenarioSpec {
    std::string name;
    std::function<workload::Scenario()> make;
    /**
     * Recorded trace replayed as this scenario's arrivals; null for
     * generative scenarios. When set, every grid point of this
     * scenario drives the simulator through a workload::ReplaySource,
     * so all scheduler/config points see byte-identical load.
     */
    std::shared_ptr<const workload::FrameTrace> trace;
};

/** One recorded trace offered to SweepGrid::addTraceReplays. */
struct TraceReplaySpec {
    /** Scenario-axis name of the replay (grid keys, sink rows). */
    std::string name;
    /** Factory of the recorded scenario (same task list). */
    std::function<workload::Scenario()> make;
    /** The recorded trace. */
    std::shared_ptr<const workload::FrameTrace> trace;
};

/** One named value of the system axis. */
struct SystemSpec {
    std::string name;
    std::function<hw::SystemConfig()> make;
};

/** One named value of the scheduler axis. */
struct SchedulerSpec {
    std::string name;
    SchedulerFactory make;
};

/** One free-parameter axis (name + swept values). */
struct ParamAxis {
    std::string name;
    std::vector<double> values;
};

/** Declarative cartesian experiment grid. */
class SweepGrid {
public:
    /** One fully-decoded grid point. */
    struct Point {
        size_t index = 0;
        std::string scenario;
        std::string system;
        std::string scheduler;
        ParamMap params;
        uint64_t seed = 0;
        double windowUs = 0.0;

        // Non-owning factory pointers into the grid (valid while the
        // grid is alive).
        const std::function<workload::Scenario()>* makeScenario =
            nullptr;
        const std::function<hw::SystemConfig()>* makeSystem = nullptr;
        const SchedulerFactory* makeScheduler = nullptr;
        /** Recorded trace to replay as arrivals; null = generate. */
        const workload::FrameTrace* trace = nullptr;

        /** Stable identity incl. seed, e.g. "VR/4K-2WS/FCFS/seed=11". */
        std::string key() const;
        /** Identity without the seed (the aggregation cell). */
        std::string cellKey() const;
    };

    /** Add a Table 3 scenario preset. */
    SweepGrid& addScenario(workload::ScenarioPreset preset,
                           double cascade_prob = 0.5);
    /** Add a custom named scenario factory. */
    SweepGrid& addScenario(std::string name,
                           std::function<workload::Scenario()> make);
    /**
     * Add @p count randomized scenarios synthesized from @p spec with
     * seeds seed0, seed0 + 1, ... as scenario axis values ("Gen<k>").
     * Generation is deterministic per seed, so grids built from the
     * same (spec, count, seed0) are identical across runs and hosts.
     */
    SweepGrid& addGeneratedScenarios(const workload::ScenarioGenSpec& spec,
                                     int count, uint64_t seed0 = 1);
    /**
     * Add every entry of a hard-scenarios suite as a scenario-axis
     * value (named after the entry, regenerated from its
     * (spec, genSeed) pair). Only the scenario axis is touched: the
     * caller applies the suite's system, window and seeds — see
     * bench/hard_scenarios for the canonical mirror-the-suite setup.
     */
    SweepGrid& addHardScenarios(const workload::HardScenarioSuite& suite);
    /**
     * Add one recorded trace as a scenario-axis value: every grid
     * point of this scenario replays the trace's exact arrival/
     * deadline sequence (workload::ReplaySource) instead of
     * generating periodic arrivals, so every scheduler/config point
     * in the sweep sees byte-identical load. For bit-exact
     * reproduction of the recorded run, the grid's seed list must
     * contain the recording seed (execution paths re-materialise
     * from it).
     */
    SweepGrid& addTraceReplay(TraceReplaySpec spec);
    /** addTraceReplay for each spec, in order. */
    SweepGrid& addTraceReplays(std::vector<TraceReplaySpec> specs);
    /** Add a Table 2 system preset. */
    SweepGrid& addSystem(hw::SystemPreset preset);
    /** Add a custom named system factory. */
    SweepGrid& addSystem(std::string name,
                         std::function<hw::SystemConfig()> make);
    /** Add one of the repo's stock schedulers. */
    SweepGrid& addScheduler(runner::SchedKind kind);
    /** Add a custom named scheduler factory. */
    SweepGrid& addScheduler(std::string name, SchedulerFactory make);
    /** Add a free-parameter axis with explicit values. */
    SweepGrid& addParam(std::string name, std::vector<double> values);
    /** Add a free-parameter axis with n evenly spaced values. */
    SweepGrid& linspaceParam(std::string name, double lo, double hi,
                             int n);
    /** Replace the seed list (default: {11}). */
    SweepGrid& seeds(std::vector<uint64_t> s);
    /** Set the simulated window (default: runner::kDefaultWindowUs). */
    SweepGrid& window(double us);

    /** Total number of grid points (0 if any axis is empty). */
    size_t size() const;
    /** Decode flat @p index into a Point. */
    Point point(size_t index) const;

    const std::vector<ScenarioSpec>& scenarios() const
    {
        return scenarios_;
    }
    const std::vector<SystemSpec>& systems() const { return systems_; }
    const std::vector<SchedulerSpec>& schedulers() const
    {
        return schedulers_;
    }
    const std::vector<ParamAxis>& paramAxes() const { return params_; }
    const std::vector<uint64_t>& seedList() const { return seeds_; }
    double windowUs() const { return windowUs_; }

private:
    std::vector<ScenarioSpec> scenarios_;
    std::vector<SystemSpec> systems_;
    std::vector<SchedulerSpec> schedulers_;
    std::vector<ParamAxis> params_;
    std::vector<uint64_t> seeds_{11};
    double windowUs_ = runner::kDefaultWindowUs;
};

} // namespace engine
} // namespace dream

#endif // DREAM_ENGINE_SWEEP_GRID_H
