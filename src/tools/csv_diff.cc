#include "tools/csv_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace dream {
namespace tools {

namespace {

/** Parse an entire cell as a double; false if not fully numeric. */
bool
parseNumeric(const std::string& cell, double* out)
{
    if (cell.empty())
        return false;
    char* end = nullptr;
    *out = std::strtod(cell.c_str(), &end);
    return end == cell.c_str() + cell.size();
}

/** In-tolerance numeric equality; exact string equality otherwise. */
bool
cellsMatch(const std::string& a, const std::string& b,
           const Tolerance& tol)
{
    if (a == b)
        return true;
    double va = 0.0, vb = 0.0;
    if (!parseNumeric(a, &va) || !parseNumeric(b, &vb))
        return false;
    if (std::isnan(va) || std::isnan(vb))
        return std::isnan(va) && std::isnan(vb);
    const double delta = std::abs(va - vb);
    return delta <= tol.abs ||
           delta <= tol.rel * std::max(std::abs(va), std::abs(vb));
}

/** Key -> row position; throws on a repeated key. */
std::unordered_map<std::string, size_t>
keyRows(const engine::CsvTable& t, const char* label)
{
    std::unordered_map<std::string, size_t> rows;
    rows.reserve(t.rows.size());
    for (size_t r = 0; r < t.rows.size(); ++r) {
        if (!rows.emplace(t.rowKey(r), r).second)
            throw std::runtime_error(
                std::string(label) + " repeats grid point '" +
                t.rowKey(r) + "' — not a single-run result CSV");
    }
    return rows;
}

} // anonymous namespace

const Tolerance&
DiffOptions::toleranceFor(const std::string& column) const
{
    for (const auto& kv : columnTolerances) {
        if (kv.first == column)
            return kv.second;
    }
    return tolerance;
}

size_t
DiffResult::changedRows() const
{
    std::unordered_set<std::string> keys;
    for (const auto& c : changed)
        keys.insert(c.key);
    return keys.size();
}

DiffResult
diffResultCsvs(const engine::CsvTable& a, const engine::CsvTable& b,
               const DiffOptions& options)
{
    if (!a.empty() && !b.empty() &&
        a.schema.paramColumns != b.schema.paramColumns)
        throw std::runtime_error(
            "parameter columns differ between the two CSVs — not "
            "the same grid");

    DiffResult result;
    result.rowsA = a.rows.size();
    result.rowsB = b.rows.size();

    const auto rows_a = keyRows(a, "first CSV");
    const auto rows_b = keyRows(b, "second CSV");

    // Compared columns: everything except the positional "index" —
    // the metric span plus the union of breakdown columns (A's
    // order first). Identity/param cells are the key itself.
    std::vector<std::string> value_columns;
    if (!a.empty() || !b.empty()) {
        value_columns = engine::csvMetricColumns();
        for (const auto& t : {&a, &b}) {
            for (const auto& name : t->schema.breakdownColumns) {
                if (std::find(value_columns.begin(),
                              value_columns.end(),
                              name) == value_columns.end())
                    value_columns.push_back(name);
            }
        }
    }

    for (size_t r = 0; r < a.rows.size(); ++r) {
        const std::string key = a.rowKey(r);
        const auto it = rows_b.find(key);
        if (it == rows_b.end()) {
            result.removed.push_back(key);
            continue;
        }
        ++result.compared;
        for (const auto& column : value_columns) {
            const size_t ca = a.schema.columnIndex(column);
            const size_t cb = b.schema.columnIndex(column);
            // A column absent from one file reads as blank cells, so
            // it only flags rows where the other file has a value.
            const std::string& va = ca == std::string::npos
                                        ? std::string()
                                        : a.rows[r][ca];
            const std::string& vb = cb == std::string::npos
                                        ? std::string()
                                        : b.rows[it->second][cb];
            if (!cellsMatch(va, vb, options.toleranceFor(column)))
                result.changed.push_back({key, column, va, vb});
        }
    }
    for (size_t r = 0; r < b.rows.size(); ++r) {
        const std::string key = b.rowKey(r);
        if (rows_a.find(key) == rows_a.end())
            result.added.push_back(key);
    }
    return result;
}

void
printDiffSummary(const DiffResult& result, std::ostream& out,
                 size_t max_cells)
{
    out << result.rowsA << " rows vs " << result.rowsB << " rows; "
        << result.compared << " grid points compared\n"
        << "added: " << result.added.size()
        << ", removed: " << result.removed.size()
        << ", changed cells: " << result.changed.size() << " (in "
        << result.changedRows() << " rows)\n";
    size_t shown = 0;
    for (const auto& key : result.removed) {
        if (shown == max_cells)
            break;
        ++shown;
        out << "  - " << key << '\n';
    }
    for (const auto& key : result.added) {
        if (shown == max_cells)
            break;
        ++shown;
        out << "  + " << key << '\n';
    }
    for (const auto& c : result.changed) {
        if (shown == max_cells)
            break;
        ++shown;
        out << "  " << c.key << ": " << c.column << ' '
            << (c.before.empty() ? "(blank)" : c.before) << " -> "
            << (c.after.empty() ? "(blank)" : c.after) << '\n';
    }
    const size_t total = result.added.size() + result.removed.size() +
                         result.changed.size();
    if (total > shown)
        out << "  ... and " << (total - shown) << " more\n";
    out << (result.identical() ? "result CSVs match\n"
                               : "result CSVs differ\n");
}

void
printDiffJson(const DiffResult& result, std::ostream& out)
{
    out << "{\"rows_a\": " << result.rowsA
        << ", \"rows_b\": " << result.rowsB
        << ", \"compared\": " << result.compared
        << ", \"identical\": "
        << (result.identical() ? "true" : "false");
    out << ", \"added\": [";
    for (size_t i = 0; i < result.added.size(); ++i)
        out << (i ? ", " : "") << engine::jsonString(result.added[i]);
    out << "], \"removed\": [";
    for (size_t i = 0; i < result.removed.size(); ++i)
        out << (i ? ", " : "") << engine::jsonString(result.removed[i]);
    out << "], \"changed\": [";
    for (size_t i = 0; i < result.changed.size(); ++i) {
        const auto& c = result.changed[i];
        out << (i ? ", " : "") << "{\"key\": " << engine::jsonString(c.key)
            << ", \"column\": " << engine::jsonString(c.column)
            << ", \"before\": " << engine::jsonString(c.before)
            << ", \"after\": " << engine::jsonString(c.after) << '}';
    }
    out << "]}\n";
}

} // namespace tools
} // namespace dream
