/**
 * @file
 * Regression diffing of two result CSVs from the same grid ("same
 * grid, two builds, same results"). Rows are keyed by grid point
 * (scenario/system/scheduler/params/seed); value columns compare
 * numerically under per-column absolute/relative tolerances, so a
 * CI gate can allow bounded drift in noisy metrics while holding
 * counters exact. NaN cells compare equal to NaN (an expected-NaN
 * metric is not a regression); blank vs non-blank is a change.
 */

#ifndef DREAM_TOOLS_CSV_DIFF_H
#define DREAM_TOOLS_CSV_DIFF_H

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "engine/result_sink.h"

namespace dream {
namespace tools {

/** Allowed drift for one column (a cell passes if EITHER holds). */
struct Tolerance {
    double abs = 0.0; ///< |a - b| <= abs
    double rel = 0.0; ///< |a - b| <= rel * max(|a|, |b|)
};

/** Diff knobs. */
struct DiffOptions {
    /** Default tolerance for every compared column (exact match). */
    Tolerance tolerance;
    /** Per-column overrides of the default, e.g. {"ux_cost", ...}. */
    std::vector<std::pair<std::string, Tolerance>> columnTolerances;

    /** Tolerance in effect for @p column. */
    const Tolerance& toleranceFor(const std::string& column) const;
};

/** One out-of-tolerance cell. */
struct CellChange {
    std::string key;    ///< grid-point key of the row
    std::string column; ///< column name
    std::string before; ///< cell text in A
    std::string after;  ///< cell text in B
};

/** Outcome of one diff. */
struct DiffResult {
    size_t rowsA = 0;
    size_t rowsB = 0;
    size_t compared = 0; ///< grid points present in both files

    /** Grid points only in B / only in A, in file order. */
    std::vector<std::string> added;
    std::vector<std::string> removed;
    /** Out-of-tolerance cells, in A's row order. */
    std::vector<CellChange> changed;

    /** Number of distinct grid points with changed cells. */
    size_t changedRows() const;
    /** True when the grids match and every cell is in tolerance. */
    bool identical() const
    {
        return added.empty() && removed.empty() && changed.empty();
    }
};

/**
 * Compare baseline @p a against candidate @p b. Every column except
 * the positional "index" is compared: the metric span, and the
 * union of both files' breakdown columns.
 *
 * @throws std::runtime_error if either file repeats a grid-point
 * key, or if the files' parameter columns differ (not the same
 * grid).
 */
DiffResult diffResultCsvs(const engine::CsvTable& a,
                          const engine::CsvTable& b,
                          const DiffOptions& options = {});

/** Human-readable summary (cell listing capped at @p max_cells). */
void printDiffSummary(const DiffResult& result, std::ostream& out,
                      size_t max_cells = 20);

/** Machine-readable JSON summary (one object, all changes). */
void printDiffJson(const DiffResult& result, std::ostream& out);

} // namespace tools
} // namespace dream

#endif // DREAM_TOOLS_CSV_DIFF_H
