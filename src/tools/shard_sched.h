/**
 * @file
 * The work-stealing shard orchestrator behind tools/dream_shard: one
 * host splits a bench's (filtered) grid ordering into M >> N chunks
 * and drives N worker subprocesses over a shared queue — each worker
 * grabs the next pending chunk as it finishes, so skewed chunk costs
 * no longer leave legs idle the way the static --shard K/N partition
 * does. A chunk whose worker fails (non-zero exit or signal) is
 * requeued up to a retry budget, each chunk's wall time is recorded
 * for the timing report, and the chunk files are reassembled with
 * the dream_merge machinery into a file byte-identical to the
 * unsharded --out.
 *
 * The pure pieces (chunk partition, retry queue) are separated from
 * the process plumbing so tests can cover the scheduling policy
 * without spawning benches.
 */

#ifndef DREAM_TOOLS_SHARD_SCHED_H
#define DREAM_TOOLS_SHARD_SCHED_H

#include <cstddef>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace dream {
namespace tools {

/**
 * Split @p total positions into at most @p chunks contiguous
 * half-open ranges. Ranges are non-empty, tile [0, total) exactly in
 * order, and differ in size by at most one; fewer than @p chunks
 * ranges come back when the sequence is shorter. Empty for
 * total == 0 or chunks == 0.
 */
std::vector<engine::ChunkSpec> chunkRanges(size_t total,
                                           size_t chunks);

/**
 * The dynamic chunk queue: chunks are popped as workers free up and
 * a failed chunk is requeued (at the back, behind never-run work)
 * until its attempt budget is spent. Pure bookkeeping — the process
 * layer drives it.
 */
class ChunkQueue {
public:
    /**
     * @param chunks       the work items, in partition order.
     * @param max_attempts per-chunk attempt budget (>= 1); a chunk
     *                     failing this many times is exhausted.
     */
    ChunkQueue(std::vector<engine::ChunkSpec> chunks,
               int max_attempts);

    /** Total chunk count. */
    size_t size() const { return entries_.size(); }
    /** The chunk with queue id @p id. */
    const engine::ChunkSpec& chunk(size_t id) const
    {
        return entries_.at(id).chunk;
    }
    /** Attempts started for chunk @p id so far. */
    int attempts(size_t id) const { return entries_.at(id).attempts; }

    /**
     * Pop the next pending chunk into @p id (counting an attempt).
     * False when nothing is pending right now — which means done,
     * failed, or everything in flight; check allDone()/failed().
     */
    bool next(size_t* id);

    /** Mark chunk @p id (popped earlier) as completed. */
    void complete(size_t id);

    /**
     * Mark chunk @p id (popped earlier) as failed. Returns true when
     * the chunk was requeued, false when its attempt budget is
     * exhausted (a permanent failure).
     */
    bool fail(size_t id);

    /** True when every chunk has completed. */
    bool allDone() const { return completed_ == entries_.size(); }
    /** Chunks that exhausted their attempt budget. */
    size_t failed() const { return exhausted_; }
    /** Failed attempts that were requeued. */
    size_t requeues() const { return requeues_; }

private:
    struct Entry {
        engine::ChunkSpec chunk;
        int attempts = 0;
        bool done = false;
        bool exhausted = false;
    };

    std::vector<Entry> entries_;
    std::deque<size_t> pending_;
    int maxAttempts_;
    size_t completed_ = 0;
    size_t exhausted_ = 0;
    size_t requeues_ = 0;
};

/** Final outcome of one chunk, for the timing report. */
struct ChunkOutcome {
    engine::ChunkSpec chunk;
    int attempts = 0;        ///< attempts started (1 = no retry)
    int worker = -1;         ///< worker slot of the last attempt
    double wallSeconds = 0.0; ///< wall time of the last attempt
    size_t rows = 0;         ///< result rows the chunk produced
    bool ok = false;
};

/** Orchestrator knobs (the dream_shard command line). */
struct OrchestratorOptions {
    /**
     * The bench command: argv prefix the chunk flags are appended
     * to. May be a wrapper script around the real bench (CI uses
     * one to inject worker failures).
     */
    std::vector<std::string> command;
    int jobs = 0;        ///< worker processes; <= 0 = all cores
    size_t chunks = 0;   ///< target chunk count; 0 = 4 x jobs
    int retries = 2;     ///< extra attempts per chunk after failure
    int workerJobs = 1;  ///< --jobs each worker subprocess runs with
    std::string filter;  ///< forwarded to the bench as --filter
    bool json = false;   ///< chunk + merged results as JSON
    std::string out;     ///< merged result path; empty = stdout
    std::string tempDir; ///< chunk-file dir; empty = fresh temp dir
    bool verbose = true; ///< per-chunk progress lines on stderr
};

/**
 * One worker slot's occupancy over a whole orchestrated run, summed
 * over every attempt the slot executed (a requeued chunk counts on
 * every slot that ran it — ChunkOutcome only keeps the last
 * attempt's slot). Feeds the per-worker utilization section of the
 * chunk report, where one starved or overloaded leg is visible at a
 * glance.
 */
struct WorkerOutcome {
    size_t chunksRun = 0;      ///< attempts executed on this slot
    size_t failedAttempts = 0; ///< of those, how many failed
    double busySeconds = 0.0;  ///< summed attempt wall time
};

/** What one orchestrated run did. */
struct OrchestratorResult {
    bool ok = false;          ///< every chunk completed and merged
    size_t totalPoints = 0;   ///< grid points counted via --list
    size_t workers = 0;       ///< effective worker count
    size_t rows = 0;          ///< merged result rows
    size_t requeues = 0;      ///< failed attempts that were requeued
    size_t failedChunks = 0;  ///< chunks that exhausted the budget
    double wallSeconds = 0.0; ///< makespan (count + run + merge)
    std::vector<ChunkOutcome> chunks; ///< partition order
    std::vector<WorkerOutcome> workerStats; ///< by worker slot
};

/**
 * Count, chunk, execute, merge: run @p opts.command's grid through
 * N worker subprocesses with dynamic chunk handout and write the
 * merged result (byte-identical to the bench's unsharded --out) to
 * opts.out. A bench whose --list prints nothing (grid-less benches
 * like fig13) falls back to one whole-run task whose output is
 * copied verbatim. Progress goes to stderr.
 *
 * @throws std::runtime_error on environment errors (command not
 * runnable, unreadable chunk output, merge failure). A chunk
 * exhausting its retry budget is NOT a throw: the result comes back
 * with ok == false so the caller can report partial timings.
 */
OrchestratorResult runOrchestrator(const OrchestratorOptions& opts);

/**
 * Render the per-chunk timing report as a markdown table (chunk
 * range, rows, attempts, worker, wall seconds, plus totals —
 * including the "retried chunks: N" line CI greps to assert a
 * killed worker's chunks were re-run). CI publishes it to the
 * GitHub Actions step summary so chunk-cost skew stays visible
 * across PRs.
 */
void writeChunkReport(const OrchestratorOptions& opts,
                      const OrchestratorResult& result,
                      std::ostream& out);

} // namespace tools
} // namespace dream

#endif // DREAM_TOOLS_SHARD_SCHED_H
