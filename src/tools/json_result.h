/**
 * @file
 * The JSON half of the result toolchain: reads the record arrays
 * JsonSink writes (`bench --json --out`) back into the same table
 * view the CSV reader produces — so dream_diff compares JSON runs
 * (even against CSV runs) with the existing grid-point-keyed diff —
 * and merges sharded/chunked JSON files byte-identically to the
 * unsharded `--json --out`, by re-emitting the verbatim record text
 * in global index order.
 */

#ifndef DREAM_TOOLS_JSON_RESULT_H
#define DREAM_TOOLS_JSON_RESULT_H

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "engine/result_sink.h"

namespace dream {
namespace tools {

/**
 * One result JSON file: the converted table view (schema + raw cell
 * text per row, exactly what readResultCsv yields for the CSV twin
 * of the same run — numeric cells keep JsonSink's formatValue
 * rendering) plus each record's verbatim source text, which the
 * merger re-emits so merged files reproduce JsonSink's bytes.
 */
struct JsonTable {
    engine::CsvTable table;
    /** Verbatim record text ("{...}"), parallel to table.rows. */
    std::vector<std::string> raw;

    /** True for a file with no records ("[]"). */
    bool empty() const { return raw.empty(); }
};

/**
 * Parse a result JSON array produced by JsonSink.
 *
 * @throws std::runtime_error on malformed JSON, records missing the
 * fixed metric fields, or records disagreeing on the parameter keys
 * (different grids in one file).
 */
JsonTable readResultJson(std::istream& in);

/** readResultJson from a file; the error names @p path. */
JsonTable readResultJson(const std::string& path);

/**
 * Merge shard/chunk JSON tables into one canonical result array on
 * @p out — the JSON twin of mergeResultCsvs: rows sort by the
 * globally unique index, inputs may arrive in any order, empty
 * inputs are skipped, and all-empty input yields the rowless run's
 * "[]". Record text is re-emitted verbatim, so the merged file is
 * byte-identical to the unsharded `--json --out`.
 *
 * @throws std::runtime_error if the non-empty inputs disagree on
 * the parameter columns, or if two rows collide on the row index or
 * grid-point key (overlapping shards).
 */
void mergeResultJsons(const std::vector<JsonTable>& inputs,
                      std::ostream& out);

/** Result-file format, sniffed from the first non-space byte. */
enum class ResultFormat {
    Empty, ///< zero rows either way (e.g. an empty-shard CSV)
    Csv,
    Json, ///< starts with '['
};

/** Sniff @p path's format; throws std::runtime_error if unreadable. */
ResultFormat sniffResultFormat(const std::string& path);

/**
 * Read either result format into the diffable table view: sniffs
 * @p path and dispatches to readResultCsv or readResultJson. The
 * entry point dream_diff uses, so baselines and candidates mix
 * formats freely.
 */
engine::CsvTable readResultTable(const std::string& path);

/**
 * Read the shard/chunk files @p paths (all CSV, or all JSON with
 * @p json) and merge them onto @p out — the one reassembly path
 * shared by the dream_merge CLI and the dream_shard orchestrator.
 * Returns the total row count; @p rows_per_input (when non-null)
 * receives each input's row count, parallel to @p paths.
 *
 * @throws std::runtime_error on unreadable/malformed input or a
 * merge validation failure — callers buffer @p out so a previous
 * good file is never clobbered by a failed merge.
 */
size_t mergeResultFiles(const std::vector<std::string>& paths,
                        bool json, std::ostream& out,
                        std::vector<size_t>* rows_per_input = nullptr);

} // namespace tools
} // namespace dream

#endif // DREAM_TOOLS_JSON_RESULT_H
