#include "tools/json_result.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "tools/csv_merge.h"

namespace dream {
namespace tools {

namespace {

/**
 * One parsed JSON value of the shapes JsonSink emits: a string, a
 * scalar token (number; NaN/inf render as bare tokens, so scalars
 * keep their verbatim text), or a flat object of key -> scalar.
 */
struct JsonValue {
    enum Kind { String, Scalar, Object } kind = Scalar;
    std::string text; ///< decoded string, or verbatim scalar token
    std::vector<std::pair<std::string, std::string>> members;
};

/** Minimal recursive-descent parser over the whole input text. */
class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }
    bool atEnd()
    {
        skipWs();
        return pos_ >= text_.size();
    }
    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of JSON input");
        return text_[pos_];
    }
    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }
    bool consume(char c)
    {
        if (atEnd() || text_[pos_] != c)
            return false;
        ++pos_;
        return true;
    }
    size_t pos() const { return pos_; }
    std::string span(size_t from) const
    {
        return text_.substr(from, pos_ - from);
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              default:
                  fail(std::string("unsupported escape \\") + esc);
            }
        }
        fail("unterminated JSON string");
        return out; // unreachable
    }

    /** A bare scalar token (number, nan, inf, ...), verbatim. */
    std::string parseScalar()
    {
        skipWs();
        const size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ',' || c == '}' || c == ']' ||
                std::isspace(static_cast<unsigned char>(c)))
                break;
            ++pos_;
        }
        if (pos_ == start)
            fail("empty JSON scalar");
        return text_.substr(start, pos_ - start);
    }

    JsonValue parseValue()
    {
        JsonValue v;
        const char c = peek();
        if (c == '"') {
            v.kind = JsonValue::String;
            v.text = parseString();
        } else if (c == '{') {
            v.kind = JsonValue::Object;
            expect('{');
            if (!consume('}')) {
                for (;;) {
                    std::string key = parseString();
                    expect(':');
                    v.members.push_back({std::move(key),
                                         parseScalar()});
                    if (consume('}'))
                        break;
                    expect(',');
                }
            }
        } else {
            v.kind = JsonValue::Scalar;
            v.text = parseScalar();
        }
        return v;
    }

    /** A record object: key -> value, any member order. */
    std::vector<std::pair<std::string, JsonValue>> parseRecord()
    {
        std::vector<std::pair<std::string, JsonValue>> members;
        expect('{');
        if (consume('}'))
            return members;
        for (;;) {
            std::string key = parseString();
            expect(':');
            members.push_back({std::move(key), parseValue()});
            if (consume('}'))
                return members;
            expect(',');
        }
    }

    [[noreturn]] void fail(const std::string& what) const
    {
        throw std::runtime_error("result JSON: " + what +
                                 " at offset " +
                                 std::to_string(pos_));
    }

private:
    const std::string& text_;
    size_t pos_ = 0;
};

using Record = std::vector<std::pair<std::string, JsonValue>>;

const JsonValue*
find(const Record& record, const std::string& key)
{
    for (const auto& kv : record) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

const JsonValue&
need(const Record& record, const std::string& key,
     JsonValue::Kind kind)
{
    const JsonValue* v = find(record, key);
    if (!v)
        throw std::runtime_error(
            "result JSON: record is missing \"" + key + "\"");
    if (v->kind != kind)
        throw std::runtime_error(
            "result JSON: \"" + key + "\" has the wrong type");
    return *v;
}

} // anonymous namespace

JsonTable
readResultJson(std::istream& in)
{
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    JsonTable out;
    Parser p(text);
    if (p.atEnd())
        return out; // empty stream == rowless run, like the reader
    p.expect('[');
    std::vector<Record> records;
    if (!p.consume(']')) {
        for (;;) {
            p.peek(); // position on the record's first byte
            const size_t start = p.pos();
            records.push_back(p.parseRecord());
            out.raw.push_back(p.span(start));
            if (p.consume(']'))
                break;
            p.expect(',');
        }
    }
    if (!p.atEnd())
        p.fail("trailing content after the record array");

    // Schema: parameter keys come from the first record (and must
    // agree everywhere — one file is one grid); breakdown columns
    // are the union in first-seen order, exactly like CsvSink.
    engine::CsvSchema& schema = out.table.schema;
    if (!records.empty()) {
        for (const auto& kv :
             need(records.front(), "params", JsonValue::Object)
                 .members)
            schema.paramColumns.push_back(kv.first);
    }
    for (const auto& record : records) {
        const auto& params =
            need(record, "params", JsonValue::Object);
        std::vector<std::string> keys;
        for (const auto& kv : params.members)
            keys.push_back(kv.first);
        if (keys != schema.paramColumns)
            throw std::runtime_error(
                "result JSON: records disagree on the parameter "
                "keys (different grids?)");
        for (const auto& kv :
             need(record, "breakdown", JsonValue::Object).members) {
            if (std::find(schema.breakdownColumns.begin(),
                          schema.breakdownColumns.end(),
                          kv.first) ==
                schema.breakdownColumns.end())
                schema.breakdownColumns.push_back(kv.first);
        }
    }
    schema.columns = engine::csvIdentityColumns();
    schema.columns.insert(schema.columns.end(),
                          schema.paramColumns.begin(),
                          schema.paramColumns.end());
    const auto& metrics = engine::csvMetricColumns();
    schema.columns.insert(schema.columns.end(), metrics.begin(),
                          metrics.end());
    schema.columns.insert(schema.columns.end(),
                          schema.breakdownColumns.begin(),
                          schema.breakdownColumns.end());

    for (const auto& record : records) {
        std::vector<std::string> row;
        row.reserve(schema.columns.size());
        row.push_back(
            need(record, "index", JsonValue::Scalar).text);
        row.push_back(
            need(record, "scenario", JsonValue::String).text);
        row.push_back(need(record, "system", JsonValue::String).text);
        row.push_back(
            need(record, "scheduler", JsonValue::String).text);
        for (const auto& kv :
             need(record, "params", JsonValue::Object).members)
            row.push_back(kv.second);
        for (const auto& name : metrics)
            row.push_back(
                need(record, name, JsonValue::Scalar).text);
        const auto& breakdown =
            need(record, "breakdown", JsonValue::Object);
        for (const auto& name : schema.breakdownColumns) {
            const auto it = std::find_if(
                breakdown.members.begin(), breakdown.members.end(),
                [&](const auto& kv) { return kv.first == name; });
            row.push_back(it == breakdown.members.end() ? ""
                                                        : it->second);
        }
        out.table.rows.push_back(std::move(row));
    }
    return out;
}

JsonTable
readResultJson(const std::string& path)
{
    std::ifstream in(path);
    if (!in.is_open())
        throw std::runtime_error("cannot open result JSON: " + path);
    try {
        return readResultJson(in);
    } catch (const std::runtime_error& e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

void
mergeResultJsons(const std::vector<JsonTable>& inputs,
                 std::ostream& out)
{
    std::vector<const engine::CsvTable*> tables;
    std::vector<const JsonTable*> sources;
    for (const auto& t : inputs) {
        if (!t.empty()) {
            tables.push_back(&t.table);
            sources.push_back(&t);
        }
    }
    if (tables.empty()) {
        // All shards empty: JsonSink's rowless run is "[]".
        out << "[]\n";
        out.flush();
        return;
    }

    const auto rows = orderShardRows(tables);
    out << "[\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        out << "  " << sources[rows[i].table]->raw[rows[i].row]
            << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "]\n";
    out.flush();
}

ResultFormat
sniffResultFormat(const std::string& path)
{
    std::ifstream in(path);
    if (!in.is_open())
        throw std::runtime_error("cannot open result file: " + path);
    int c;
    while ((c = in.get()) != std::istream::traits_type::eof()) {
        if (!std::isspace(static_cast<unsigned char>(c)))
            return c == '[' ? ResultFormat::Json : ResultFormat::Csv;
    }
    return ResultFormat::Empty;
}

engine::CsvTable
readResultTable(const std::string& path)
{
    switch (sniffResultFormat(path)) {
      case ResultFormat::Json:
        return readResultJson(path).table;
      case ResultFormat::Csv:
      case ResultFormat::Empty:
        return engine::readResultCsv(path);
    }
    return {}; // unreachable
}

size_t
mergeResultFiles(const std::vector<std::string>& paths, bool json,
                 std::ostream& out,
                 std::vector<size_t>* rows_per_input)
{
    size_t rows = 0;
    if (rows_per_input)
        rows_per_input->clear();
    if (json) {
        std::vector<JsonTable> tables;
        tables.reserve(paths.size());
        for (const auto& path : paths) {
            tables.push_back(readResultJson(path));
            if (rows_per_input)
                rows_per_input->push_back(
                    tables.back().table.rows.size());
            rows += tables.back().table.rows.size();
        }
        mergeResultJsons(tables, out);
    } else {
        std::vector<engine::CsvTable> tables;
        tables.reserve(paths.size());
        for (const auto& path : paths) {
            tables.push_back(engine::readResultCsv(path));
            if (rows_per_input)
                rows_per_input->push_back(tables.back().rows.size());
            rows += tables.back().rows.size();
        }
        mergeResultCsvs(tables, out);
    }
    return rows;
}

} // namespace tools
} // namespace dream
