/**
 * @file
 * Reader/profiler for the telemetry event traces the engine records
 * under --trace-events (Chrome trace-event JSON, one file per grid
 * point — see obs::TraceEventSink). Validates the file shape the
 * acceptance gate cares about (top-level array, required fields per
 * phase, non-decreasing timestamps per track) and folds the events
 * into per-point profiles: per-accelerator busy time as the union of
 * job spans clamped to the run window — the same quantity the
 * simulator reports as RunStats::accelBusyUs — plus scheduler
 * decision-latency samples from the "sched" spans' wall_ns args.
 * Backs the tools/dream_prof CLI and the CI trace checker.
 */

#ifndef DREAM_TOOLS_TRACE_PROF_H
#define DREAM_TOOLS_TRACE_PROF_H

#include <cstddef>
#include <istream>
#include <string>
#include <utility>
#include <vector>

namespace dream {
namespace tools {

/**
 * One parsed trace event. Strings are decoded; arg values keep the
 * decoded string for JSON strings and the verbatim token for
 * numbers, so numeric args re-parse with strtod.
 */
struct ProfEvent {
    std::string name;
    std::string cat;
    char ph = '\0';    ///< 'X' span, 'i' instant, 'M' metadata
    double tsUs = 0.0;
    double durUs = 0.0; ///< spans only
    long long pid = 0;
    long long tid = 0;
    std::vector<std::pair<std::string, std::string>> args;

    /** Value of arg @p key, or nullptr when absent. */
    const std::string* arg(const std::string& key) const;
};

/** One accelerator track of a point, folded from its job spans. */
struct AccelProfile {
    long long tid = 0;
    std::string name; ///< thread_name metadata ("accel<i> <name>")
    size_t jobs = 0;  ///< "job" spans on the track
    /**
     * Union of the job spans' [ts, ts+dur) intervals, each clamped
     * to [0, window] — overlapping jobs (an accelerator running
     * several slices) count once, exactly like the simulator's
     * RunStats::accelBusyUs bookkeeping, so the two agree to the
     * last bit on a faithful trace.
     */
    double busyUs = 0.0;

    /** busyUs / window (0 when the window is empty). */
    double utilization(double window_us) const
    {
        return window_us > 0.0 ? busyUs / window_us : 0.0;
    }
};

/** Everything one pid's (= one grid point's) events fold into. */
struct PointProfile {
    long long pid = 0;
    std::string key;        ///< process_name / dream_meta "key"
    double windowUs = 0.0;  ///< dream_meta "window_us" (0 if absent)
    std::vector<AccelProfile> accels; ///< ascending tid

    size_t schedInvocations = 0;
    std::vector<double> decisionWallNs; ///< "sched" spans' wall_ns
    std::vector<double> planRounds;     ///< "sched" spans' rounds

    size_t frameArrivals = 0;
    size_t frameDrops = 0;
    size_t deadlineViolations = 0;
    size_t variantSwitches = 0;
    size_t contextSwitches = 0; ///< "cs" spans across all tracks
};

/** A parsed trace file: raw events plus the per-point fold. */
struct TraceProfile {
    std::vector<ProfEvent> events;   ///< file order
    std::vector<PointProfile> points; ///< ascending pid
};

/**
 * Parse and validate one trace-event JSON file: a top-level array of
 * event objects; every event carries name/ph/pid/tid; 'X' spans
 * carry ts and dur >= 0, 'i' instants carry ts; timestamps are
 * non-decreasing per (pid, tid) track in file order ('M' metadata is
 * timeless and exempt). @p name labels errors (the file path).
 *
 * @throws std::runtime_error on malformed JSON or a validation
 * failure.
 */
TraceProfile readTraceEventJson(std::istream& in,
                                const std::string& name = "<trace>");

/** readTraceEventJson from a file; errors name @p path. */
TraceProfile readTraceEventJson(const std::string& path);

/**
 * Render the per-accelerator utilization and scheduler
 * decision-latency tables for every point of @p profile — the
 * dream_prof report body.
 */
std::string profileReport(const TraceProfile& profile);

/**
 * Parsed counters and gauges of a metrics JSON dump (`bench
 * --metrics F` / `--metrics-full F`,
 * obs::MetricsRegistry::writeJson). Histograms are parsed past but
 * not kept: the profiler's consumers — the cost-cache efficiency
 * and serve-telemetry tables — only need scalar sections.
 */
struct MetricsProfile {
    /** Counter (name, value) pairs in file order. */
    std::vector<std::pair<std::string, double>> counters;
    /** Gauge (name, value) pairs in file order. */
    std::vector<std::pair<std::string, double>> gauges;

    /** Counter value, or @p fallback when absent. */
    double counter(const std::string& name,
                   double fallback = 0.0) const;
    bool has(const std::string& name) const;

    /** Gauge value, or @p fallback when absent. */
    double gauge(const std::string& name, double fallback = 0.0) const;
    bool hasGauge(const std::string& name) const;
};

/**
 * Parse one metrics JSON dump: a top-level object of "counters" /
 * "gauges" / "histograms" sections. @p name labels errors (the file
 * path).
 *
 * @throws std::runtime_error on malformed input.
 */
MetricsProfile readMetricsJson(std::istream& in,
                               const std::string& name = "<metrics>");

/** readMetricsJson from a file; errors name @p path. */
MetricsProfile readMetricsJson(const std::string& path);

/**
 * Render the cost-table cache efficiency table from a metrics dump:
 * acquisitions, hits, misses (= distinct tables built), evictions
 * and the hit rate. The costcache counters are volatile — recorded
 * by `--metrics-full`, excluded from canonical `--metrics` output —
 * so a dump without them yields an explanatory line instead.
 */
std::string cacheReport(const MetricsProfile& metrics);

/**
 * Render the serve-mode telemetry table from a metrics dump
 * (`dream_serve --metrics F`): admission counters and the final
 * rolling-window latency/SLO gauges. A dump without serve metrics
 * yields an explanatory line instead.
 */
std::string serveReport(const MetricsProfile& metrics);

} // namespace tools
} // namespace dream

#endif // DREAM_TOOLS_TRACE_PROF_H
