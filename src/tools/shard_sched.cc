#include "tools/shard_sched.h"

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "engine/result_sink.h"
#include "engine/worker_pool.h"
#include "tools/json_result.h"

namespace dream {
namespace tools {

namespace fs = std::filesystem;

std::vector<engine::ChunkSpec>
chunkRanges(size_t total, size_t chunks)
{
    std::vector<engine::ChunkSpec> out;
    const size_t m = std::min(total, chunks);
    out.reserve(m);
    for (size_t i = 0; i < m; ++i)
        out.push_back({total * i / m, total * (i + 1) / m});
    return out;
}

ChunkQueue::ChunkQueue(std::vector<engine::ChunkSpec> chunks,
                       int max_attempts)
    : maxAttempts_(std::max(max_attempts, 1))
{
    entries_.reserve(chunks.size());
    for (auto& c : chunks) {
        pending_.push_back(entries_.size());
        entries_.push_back({c, 0, false, false});
    }
}

bool
ChunkQueue::next(size_t* id)
{
    if (pending_.empty())
        return false;
    *id = pending_.front();
    pending_.pop_front();
    ++entries_[*id].attempts;
    return true;
}

void
ChunkQueue::complete(size_t id)
{
    Entry& e = entries_.at(id);
    if (!e.done) {
        e.done = true;
        ++completed_;
    }
}

bool
ChunkQueue::fail(size_t id)
{
    Entry& e = entries_.at(id);
    if (e.attempts >= maxAttempts_) {
        e.exhausted = true;
        ++exhausted_;
        return false;
    }
    // Requeue at the back: never-run chunks go first, so one flaky
    // chunk cannot starve the rest of the grid.
    pending_.push_back(id);
    ++requeues_;
    return true;
}

// ------------------------------------------------ process plumbing

namespace {

/** argv for one worker: the bench command plus the chunk flags. */
std::vector<std::string>
workerArgv(const OrchestratorOptions& opts,
           const engine::ChunkSpec* chunk, const std::string& out_path)
{
    std::vector<std::string> argv = opts.command;
    argv.push_back("--jobs");
    argv.push_back(std::to_string(std::max(opts.workerJobs, 1)));
    if (chunk) {
        argv.push_back("--chunk");
        argv.push_back(chunk->toString());
    }
    if (!opts.filter.empty()) {
        argv.push_back("--filter");
        argv.push_back(opts.filter);
    }
    argv.push_back("--out");
    argv.push_back(out_path);
    if (opts.json)
        argv.push_back("--json");
    return argv;
}

/**
 * fork + execvp with stdin from /dev/null and (when @p silence)
 * stdout to /dev/null — subset runs echo their rows to stdout,
 * which must not interleave across workers — and stderr to
 * @p stderr_fd (a per-chunk log the orchestrator surfaces on
 * permanent failure; /dev/null when negative and silenced).
 */
pid_t
spawnProcess(const std::vector<std::string>& argv, bool silence,
             int stdout_fd = -1, int stderr_fd = -1)
{
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv)
        cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0)
        throw std::runtime_error(std::string("fork failed: ") +
                                 std::strerror(errno));
    if (pid == 0) {
        const int devnull = ::open("/dev/null", O_RDWR);
        if (devnull >= 0) {
            ::dup2(devnull, STDIN_FILENO);
            if (stdout_fd >= 0)
                ::dup2(stdout_fd, STDOUT_FILENO);
            else if (silence)
                ::dup2(devnull, STDOUT_FILENO);
            if (stderr_fd >= 0)
                ::dup2(stderr_fd, STDERR_FILENO);
            else if (silence)
                ::dup2(devnull, STDERR_FILENO);
            if (devnull > STDERR_FILENO)
                ::close(devnull);
        }
        if (stdout_fd > STDERR_FILENO)
            ::close(stdout_fd);
        if (stderr_fd > STDERR_FILENO)
            ::close(stderr_fd);
        ::execvp(cargv[0], cargv.data());
        std::fprintf(stderr, "dream_shard: cannot exec %s: %s\n",
                     cargv[0], std::strerror(errno));
        _exit(127);
    }
    return pid;
}

/** Human-readable subprocess wait status ("exit 2", "signal 9"). */
std::string
describeStatus(int status)
{
    if (WIFSIGNALED(status))
        return "signal " + std::to_string(WTERMSIG(status));
    if (WIFEXITED(status))
        return "exit " + std::to_string(WEXITSTATUS(status));
    return "status " + std::to_string(status);
}

/**
 * Run `command --list [--filter S]` and count the printed grid
 * point keys — the length of the position sequence the chunks tile.
 */
size_t
countGridPoints(const OrchestratorOptions& opts)
{
    int fds[2];
    if (::pipe(fds) != 0)
        throw std::runtime_error(std::string("pipe failed: ") +
                                 std::strerror(errno));

    std::vector<std::string> argv = opts.command;
    argv.push_back("--list");
    if (!opts.filter.empty()) {
        argv.push_back("--filter");
        argv.push_back(opts.filter);
    }
    const pid_t pid =
        spawnProcess(argv, /*silence=*/true, /*stdout_fd=*/fds[1]);
    ::close(fds[1]);

    size_t lines = 0;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fds[0], buf, sizeof buf);
        if (n <= 0)
            break;
        for (ssize_t i = 0; i < n; ++i) {
            if (buf[i] == '\n')
                ++lines;
        }
    }
    ::close(fds[0]);

    int status = 0;
    if (::waitpid(pid, &status, 0) < 0 || status != 0)
        throw std::runtime_error(opts.command.front() +
                                 " --list failed (" +
                                 describeStatus(status) + ")");
    return lines;
}

/** Copy @p path's bytes to @p out (the whole-run fallback merge). */
void
copyFileBytes(const std::string& path, std::ostream& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        throw std::runtime_error("cannot read chunk output: " + path);
    out << in.rdbuf();
    out.flush();
}

/** Merged-output stream: opts.out, or stdout when empty. */
class MergedOut {
public:
    explicit MergedOut(const std::string& path)
    {
        if (path.empty())
            return;
        file_.open(path, std::ios::binary | std::ios::trunc);
        if (!file_.is_open())
            throw std::runtime_error(
                "cannot open --out file for writing: " + path);
    }
    std::ostream& stream()
    {
        return file_.is_open() ? file_ : std::cout;
    }

private:
    std::ofstream file_;
};

/** Temp chunk-file directory, removed on scope exit if we made it. */
class ChunkDir {
public:
    explicit ChunkDir(const std::string& requested)
    {
        if (!requested.empty()) {
            fs::create_directories(requested);
            path_ = requested;
            return;
        }
        std::string tmpl =
            (fs::temp_directory_path() / "dream_shard.XXXXXX")
                .string();
        if (!::mkdtemp(tmpl.data()))
            throw std::runtime_error(
                std::string("mkdtemp failed: ") +
                std::strerror(errno));
        path_ = tmpl;
        owned_ = true;
    }
    ~ChunkDir()
    {
        if (owned_) {
            std::error_code ec;
            fs::remove_all(path_, ec); // best effort
        }
    }
    std::string chunkFile(size_t id, bool json) const
    {
        return (fs::path(path_) /
                ("chunk" + std::to_string(id) +
                 (json ? ".json" : ".csv")))
            .string();
    }
    /** Per-chunk worker stderr capture (last attempt wins). */
    std::string logFile(size_t id) const
    {
        return (fs::path(path_) /
                ("chunk" + std::to_string(id) + ".log"))
            .string();
    }

private:
    std::string path_;
    bool owned_ = false;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // anonymous namespace

OrchestratorResult
runOrchestrator(const OrchestratorOptions& opts)
{
    if (opts.command.empty())
        throw std::runtime_error("no bench command given");
    const auto t0 = std::chrono::steady_clock::now();

    OrchestratorResult result;
    result.workers = size_t(opts.jobs > 0
                                ? opts.jobs
                                : engine::WorkerPool::defaultJobs());
    result.totalPoints = countGridPoints(opts);
    const size_t n_chunks =
        opts.chunks > 0 ? opts.chunks : 4 * result.workers;
    const int max_attempts = 1 + std::max(opts.retries, 0);

    ChunkDir dir(opts.tempDir);
    const bool whole_run = result.totalPoints == 0;

    // Grid-less benches (fig13) list nothing: fall back to one
    // whole-run task and pass its output through verbatim.
    std::vector<engine::ChunkSpec> chunks =
        whole_run ? std::vector<engine::ChunkSpec>{{0,
                                                    engine::ChunkSpec::
                                                        npos}}
                  : chunkRanges(result.totalPoints, n_chunks);
    ChunkQueue queue(chunks, max_attempts);

    result.chunks.resize(chunks.size());
    for (size_t i = 0; i < chunks.size(); ++i)
        result.chunks[i].chunk = chunks[i];
    result.workerStats.resize(result.workers);

    if (opts.verbose)
        std::fprintf(stderr,
                     "dream_shard: %zu grid points -> %zu chunk(s) "
                     "on %zu worker(s)\n",
                     result.totalPoints, chunks.size(),
                     result.workers);

    // The work-stealing loop: keep every worker slot busy with the
    // next pending chunk; a finished worker immediately picks up
    // more work, so chunk-cost skew settles onto idle slots instead
    // of stretching one static leg.
    struct Running {
        size_t id;
        int slot;
        std::chrono::steady_clock::time_point start;
    };
    std::map<pid_t, Running> running;
    std::vector<int> free_slots;
    for (int s = int(result.workers); s-- > 0;)
        free_slots.push_back(s);

    for (;;) {
        size_t id = 0;
        while (!free_slots.empty() && queue.next(&id)) {
            const int slot = free_slots.back();
            free_slots.pop_back();
            const auto argv = workerArgv(
                opts, whole_run ? nullptr : &chunks[id],
                dir.chunkFile(id, opts.json));
            // Worker stderr goes to a per-chunk log (truncated per
            // attempt) so a permanently failing chunk can report
            // WHY, not just its exit status.
            const int log_fd =
                ::open(dir.logFile(id).c_str(),
                       O_WRONLY | O_CREAT | O_TRUNC, 0644);
            const pid_t pid = spawnProcess(
                argv, /*silence=*/true, /*stdout_fd=*/-1, log_fd);
            if (log_fd >= 0)
                ::close(log_fd);
            running[pid] = {id, slot,
                            std::chrono::steady_clock::now()};
        }
        if (running.empty())
            break;

        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0)
            throw std::runtime_error(
                std::string("waitpid failed: ") +
                std::strerror(errno));
        const auto it = running.find(pid);
        if (it == running.end())
            continue; // not one of ours
        const Running run = it->second;
        running.erase(it);
        free_slots.push_back(run.slot);

        ChunkOutcome& outcome = result.chunks[run.id];
        outcome.attempts = queue.attempts(run.id);
        outcome.worker = run.slot;
        outcome.wallSeconds = secondsSince(run.start);
        // Per-attempt worker bookkeeping: ChunkOutcome only keeps
        // the last attempt, so retried chunks are credited to every
        // slot that ran them here.
        WorkerOutcome& ws = result.workerStats[size_t(run.slot)];
        ws.chunksRun += 1;
        ws.busySeconds += outcome.wallSeconds;
        if (status != 0)
            ws.failedAttempts += 1;
        if (status == 0) {
            outcome.ok = true;
            queue.complete(run.id);
            if (opts.verbose)
                std::fprintf(stderr,
                             "dream_shard: chunk %zu [%s] ok on "
                             "worker %d, attempt %d (%.2fs)\n",
                             run.id,
                             chunks[run.id].toString().c_str(),
                             run.slot, outcome.attempts,
                             outcome.wallSeconds);
        } else {
            const bool requeued = queue.fail(run.id);
            std::fprintf(
                stderr,
                "dream_shard: chunk %zu [%s] FAILED on worker "
                "%d (%s), attempt %d/%d — %s\n",
                run.id, chunks[run.id].toString().c_str(),
                run.slot, describeStatus(status).c_str(),
                outcome.attempts, max_attempts,
                requeued ? "requeued" : "giving up");
            if (!requeued) {
                // Surface the final attempt's stderr before the
                // temp dir (and the log with it) is cleaned up.
                std::ifstream log(dir.logFile(run.id));
                std::string line;
                bool any = false;
                while (std::getline(log, line)) {
                    std::fprintf(stderr,
                                 "dream_shard: chunk %zu stderr: "
                                 "%s\n",
                                 run.id, line.c_str());
                    any = true;
                }
                if (!any)
                    std::fprintf(stderr,
                                 "dream_shard: chunk %zu produced "
                                 "no stderr\n",
                                 run.id);
            }
        }
    }

    result.requeues = queue.requeues();
    result.failedChunks = queue.failed();
    if (!queue.allDone()) {
        result.wallSeconds = secondsSince(t0);
        return result; // ok stays false; caller reports and exits 1
    }

    // Reassemble. Chunks tile the filtered ordering and every row
    // carries its global index, so the dream_merge machinery
    // restores the canonical single-run bytes no matter which
    // worker ran which chunk in which order. The merge goes into a
    // buffer first: --out is only touched once the whole merge has
    // succeeded, so a corrupt chunk file cannot destroy a previous
    // good result at the same path.
    std::ostringstream buffer;
    if (whole_run) {
        const std::string path = dir.chunkFile(0, opts.json);
        result.chunks[0].rows =
            opts.json ? readResultJson(path).table.rows.size()
                      : engine::readResultCsv(path).rows.size();
        copyFileBytes(path, buffer);
        result.rows = result.chunks[0].rows;
    } else {
        std::vector<std::string> paths;
        paths.reserve(chunks.size());
        for (size_t i = 0; i < chunks.size(); ++i)
            paths.push_back(dir.chunkFile(i, opts.json));
        std::vector<size_t> rows_per_chunk;
        result.rows = mergeResultFiles(paths, opts.json, buffer,
                                       &rows_per_chunk);
        for (size_t i = 0; i < rows_per_chunk.size(); ++i)
            result.chunks[i].rows = rows_per_chunk[i];
    }

    MergedOut out(opts.out);
    out.stream() << buffer.str();
    out.stream().flush();

    result.ok = true;
    result.wallSeconds = secondsSince(t0);
    return result;
}

void
writeChunkReport(const OrchestratorOptions& opts,
                 const OrchestratorResult& result, std::ostream& out)
{
    std::string command;
    for (const auto& a : opts.command) {
        if (!command.empty())
            command += ' ';
        command += a;
    }
    size_t retried = 0;
    for (const auto& c : result.chunks) {
        if (c.attempts > 1)
            ++retried;
    }

    char buf[64];
    out << "### dream_shard: " << command << "\n\n";
    std::snprintf(buf, sizeof buf, "%.2f", result.wallSeconds);
    out << "- grid points: " << result.totalPoints
        << " · chunks: " << result.chunks.size()
        << " · workers: " << result.workers
        << " · worker --jobs: " << std::max(opts.workerJobs, 1)
        << "\n"
        << "- makespan: " << buf << " s · merged rows: "
        << result.rows << " · requeued attempts: " << result.requeues
        << " · failed chunks: " << result.failedChunks << "\n"
        << "- retried chunks: " << retried << "\n\n";

    out << "| chunk | range | rows | attempts | worker | wall (s) "
           "|\n"
        << "|--:|:--|--:|--:|--:|--:|\n";
    for (size_t i = 0; i < result.chunks.size(); ++i) {
        const ChunkOutcome& c = result.chunks[i];
        std::snprintf(buf, sizeof buf, "%.3f", c.wallSeconds);
        out << "| " << i << " | [" << c.chunk.toString() << ") | "
            << c.rows << " | " << c.attempts << " | " << c.worker
            << " | " << buf << " |\n";
    }

    // Per-worker occupancy: idle is measured against the makespan,
    // so a slot that sat out most of the run (chunk-cost skew, or a
    // crashed worker's chunks migrating elsewhere) shows up as a
    // low utilization row.
    if (!result.workerStats.empty()) {
        out << "\n| worker | chunks run | failed attempts | "
               "busy (s) | idle (s) | utilization |\n"
            << "|--:|--:|--:|--:|--:|--:|\n";
        for (size_t w = 0; w < result.workerStats.size(); ++w) {
            const WorkerOutcome& ws = result.workerStats[w];
            const double busy = ws.busySeconds;
            const double idle =
                std::max(0.0, result.wallSeconds - busy);
            const double util =
                result.wallSeconds > 0.0
                    ? busy / result.wallSeconds : 0.0;
            char busy_s[64], idle_s[64], util_s[64];
            std::snprintf(busy_s, sizeof busy_s, "%.3f", busy);
            std::snprintf(idle_s, sizeof idle_s, "%.3f", idle);
            std::snprintf(util_s, sizeof util_s, "%.1f%%",
                          util * 100.0);
            out << "| " << w << " | " << ws.chunksRun << " | "
                << ws.failedAttempts << " | " << busy_s << " | "
                << idle_s << " | " << util_s << " |\n";
        }
    }
    out.flush();
}

} // namespace tools
} // namespace dream
