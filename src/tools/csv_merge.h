/**
 * @file
 * Merging sharded result CSVs back into the canonical single-run
 * file. `bench --shard K/N --out shardK.csv` writes the K-th
 * contiguous key range of the deterministic grid ordering; this
 * module restores the unsharded ordering by sorting rows on the
 * globally unique index column and re-emitting them through the
 * same header/quoting helpers CsvSink uses — so the merged file is
 * byte-identical to what one unsharded `--out` run would have
 * written.
 */

#ifndef DREAM_TOOLS_CSV_MERGE_H
#define DREAM_TOOLS_CSV_MERGE_H

#include <ostream>
#include <vector>

#include "engine/result_sink.h"

namespace dream {
namespace tools {

/** One row of one input table, ordered for merged re-emission. */
struct ShardRowRef {
    size_t table;   ///< position in the caller's table list
    size_t row;     ///< row within that table
    uint64_t index; ///< the row's globally unique "index" cell
};

/**
 * Order every row of @p tables by the globally unique index column
 * and validate the shard union. Shared by the CSV and JSON mergers
 * (and the dream_shard reassembly), so both formats enforce the
 * same invariants.
 *
 * @throws std::runtime_error if the tables disagree on the
 * parameter columns (different grids), or if two rows collide on
 * the row index or the grid-point key (overlapping shards).
 */
std::vector<ShardRowRef>
orderShardRows(const std::vector<const engine::CsvTable*>& tables);

/**
 * Merge shard tables into one canonical result CSV on @p out.
 * Inputs may arrive in any order; empty tables (empty shards write
 * rowless files) are skipped. If every input is empty, nothing is
 * written — matching an unsharded run with no rows.
 *
 * @throws std::runtime_error if the non-empty inputs disagree on
 * the column schema, or if two rows collide on the row index or on
 * the grid-point key (overlapping shards).
 */
void mergeResultCsvs(const std::vector<engine::CsvTable>& inputs,
                     std::ostream& out);

} // namespace tools
} // namespace dream

#endif // DREAM_TOOLS_CSV_MERGE_H
