/**
 * @file
 * Merging sharded result CSVs back into the canonical single-run
 * file. `bench --shard K/N --out shardK.csv` writes the K-th
 * contiguous key range of the deterministic grid ordering; this
 * module restores the unsharded ordering by sorting rows on the
 * globally unique index column and re-emitting them through the
 * same header/quoting helpers CsvSink uses — so the merged file is
 * byte-identical to what one unsharded `--out` run would have
 * written.
 */

#ifndef DREAM_TOOLS_CSV_MERGE_H
#define DREAM_TOOLS_CSV_MERGE_H

#include <ostream>
#include <vector>

#include "engine/result_sink.h"

namespace dream {
namespace tools {

/**
 * Merge shard tables into one canonical result CSV on @p out.
 * Inputs may arrive in any order; empty tables (empty shards write
 * rowless files) are skipped. If every input is empty, nothing is
 * written — matching an unsharded run with no rows.
 *
 * @throws std::runtime_error if the non-empty inputs disagree on
 * the column schema, or if two rows collide on the row index or on
 * the grid-point key (overlapping shards).
 */
void mergeResultCsvs(const std::vector<engine::CsvTable>& inputs,
                     std::ostream& out);

} // namespace tools
} // namespace dream

#endif // DREAM_TOOLS_CSV_MERGE_H
