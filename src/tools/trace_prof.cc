#include "tools/trace_prof.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "runner/table.h"

namespace dream {
namespace tools {

namespace {

/**
 * One parsed member value of a trace event: a decoded string, a
 * verbatim scalar token, or a flat object (the "args" member, whose
 * values are themselves strings or scalars).
 */
struct EventValue {
    enum Kind { String, Scalar, Object } kind = Scalar;
    bool wasString = false; ///< object members: value was a string
    std::string text;
    std::vector<std::pair<std::string, std::string>> members;
};

/**
 * Recursive-descent parser for the trace-event files TraceEventSink
 * writes. Deliberately separate from the result-JSON parser in
 * json_result.cc: event args nest string values inside objects,
 * which the flat result records never do.
 */
class EventParser {
public:
    EventParser(const std::string& text, const std::string& name)
        : text_(text), name_(name)
    {}

    bool atEnd()
    {
        skipWs();
        return pos_ >= text_.size();
    }
    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }
    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }
    bool consume(char c)
    {
        if (atEnd() || text_[pos_] != c)
            return false;
        ++pos_;
        return true;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              default:
                  fail(std::string("unsupported escape \\") + esc);
            }
        }
        fail("unterminated string");
        return out; // unreachable
    }

    std::string parseScalar()
    {
        skipWs();
        const size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ',' || c == '}' || c == ']' ||
                std::isspace(static_cast<unsigned char>(c)))
                break;
            ++pos_;
        }
        if (pos_ == start)
            fail("empty scalar");
        return text_.substr(start, pos_ - start);
    }

    EventValue parseValue()
    {
        EventValue v;
        const char c = peek();
        if (c == '"') {
            v.kind = EventValue::String;
            v.text = parseString();
        } else if (c == '{') {
            v.kind = EventValue::Object;
            expect('{');
            if (!consume('}'))
                for (;;) {
                    std::string key = parseString();
                    expect(':');
                    std::string val = peek() == '"' ? parseString()
                                                    : parseScalar();
                    v.members.push_back(
                        {std::move(key), std::move(val)});
                    if (consume('}'))
                        break;
                    expect(',');
                }
        } else {
            v.kind = EventValue::Scalar;
            v.text = parseScalar();
        }
        return v;
    }

    std::vector<std::pair<std::string, EventValue>> parseEvent()
    {
        std::vector<std::pair<std::string, EventValue>> members;
        expect('{');
        if (consume('}'))
            return members;
        for (;;) {
            std::string key = parseString();
            expect(':');
            members.push_back({std::move(key), parseValue()});
            if (consume('}'))
                return members;
            expect(',');
        }
    }

    [[noreturn]] void fail(const std::string& what) const
    {
        throw std::runtime_error(name_ + ": " + what +
                                 " at byte " + std::to_string(pos_));
    }

private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string& text_;
    const std::string name_;
    size_t pos_ = 0;
};

double
parseNumber(const std::string& token, const std::string& name,
            const std::string& field, size_t index)
{
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0')
        throw std::runtime_error(
            name + ": event " + std::to_string(index) +
            ": non-numeric \"" + field + "\": " + token);
    return v;
}

/** Union length of [begin, end) intervals (modifies @p spans). */
double
intervalUnion(std::vector<std::pair<double, double>>& spans)
{
    std::sort(spans.begin(), spans.end());
    double total = 0.0;
    double cur_begin = 0.0, cur_end = -1.0;
    bool open = false;
    for (const auto& s : spans) {
        if (s.second <= s.first)
            continue;
        if (!open || s.first > cur_end) {
            if (open)
                total += cur_end - cur_begin;
            cur_begin = s.first;
            cur_end = s.second;
            open = true;
        } else {
            cur_end = std::max(cur_end, s.second);
        }
    }
    if (open)
        total += cur_end - cur_begin;
    return total;
}

std::string
fmtNs(double ns)
{
    return runner::fmt(ns, 0);
}

} // namespace

const std::string*
ProfEvent::arg(const std::string& key) const
{
    for (const auto& kv : args)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

TraceProfile
readTraceEventJson(std::istream& in, const std::string& name)
{
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    EventParser p(text, name);
    if (p.atEnd() || p.peek() != '[')
        throw std::runtime_error(
            name + ": not a trace-event array (expected '[')");
    p.expect('[');

    TraceProfile profile;
    if (!p.consume(']'))
        for (;;) {
            const size_t index = profile.events.size();
            auto members = p.parseEvent();

            ProfEvent ev;
            bool has_name = false, has_ph = false, has_pid = false,
                 has_tid = false, has_ts = false, has_dur = false;
            for (auto& kv : members) {
                const std::string& key = kv.first;
                EventValue& val = kv.second;
                if (key == "name") {
                    ev.name = val.text;
                    has_name = true;
                } else if (key == "cat") {
                    ev.cat = val.text;
                } else if (key == "ph") {
                    if (val.kind != EventValue::String ||
                        val.text.size() != 1)
                        throw std::runtime_error(
                            name + ": event " +
                            std::to_string(index) +
                            ": \"ph\" must be a one-char string");
                    ev.ph = val.text[0];
                    has_ph = true;
                } else if (key == "ts") {
                    ev.tsUs =
                        parseNumber(val.text, name, "ts", index);
                    has_ts = true;
                } else if (key == "dur") {
                    ev.durUs =
                        parseNumber(val.text, name, "dur", index);
                    has_dur = true;
                } else if (key == "pid") {
                    ev.pid = (long long) parseNumber(val.text, name,
                                                     "pid", index);
                    has_pid = true;
                } else if (key == "tid") {
                    ev.tid = (long long) parseNumber(val.text, name,
                                                     "tid", index);
                    has_tid = true;
                } else if (key == "args") {
                    if (val.kind != EventValue::Object)
                        throw std::runtime_error(
                            name + ": event " +
                            std::to_string(index) +
                            ": \"args\" must be an object");
                    ev.args = std::move(val.members);
                }
            }

            const auto require = [&](bool ok, const char* what) {
                if (!ok)
                    throw std::runtime_error(
                        name + ": event " + std::to_string(index) +
                        ": missing " + what);
            };
            require(has_name, "\"name\"");
            require(has_ph, "\"ph\"");
            require(has_pid, "\"pid\"");
            require(has_tid, "\"tid\"");
            switch (ev.ph) {
              case 'X':
                require(has_ts, "\"ts\"");
                require(has_dur, "\"dur\"");
                if (!(ev.durUs >= 0.0) || !std::isfinite(ev.durUs))
                    throw std::runtime_error(
                        name + ": event " + std::to_string(index) +
                        ": span \"dur\" must be finite and >= 0");
                break;
              case 'i':
                require(has_ts, "\"ts\"");
                break;
              case 'M':
                break; // metadata is timeless
              default:
                throw std::runtime_error(
                    name + ": event " + std::to_string(index) +
                    ": unknown phase '" + std::string(1, ev.ph) +
                    "'");
            }
            if (ev.ph != 'M' && !std::isfinite(ev.tsUs))
                throw std::runtime_error(
                    name + ": event " + std::to_string(index) +
                    ": non-finite \"ts\"");

            profile.events.push_back(std::move(ev));
            if (p.consume(']'))
                break;
            p.expect(',');
        }
    if (!p.atEnd())
        throw std::runtime_error(name +
                                 ": trailing data after array");

    // Timestamps must never step backwards within one (pid, tid)
    // track — the simulator emits in event-loop order, so a
    // violation means a corrupted or hand-edited trace.
    std::map<std::pair<long long, long long>, double> last_ts;
    for (size_t i = 0; i < profile.events.size(); ++i) {
        const ProfEvent& ev = profile.events[i];
        if (ev.ph == 'M')
            continue;
        const auto track = std::make_pair(ev.pid, ev.tid);
        const auto it = last_ts.find(track);
        if (it != last_ts.end() && ev.tsUs < it->second)
            throw std::runtime_error(
                name + ": event " + std::to_string(i) +
                ": timestamp " + runner::preciseDouble(ev.tsUs) +
                " goes backwards on track pid=" +
                std::to_string(ev.pid) +
                " tid=" + std::to_string(ev.tid) + " (previous " +
                runner::preciseDouble(it->second) + ")");
        last_ts[track] = ev.tsUs;
    }

    // Fold events into per-point profiles.
    std::map<long long, PointProfile> points;
    std::map<std::pair<long long, long long>, std::string>
        track_names;
    for (const ProfEvent& ev : profile.events) {
        PointProfile& pt = points[ev.pid];
        pt.pid = ev.pid;
        if (ev.ph == 'M') {
            const std::string* n = ev.arg("name");
            if (ev.name == "process_name" && n && pt.key.empty())
                pt.key = *n;
            else if (ev.name == "thread_name" && n)
                track_names[{ev.pid, ev.tid}] = *n;
            else if (ev.name == "dream_meta") {
                if (const std::string* k = ev.arg("key"))
                    pt.key = *k;
                if (const std::string* w = ev.arg("window_us"))
                    pt.windowUs = std::strtod(w->c_str(), nullptr);
            }
        }
    }

    // Accelerator tracks carry a "accel<i> ..." thread_name; collect
    // their job spans and take the interval union per track, each
    // span clamped to [0, window] — matching the simulator's busy
    // accounting, which also stops the clock at the window edge.
    std::map<std::pair<long long, long long>,
             std::vector<std::pair<double, double>>> job_spans;
    std::map<std::pair<long long, long long>, size_t> job_counts;
    for (const ProfEvent& ev : profile.events) {
        PointProfile& pt = points[ev.pid];
        if (ev.ph == 'X') {
            if (ev.cat == "job") {
                const auto track = std::make_pair(ev.pid, ev.tid);
                double begin = std::max(ev.tsUs, 0.0);
                double end = ev.tsUs + ev.durUs;
                if (pt.windowUs > 0.0)
                    end = std::min(end, pt.windowUs);
                job_spans[track].push_back({begin, end});
                job_counts[track] += 1;
            } else if (ev.cat == "cs") {
                pt.contextSwitches += 1;
            } else if (ev.cat == "sched") {
                pt.schedInvocations += 1;
                if (const std::string* w = ev.arg("wall_ns"))
                    pt.decisionWallNs.push_back(
                        std::strtod(w->c_str(), nullptr));
                if (const std::string* r = ev.arg("rounds"))
                    pt.planRounds.push_back(
                        std::strtod(r->c_str(), nullptr));
            }
        } else if (ev.ph == 'i') {
            if (ev.name == "frame_arrival")
                pt.frameArrivals += 1;
            else if (ev.name == "frame_drop")
                pt.frameDrops += 1;
            else if (ev.name == "deadline_violation")
                pt.deadlineViolations += 1;
            else if (ev.name == "variant_switch")
                pt.variantSwitches += 1;
        }
    }

    for (auto& entry : points) {
        PointProfile& pt = entry.second;
        for (const auto& tn : track_names) {
            if (tn.first.first != pt.pid)
                continue;
            if (tn.second.compare(0, 5, "accel") != 0)
                continue;
            AccelProfile ap;
            ap.tid = tn.first.second;
            ap.name = tn.second;
            const auto it = job_spans.find(tn.first);
            if (it != job_spans.end()) {
                ap.jobs = job_counts[tn.first];
                ap.busyUs = intervalUnion(it->second);
            }
            pt.accels.push_back(std::move(ap));
        }
        std::sort(pt.accels.begin(), pt.accels.end(),
                  [](const AccelProfile& a, const AccelProfile& b) {
                      return a.tid < b.tid;
                  });
        profile.points.push_back(std::move(pt));
    }
    return profile;
}

TraceProfile
readTraceEventJson(const std::string& path)
{
    std::ifstream in(path);
    if (!in.is_open())
        throw std::runtime_error("cannot open trace file: " + path);
    return readTraceEventJson(in, path);
}

std::string
profileReport(const TraceProfile& profile)
{
    std::ostringstream out;
    bool first = true;
    for (const PointProfile& pt : profile.points) {
        if (!first)
            out << "\n";
        first = false;
        out << "=== "
            << (pt.key.empty() ? std::string("pid ") +
                                     std::to_string(pt.pid)
                               : pt.key)
            << " (pid=" << pt.pid << ", window="
            << runner::preciseDouble(pt.windowUs) << " us) ===\n";

        runner::Table util({"accel", "tid", "jobs", "busy (us)",
                            "util"});
        for (const AccelProfile& ap : pt.accels)
            util.addRow({ap.name, std::to_string(ap.tid),
                         std::to_string(ap.jobs),
                         runner::fmt(ap.busyUs, 1),
                         runner::fmtPct(
                             ap.utilization(pt.windowUs), 1)});
        out << util.str();

        obs::LatencyHistogram wall;
        for (double ns : pt.decisionWallNs)
            wall.record(ns);
        out << "scheduler: " << pt.schedInvocations
            << " invocations\n";
        if (!wall.empty()) {
            runner::Table lat({"decision latency", "min", "p50",
                               "p90", "p99", "max"});
            lat.addRow({"wall ns", fmtNs(wall.min()),
                        fmtNs(wall.quantile(0.50)),
                        fmtNs(wall.quantile(0.90)),
                        fmtNs(wall.quantile(0.99)),
                        fmtNs(wall.max())});
            out << lat.str();
        }
        out << "frames: arrivals=" << pt.frameArrivals
            << " drops=" << pt.frameDrops
            << " deadline_violations=" << pt.deadlineViolations
            << " variant_switches=" << pt.variantSwitches
            << " context_switches=" << pt.contextSwitches << "\n";
    }
    return out.str();
}

double
MetricsProfile::counter(const std::string& name, double fallback) const
{
    for (const auto& kv : counters) {
        if (kv.first == name)
            return kv.second;
    }
    return fallback;
}

bool
MetricsProfile::has(const std::string& name) const
{
    for (const auto& kv : counters) {
        if (kv.first == name)
            return true;
    }
    return false;
}

double
MetricsProfile::gauge(const std::string& name, double fallback) const
{
    for (const auto& kv : gauges) {
        if (kv.first == name)
            return kv.second;
    }
    return fallback;
}

bool
MetricsProfile::hasGauge(const std::string& name) const
{
    for (const auto& kv : gauges) {
        if (kv.first == name)
            return true;
    }
    return false;
}

MetricsProfile
readMetricsJson(std::istream& in, const std::string& name)
{
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    EventParser p(text, name);
    MetricsProfile m;

    // One object member whose value is a flat object ("counters",
    // "gauges") or an object of objects ("histograms"); scalar
    // sections are kept, histogram summaries are parsed past.
    const auto parse_leaf = [&](const std::string& section,
                                const std::string& key) {
        const std::string tok = p.parseScalar();
        if (section == "counters")
            m.counters.push_back(
                {key, parseNumber(tok, name, key, m.counters.size())});
        else if (section == "gauges")
            m.gauges.push_back(
                {key, parseNumber(tok, name, key, m.gauges.size())});
    };

    p.expect('{');
    if (!p.consume('}')) {
        for (;;) {
            const std::string section = p.parseString();
            p.expect(':');
            p.expect('{');
            if (!p.consume('}')) {
                for (;;) {
                    const std::string key = p.parseString();
                    p.expect(':');
                    if (p.peek() == '{') {
                        // Histogram summary object: parse past it.
                        p.expect('{');
                        if (!p.consume('}'))
                            for (;;) {
                                p.parseString();
                                p.expect(':');
                                p.parseScalar();
                                if (p.consume('}'))
                                    break;
                                p.expect(',');
                            }
                    } else {
                        parse_leaf(section, key);
                    }
                    if (p.consume('}'))
                        break;
                    p.expect(',');
                }
            }
            if (p.consume('}'))
                break;
            p.expect(',');
        }
    }
    if (!p.atEnd())
        p.fail("trailing data after metrics object");
    return m;
}

MetricsProfile
readMetricsJson(const std::string& path)
{
    std::ifstream in(path);
    if (!in.is_open())
        throw std::runtime_error("cannot open metrics file: " + path);
    return readMetricsJson(in, path);
}

std::string
cacheReport(const MetricsProfile& metrics)
{
    std::ostringstream out;
    if (!metrics.has("costcache/hit") &&
        !metrics.has("costcache/miss")) {
        out << "no cost-cache counters in this dump (they are "
               "volatile: record with --metrics-full, the canonical "
               "--metrics output excludes them)\n";
        return out.str();
    }
    const double hits = metrics.counter("costcache/hit");
    const double misses = metrics.counter("costcache/miss");
    const double evictions = metrics.counter("costcache/evict");
    const double acquisitions = hits + misses;
    runner::Table t({"cost-table cache", "count"});
    t.addRow({"acquisitions", runner::fmt(acquisitions, 0)});
    t.addRow({"hits", runner::fmt(hits, 0)});
    t.addRow({"misses (tables built)", runner::fmt(misses, 0)});
    t.addRow({"evictions", runner::fmt(evictions, 0)});
    t.addRow({"hit rate",
              acquisitions > 0.0
                  ? runner::fmtPct(hits / acquisitions, 1)
                  : std::string("n/a")});
    out << t.str();
    return out.str();
}

std::string
serveReport(const MetricsProfile& metrics)
{
    std::ostringstream out;
    if (!metrics.has("serve/frames/offered")) {
        out << "no serve metrics in this dump (record one with "
               "dream_serve --metrics F)\n";
        return out.str();
    }
    runner::Table t({"serve telemetry", "value"});
    t.addRow({"frames offered",
              runner::fmt(metrics.counter("serve/frames/offered"),
                          0)});
    t.addRow({"frames admitted",
              runner::fmt(metrics.counter("serve/frames/admitted"),
                          0)});
    t.addRow({"frames degraded",
              runner::fmt(metrics.counter("serve/frames/degraded"),
                          0)});
    t.addRow({"frames rejected",
              runner::fmt(metrics.counter("serve/frames/rejected"),
                          0)});
    t.addRow({"rolling reports",
              runner::fmt(metrics.counter("serve/reports"), 0)});
    const auto gaugeRow = [&](const char* label, const char* name,
                              int digits) {
        t.addRow({label, metrics.hasGauge(name)
                             ? runner::fmt(metrics.gauge(name),
                                           digits)
                             : std::string("n/a")});
    };
    const auto pctRow = [&](const char* label, const char* name) {
        t.addRow({label, metrics.hasGauge(name)
                             ? runner::fmtPct(metrics.gauge(name), 1)
                             : std::string("n/a")});
    };
    gaugeRow("rolling p50 latency (us)",
             "serve/rolling/latency_p50_us", 1);
    gaugeRow("rolling p99 latency (us)",
             "serve/rolling/latency_p99_us", 1);
    pctRow("rolling SLO-violation rate",
           "serve/rolling/violation_rate");
    pctRow("rolling drop rate", "serve/rolling/drop_rate");
    pctRow("rolling reject rate", "serve/rolling/reject_rate");
    gaugeRow("admission backlog (us)", "serve/backlog_us", 1);
    out << t.str();

    // Cluster runs (dream_serve --devices N) namespace each device's
    // telemetry under serve/dev<k>/; the plain serve/* keys above are
    // then the cluster rollup. Render the per-device breakdown too.
    if (metrics.has("serve/dev0/frames/offered")) {
        out << '\n';
        runner::Table c({"device", "offered", "admitted", "degraded",
                         "rejected", "p99 (us)", "viol", "backlog",
                         "fairness"});
        for (size_t k = 0;; ++k) {
            const std::string p =
                "serve/dev" + std::to_string(k) + "/";
            if (!metrics.has(p + "frames/offered"))
                break;
            const auto cell = [&](const std::string& name,
                                  int digits) {
                return metrics.hasGauge(name)
                           ? runner::fmt(metrics.gauge(name), digits)
                           : std::string("n/a");
            };
            c.addRow(
                {"dev" + std::to_string(k),
                 runner::fmt(metrics.counter(p + "frames/offered"),
                             0),
                 runner::fmt(metrics.counter(p + "frames/admitted"),
                             0),
                 runner::fmt(metrics.counter(p + "frames/degraded"),
                             0),
                 runner::fmt(metrics.counter(p + "frames/rejected"),
                             0),
                 cell(p + "rolling/latency_p99_us", 1),
                 metrics.hasGauge(p + "rolling/violation_rate")
                     ? runner::fmtPct(
                           metrics.gauge(p +
                                         "rolling/violation_rate"),
                           1)
                     : std::string("n/a"),
                 cell(p + "backlog_us", 0),
                 cell(p + "fairness_ratio", 3)});
        }
        out << c.str();
        if (metrics.hasGauge("serve/cluster/devices")) {
            char line[96];
            std::snprintf(
                line, sizeof line,
                "cluster: %d devices, fairness spread %.4f\n",
                int(metrics.gauge("serve/cluster/devices")),
                metrics.gauge("serve/cluster/fairness_spread", 1.0));
            out << line;
        }
    }
    return out.str();
}

} // namespace tools
} // namespace dream
