#include "tools/csv_merge.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

namespace dream {
namespace tools {

std::vector<ShardRowRef>
orderShardRows(const std::vector<const engine::CsvTable*>& tables)
{
    if (tables.empty())
        return {};
    const auto& schema = tables.front()->schema;
    for (const auto* t : tables) {
        if (t->schema.paramColumns != schema.paramColumns)
            throw std::runtime_error(
                "shard schema mismatch: parameter columns differ "
                "across inputs (different grids?)");
    }

    // Restore canonical order: every bench writes a globally unique,
    // increasing index column, so the unsharded row order is the
    // index order of the union.
    std::vector<ShardRowRef> rows;
    for (size_t t = 0; t < tables.size(); ++t) {
        for (size_t r = 0; r < tables[t]->rows.size(); ++r)
            rows.push_back({t, r, tables[t]->rowIndex(r)});
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const ShardRowRef& a, const ShardRowRef& b) {
                         return a.index < b.index;
                     });
    for (size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].index == rows[i - 1].index)
            throw std::runtime_error(
                "overlapping shards: row index " +
                std::to_string(rows[i].index) +
                " appears in more than one input");
    }
    std::unordered_set<std::string> keys;
    keys.reserve(rows.size());
    for (const auto& ref : rows) {
        const std::string key =
            tables[ref.table]->rowKey(ref.row);
        if (!keys.insert(key).second)
            throw std::runtime_error(
                "overlapping shards: grid point '" + key +
                "' appears in more than one row");
    }
    return rows;
}

void
mergeResultCsvs(const std::vector<engine::CsvTable>& inputs,
                std::ostream& out)
{
    std::vector<const engine::CsvTable*> tables;
    for (const auto& t : inputs) {
        if (!t.empty())
            tables.push_back(&t);
    }
    if (tables.empty())
        return; // all shards empty: the rowless-run CSV is empty too

    const auto rows = orderShardRows(tables);

    // The breakdown header is the union over all rows in first-seen
    // order — exactly how CsvSink builds it, so a row's carried
    // columns are its non-empty cells, read in its own file's
    // column order.
    std::vector<std::string> breakdown;
    for (const auto& ref : rows) {
        const auto& sch = tables[ref.table]->schema;
        const size_t begin = sch.breakdownBegin();
        for (size_t c = 0; c < sch.breakdownColumns.size(); ++c) {
            if (tables[ref.table]->rows[ref.row][begin + c].empty())
                continue;
            const auto& name = sch.breakdownColumns[c];
            if (std::find(breakdown.begin(), breakdown.end(), name) ==
                breakdown.end())
                breakdown.push_back(name);
        }
    }

    out << engine::csvHeaderLine(
               tables.front()->schema.paramColumns, breakdown)
        << '\n';
    for (const auto& ref : rows) {
        const auto& sch = tables[ref.table]->schema;
        const auto& cells = tables[ref.table]->rows[ref.row];
        const size_t fixed = sch.breakdownBegin();
        for (size_t c = 0; c < fixed; ++c) {
            if (c)
                out << ',';
            out << engine::csvQuote(cells[c]);
        }
        for (const auto& name : breakdown) {
            const size_t c = sch.columnIndex(name);
            out << ',';
            if (c != std::string::npos)
                out << engine::csvQuote(cells[c]);
        }
        out << '\n';
    }
    out.flush();
}

} // namespace tools
} // namespace dream
