/**
 * @file
 * Per-task and per-run statistics collected by the simulator: frame
 * accounting (total / completed / violated / dropped), energy actual
 * vs worst-case, context switches and Supernet variant usage.
 */

#ifndef DREAM_SIM_STATS_H
#define DREAM_SIM_STATS_H

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dream {
namespace sim {

/** Statistics for one task (one model) over a run window. */
struct TaskStats {
    std::string model;
    /** Frames whose deadline fell inside the run window. */
    uint64_t totalFrames = 0;
    uint64_t completedFrames = 0;
    /** Deadline-violated frames (includes drops and unfinished). */
    uint64_t violatedFrames = 0;
    /** Frames proactively dropped (subset of violated). */
    uint64_t droppedFrames = 0;
    /** Actual energy spent on this task (mJ). */
    double energyMj = 0.0;
    /** Worst-case energy of the frames' materialised paths (mJ). */
    double worstCaseEnergyMj = 0.0;
    /** Sum of completion latencies of completed frames (us). */
    double sumLatencyUs = 0.0;
    /** Frames started per Supernet variant (index 0 == Original). */
    std::vector<uint64_t> variantStarts;

    /** Deadline violation rate with the Algorithm 2 zero floor. */
    double dlvRate() const;
    /** Energy normalised to the worst case (Algorithm 2 line 5). */
    double normEnergy() const;
};

/** Outcome record of one frame (for traces and post-analysis). */
struct FrameRecord {
    int task = 0;
    int frameIdx = 0;
    double arrivalUs = 0.0;
    double deadlineUs = 0.0;
    /** Completion time; NaN if never completed — the same sentinel
     *  the trace CSV reader/writer use (empty cell <-> NaN), so the
     *  in-memory record round-trips without translation. */
    double completionUs = std::numeric_limits<double>::quiet_NaN();
    bool dropped = false;
    bool violated = false;
    /**
     * True when the deadline fell inside the run window — only these
     * frames count towards TaskStats. Frames admitted near the window
     * end with an out-of-window deadline are recorded too (they
     * contend for accelerator time, so trace replay must re-inject
     * them), flagged false.
     */
    bool inWindow = true;
    int variant = 0;
    double energyMj = 0.0;

    /** True when the frame completed (completionUs is a real time). */
    bool isCompleted() const { return !std::isnan(completionUs); }
};

/** Statistics for one complete simulation run. */
struct RunStats {
    std::vector<TaskStats> tasks;
    double windowUs = 0.0;
    /** Per-frame outcomes of every admitted frame, in admission
     *  order. Frames with an out-of-window deadline are included
     *  (inWindow == false) so a recorded trace captures the complete
     *  load; only inWindow frames are counted in TaskStats. */
    std::vector<FrameRecord> frames;
    /** Total context switches charged across accelerators. */
    uint64_t contextSwitches = 0;
    /** Energy spent on context switches (mJ), included in tasks'. */
    double contextSwitchEnergyMj = 0.0;
    /** Scheduler invocations (plan() calls). */
    uint64_t schedulerInvocations = 0;
    /**
     * Per-accelerator busy time (us), indexed like the system's
     * accelerator list: the union of job execution intervals, clamped
     * to the run window. windowUs - accelBusyUs[i] is accelerator
     * i's idle time; tools/dream_prof recomputes the same union from
     * the recorded job spans, so trace-derived utilization is checked
     * against this field.
     */
    std::vector<double> accelBusyUs;

    /** Sum of per-task deadline-violation rates (Algorithm 2 L10). */
    double overallDlvRate() const;
    /** Sum of per-task normalised energies (Algorithm 2 L11). */
    double overallNormEnergy() const;
    /** Total frames across tasks. */
    uint64_t totalFrames() const;
    /** Total violated frames across tasks. */
    uint64_t totalViolated() const;
    /** Total actual energy (mJ). */
    double totalEnergyMj() const;
    /** Aggregate violation fraction (violated / total). */
    double violationFraction() const;
};

} // namespace sim
} // namespace dream

#endif // DREAM_SIM_STATS_H
