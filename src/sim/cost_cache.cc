#include "sim/cost_cache.h"

namespace dream {
namespace sim {

const Request::CostCache&
ensureCostCache(const Request& req, const cost::CostTable& costs)
{
    Request::CostCache& cache = req.costCache;
    if (cache.version == req.pathVersion)
        return cache;

    const size_t n = req.path.size();
    const size_t num_accs = costs.numAccelerators();
    cache.suffixAvg.assign(n + 1, 0.0);
    cache.suffixMin.assign(n + 1, 0.0);
    cache.suffixByAcc.assign(num_accs, std::vector<double>(n + 1, 0.0));
    for (size_t i = n; i-- > 0;) {
        double sum = 0.0;
        double best = 0.0;
        for (size_t a = 0; a < num_accs; ++a) {
            const double lat = costs.cost(req.path[i], a).latencyUs;
            sum += lat;
            best = (a == 0) ? lat : std::min(best, lat);
            cache.suffixByAcc[a][i] = cache.suffixByAcc[a][i + 1] + lat;
        }
        cache.suffixAvg[i] =
            cache.suffixAvg[i + 1] + sum / double(num_accs);
        cache.suffixMin[i] = cache.suffixMin[i + 1] + best;
    }
    cache.version = req.pathVersion;
    return cache;
}

} // namespace sim
} // namespace dream
