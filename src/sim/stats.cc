#include "sim/stats.h"

namespace dream {
namespace sim {

double
TaskStats::dlvRate() const
{
    if (totalFrames == 0)
        return 0.0;
    if (violatedFrames == 0) {
        // Algorithm 2 lines 7-8: avoid zeroing UXCost when a model
        // never violates.
        return 1.0 / (2.0 * double(totalFrames));
    }
    return double(violatedFrames) / double(totalFrames);
}

double
TaskStats::normEnergy() const
{
    if (worstCaseEnergyMj <= 0.0)
        return 0.0;
    return energyMj / worstCaseEnergyMj;
}

double
RunStats::overallDlvRate() const
{
    double sum = 0.0;
    for (const auto& t : tasks)
        sum += t.dlvRate();
    return sum;
}

double
RunStats::overallNormEnergy() const
{
    double sum = 0.0;
    for (const auto& t : tasks)
        sum += t.normEnergy();
    return sum;
}

uint64_t
RunStats::totalFrames() const
{
    uint64_t sum = 0;
    for (const auto& t : tasks)
        sum += t.totalFrames;
    return sum;
}

uint64_t
RunStats::totalViolated() const
{
    uint64_t sum = 0;
    for (const auto& t : tasks)
        sum += t.violatedFrames;
    return sum;
}

double
RunStats::totalEnergyMj() const
{
    double sum = 0.0;
    for (const auto& t : tasks)
        sum += t.energyMj;
    return sum;
}

double
RunStats::violationFraction() const
{
    const uint64_t total = totalFrames();
    return total == 0 ? 0.0 : double(totalViolated()) / double(total);
}

} // namespace sim
} // namespace dream
