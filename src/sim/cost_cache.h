/**
 * @file
 * Per-request suffix-sum latency caches.
 *
 * Scoring (ToGo, minimum_to_go, Planaria's remaining-latency) needs
 * O(remaining layers x accelerators) sums at every scheduling event.
 * The sums only change when a request's path is rewritten (Supernet
 * variant switch), so they are cached per request and invalidated via
 * Request::pathVersion.
 */

#ifndef DREAM_SIM_COST_CACHE_H
#define DREAM_SIM_COST_CACHE_H

#include "costmodel/cost_table.h"
#include "sim/request.h"

namespace dream {
namespace sim {

/** Build (if stale) and return the request's suffix-sum cache. */
const Request::CostCache& ensureCostCache(const Request& req,
                                          const cost::CostTable& costs);

} // namespace sim
} // namespace dream

#endif // DREAM_SIM_COST_CACHE_H
