#include "sim/context_switch.h"

namespace dream {
namespace sim {

SwitchTraffic
switchTraffic(const AcceleratorState& acc, const Request& req)
{
    SwitchTraffic t;

    // Flush whatever live activations another request left behind.
    if (acc.residentRequestId >= 0 && acc.residentRequestId != req.id)
        t.flushBytes = acc.residentBytes;

    // Fetch the incoming request's live activations unless it starts
    // fresh (layer 0 input is charged as normal layer traffic) or its
    // tensors are already resident here.
    const bool mid_model = req.nextLayer > 0;
    const bool resident_here = acc.residentRequestId == req.id;
    if (mid_model && !resident_here) {
        const auto& next = req.path[req.nextLayer];
        t.fetchBytes = next.inputBytes() / std::max<uint32_t>(1,
            next.repeat);
    }
    return t;
}

} // namespace sim
} // namespace dream
