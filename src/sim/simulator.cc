#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "costmodel/layer_cost.h"
#include "sim/context_switch.h"

namespace dream {
namespace sim {

namespace {

/** Safety bound on scheduler invocations per event (progress guard). */
constexpr int kMaxPlanRounds = 1024;

/** Tolerance for floating error at the window boundary (us). */
constexpr double kWindowEpsilonUs = 1e-3;

/** True if a deadline falls inside the accounting window. */
bool
inWindow(double deadline_us, double window_us)
{
    return deadline_us <= window_us + kWindowEpsilonUs;
}

} // anonymous namespace

Simulator::Simulator(const hw::SystemConfig& system,
                     const workload::Scenario& scenario,
                     const cost::CostTable& costs, SimConfig config)
    : system_(system), scenario_(scenario), costs_(costs),
      config_(config)
{
    assert(&costs_.system() != nullptr);
}

Request*
Simulator::headOfTask(workload::TaskId task)
{
    auto& q = taskQueues_[task];
    while (!q.empty() && requests_[q.front()]->finished())
        q.erase(q.begin());
    if (q.empty())
        return nullptr;
    return requests_[q.front()].get();
}

void
Simulator::admitFrame(const workload::FrameSpec& spec)
{
    auto req = std::make_unique<Request>();
    req->id = int(requests_.size());
    req->task = spec.task;
    req->frameIdx = spec.frameIdx;
    req->arrivalUs = spec.arrivalUs;
    req->deadlineUs = spec.deadlineUs;
    req->path = spec.path;
    req->lastEventUs = spec.arrivalUs;
    req->childTriggers = spec.childTriggers;

    // Worst-case energy of the materialised path (Algorithm 2 L5
    // denominator): the worst layer-accelerator pairing per layer.
    for (const auto& l : req->path)
        req->worstCaseEnergyMj += costs_.maxEnergyMj(l);

    TaskStats& ts = stats_.tasks[spec.task];
    if (inWindow(spec.deadlineUs, config_.windowUs)) {
        ts.totalFrames += 1;
        ts.worstCaseEnergyMj += req->worstCaseEnergyMj;
    }

    taskQueues_[spec.task].push_back(req->id);
    requests_.push_back(std::move(req));
}

void
Simulator::completeJob(const Job& job)
{
    Request& req = *requests_[job.requestId];
    AcceleratorState& acc = accels_[job.accel];

    assert(req.inFlight);
    req.inFlight = false;
    req.nextLayer = job.layerEnd;
    req.lastEventUs = job.endUs;
    req.lastAccel = job.accel;

    acc.freeSlices += job.slices;
    assert(acc.freeSlices <= acc.config->numSlices);
    assert(acc.runningJobs > 0);
    acc.runningJobs -= 1;

    // Record what this job leaves in the on-chip buffer: the input of
    // the request's next layer when unfinished, nothing otherwise.
    if (acc.residentRequestId == req.id) {
        if (req.nextLayer < req.path.size()) {
            const auto& next = req.path[req.nextLayer];
            acc.residentBytes =
                next.inputBytes() / std::max<uint32_t>(1, next.repeat);
        } else {
            acc.residentRequestId = -1;
            acc.residentBytes = 0;
        }
    }

    if (req.nextLayer < req.path.size())
        return;

    // Frame complete.
    req.done = true;
    req.completionUs = job.endUs;
    TaskStats& ts = stats_.tasks[req.task];
    const bool counted = inWindow(req.deadlineUs, config_.windowUs);
    if (counted) {
        ts.completedFrames += 1;
        ts.sumLatencyUs += req.completionUs - req.arrivalUs;
        if (req.completionUs > req.deadlineUs)
            ts.violatedFrames += 1;
    }

    // Launch dependent pipeline stages whose cascade gate fired.
    const auto children = scenario_.childrenOf(req.task);
    for (size_t i = 0; i < children.size(); ++i) {
        if (i < req.childTriggers.size() && req.childTriggers[i]) {
            admitFrame(source_->childFrame(children[i], req.frameIdx,
                                           req.arrivalUs,
                                           req.completionUs));
        }
    }
}

void
Simulator::applySwitch(const VariantSwitch& sw)
{
    Request& req = *requests_[sw.requestId];
    const models::Model& model = scenario_.tasks[req.task].model;
    assert(model.isSupernet());
    assert(!req.inFlight && !req.finished());
    assert(req.nextLayer <= model.supernetSwitchPoint);
    assert(sw.variant >= 0 && size_t(sw.variant) <= model.variants.size());
    req.path = model.variantPath(size_t(sw.variant));
    req.variant = sw.variant;
    req.pathVersion += 1;
}

void
Simulator::applyDrop(const FrameDrop& drop)
{
    Request& req = *requests_[drop.requestId];
    assert(!req.inFlight && !req.finished());
    req.dropped = true;
    TaskStats& ts = stats_.tasks[req.task];
    if (inWindow(req.deadlineUs, config_.windowUs)) {
        ts.droppedFrames += 1;
        ts.violatedFrames += 1;
    }
    // Dropping a frame suppresses its dependent stages: dependency-
    // chain condition 3 restricts drops to leaf models, but guard
    // regardless by clearing the triggers.
    req.childTriggers.assign(req.childTriggers.size(), 0);
}

void
Simulator::applyDispatch(const Dispatch& d)
{
    Request& req = *requests_[d.requestId];
    AcceleratorState& acc = accels_[d.accel];
    const uint32_t slices =
        d.slices == 0 ? acc.config->numSlices : d.slices;

    assert(!req.inFlight && !req.finished());
    assert(req.arrivalUs <= nowUs_ + 1e-9);
    assert(headOfTask(req.task) == &req && "per-task FIFO order");
    assert(d.numLayers >= 1 && d.numLayers <= req.remainingLayers());
    assert(slices >= 1 && slices <= acc.freeSlices);

    Job job;
    job.requestId = req.id;
    job.layerBegin = req.nextLayer;
    job.layerEnd = req.nextLayer + d.numLayers;
    job.accel = d.accel;
    job.slices = slices;
    job.startUs = nowUs_;

    double latency_us = 0.0;
    double energy_mj = 0.0;
    for (size_t i = job.layerBegin; i < job.layerEnd; ++i) {
        const auto& c = costs_.cost(req.path[i], size_t(d.accel), slices);
        latency_us += c.latencyUs;
        energy_mj += c.energyMj;
    }

    // Context switch: flush the resident activations of the previous
    // request, fetch this request's live activations (Section 3.4).
    const SwitchTraffic cs = switchTraffic(acc, req);
    if (cs.any()) {
        const double cs_energy =
            cost::contextSwitchEnergyMj(cs.flushBytes, cs.fetchBytes);
        energy_mj += cs_energy;
        latency_us += cost::contextSwitchLatencyUs(cs.total(),
                                                   *acc.config, slices);
        stats_.contextSwitches += 1;
        stats_.contextSwitchEnergyMj += cs_energy;
    }

    job.endUs = nowUs_ + latency_us;
    req.inFlight = true;
    req.energyMj += energy_mj;
    stats_.tasks[req.task].energyMj += energy_mj;

    acc.freeSlices -= slices;
    acc.runningJobs += 1;
    acc.lastTask = req.task;
    acc.busyUntilUs = std::max(acc.busyUntilUs, job.endUs);
    acc.residentRequestId = req.id;

    completions_.push(JobEvent{job.endUs, job});
}

void
Simulator::buildContext()
{
    ctx_.nowUs = nowUs_;
    ctx_.windowUs = config_.windowUs;
    ctx_.system = &system_;
    ctx_.costs = &costs_;
    ctx_.scenario = &scenario_;
    ctx_.accels = &accels_;
    ctx_.stats = &stats_;
    ctx_.ready.clear();
    ctx_.live.clear();
    for (workload::TaskId t = 0; t < workload::TaskId(taskQueues_.size());
         ++t) {
        Request* head = headOfTask(t);
        if (head && !head->inFlight && head->arrivalUs <= nowUs_ + 1e-9)
            ctx_.ready.push_back(head);
        for (const int id : taskQueues_[t]) {
            const Request* r = requests_[id].get();
            if (!r->finished() && r->arrivalUs <= nowUs_ + 1e-9)
                ctx_.live.push_back(r);
        }
    }
}

bool
Simulator::applyPlan(const Plan& plan)
{
    // Arm the optional re-invocation timer. Contract (sim/scheduler.h):
    // only a strictly-future wake-up is honoured; stale (past or
    // present) wake-ups are dropped here, otherwise a scheduler that
    // keeps requesting one would pin virtual time and the event loop
    // would never reach the end of the window.
    if (plan.wakeUpUs > nowUs_)
        wakeups_.push(plan.wakeUpUs);
    assert((wakeups_.empty() || wakeups_.top() > nowUs_) &&
           "stale wake-ups must never be armed");

    bool progress = false;
    for (const auto& sw : plan.switches) {
        applySwitch(sw);
        progress = true;
    }
    for (const auto& dr : plan.drops) {
        applyDrop(dr);
        progress = true;
    }
    for (const auto& d : plan.dispatches) {
        applyDispatch(d);
        progress = true;
    }
    return progress;
}

void
Simulator::invokeScheduler(Scheduler& sched)
{
    for (int round = 0; round < kMaxPlanRounds; ++round) {
        buildContext();
        Plan plan = sched.plan(ctx_);
        stats_.schedulerInvocations += 1;
        if (!applyPlan(plan))
            return;
    }
    assert(false && "scheduler failed to converge");
}

RunStats
Simulator::run(Scheduler& sched)
{
    // Reset per-run state.
    requests_.clear();
    taskQueues_.assign(scenario_.tasks.size(), {});
    accels_.clear();
    for (const auto& cfg : system_.accelerators) {
        AcceleratorState st;
        st.config = &cfg;
        st.freeSlices = cfg.numSlices;
        accels_.push_back(st);
    }
    completions_ = {};
    wakeups_ = {};
    nowUs_ = 0.0;
    stats_ = RunStats{};
    stats_.windowUs = config_.windowUs;
    stats_.tasks.resize(scenario_.tasks.size());
    for (size_t t = 0; t < scenario_.tasks.size(); ++t) {
        stats_.tasks[t].model = scenario_.tasks[t].model.name;
        const auto& m = scenario_.tasks[t].model;
        if (m.isSupernet())
            stats_.tasks[t].variantStarts.assign(m.variants.size() + 1,
                                                 0);
    }

    if (config_.arrivals) {
        ownedSource_.reset();
        source_ = config_.arrivals;
    } else {
        ownedSource_ = std::make_unique<workload::FrameSource>(
            scenario_, config_.seed);
        source_ = ownedSource_.get();
    }
    auto arrivals = source_->rootFrames(config_.windowUs);
    // Stable: simultaneous arrivals keep source order, so a trace
    // replay (whose source order is the recorded admission order)
    // reproduces the original run's admission sequence exactly.
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const auto& a, const auto& b) {
                         return a.arrivalUs < b.arrivalUs;
                     });

    buildContext();
    sched.reset(ctx_);

    size_t next_arrival = 0;
    while (true) {
        double t = config_.windowUs;
        if (next_arrival < arrivals.size())
            t = std::min(t, arrivals[next_arrival].arrivalUs);
        if (!completions_.empty())
            t = std::min(t, completions_.top().endUs);
        if (!wakeups_.empty())
            t = std::min(t, wakeups_.top());
        if (t >= config_.windowUs)
            break;

        nowUs_ = t;
        while (!completions_.empty() &&
               completions_.top().endUs <= nowUs_ + 1e-9) {
            const Job job = completions_.top().job;
            completions_.pop();
            completeJob(job);
        }
        while (next_arrival < arrivals.size() &&
               arrivals[next_arrival].arrivalUs <= nowUs_ + 1e-9) {
            admitFrame(arrivals[next_arrival]);
            ++next_arrival;
        }
        while (!wakeups_.empty() && wakeups_.top() <= nowUs_ + 1e-9)
            wakeups_.pop();

        invokeScheduler(sched);
    }

    finalizeStats();
    return stats_;
}

void
Simulator::finalizeStats()
{
    // Frames unfinished at window end with an in-window deadline are
    // violations; Supernet variant usage is tallied over started
    // frames; the per-frame trace is emitted in admission order.
    // Every admitted frame is recorded — frames whose deadline falls
    // beyond the window (inWindow == false) still contended for
    // accelerator time, and a trace that omitted them could not be
    // replayed faithfully.
    for (const auto& reqp : requests_) {
        const Request& req = *reqp;
        const bool counted = inWindow(req.deadlineUs, config_.windowUs);
        TaskStats& ts = stats_.tasks[req.task];
        if (counted && !req.finished())
            ts.violatedFrames += 1;
        if (counted && !ts.variantStarts.empty() && req.started())
            ts.variantStarts[size_t(req.variant)] += 1;
        FrameRecord fr;
        fr.task = req.task;
        fr.frameIdx = req.frameIdx;
        fr.arrivalUs = req.arrivalUs;
        fr.deadlineUs = req.deadlineUs;
        fr.completionUs = req.completionUs;
        fr.dropped = req.dropped;
        // A frame unfinished at window end only counts as violated
        // when its deadline lay inside the window — an out-of-window
        // frame cut off mid-flight may still have met its deadline.
        fr.violated = req.dropped ||
                      (req.done && req.completionUs > req.deadlineUs) ||
                      (counted && !req.finished());
        fr.inWindow = counted;
        fr.variant = req.variant;
        fr.energyMj = req.energyMj;
        stats_.frames.push_back(fr);
    }
}

} // namespace sim
} // namespace dream
