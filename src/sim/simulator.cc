#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#include "costmodel/layer_cost.h"
#include "obs/telemetry.h"
#include "sim/context_switch.h"

namespace dream {
namespace sim {

namespace {

/** Safety bound on scheduler invocations per event (progress guard). */
constexpr int kMaxPlanRounds = 1024;

/** Tolerance for floating error at the window boundary (us). */
constexpr double kWindowEpsilonUs = 1e-3;

/** True if a deadline falls inside the accounting window. */
bool
inWindow(double deadline_us, double window_us)
{
    return deadline_us <= window_us + kWindowEpsilonUs;
}

} // anonymous namespace

Simulator::Simulator(const hw::SystemConfig& system,
                     const workload::Scenario& scenario,
                     const cost::CostTable& costs, SimConfig config)
    : system_(system), scenario_(scenario), costs_(costs),
      config_(config)
{
    assert(&costs_.system() != nullptr);
}

Request*
Simulator::headOfTask(workload::TaskId task)
{
    auto& q = taskQueues_[task];
    while (!q.empty() && requests_[q.front()]->finished())
        q.erase(q.begin());
    if (q.empty())
        return nullptr;
    return requests_[q.front()].get();
}

void
Simulator::admitFrame(const workload::FrameSpec& spec)
{
    auto req = std::make_unique<Request>();
    req->id = int(requests_.size());
    req->task = spec.task;
    req->frameIdx = spec.frameIdx;
    req->arrivalUs = spec.arrivalUs;
    req->deadlineUs = spec.deadlineUs;
    req->path = spec.path;
    req->lastEventUs = spec.arrivalUs;
    req->childTriggers = spec.childTriggers;

    // Worst-case energy of the materialised path (Algorithm 2 L5
    // denominator): the worst layer-accelerator pairing per layer.
    for (const auto& l : req->path)
        req->worstCaseEnergyMj += costs_.maxEnergyMj(l);

    TaskStats& ts = stats_.tasks[spec.task];
    if (inWindow(spec.deadlineUs, config_.windowUs)) {
        ts.totalFrames += 1;
        ts.worstCaseEnergyMj += req->worstCaseEnergyMj;
    }

    taskQueues_[spec.task].push_back(req->id);
    liveFrames_ += 1;

    if (config_.telemetry && config_.telemetry->trace) {
        config_.telemetry->trace->instant(
            framesTid_, "frame_arrival", "frame", nowUs_,
            obs::TraceArgs()
                .integer("task", spec.task)
                .integer("frame", spec.frameIdx)
                .num("arrival_us", spec.arrivalUs)
                .num("deadline_us", spec.deadlineUs));
    }

    requests_.push_back(std::move(req));
}

void
Simulator::completeJob(const Job& job)
{
    Request& req = *requests_[job.requestId];
    AcceleratorState& acc = accels_[job.accel];

    assert(req.inFlight);
    req.inFlight = false;
    req.nextLayer = job.layerEnd;
    req.lastEventUs = job.endUs;
    req.lastAccel = job.accel;

    acc.freeSlices += job.slices;
    assert(acc.freeSlices <= acc.config->numSlices);
    assert(acc.runningJobs > 0);
    acc.runningJobs -= 1;
    // Close the accelerator's busy interval when its last job ends:
    // accelBusyUs is the union of job intervals (co-located jobs
    // overlap), the same union dream_prof recomputes from job spans.
    if (acc.runningJobs == 0)
        stats_.accelBusyUs[job.accel] +=
            job.endUs - busyStartUs_[job.accel];

    // Record what this job leaves in the on-chip buffer: the input of
    // the request's next layer when unfinished, nothing otherwise.
    if (acc.residentRequestId == req.id) {
        if (req.nextLayer < req.path.size()) {
            const auto& next = req.path[req.nextLayer];
            acc.residentBytes =
                next.inputBytes() / std::max<uint32_t>(1, next.repeat);
        } else {
            acc.residentRequestId = -1;
            acc.residentBytes = 0;
        }
    }

    if (req.nextLayer < req.path.size())
        return;

    // Frame complete.
    req.done = true;
    req.completionUs = job.endUs;
    assert(liveFrames_ > 0);
    liveFrames_ -= 1;
    TaskStats& ts = stats_.tasks[req.task];
    const bool counted = inWindow(req.deadlineUs, config_.windowUs);
    if (counted) {
        ts.completedFrames += 1;
        ts.sumLatencyUs += req.completionUs - req.arrivalUs;
        if (req.completionUs > req.deadlineUs)
            ts.violatedFrames += 1;
    }

    if (config_.telemetry) {
        if (config_.telemetry->metrics) {
            config_.telemetry->metrics->histogram("frame/latency_us")
                .record(req.completionUs - req.arrivalUs);
        }
        if (config_.telemetry->trace &&
            req.completionUs > req.deadlineUs) {
            config_.telemetry->trace->instant(
                framesTid_, "deadline_violation", "frame", nowUs_,
                obs::TraceArgs()
                    .integer("task", req.task)
                    .integer("frame", req.frameIdx)
                    .num("deadline_us", req.deadlineUs)
                    .num("completion_us", req.completionUs));
        }
        if (config_.telemetry->outcomes) {
            obs::FrameOutcome fo;
            fo.task = req.task;
            fo.frameIdx = req.frameIdx;
            fo.tUs = nowUs_;
            fo.arrivalUs = req.arrivalUs;
            fo.deadlineUs = req.deadlineUs;
            fo.completionUs = req.completionUs;
            fo.violated = req.completionUs > req.deadlineUs;
            fo.dropped = false;
            config_.telemetry->outcomes->onFrameOutcome(fo);
        }
    }

    // Launch dependent pipeline stages whose cascade gate fired.
    const auto children = scenario_.childrenOf(req.task);
    for (size_t i = 0; i < children.size(); ++i) {
        if (i < req.childTriggers.size() && req.childTriggers[i]) {
            admitFrame(source_->childFrame(children[i], req.frameIdx,
                                           req.arrivalUs,
                                           req.completionUs));
        }
    }
}

void
Simulator::applySwitch(const VariantSwitch& sw)
{
    Request& req = *requests_[sw.requestId];
    const models::Model& model = scenario_.tasks[req.task].model;
    assert(model.isSupernet());
    assert(!req.inFlight && !req.finished());
    assert(req.nextLayer <= model.supernetSwitchPoint);
    assert(sw.variant >= 0 && size_t(sw.variant) <= model.variants.size());
    req.path = model.variantPath(size_t(sw.variant));
    req.variant = sw.variant;
    req.pathVersion += 1;

    if (config_.telemetry && config_.telemetry->trace) {
        config_.telemetry->trace->instant(
            framesTid_, "variant_switch", "frame", nowUs_,
            obs::TraceArgs()
                .integer("task", req.task)
                .integer("frame", req.frameIdx)
                .integer("variant", sw.variant));
    }
}

void
Simulator::applyDrop(const FrameDrop& drop)
{
    Request& req = *requests_[drop.requestId];
    assert(!req.inFlight && !req.finished());
    req.dropped = true;
    assert(liveFrames_ > 0);
    liveFrames_ -= 1;
    TaskStats& ts = stats_.tasks[req.task];
    if (inWindow(req.deadlineUs, config_.windowUs)) {
        ts.droppedFrames += 1;
        ts.violatedFrames += 1;
    }
    // Dropping a frame suppresses its dependent stages: dependency-
    // chain condition 3 restricts drops to leaf models, but guard
    // regardless by clearing the triggers.
    req.childTriggers.assign(req.childTriggers.size(), 0);

    if (config_.telemetry && config_.telemetry->trace) {
        config_.telemetry->trace->instant(
            framesTid_, "frame_drop", "frame", nowUs_,
            obs::TraceArgs()
                .integer("task", req.task)
                .integer("frame", req.frameIdx)
                .num("deadline_us", req.deadlineUs));
    }
    if (config_.telemetry && config_.telemetry->outcomes) {
        obs::FrameOutcome fo;
        fo.task = req.task;
        fo.frameIdx = req.frameIdx;
        fo.tUs = nowUs_;
        fo.arrivalUs = req.arrivalUs;
        fo.deadlineUs = req.deadlineUs;
        fo.completionUs = std::nan("");
        fo.violated = true;
        fo.dropped = true;
        config_.telemetry->outcomes->onFrameOutcome(fo);
    }
}

void
Simulator::applyDispatch(const Dispatch& d)
{
    Request& req = *requests_[d.requestId];
    AcceleratorState& acc = accels_[d.accel];
    const uint32_t slices =
        d.slices == 0 ? acc.config->numSlices : d.slices;

    assert(!req.inFlight && !req.finished());
    assert(req.arrivalUs <= nowUs_ + 1e-9);
    assert(headOfTask(req.task) == &req && "per-task FIFO order");
    assert(d.numLayers >= 1 && d.numLayers <= req.remainingLayers());
    assert(slices >= 1 && slices <= acc.freeSlices);

    Job job;
    job.requestId = req.id;
    job.layerBegin = req.nextLayer;
    job.layerEnd = req.nextLayer + d.numLayers;
    job.accel = d.accel;
    job.slices = slices;
    job.startUs = nowUs_;

    double latency_us = 0.0;
    double energy_mj = 0.0;
    for (size_t i = job.layerBegin; i < job.layerEnd; ++i) {
        const auto& c = costs_.cost(req.path[i], size_t(d.accel), slices);
        latency_us += c.latencyUs;
        energy_mj += c.energyMj;
    }

    // Context switch: flush the resident activations of the previous
    // request, fetch this request's live activations (Section 3.4).
    const SwitchTraffic cs = switchTraffic(acc, req);
    double cs_latency_us = 0.0;
    if (cs.any()) {
        const double cs_energy =
            cost::contextSwitchEnergyMj(cs.flushBytes, cs.fetchBytes);
        energy_mj += cs_energy;
        cs_latency_us = cost::contextSwitchLatencyUs(cs.total(),
                                                     *acc.config,
                                                     slices);
        latency_us += cs_latency_us;
        stats_.contextSwitches += 1;
        stats_.contextSwitchEnergyMj += cs_energy;
    }

    job.endUs = nowUs_ + latency_us;
    req.inFlight = true;
    req.energyMj += energy_mj;
    stats_.tasks[req.task].energyMj += energy_mj;

    acc.freeSlices -= slices;
    // An idle accelerator turns busy: open its busy interval.
    if (acc.runningJobs == 0)
        busyStartUs_[d.accel] = nowUs_;
    acc.runningJobs += 1;
    acc.lastTask = req.task;
    acc.busyUntilUs = std::max(acc.busyUntilUs, job.endUs);
    acc.residentRequestId = req.id;

    if (config_.telemetry) {
        // Queue wait: arrival to first layer dispatch.
        if (config_.telemetry->metrics && job.layerBegin == 0) {
            config_.telemetry->metrics
                ->histogram("frame/queue_wait_us")
                .record(nowUs_ - req.arrivalUs);
        }
        if (config_.telemetry->trace) {
            obs::TraceEventSink& trace = *config_.telemetry->trace;
            obs::TraceArgs args;
            args.integer("task", req.task)
                .integer("frame", req.frameIdx)
                .integer("request", req.id)
                .str("layers",
                     std::to_string(job.layerBegin) + ':' +
                         std::to_string(job.layerEnd))
                .integer("slices", (long long) slices);
            if (cs.any())
                args.num("cs_us", cs_latency_us);
            trace.span(d.accel,
                       scenario_.tasks[req.task].model.name, "job",
                       nowUs_, latency_us, args);
            // The context-switch cost nests as a child span at the
            // start of the job it delays (emitted after the longer
            // enclosing span so same-ts slices nest correctly).
            if (cs.any()) {
                trace.span(d.accel, "context_switch", "cs", nowUs_,
                           cs_latency_us,
                           obs::TraceArgs()
                               .integer("flush_bytes",
                                        (long long) cs.flushBytes)
                               .integer("fetch_bytes",
                                        (long long) cs.fetchBytes));
            }
        }
    }

    completions_.push(JobEvent{job.endUs, job});
}

void
Simulator::buildContext()
{
    ctx_.nowUs = nowUs_;
    ctx_.windowUs = config_.windowUs;
    ctx_.system = &system_;
    ctx_.costs = &costs_;
    ctx_.scenario = &scenario_;
    ctx_.accels = &accels_;
    ctx_.stats = &stats_;
    ctx_.ready.clear();
    ctx_.live.clear();
    for (workload::TaskId t = 0; t < workload::TaskId(taskQueues_.size());
         ++t) {
        Request* head = headOfTask(t);
        if (head && !head->inFlight && head->arrivalUs <= nowUs_ + 1e-9)
            ctx_.ready.push_back(head);
        for (const int id : taskQueues_[t]) {
            const Request* r = requests_[id].get();
            if (!r->finished() && r->arrivalUs <= nowUs_ + 1e-9)
                ctx_.live.push_back(r);
        }
    }
}

bool
Simulator::applyPlan(const Plan& plan)
{
    // Arm the optional re-invocation timer. Contract (sim/scheduler.h):
    // only a strictly-future wake-up is honoured; stale (past or
    // present) wake-ups are dropped here, otherwise a scheduler that
    // keeps requesting one would pin virtual time and the event loop
    // would never reach the end of the window.
    if (plan.wakeUpUs > nowUs_)
        wakeups_.push(plan.wakeUpUs);
    assert((wakeups_.empty() || wakeups_.top() > nowUs_) &&
           "stale wake-ups must never be armed");

    bool progress = false;
    for (const auto& sw : plan.switches) {
        applySwitch(sw);
        progress = true;
    }
    for (const auto& dr : plan.drops) {
        applyDrop(dr);
        progress = true;
    }
    for (const auto& d : plan.dispatches) {
        applyDispatch(d);
        progress = true;
    }
    return progress;
}

void
Simulator::invokeScheduler(Scheduler& sched)
{
    // Wall-clock decision timing is only taken when telemetry is
    // attached; the result is inherently host-dependent, so it rides
    // on the trace event (`wall_ns`) and a volatile histogram — never
    // in the canonical --metrics dump.
    obs::SimTelemetry* tel = config_.telemetry;
    const auto t0 = tel ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};

    int rounds = 0;
    bool converged = false;
    for (int round = 0; round < kMaxPlanRounds; ++round) {
        buildContext();
        Plan plan = sched.plan(ctx_);
        stats_.schedulerInvocations += 1;
        ++rounds;
        if (!applyPlan(plan)) {
            converged = true;
            break;
        }
    }
    assert(converged && "scheduler failed to converge");
    (void) converged;

    if (tel) {
        const double wall_ns =
            double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
        if (tel->metrics) {
            tel->metrics->histogram("sched/plan_rounds")
                .record(double(rounds));
            auto& wall = tel->metrics->histogram(
                "sched/decision_wall_ns");
            tel->metrics->markVolatile("sched/decision_wall_ns");
            wall.record(wall_ns);
        }
        if (tel->trace) {
            tel->trace->span(schedTid_, "schedule", "sched", nowUs_,
                             0.0,
                             obs::TraceArgs()
                                 .integer("rounds", rounds)
                                 .num("wall_ns", wall_ns));
        }
    }
}

RunStats
Simulator::run(Scheduler& sched)
{
    beginStream(sched);
    auto arrivals = source_->rootFrames(config_.windowUs);
    // Stable: simultaneous arrivals keep source order, so a trace
    // replay (whose source order is the recorded admission order)
    // reproduces the original run's admission sequence exactly.
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const auto& a, const auto& b) {
                         return a.arrivalUs < b.arrivalUs;
                     });
    for (const auto& spec : arrivals)
        offerArrival(spec);
    return finishStream();
}

void
Simulator::beginStream(Scheduler& sched)
{
    // Reset per-run state.
    requests_.clear();
    taskQueues_.assign(scenario_.tasks.size(), {});
    accels_.clear();
    for (const auto& cfg : system_.accelerators) {
        AcceleratorState st;
        st.config = &cfg;
        st.freeSlices = cfg.numSlices;
        accels_.push_back(st);
    }
    completions_ = {};
    wakeups_ = {};
    nowUs_ = 0.0;
    stats_ = RunStats{};
    stats_.windowUs = config_.windowUs;
    stats_.accelBusyUs.assign(accels_.size(), 0.0);
    busyStartUs_.assign(accels_.size(), 0.0);
    schedTid_ = int64_t(accels_.size());
    framesTid_ = schedTid_ + 1;
    stats_.tasks.resize(scenario_.tasks.size());
    for (size_t t = 0; t < scenario_.tasks.size(); ++t) {
        stats_.tasks[t].model = scenario_.tasks[t].model.name;
        const auto& m = scenario_.tasks[t].model;
        if (m.isSupernet())
            stats_.tasks[t].variantStarts.assign(m.variants.size() + 1,
                                                 0);
    }

    if (config_.arrivals) {
        ownedSource_.reset();
        source_ = config_.arrivals;
    } else {
        ownedSource_ = std::make_unique<workload::FrameSource>(
            scenario_, config_.seed);
        source_ = ownedSource_.get();
    }
    if (config_.telemetry && config_.telemetry->trace) {
        // Track naming: tid 0..N-1 = accelerators (paired with the
        // Table 2 config name), then the scheduler and the frame-
        // lifecycle instants. dream_prof keys its utilization table
        // off the "accel" prefix.
        obs::TraceEventSink& trace = *config_.telemetry->trace;
        for (size_t i = 0; i < accels_.size(); ++i)
            trace.threadName(int64_t(i),
                             "accel" + std::to_string(i) + ' ' +
                                 accels_[i].config->name);
        trace.threadName(schedTid_, "scheduler");
        trace.threadName(framesTid_, "frames");
    }

    pendingArrivals_.clear();
    nextArrival_ = 0;
    liveFrames_ = 0;
    streamSched_ = &sched;
    streaming_ = true;

    buildContext();
    sched.reset(ctx_);
}

void
Simulator::offerArrival(const workload::FrameSpec& spec)
{
    assert(streaming_ && "offerArrival outside a stream");
    if (!pendingArrivals_.empty() &&
        spec.arrivalUs < pendingArrivals_.back().arrivalUs)
        throw std::invalid_argument(
            "stream arrivals must be offered in nondecreasing "
            "arrival order");
    if (spec.arrivalUs < nowUs_ - 1e-9)
        throw std::invalid_argument(
            "stream arrival offered behind the stream clock");
    pendingArrivals_.push_back(spec);
}

void
Simulator::advanceTo(double limit_us)
{
    assert(streaming_ && "advanceTo outside a stream");
    const double limit = std::min(limit_us, config_.windowUs);
    // With limit == windowUs this is exactly run()'s event loop: the
    // break test `t >= limit` degenerates to `t >= windowUs`, so a
    // stream that offers every arrival before advancing past it
    // replays the offline run event-for-event.
    while (true) {
        double t = config_.windowUs;
        if (nextArrival_ < pendingArrivals_.size())
            t = std::min(t, pendingArrivals_[nextArrival_].arrivalUs);
        if (!completions_.empty())
            t = std::min(t, completions_.top().endUs);
        if (!wakeups_.empty())
            t = std::min(t, wakeups_.top());
        if (t >= limit)
            break;

        nowUs_ = t;
        while (!completions_.empty() &&
               completions_.top().endUs <= nowUs_ + 1e-9) {
            const Job job = completions_.top().job;
            completions_.pop();
            completeJob(job);
        }
        while (nextArrival_ < pendingArrivals_.size() &&
               pendingArrivals_[nextArrival_].arrivalUs <=
                   nowUs_ + 1e-9) {
            admitFrame(pendingArrivals_[nextArrival_]);
            ++nextArrival_;
        }
        while (!wakeups_.empty() && wakeups_.top() <= nowUs_ + 1e-9)
            wakeups_.pop();

        invokeScheduler(*streamSched_);
    }
}

RunStats
Simulator::finishStream()
{
    // Idempotent: a finished stream just returns its stats again, so
    // N-device serve loops may be finalized defensively in any order.
    if (!streaming_)
        return stats_;
    advanceTo(config_.windowUs);
    finalizeStats();
    streaming_ = false;
    streamSched_ = nullptr;
    return stats_;
}

void
Simulator::finalizeStats()
{
    // Close busy intervals still open at window end (jobs running
    // past the window count up to the window boundary, so
    // utilization = busy / window stays <= 1).
    for (size_t i = 0; i < accels_.size(); ++i) {
        if (accels_[i].runningJobs > 0)
            stats_.accelBusyUs[i] +=
                config_.windowUs - busyStartUs_[i];
        stats_.accelBusyUs[i] =
            std::min(stats_.accelBusyUs[i], config_.windowUs);
    }

    // Frames unfinished at window end with an in-window deadline are
    // violations; Supernet variant usage is tallied over started
    // frames; the per-frame trace is emitted in admission order.
    // Every admitted frame is recorded — frames whose deadline falls
    // beyond the window (inWindow == false) still contended for
    // accelerator time, and a trace that omitted them could not be
    // replayed faithfully.
    for (const auto& reqp : requests_) {
        const Request& req = *reqp;
        const bool counted = inWindow(req.deadlineUs, config_.windowUs);
        TaskStats& ts = stats_.tasks[req.task];
        if (counted && !req.finished())
            ts.violatedFrames += 1;
        if (counted && !ts.variantStarts.empty() && req.started())
            ts.variantStarts[size_t(req.variant)] += 1;
        FrameRecord fr;
        fr.task = req.task;
        fr.frameIdx = req.frameIdx;
        fr.arrivalUs = req.arrivalUs;
        fr.deadlineUs = req.deadlineUs;
        fr.completionUs = req.completionUs;
        fr.dropped = req.dropped;
        // A frame unfinished at window end only counts as violated
        // when its deadline lay inside the window — an out-of-window
        // frame cut off mid-flight may still have met its deadline.
        fr.violated = req.dropped ||
                      (req.done && req.completionUs > req.deadlineUs) ||
                      (counted && !req.finished());
        fr.inWindow = counted;
        fr.variant = req.variant;
        fr.energyMj = req.energyMj;
        stats_.frames.push_back(fr);
    }

    // End-of-run metrics: deterministic sim-time aggregates only
    // (everything here derives from RunStats, which is byte-identical
    // for any worker count).
    if (config_.telemetry && config_.telemetry->metrics) {
        obs::MetricsRegistry& m = *config_.telemetry->metrics;
        uint64_t total = 0, completed = 0, violated = 0, dropped = 0;
        for (const auto& ts : stats_.tasks) {
            total += ts.totalFrames;
            completed += ts.completedFrames;
            violated += ts.violatedFrames;
            dropped += ts.droppedFrames;
        }
        m.count("frames/total", total);
        m.count("frames/completed", completed);
        m.count("frames/violated", violated);
        m.count("frames/dropped", dropped);
        m.count("frames/admitted", requests_.size());
        m.count("sim/context_switches", stats_.contextSwitches);
        m.count("sched/invocations", stats_.schedulerInvocations);
        m.gaugeAdd("sim/window_us", config_.windowUs);
        m.gaugeAdd("sim/energy_mj", stats_.totalEnergyMj());
        for (size_t i = 0; i < accels_.size(); ++i) {
            const std::string prefix =
                "accel/" + std::to_string(i) + '/';
            m.gaugeAdd(prefix + "busy_us", stats_.accelBusyUs[i]);
            m.gaugeAdd(prefix + "idle_us",
                       config_.windowUs - stats_.accelBusyUs[i]);
        }
    }
}

} // namespace sim
} // namespace dream
