/**
 * @file
 * Discrete-event multi-accelerator simulator.
 *
 * Executes a Scenario's materialised frames on a SystemConfig under a
 * pluggable Scheduler. Layer jobs are non-preemptive; accelerators
 * are slice-divisible so spatial-fission schedulers can co-locate
 * jobs. Latency/energy of every job comes from the CostTable; context
 * switches between tasks on an accelerator charge the activation
 * flush/fetch energy and DRAM transfer latency.
 */

#ifndef DREAM_SIM_SIMULATOR_H
#define DREAM_SIM_SIMULATOR_H

#include <memory>
#include <queue>
#include <vector>

#include "costmodel/cost_table.h"
#include "hw/system.h"
#include "sim/request.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "workload/frame_source.h"
#include "workload/scenario.h"

namespace dream {

namespace obs {
struct SimTelemetry;
}

namespace sim {

/** Run parameters. */
struct SimConfig {
    /** Execution window Texec in microseconds (paper example: 2 s). */
    double windowUs = 2e6;
    /** Workload randomness seed. */
    uint64_t seed = 1;
    /**
     * Optional externally-owned arrival source. When set, the
     * simulator draws its frames from it (e.g. a
     * workload::ReplaySource re-injecting a recorded trace's exact
     * arrival sequence) instead of constructing a periodic
     * FrameSource from the scenario and @ref seed. Must outlive every
     * run() call; the caller keeps ownership.
     */
    const workload::ArrivalSource* arrivals = nullptr;
    /**
     * Optional externally-owned telemetry outputs (src/obs/). Null —
     * the default — records nothing and costs one pointer test per
     * hook site; the run itself is bit-identical either way (the
     * instrumentation only observes). Must outlive every run() call.
     */
    obs::SimTelemetry* telemetry = nullptr;
};

/**
 * The simulator. One instance runs one (system, scenario) pair; call
 * run() with different schedulers for comparisons — each run starts
 * from a clean state and an identical materialised workload.
 */
class Simulator {
public:
    Simulator(const hw::SystemConfig& system,
              const workload::Scenario& scenario,
              const cost::CostTable& costs, SimConfig config = {});

    /** Execute the window under @p sched and return the run stats. */
    RunStats run(Scheduler& sched);

    /**
     * Incremental (streaming) execution. run() is exactly
     *
     *     beginStream(sched);
     *     for (frame : stable-sorted rootFrames) offerArrival(frame);
     *     return finishStream();
     *
     * so a serve loop that offers each arrival before advancing past
     * its arrival time produces bit-identical RunStats to the offline
     * run — the determinism anchor of stream-mode replay. Between
     * beginStream() and finishStream() the caller may interleave
     * offerArrival() and advanceTo() freely, subject to the ordering
     * contracts below.
     */

    /** Reset per-run state and bind @p sched for this stream. */
    void beginStream(Scheduler& sched);

    /**
     * Queue one externally-released frame. Arrivals must be offered
     * in nondecreasing arrival order and before the stream clock has
     * advanced past them (offer, then advanceTo); violating either
     * throws std::invalid_argument. Cascade children are still
     * materialised internally via ArrivalSource::childFrame.
     */
    void offerArrival(const workload::FrameSpec& spec);

    /**
     * Process every event strictly before min(@p limit_us, window):
     * the same event loop as run(), with the window bound replaced by
     * the limit. Idempotent for a fixed limit; the stream clock never
     * moves backwards.
     */
    void advanceTo(double limit_us);

    /** Drain remaining events to the window end and finalize stats.
     *  Idempotent: calling again after the stream has finished
     *  returns the same finalized stats without re-running. */
    RunStats finishStream();

    /** Virtual time of the last processed event (us). */
    double nowUs() const { return nowUs_; }

    /** Admitted frames (root + cascade) not yet finished. */
    size_t liveFrames() const { return liveFrames_; }

private:
    struct JobEvent {
        double endUs;
        Job job;

        bool operator>(const JobEvent& o) const { return endUs > o.endUs; }
    };

    void admitFrame(const workload::FrameSpec& spec);
    void completeJob(const Job& job);
    void invokeScheduler(Scheduler& sched);
    bool applyPlan(const Plan& plan);
    void applySwitch(const VariantSwitch& sw);
    void applyDrop(const FrameDrop& drop);
    void applyDispatch(const Dispatch& d);
    void buildContext();
    void finalizeStats();
    Request* headOfTask(workload::TaskId task);

    const hw::SystemConfig& system_;
    const workload::Scenario& scenario_;
    const cost::CostTable& costs_;
    SimConfig config_;

    // Per-run state.
    std::unique_ptr<workload::FrameSource> ownedSource_;
    const workload::ArrivalSource* source_ = nullptr;
    std::vector<std::unique_ptr<Request>> requests_;
    std::vector<std::vector<int>> taskQueues_;  ///< FIFO req ids per task
    std::vector<AcceleratorState> accels_;
    std::priority_queue<JobEvent, std::vector<JobEvent>,
                        std::greater<JobEvent>> completions_;
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>> wakeups_;
    double nowUs_ = 0.0;
    RunStats stats_;
    SchedulerContext ctx_;
    /** Stream state: offered-but-unadmitted arrivals (FIFO from
     *  nextArrival_), the bound scheduler, and the live-frame count
     *  serve-mode admission control reads as its queue depth. */
    std::vector<workload::FrameSpec> pendingArrivals_;
    size_t nextArrival_ = 0;
    Scheduler* streamSched_ = nullptr;
    bool streaming_ = false;
    size_t liveFrames_ = 0;
    /** Start of the current busy interval per accelerator (valid
     *  while runningJobs > 0) — feeds RunStats::accelBusyUs. */
    std::vector<double> busyStartUs_;
    /** Scheduler/frame-lifecycle track ids of the trace sink. */
    int64_t schedTid_ = 0;
    int64_t framesTid_ = 0;
};

} // namespace sim
} // namespace dream

#endif // DREAM_SIM_SIMULATOR_H
