/**
 * @file
 * The scheduler plug-in interface of the simulator.
 *
 * At every scheduling event (frame arrival, job completion) the
 * simulator hands the scheduler a SchedulerContext snapshot and asks
 * for a Plan: Supernet variant switches, proactive frame drops and
 * job dispatches. The simulator applies the plan and re-invokes the
 * scheduler until it returns an empty plan, letting it fill every
 * idle accelerator.
 */

#ifndef DREAM_SIM_SCHEDULER_H
#define DREAM_SIM_SCHEDULER_H

#include <string>
#include <vector>

#include "costmodel/cost_table.h"
#include "hw/system.h"
#include "sim/request.h"
#include "sim/stats.h"
#include "workload/scenario.h"

namespace dream {
namespace sim {

/** Dispatch @p numLayers layers of a request onto an accelerator. */
struct Dispatch {
    int requestId = -1;
    size_t numLayers = 1;
    int accel = -1;
    /** Slice allocation; 0 means "all slices of the accelerator". */
    uint32_t slices = 0;
};

/** Proactively drop a (not in-flight) frame. */
struct FrameDrop {
    int requestId = -1;
};

/** Switch a Supernet request to a (lighter) variant. */
struct VariantSwitch {
    int requestId = -1;
    int variant = 0;
};

/** One round of scheduling decisions. */
struct Plan {
    std::vector<VariantSwitch> switches;
    std::vector<FrameDrop> drops;
    std::vector<Dispatch> dispatches;
    /**
     * Optional timer: ask the simulator to re-invoke the scheduler at
     * this time even if no arrival/completion event fires (used by
     * timetable replay and windowed online tuning). Honoured only if
     * strictly in the future; stale (past or present) values are
     * ignored by Simulator::applyPlan, and wake-ups at or beyond the
     * window end never fire. Negative means "no timer" (the default).
     */
    double wakeUpUs = -1.0;

    bool
    empty() const
    {
        return switches.empty() && drops.empty() && dispatches.empty();
    }
};

/**
 * Read-only snapshot handed to the scheduler.
 *
 * `ready` holds, per task queue, the head frame if it is schedulable
 * (arrived, unfinished, not in flight). `live` holds every unfinished
 * frame (for multi-violation checks and frame-drop policies).
 */
struct SchedulerContext {
    double nowUs = 0.0;
    double windowUs = 0.0;
    const hw::SystemConfig* system = nullptr;
    const cost::CostTable* costs = nullptr;
    const workload::Scenario* scenario = nullptr;
    std::vector<const Request*> ready;
    std::vector<const Request*> live;
    const std::vector<AcceleratorState>* accels = nullptr;
    /** Cumulative stats of the run so far (for online adaptivity). */
    const RunStats* stats = nullptr;

    /** Number of accelerators. */
    size_t numAccels() const { return accels->size(); }
    /** Occupancy state of accelerator @p i. */
    const AcceleratorState& accel(size_t i) const
    {
        return (*accels)[i];
    }
    /** Peak activation bytes of a task's model (context switches). */
    uint64_t taskActivationBytes(workload::TaskId t) const
    {
        return scenario->tasks[t].model.peakActivationBytes();
    }
};

/** Abstract scheduler. */
class Scheduler {
public:
    virtual ~Scheduler() = default;

    /** Human-readable name used in benches and tables. */
    virtual std::string name() const = 0;

    /** Called once before a run starts. */
    virtual void reset(const SchedulerContext& ctx) { (void)ctx; }

    /** Produce the next round of decisions. */
    virtual Plan plan(const SchedulerContext& ctx) = 0;
};

} // namespace sim
} // namespace dream

#endif // DREAM_SIM_SCHEDULER_H
