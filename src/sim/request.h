/**
 * @file
 * Run-time entities of the multi-accelerator simulator: inference
 * requests (materialised frames), accelerator occupancy state and
 * executing jobs.
 */

#ifndef DREAM_SIM_REQUEST_H
#define DREAM_SIM_REQUEST_H

#include <cstdint>
#include <limits>
#include <vector>

#include "hw/accelerator.h"
#include "models/layer.h"
#include "workload/scenario.h"

namespace dream {
namespace sim {

/**
 * One live inference request: a materialised frame of a task working
 * through its layer queue. Mirrors the paper's per-task inference
 * request queues; the simulator keeps frames of one task in FIFO
 * order and schedules the head frame's next layer(s).
 */
struct Request {
    int id = -1;
    workload::TaskId task = 0;
    int frameIdx = 0;
    double arrivalUs = 0.0;
    double deadlineUs = 0.0;

    /** Materialised execution path (mutable for Supernet switching). */
    std::vector<models::Layer> path;
    /** Next layer index awaiting dispatch. */
    size_t nextLayer = 0;
    /** True while a job for this request occupies an accelerator. */
    bool inFlight = false;

    /** Supernet variant in effect (0 == Original). */
    int variant = 0;
    /** Completion time of the lastly finished layer (Tcmpl), or the
     *  arrival time before any layer ran. Drives the queue-time term
     *  of the starvation score. */
    double lastEventUs = 0.0;
    /** Accelerator that ran the previous layer (PrevAcc), or -1. */
    int lastAccel = -1;

    /** Bumped whenever `path` is rewritten (variant switches), so
     *  derived cost caches can invalidate. */
    uint32_t pathVersion = 0;
    /** Lazily built suffix-sum latency cache (see sim/cost_cache.h). */
    struct CostCache {
        uint32_t version = ~0u;
        /** suffixAvg[i]: mean-across-accels latency of layers [i..). */
        std::vector<double> suffixAvg;
        /** suffixMin[i]: best-accel-per-layer latency of layers [i..). */
        std::vector<double> suffixMin;
        /** suffixByAcc[a][i]: full-slice latency on accel a of [i..). */
        std::vector<std::vector<double>> suffixByAcc;
    };
    mutable CostCache costCache;

    bool dropped = false;
    bool done = false;
    /** Completion time; NaN until done (matches FrameRecord). */
    double completionUs = std::numeric_limits<double>::quiet_NaN();
    /** Energy actually spent on this frame so far (mJ). */
    double energyMj = 0.0;
    /** Worst-case energy of the originally materialised path (mJ). */
    double worstCaseEnergyMj = 0.0;
    /** Cascade-gate outcomes, aligned with childrenOf(task). */
    std::vector<char> childTriggers;

    /** Finished in any way (completed or dropped). */
    bool finished() const { return done || dropped; }
    /** Layers still to dispatch. */
    size_t remainingLayers() const { return path.size() - nextLayer; }
    /** True once any layer has been dispatched. */
    bool started() const { return nextLayer > 0 || inFlight; }
};

/** A block of layers executing on (a slice allocation of) an accel. */
struct Job {
    int requestId = -1;
    size_t layerBegin = 0;  ///< first layer index of the block
    size_t layerEnd = 0;    ///< one past the last layer of the block
    int accel = -1;
    uint32_t slices = 0;
    double startUs = 0.0;
    double endUs = 0.0;
};

/** Dynamic occupancy state of one accelerator. */
struct AcceleratorState {
    const hw::AcceleratorConfig* config = nullptr;
    uint32_t freeSlices = 0;
    /** Task of the most recently started job (context-switch state). */
    workload::TaskId lastTask = -1;
    /** Number of jobs currently running. */
    uint32_t runningJobs = 0;
    /** Completion time of the job finishing last on this accel. */
    double busyUntilUs = 0.0;
    /** Request whose live activations sit in the on-chip buffer. */
    int residentRequestId = -1;
    /** Size of those live activations in bytes. */
    uint64_t residentBytes = 0;

    bool idle() const { return runningJobs == 0; }
};

} // namespace sim
} // namespace dream

#endif // DREAM_SIM_REQUEST_H
