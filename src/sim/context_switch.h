/**
 * @file
 * Context-switch traffic model (Section 3.4 of the paper).
 *
 * Switching an accelerator between tasks flushes the switched-out
 * model's live activations to DRAM and fetches the switched-in
 * model's. The traffic is computed from the actual live tensors:
 *  - flush: the resident activation bytes the previous (unfinished)
 *    request left on the accelerator;
 *  - fetch: the next layer's input activations, unless the request is
 *    starting fresh (sensor input is charged by the layer itself) or
 *    its activations are already resident on this accelerator.
 *
 * Both the simulator (exact charging) and the MapScore engine
 * (Cost_switch term) use this one definition.
 */

#ifndef DREAM_SIM_CONTEXT_SWITCH_H
#define DREAM_SIM_CONTEXT_SWITCH_H

#include <cstdint>

#include "sim/request.h"

namespace dream {
namespace sim {

/** DRAM traffic of a prospective context switch. */
struct SwitchTraffic {
    uint64_t flushBytes = 0;
    uint64_t fetchBytes = 0;

    uint64_t total() const { return flushBytes + fetchBytes; }
    bool any() const { return total() > 0; }
};

/**
 * Traffic of dispatching @p req next on @p acc given the
 * accelerator's current resident state.
 */
SwitchTraffic switchTraffic(const AcceleratorState& acc,
                            const Request& req);

} // namespace sim
} // namespace dream

#endif // DREAM_SIM_CONTEXT_SWITCH_H
