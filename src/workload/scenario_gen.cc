#include "workload/scenario_gen.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

#include "costmodel/cost_table_cache.h"
#include "hw/system.h"
#include "models/zoo.h"
#include "workload/rng.h"

namespace dream {
namespace workload {

namespace {

/** Deterministic random stream (platform-independent). */
class GenRng {
public:
    explicit GenRng(uint64_t seed) : state_(rng::splitmix64(seed)) {}

    /** Uniform double in [0, 1). */
    double uniform() { return rng::nextUniform(state_); }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). */
    size_t
    index(size_t n)
    {
        assert(n > 0);
        return size_t(uniform() * double(n)) % n;
    }

private:
    uint64_t state_;
};

/** The full model zoo as a pool. */
std::vector<models::Model>
zooPool()
{
    using namespace models::zoo;
    return {fbnetC(),       ssdMobileNetV2(), handPoseNet(),
            ofaSupernet(),  kwsRes8(),        gnmt(),
            skipNet(),      trailNet(),       sosNet(),
            rapidRl(),      googLeNetCar(),   focalLengthDepth(),
            edTcn(),        vggVoxCeleb()};
}

/** Standard camera/display/audio frame rates within [lo, hi]. */
std::vector<double>
standardRates(double lo, double hi)
{
    std::vector<double> out;
    for (const double fps : {5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0,
                             90.0, 120.0}) {
        if (fps >= lo && fps <= hi)
            out.push_back(fps);
    }
    return out;
}

/** The system the target-load bias is costed on. */
hw::SystemConfig
loadSystemFor(const ScenarioGenSpec& spec)
{
    if (spec.loadSystem.empty())
        return hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    for (const auto preset : hw::allSystemPresets()) {
        if (hw::toString(preset) == spec.loadSystem)
            return hw::makeSystem(preset);
    }
    // validateGenSpec rejects unknown names before a generator is
    // built; reaching this is a caller bug.
    assert(false && "unknown loadSystem preset name");
    std::abort();
}

} // anonymous namespace

ScenarioGenerator::ScenarioGenerator(ScenarioGenSpec spec)
    : spec_(std::move(spec))
{
    assert(spec_.minTasks >= 1 && spec_.minTasks <= spec_.maxTasks);
    assert(spec_.minFps > 0.0 && spec_.minFps <= spec_.maxFps);
    if (spec_.pool.empty())
        spec_.pool = zooPool();

    if (spec_.supernetProb >= 0.0) {
        for (size_t i = 0; i < spec_.pool.size(); ++i) {
            (spec_.pool[i].isSupernet() ? supernetPool_ : plainPool_)
                .push_back(i);
        }
    }

    if (spec_.targetLoad > 0.0) {
        // Cost the whole pool once, through the process-wide table
        // cache: a probe scenario holding every pool model keys ONE
        // shared frozen table, reused by every generator with the
        // same (loadSystem, pool) — and by the thousands of
        // candidate specs a scenario hunt generates.
        const hw::SystemConfig system = loadSystemFor(spec_);
        Scenario probe;
        probe.name = "load-probe";
        for (const auto& m : spec_.pool) {
            TaskSpec t;
            t.model = m;
            probe.tasks.push_back(std::move(t));
        }
        const auto table = cost::acquireCostTable(system, probe);
        poolLatencySec_.reserve(spec_.pool.size());
        for (const auto& m : spec_.pool) {
            double sum_us = 0.0;
            for (const auto& l : m.layers)
                sum_us += table->avgLatencyUs(l);
            poolLatencySec_.push_back(sum_us / 1e6);
        }
    }
}

Scenario
ScenarioGenerator::generate(uint64_t seed) const
{
    GenRng rng(seed);
    Scenario s;
    s.name = "Gen" + std::to_string(seed);

    const int span = spec_.maxTasks - spec_.minTasks + 1;
    const int n_tasks = spec_.minTasks + int(rng.index(size_t(span)));

    auto rates = standardRates(spec_.minFps, spec_.maxFps);
    if (rates.empty())
        rates.push_back(spec_.minFps);

    double load_so_far = 0.0;
    for (int i = 0; i < n_tasks; ++i) {
        TaskSpec t;

        // Model draw. With the Supernet knob, presence is decided
        // first and the model comes from the matching subset; with a
        // load target, a few candidates are drawn and the one whose
        // best standard rate lands closest to an even share of the
        // remaining target wins.
        const std::vector<size_t>* subset = nullptr;
        if (spec_.supernetProb >= 0.0) {
            const bool super = rng.uniform() < spec_.supernetProb;
            subset = super ? &supernetPool_ : &plainPool_;
            if (subset->empty())
                subset = nullptr;
        }
        const auto draw_model = [&]() {
            return subset ? (*subset)[rng.index(subset->size())]
                          : rng.index(spec_.pool.size());
        };
        size_t model_idx = draw_model();

        if (spec_.targetLoad > 0.0) {
            const double ideal =
                (spec_.targetLoad - load_so_far) / double(n_tasks - i);
            // Closest standard rate to the ideal per-task load for a
            // given model latency; the residual distance rates the
            // candidate.
            const auto best_fit = [&](size_t idx, double* err) {
                const double lat = poolLatencySec_[idx];
                double fps = rates[0];
                double best = std::abs(rates[0] * lat - ideal);
                for (const double r : rates) {
                    const double e = std::abs(r * lat - ideal);
                    if (e < best) {
                        best = e;
                        fps = r;
                    }
                }
                *err = best;
                return fps;
            };
            double err = 0.0;
            double fps = best_fit(model_idx, &err);
            for (int c = 0; c < 2; ++c) {
                const size_t cand = draw_model();
                double cand_err = 0.0;
                const double cand_fps = best_fit(cand, &cand_err);
                if (cand_err < err) {
                    err = cand_err;
                    fps = cand_fps;
                    model_idx = cand;
                }
            }
            t.fps = fps;
            load_so_far += fps * poolLatencySec_[model_idx];
        } else {
            t.fps = rates[rng.index(rates.size())];
        }
        t.model = spec_.pool[model_idx];

        // Dependencies only point at earlier tasks, so the dependency
        // graph is a forest by construction (chains and trees arise
        // from several tasks picking the same or chained parents).
        if (i > 0 && rng.uniform() < spec_.chainProb) {
            t.dependsOn = TaskId(rng.index(size_t(i)));
            t.triggerProb = rng.uniform(spec_.minTriggerProb,
                                        spec_.maxTriggerProb);
        }
        if (rng.uniform() < spec_.activationProb) {
            t.startUs = rng.uniform(0.0, 0.5 * spec_.horizonUs);
            t.endUs = t.startUs +
                      rng.uniform(0.25, 0.75) * spec_.horizonUs;
        }

        // Operator-level dynamicity overrides: one probability per
        // task, applied to every gate of its model. The draw happens
        // whenever the knob is enabled (even for models without
        // gates), so the stream position of later draws depends only
        // on the spec, never on which model was picked upstream.
        if (spec_.skipProbMin >= 0.0) {
            const double p = rng.uniform(spec_.skipProbMin,
                                         spec_.skipProbMax);
            for (auto& blk : t.model.skipBlocks)
                blk.skipProb = p;
        }
        if (spec_.exitProbMin >= 0.0) {
            const double p = rng.uniform(spec_.exitProbMin,
                                         spec_.exitProbMax);
            for (auto& exit : t.model.earlyExits)
                exit.exitProb = p;
        }
        s.tasks.push_back(std::move(t));
    }

    assert(validateScenario(s));
    return s;
}

bool
validateGenSpec(const ScenarioGenSpec& spec, std::string* error)
{
    const auto fail = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return false;
    };
    // NaN-proof interval check: lo <= v <= hi must be TRUE, so a NaN
    // (which fails every comparison) is rejected, never waved
    // through by a "not out of range" formulation.
    const auto in_range = [](double v, double lo, double hi) {
        return v >= lo && v <= hi;
    };

    if (spec.minTasks < 1 || spec.minTasks > spec.maxTasks)
        return fail("task count range invalid (want 1 <= minTasks <= "
                    "maxTasks)");
    if (!(spec.minFps > 0.0) || !std::isfinite(spec.minFps) ||
        !std::isfinite(spec.maxFps) || !(spec.minFps <= spec.maxFps))
        return fail("fps range must be finite with 0 < minFps <= "
                    "maxFps");
    if (!in_range(spec.chainProb, 0.0, 1.0))
        return fail("chainProb outside [0,1]");
    if (!in_range(spec.minTriggerProb, 0.0, 1.0) ||
        !in_range(spec.maxTriggerProb, 0.0, 1.0) ||
        !(spec.minTriggerProb <= spec.maxTriggerProb))
        return fail("trigger probability range invalid (want 0 <= "
                    "min <= max <= 1)");
    if (!in_range(spec.activationProb, 0.0, 1.0))
        return fail("activationProb outside [0,1]");
    if (!(spec.horizonUs > 0.0) || !std::isfinite(spec.horizonUs))
        return fail("horizonUs must be finite and > 0");

    // Override ranges: both ends disabled (-1) or both a valid
    // ordered probability interval — a half-set range is a typo.
    const auto check_override = [&](double lo, double hi) {
        if (lo == -1.0 && hi == -1.0)
            return true;
        return in_range(lo, 0.0, 1.0) && in_range(hi, 0.0, 1.0) &&
               lo <= hi;
    };
    if (!check_override(spec.skipProbMin, spec.skipProbMax))
        return fail("skip probability override invalid (want both -1, "
                    "or 0 <= min <= max <= 1)");
    if (!check_override(spec.exitProbMin, spec.exitProbMax))
        return fail("early-exit probability override invalid (want "
                    "both -1, or 0 <= min <= max <= 1)");
    if (spec.supernetProb != -1.0 &&
        !in_range(spec.supernetProb, 0.0, 1.0))
        return fail("supernetProb invalid (want -1, or in [0,1])");
    if (!in_range(spec.targetLoad, 0.0, 1e6) ||
        !std::isfinite(spec.targetLoad))
        return fail("targetLoad must be finite and >= 0");
    if (!spec.loadSystem.empty()) {
        bool known = false;
        for (const auto preset : hw::allSystemPresets())
            known = known || hw::toString(preset) == spec.loadSystem;
        if (!known)
            return fail("unknown loadSystem preset name '" +
                        spec.loadSystem + "'");
    }
    return true;
}

bool
validateScenario(const Scenario& scenario, std::string* error)
{
    const auto fail = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return false;
    };

    if (scenario.tasks.empty())
        return fail("scenario has no tasks");

    const TaskId n = TaskId(scenario.tasks.size());
    for (TaskId t = 0; t < n; ++t) {
        const auto& spec = scenario.tasks[t];
        const std::string where =
            "task " + std::to_string(t) + " (" + spec.model.name + ")";
        if (!(spec.fps > 0.0) || !std::isfinite(spec.fps))
            return fail(where + ": fps must be finite and > 0");
        if (spec.model.layers.empty())
            return fail(where + ": model has no layers");
        if (spec.dependsOn != kNoParent &&
            (spec.dependsOn < 0 || spec.dependsOn >= n))
            return fail(where + ": dependency out of range");
        if (spec.dependsOn == t)
            return fail(where + ": depends on itself");
        if (!(spec.triggerProb >= 0.0 && spec.triggerProb <= 1.0))
            return fail(where + ": trigger probability outside [0,1]");
        if (spec.dependsOn == kNoParent && spec.triggerProb != 1.0)
            return fail(where + ": trigger probability set on a task "
                                "with no dependency (roots must keep "
                                "the inert default 1)");
        if (!(spec.startUs < spec.endUs))
            return fail(where + ": empty activation window");
        if (spec.startUs < 0.0)
            return fail(where + ": negative activation start");
    }

    // Acyclic: follow each task's parent chain; any chain longer than
    // the task count must contain a cycle.
    for (TaskId t = 0; t < n; ++t) {
        TaskId cur = t;
        for (TaskId hops = 0; scenario.tasks[cur].dependsOn != kNoParent;
             ++hops) {
            cur = scenario.tasks[cur].dependsOn;
            if (hops >= n) {
                return fail("dependency cycle through task " +
                            std::to_string(t));
            }
        }
    }
    return true;
}

} // namespace workload
} // namespace dream
