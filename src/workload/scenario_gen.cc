#include "workload/scenario_gen.h"

#include <cassert>
#include <cmath>

#include "models/zoo.h"
#include "workload/rng.h"

namespace dream {
namespace workload {

namespace {

/** Deterministic random stream (platform-independent). */
class GenRng {
public:
    explicit GenRng(uint64_t seed) : state_(rng::splitmix64(seed)) {}

    /** Uniform double in [0, 1). */
    double uniform() { return rng::nextUniform(state_); }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). */
    size_t
    index(size_t n)
    {
        assert(n > 0);
        return size_t(uniform() * double(n)) % n;
    }

private:
    uint64_t state_;
};

/** The full model zoo as a pool. */
std::vector<models::Model>
zooPool()
{
    using namespace models::zoo;
    return {fbnetC(),       ssdMobileNetV2(), handPoseNet(),
            ofaSupernet(),  kwsRes8(),        gnmt(),
            skipNet(),      trailNet(),       sosNet(),
            rapidRl(),      googLeNetCar(),   focalLengthDepth(),
            edTcn(),        vggVoxCeleb()};
}

/** Standard camera/display/audio frame rates within [lo, hi]. */
std::vector<double>
standardRates(double lo, double hi)
{
    std::vector<double> out;
    for (const double fps : {5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0,
                             90.0, 120.0}) {
        if (fps >= lo && fps <= hi)
            out.push_back(fps);
    }
    return out;
}

} // anonymous namespace

ScenarioGenerator::ScenarioGenerator(ScenarioGenSpec spec)
    : spec_(std::move(spec))
{
    assert(spec_.minTasks >= 1 && spec_.minTasks <= spec_.maxTasks);
    assert(spec_.minFps > 0.0 && spec_.minFps <= spec_.maxFps);
    if (spec_.pool.empty())
        spec_.pool = zooPool();
}

Scenario
ScenarioGenerator::generate(uint64_t seed) const
{
    GenRng rng(seed);
    Scenario s;
    s.name = "Gen" + std::to_string(seed);

    const int span = spec_.maxTasks - spec_.minTasks + 1;
    const int n_tasks = spec_.minTasks + int(rng.index(size_t(span)));

    auto rates = standardRates(spec_.minFps, spec_.maxFps);
    if (rates.empty())
        rates.push_back(spec_.minFps);

    for (int i = 0; i < n_tasks; ++i) {
        TaskSpec t;
        t.model = spec_.pool[rng.index(spec_.pool.size())];
        t.fps = rates[rng.index(rates.size())];
        // Dependencies only point at earlier tasks, so the dependency
        // graph is a forest by construction (chains and trees arise
        // from several tasks picking the same or chained parents).
        if (i > 0 && rng.uniform() < spec_.chainProb) {
            t.dependsOn = TaskId(rng.index(size_t(i)));
            t.triggerProb = rng.uniform(spec_.minTriggerProb,
                                        spec_.maxTriggerProb);
        }
        if (rng.uniform() < spec_.activationProb) {
            t.startUs = rng.uniform(0.0, 0.5 * spec_.horizonUs);
            t.endUs = t.startUs +
                      rng.uniform(0.25, 0.75) * spec_.horizonUs;
        }
        s.tasks.push_back(std::move(t));
    }

    assert(validateScenario(s));
    return s;
}

bool
validateScenario(const Scenario& scenario, std::string* error)
{
    const auto fail = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return false;
    };

    if (scenario.tasks.empty())
        return fail("scenario has no tasks");

    const TaskId n = TaskId(scenario.tasks.size());
    for (TaskId t = 0; t < n; ++t) {
        const auto& spec = scenario.tasks[t];
        const std::string where =
            "task " + std::to_string(t) + " (" + spec.model.name + ")";
        if (!(spec.fps > 0.0) || !std::isfinite(spec.fps))
            return fail(where + ": fps must be finite and > 0");
        if (spec.model.layers.empty())
            return fail(where + ": model has no layers");
        if (spec.dependsOn != kNoParent &&
            (spec.dependsOn < 0 || spec.dependsOn >= n))
            return fail(where + ": dependency out of range");
        if (spec.dependsOn == t)
            return fail(where + ": depends on itself");
        if (!(spec.triggerProb >= 0.0 && spec.triggerProb <= 1.0))
            return fail(where + ": trigger probability outside [0,1]");
        if (!(spec.startUs < spec.endUs))
            return fail(where + ": empty activation window");
        if (spec.startUs < 0.0)
            return fail(where + ": negative activation start");
    }

    // Acyclic: follow each task's parent chain; any chain longer than
    // the task count must contain a cycle.
    for (TaskId t = 0; t < n; ++t) {
        TaskId cur = t;
        for (TaskId hops = 0; scenario.tasks[cur].dependsOn != kNoParent;
             ++hops) {
            cur = scenario.tasks[cur].dependsOn;
            if (hops >= n) {
                return fail("dependency cycle through task " +
                            std::to_string(t));
            }
        }
    }
    return true;
}

} // namespace workload
} // namespace dream
