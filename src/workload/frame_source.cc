#include "workload/frame_source.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "workload/rng.h"

namespace dream {
namespace workload {

namespace {

using rng::splitmix64;

/** Stateless per-frame random stream. */
class FrameRng {
public:
    FrameRng(uint64_t seed, TaskId task, int frame)
        : state_(splitmix64(seed ^ splitmix64(uint64_t(task) << 32 |
                                              uint64_t(uint32_t(frame)))))
    {}

    /** Uniform double in [0, 1). */
    double uniform() { return rng::nextUniform(state_); }

private:
    uint64_t state_;
};

} // anonymous namespace

FrameSource::FrameSource(const Scenario& scenario, uint64_t seed)
    : scenario_(scenario), seed_(seed)
{
}

std::vector<models::Layer>
FrameSource::materialisePath(TaskId task, int frame_idx) const
{
    const models::Model& model = scenario_.tasks[task].model;
    FrameRng rng(seed_ ^ 0xa5a5a5a5ull, task, frame_idx);

    // Decide skip gates (SkipNet-style blocks).
    std::vector<char> skip(model.layers.size(), 0);
    for (const auto& blk : model.skipBlocks) {
        if (rng.uniform() < blk.skipProb) {
            for (size_t i = blk.begin; i < blk.end; ++i)
                skip[i] = 1;
        }
    }

    // Decide the earliest firing early exit (if any).
    size_t cut = model.layers.size();
    for (const auto& exit : model.earlyExits) {
        if (rng.uniform() < exit.exitProb) {
            cut = std::min(cut, exit.afterLayer + 1);
            break;
        }
    }

    std::vector<models::Layer> path;
    path.reserve(cut);
    for (size_t i = 0; i < cut; ++i) {
        if (!skip[i])
            path.push_back(model.layers[i]);
    }
    assert(!path.empty());
    return path;
}

FrameSpec
FrameSource::makeFrame(TaskId task, int frame_idx, double arrival_us,
                       double deadline_us) const
{
    FrameSpec f;
    f.task = task;
    f.frameIdx = frame_idx;
    f.arrivalUs = arrival_us;
    f.deadlineUs = deadline_us;
    f.path = materialisePath(task, frame_idx);

    // Cascade gate per dependent task, from this (parent) frame's RNG.
    const auto children = scenario_.childrenOf(task);
    FrameRng rng(seed_ ^ 0x5a5a5a5aull, task, frame_idx);
    f.childTriggers.reserve(children.size());
    for (const TaskId c : children) {
        f.childTriggers.push_back(
            rng.uniform() < scenario_.tasks[c].triggerProb ? 1 : 0);
    }
    return f;
}

std::vector<FrameSpec>
FrameSource::rootFrames(double window_us) const
{
    std::vector<FrameSpec> frames;
    // Tolerance for accumulated floating error at window boundaries
    // (units: us; one nanosecond).
    constexpr double eps = 1e-3;
    for (TaskId t = 0; t < TaskId(scenario_.tasks.size()); ++t) {
        const TaskSpec& spec = scenario_.tasks[t];
        if (spec.dependsOn != kNoParent)
            continue;
        const double period = spec.periodUs();
        const double until = std::min(window_us, spec.endUs);
        for (int idx = 0;; ++idx) {
            // Multiplicative arrival avoids drift over long windows.
            const double at = spec.startUs + double(idx) * period;
            if (at >= until - eps)
                break;
            frames.push_back(makeFrame(t, idx, at, at + period));
        }
    }
    return frames;
}

FrameSpec
FrameSource::rootFrame(TaskId task, int frame_idx,
                       double arrival_us) const
{
    if (task < 0 || size_t(task) >= scenario_.tasks.size())
        throw std::invalid_argument(
            "rootFrame: task id out of range");
    const TaskSpec& spec = scenario_.tasks[size_t(task)];
    if (spec.dependsOn != kNoParent)
        throw std::invalid_argument(
            "rootFrame: dependent tasks are released by their "
            "parent's cascade gate, not by ingest");
    if (!std::isfinite(arrival_us) || arrival_us < 0.0)
        throw std::invalid_argument(
            "rootFrame: arrival time must be finite and >= 0");
    return makeFrame(task, frame_idx, arrival_us,
                     arrival_us + spec.periodUs());
}

FrameSpec
FrameSource::childFrame(TaskId child, int frame_idx,
                        double parent_arrival_us,
                        double parent_completion_us) const
{
    (void)parent_arrival_us;
    const TaskSpec& spec = scenario_.tasks[child];
    assert(spec.dependsOn != kNoParent);
    // Dependent stages carry their own FPS-derived deadline from the
    // moment they are released (Table 3 assigns every model its own
    // rate), so a slow parent does not make the child structurally
    // infeasible.
    FrameSpec f = makeFrame(child, frame_idx, parent_completion_us,
                            parent_completion_us + spec.periodUs());
    return f;
}

} // namespace workload
} // namespace dream
