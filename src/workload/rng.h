/**
 * @file
 * The workload module's shared deterministic random primitives.
 * Both frame materialisation (frame_source.cc) and scenario
 * synthesis (scenario_gen.cc) derive every draw from this splitmix64
 * hash chain — one definition, so the cross-run / cross-platform
 * reproducibility contract cannot silently diverge between them.
 */

#ifndef DREAM_WORKLOAD_RNG_H
#define DREAM_WORKLOAD_RNG_H

#include <cstdint>

namespace dream {
namespace workload {
namespace rng {

/** splitmix64: cheap, well-mixed stateless hash chain. */
inline uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Advance @p state and return a uniform double in [0, 1). */
inline double
nextUniform(uint64_t& state)
{
    state = splitmix64(state);
    return double(state >> 11) * 0x1.0p-53;
}

} // namespace rng
} // namespace workload
} // namespace dream

#endif // DREAM_WORKLOAD_RNG_H
