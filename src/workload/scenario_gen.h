/**
 * @file
 * Randomized RTMM scenario synthesis: a seeded generator that builds
 * Scenario instances (task count, model mix from the zoo, fps
 * distribution, chain/tree dependency shapes, trigger probabilities,
 * activation windows) behind a declarative ScenarioGenSpec. Generated
 * scenarios stress schedulers far beyond the five Table 3 presets,
 * and plug directly into the sweep engine as a grid axis (see
 * engine::SweepGrid::addGeneratedScenarios).
 */

#ifndef DREAM_WORKLOAD_SCENARIO_GEN_H
#define DREAM_WORKLOAD_SCENARIO_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "workload/scenario.h"

namespace dream {
namespace workload {

/**
 * Distribution bounds for randomized scenario synthesis. The
 * defaults produce mixes comparable in size and load to the Table 3
 * presets (2-8 tasks, standard camera/display frame rates, mostly
 * shallow dependency trees, occasional activation windows).
 *
 * The dynamicity knobs below the pool (skip/early-exit overrides,
 * Supernet presence, target aggregate load) all default to
 * "disabled": a default-constructed spec generates byte-identical
 * scenarios to the pre-knob generator, so existing seeded sweeps
 * (bench/gen_scenarios) keep their mixes. They exist for the
 * adversarial scenario hunt (engine::ScenarioSearch), which searches
 * over them for worst-case mixes.
 */
struct ScenarioGenSpec {
    /** Task count range (inclusive). */
    int minTasks = 2;
    int maxTasks = 8;
    /** FPS targets are drawn from the standard rates within range. */
    double minFps = 5.0;
    double maxFps = 60.0;
    /** P(a non-first task depends on an earlier task). */
    double chainProb = 0.45;
    /** Trigger-probability range of dependent (cascade) tasks. */
    double minTriggerProb = 0.3;
    double maxTriggerProb = 1.0;
    /** P(a task is active only inside a window, task dynamicity). */
    double activationProb = 0.2;
    /** Horizon used to size activation windows (microseconds). */
    double horizonUs = 2e6;
    /**
     * Model pool to draw from; empty selects the full zoo (all
     * fourteen Table 3 networks, including the dynamic ones).
     */
    std::vector<models::Model> pool;

    // ------------------------------------------- dynamicity knobs
    /**
     * Per-task skip-gate probability override range. When >= 0, each
     * task draws one probability in [skipProbMin, skipProbMax] and
     * every SkipBlock of its model uses it instead of the zoo
     * default (models without skip blocks are unaffected). -1
     * disables the override.
     */
    double skipProbMin = -1.0;
    double skipProbMax = -1.0;
    /**
     * Per-task early-exit probability override range, applied to
     * every EarlyExit of the task's model. -1 disables.
     */
    double exitProbMin = -1.0;
    double exitProbMax = -1.0;
    /**
     * P(a task's model is Supernet-based). When >= 0, each task
     * first draws whether it is a Supernet task, then draws its
     * model from the matching pool subset (falling back to the whole
     * pool if the subset is empty). -1 keeps the unbiased draw.
     */
    double supernetProb = -1.0;
    /**
     * Target aggregate accelerator load (sum over tasks of
     * effective-fps x whole-model latency, as reported by
     * bench/tab03_scenarios; 1.0 ~ one fully busy reference
     * accelerator). When > 0, model and fps draws are biased toward
     * it: each task draws a few candidate models and picks the
     * (model, standard rate) pair whose load lands closest to an
     * even share of the remaining target. Latencies come from the
     * process-wide cost::CostTableCache (one shared table for the
     * whole pool), so the bias costs one table build per process.
     * 0 disables the bias.
     */
    double targetLoad = 0.0;
    /**
     * Display name of the hw::SystemPreset the target load is costed
     * on (empty selects the default heterogeneous 4K preset,
     * "4K-1WS+2OS"). Part of the spec so a (spec, seed) pair alone
     * reproduces the scenario on any host.
     */
    std::string loadSystem;
};

/**
 * Validity check for the spec itself — the gate suite files pass
 * before a spec is ever handed to a generator: finite in-range
 * probabilities (and both-or-neither override ranges), ordered
 * task/fps/trigger bounds, positive horizon, a known loadSystem
 * name, non-negative finite targetLoad. NaN in any knob fails. On
 * failure returns false and, when @p error is non-null, stores a
 * description of the first violation.
 */
bool validateGenSpec(const ScenarioGenSpec& spec,
                     std::string* error = nullptr);

/**
 * Seeded deterministic scenario generator.
 *
 * generate(seed) is a pure function of (spec, seed): the same seed
 * always yields the identical scenario (names, models, fps values,
 * dependency edges, trigger probabilities, activation windows), on
 * every platform — randomness comes from a splitmix64 hash chain,
 * never from implementation-defined std distributions.
 */
class ScenarioGenerator {
public:
    explicit ScenarioGenerator(ScenarioGenSpec spec = {});

    /** Synthesize the scenario of @p seed (named "Gen<seed>"). */
    Scenario generate(uint64_t seed) const;

    /** The spec in effect (pool populated). */
    const ScenarioGenSpec& spec() const { return spec_; }

private:
    ScenarioGenSpec spec_;
    /** Pool indices of Supernet / plain models (supernetProb >= 0). */
    std::vector<size_t> supernetPool_;
    std::vector<size_t> plainPool_;
    /**
     * Whole-model latency (seconds, averaged across the loadSystem
     * accelerators) per pool model; empty unless targetLoad > 0.
     * Costed once from the shared cost-table cache.
     */
    std::vector<double> poolLatencySec_;
};

/**
 * Validity check every generated scenario must pass (and every
 * hand-written one should): non-empty task list, finite fps > 0,
 * in-range dependency edges forming a forest (acyclic, no
 * self-dependency), trigger probabilities in [0, 1] — and exactly
 * 1 (the inert default) on tasks with no dependency, where a gate
 * probability is meaningless and indicates a malformed (e.g.
 * hand-edited) task list — and activation windows with start < end.
 * On failure returns false and, when @p error is non-null, stores a
 * description of the first violation.
 */
bool validateScenario(const Scenario& scenario,
                      std::string* error = nullptr);

} // namespace workload
} // namespace dream

#endif // DREAM_WORKLOAD_SCENARIO_GEN_H
