/**
 * @file
 * Randomized RTMM scenario synthesis: a seeded generator that builds
 * Scenario instances (task count, model mix from the zoo, fps
 * distribution, chain/tree dependency shapes, trigger probabilities,
 * activation windows) behind a declarative ScenarioGenSpec. Generated
 * scenarios stress schedulers far beyond the five Table 3 presets,
 * and plug directly into the sweep engine as a grid axis (see
 * engine::SweepGrid::addGeneratedScenarios).
 */

#ifndef DREAM_WORKLOAD_SCENARIO_GEN_H
#define DREAM_WORKLOAD_SCENARIO_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "workload/scenario.h"

namespace dream {
namespace workload {

/**
 * Distribution bounds for randomized scenario synthesis. The
 * defaults produce mixes comparable in size and load to the Table 3
 * presets (2-8 tasks, standard camera/display frame rates, mostly
 * shallow dependency trees, occasional activation windows).
 */
struct ScenarioGenSpec {
    /** Task count range (inclusive). */
    int minTasks = 2;
    int maxTasks = 8;
    /** FPS targets are drawn from the standard rates within range. */
    double minFps = 5.0;
    double maxFps = 60.0;
    /** P(a non-first task depends on an earlier task). */
    double chainProb = 0.45;
    /** Trigger-probability range of dependent (cascade) tasks. */
    double minTriggerProb = 0.3;
    double maxTriggerProb = 1.0;
    /** P(a task is active only inside a window, task dynamicity). */
    double activationProb = 0.2;
    /** Horizon used to size activation windows (microseconds). */
    double horizonUs = 2e6;
    /**
     * Model pool to draw from; empty selects the full zoo (all
     * fourteen Table 3 networks, including the dynamic ones).
     */
    std::vector<models::Model> pool;
};

/**
 * Seeded deterministic scenario generator.
 *
 * generate(seed) is a pure function of (spec, seed): the same seed
 * always yields the identical scenario (names, models, fps values,
 * dependency edges, trigger probabilities, activation windows), on
 * every platform — randomness comes from a splitmix64 hash chain,
 * never from implementation-defined std distributions.
 */
class ScenarioGenerator {
public:
    explicit ScenarioGenerator(ScenarioGenSpec spec = {});

    /** Synthesize the scenario of @p seed (named "Gen<seed>"). */
    Scenario generate(uint64_t seed) const;

    /** The spec in effect (pool populated). */
    const ScenarioGenSpec& spec() const { return spec_; }

private:
    ScenarioGenSpec spec_;
};

/**
 * Validity check every generated scenario must pass (and every
 * hand-written one should): non-empty task list, finite fps > 0,
 * in-range dependency edges forming a forest (acyclic, no
 * self-dependency), trigger probabilities in [0, 1], and activation
 * windows with start < end. On failure returns false and, when
 * @p error is non-null, stores a description of the first violation.
 */
bool validateScenario(const Scenario& scenario,
                      std::string* error = nullptr);

} // namespace workload
} // namespace dream

#endif // DREAM_WORKLOAD_SCENARIO_GEN_H
