/**
 * @file
 * The versioned "hard scenarios" regression suite: worst-case
 * generated mixes found by the adversarial scenario hunt
 * (engine::ScenarioSearch / tools/dream_hunt), persisted as
 * schema-versioned JSON and swept in CI by bench/hard_scenarios.
 *
 * An entry is reproducible from (spec, genSeed) alone — the suite
 * stores the generator spec and seed, never materialised task lists
 * — plus the expected per-scheduler UXCost at the suite's (system,
 * window, simulation seed), which the bench re-checks. The loader
 * routes every entry through validateGenSpec and validateScenario,
 * so a hand-edited file fails loudly (path + entry index), never as
 * a mysterious mid-sweep crash.
 */

#ifndef DREAM_WORKLOAD_SCENARIO_SUITE_H
#define DREAM_WORKLOAD_SCENARIO_SUITE_H

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "workload/scenario_gen.h"

namespace dream {
namespace workload {

/** Schema identifier written to (and required of) suite files. */
inline constexpr const char* kHardSuiteSchemaV1 =
    "dream-hard-scenarios-v1";

/** One hard mix: a generator spec + generation seed. */
struct HardScenarioEntry {
    /** Unique entry name — the scenario-axis value in sweeps. */
    std::string name;
    /** Generator spec (pool always the full zoo). */
    ScenarioGenSpec spec;
    /** ScenarioGenerator::generate seed. */
    uint64_t genSeed = 0;
    /**
     * Expected mean UXCost per scheduler at the suite's (system,
     * window, seeds), in file order. Informative for reports and
     * re-checked by bench/hard_scenarios --strict-expected.
     */
    std::vector<std::pair<std::string, double>> expected;
};

/** A complete suite: shared sweep identity + the hard entries. */
struct HardScenarioSuite {
    /** Display name of the hw::SystemPreset the suite runs on. */
    std::string system;
    /** Simulated window per run (microseconds). */
    double windowUs = 1e6;
    /** Simulation seeds the expected values were measured with. */
    std::vector<uint64_t> seeds{11};
    std::vector<HardScenarioEntry> entries;
};

/**
 * Canonical one-line serialisation of a generator spec
 * ("minTasks=2,maxTasks=8,..."): the identity ScenarioSearch keys
 * its transposition table by, and the stable textual form hunt
 * reports print. Two specs serialise equally iff every knob is
 * bit-identical (doubles render shortest-round-trip).
 */
std::string serializeGenSpec(const ScenarioGenSpec& spec);

/**
 * Parse and validate a suite. Every entry's spec passes
 * validateGenSpec, every generated (spec, genSeed) scenario passes
 * validateScenario, names are unique and non-empty, the system is a
 * known hw preset, window and seeds are sane.
 *
 * @throws std::runtime_error naming @p context (e.g. the file path)
 * and, for per-entry failures, the entry index and name.
 */
HardScenarioSuite loadHardScenarioSuite(std::istream& in,
                                        const std::string& context);

/** loadHardScenarioSuite from a file; errors name @p path. */
HardScenarioSuite loadHardScenarioSuite(const std::string& path);

/**
 * Write @p suite as schema-versioned JSON. Deterministic: fixed
 * field order, shortest-round-trip numbers — byte-identical output
 * for equal suites, so re-running a seeded hunt reproduces the file
 * exactly.
 */
void saveHardScenarioSuite(const HardScenarioSuite& suite,
                           std::ostream& out);

/** saveHardScenarioSuite to a file; throws if unwritable. */
void saveHardScenarioSuite(const HardScenarioSuite& suite,
                           const std::string& path);

} // namespace workload
} // namespace dream

#endif // DREAM_WORKLOAD_SCENARIO_SUITE_H
