#include "workload/session_demux.h"

#include <stdexcept>
#include <utility>

namespace dream {
namespace workload {

SessionDemux::SessionDemux(const ArrivalSource& delegate,
                           size_t devices)
{
    if (devices == 0)
        throw std::invalid_argument(
            "SessionDemux needs at least one device");
    streams_.reserve(devices);
    for (size_t k = 0; k < devices; ++k)
        streams_.push_back(std::make_unique<StreamSource>(delegate));
}

StreamSource&
SessionDemux::stream(size_t device)
{
    return *streams_.at(device);
}

int
SessionDemux::assignment(TaskId session) const
{
    if (session < 0 || size_t(session) >= assignment_.size())
        return -1;
    return assignment_[size_t(session)];
}

size_t
SessionDemux::push(FrameSpec frame, size_t device_if_new)
{
    if (device_if_new >= streams_.size())
        throw std::out_of_range("SessionDemux: no such device");
    if (frame.task < 0)
        throw std::invalid_argument(
            "SessionDemux routes root frames (task >= 0)");
    if (size_t(frame.task) >= assignment_.size())
        assignment_.resize(size_t(frame.task) + 1, -1);
    int& slot = assignment_[size_t(frame.task)];
    if (slot < 0)
        slot = int(device_if_new);
    const size_t device = size_t(slot);
    streams_[device]->push(std::move(frame));
    return device;
}

void
SessionDemux::closeAll()
{
    for (auto& stream : streams_)
        stream->close();
}

} // namespace workload
} // namespace dream
