/**
 * @file
 * Session-granular demux over one ArrivalSource: fans a single
 * arrival stream out to N per-device StreamSources for cluster
 * serving. A session is one root task — every frame of the task (and
 * every cascade child materialised inside that device's simulator,
 * via the delegated childFrame) stays on the device the session's
 * first frame was routed to, so a cascade/app never straddles
 * devices.
 */

#ifndef DREAM_WORKLOAD_SESSION_DEMUX_H
#define DREAM_WORKLOAD_SESSION_DEMUX_H

#include <memory>
#include <vector>

#include "workload/stream_source.h"

namespace dream {
namespace workload {

/**
 * N StreamSources behind one routing table. The caller (a
 * serve::Cluster) decides the device of each *new* session; the demux
 * enforces session stickiness: once a root task is pinned, later
 * frames of the same task ignore the caller's suggestion. Determinism
 * rides on the callers: assignments depend only on the push sequence,
 * never on wall time.
 */
class SessionDemux {
public:
    /** @p delegate materialises cascade children for every device
     *  stream (and must outlive this demux). */
    SessionDemux(const ArrivalSource& delegate, size_t devices);

    size_t devices() const { return streams_.size(); }

    /** The per-device ingest stream a device's serve loop consumes. */
    StreamSource& stream(size_t device);

    /** Device of @p session, or -1 when it has not been routed. */
    int assignment(TaskId session) const;

    /** Per-root-task routing table (kept indexable by TaskId). */
    const std::vector<int>& assignments() const { return assignment_; }

    /**
     * Route one root frame: a frame of a new session pins the session
     * to @p device_if_new; a frame of a pinned session follows its
     * pin. Returns the device the frame was pushed to. Throws
     * std::out_of_range when @p device_if_new is not a device.
     */
    size_t push(FrameSpec frame, size_t device_if_new);

    /** Close every device stream (end of the intake stream). */
    void closeAll();

private:
    std::vector<std::unique_ptr<StreamSource>> streams_;
    std::vector<int> assignment_;  ///< TaskId -> device, -1 unrouted
};

} // namespace workload
} // namespace dream

#endif // DREAM_WORKLOAD_SESSION_DEMUX_H
