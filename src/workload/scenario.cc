#include "workload/scenario.h"

#include <cassert>

#include "models/zoo.h"

namespace dream {
namespace workload {

std::vector<TaskId>
Scenario::childrenOf(TaskId parent) const
{
    std::vector<TaskId> kids;
    for (TaskId t = 0; t < TaskId(tasks.size()); ++t) {
        if (tasks[t].dependsOn == parent)
            kids.push_back(t);
    }
    return kids;
}

bool
Scenario::isLeaf(TaskId task) const
{
    for (const auto& t : tasks) {
        if (t.dependsOn == task)
            return false;
    }
    return true;
}

namespace {

TaskSpec
task(models::Model model, double fps, TaskId depends_on = kNoParent,
     double trigger_prob = 1.0)
{
    TaskSpec t;
    t.model = std::move(model);
    t.fps = fps;
    t.dependsOn = depends_on;
    t.triggerProb = trigger_prob;
    return t;
}

} // anonymous namespace

Scenario
makeScenario(ScenarioPreset preset, double cascade_prob)
{
    using namespace models::zoo;
    Scenario s;
    s.name = toString(preset);
    switch (preset) {
      case ScenarioPreset::VrGaming:
        // Gaze 60 (one pipeline instance per eye), HandDet 30 and
        // PoseEst 30 (dep HD; one pipeline instance per hand, as in
        // XRBench), Context(OFA) 30, KWS 15, Translation 15
        // (dep KWS).
        s.tasks.push_back(task(fbnetC(), 60));          // 0 gaze L
        s.tasks.push_back(task(fbnetC(), 60));          // 1 gaze R
        s.tasks.push_back(task(ssdMobileNetV2(), 30));  // 2 hand L
        s.tasks.push_back(task(handPoseNet(), 30, 2, cascade_prob));
        s.tasks.push_back(task(ssdMobileNetV2(), 30));  // 4 hand R
        s.tasks.push_back(task(handPoseNet(), 30, 4, cascade_prob));
        s.tasks.push_back(task(ofaSupernet(), 30));
        s.tasks.push_back(task(kwsRes8(), 15));
        s.tasks.push_back(task(gnmt(), 15, 7, cascade_prob));
        break;
      case ScenarioPreset::ArCall:
        // KWS 15, Translation 15 (dep KWS), Context(SkipNet) 30.
        s.tasks.push_back(task(kwsRes8(), 15));
        s.tasks.push_back(task(gnmt(), 15, 0, cascade_prob));
        s.tasks.push_back(task(skipNet(), 30));
        break;
      case ScenarioPreset::DroneOutdoor:
        // ObjDet 30, OutdoorNav 60, VisualOdometry 60.
        s.tasks.push_back(task(ssdMobileNetV2(), 30));
        s.tasks.push_back(task(trailNet(), 60));
        s.tasks.push_back(task(sosNet(), 60));
        break;
      case ScenarioPreset::DroneIndoor:
        // ObjDet 30, IndoorNav(RAPID-RL) 60, Obstacle 60, Car 60.
        s.tasks.push_back(task(ssdMobileNetV2(), 30));
        s.tasks.push_back(task(rapidRl(), 60));
        s.tasks.push_back(task(sosNet(), 60));
        s.tasks.push_back(task(googLeNetCar(), 60));
        break;
      case ScenarioPreset::ArSocial:
        // Depth 30, ActionSeg 30, FaceDet 30, FaceVerif 30 (dep FD),
        // Context(OFA) 30.
        s.tasks.push_back(task(focalLengthDepth(), 30));
        s.tasks.push_back(task(edTcn(), 30));
        s.tasks.push_back(task(ssdMobileNetV2(), 30));
        s.tasks.push_back(task(vggVoxCeleb(), 30, 2, cascade_prob));
        s.tasks.push_back(task(ofaSupernet(), 30));
        break;
    }
    assert(!s.tasks.empty());
    return s;
}

std::vector<ScenarioPreset>
allScenarioPresets()
{
    return {ScenarioPreset::VrGaming, ScenarioPreset::ArCall,
            ScenarioPreset::DroneOutdoor, ScenarioPreset::DroneIndoor,
            ScenarioPreset::ArSocial};
}

std::string
toString(ScenarioPreset preset)
{
    switch (preset) {
      case ScenarioPreset::VrGaming:
        return "VR_Gaming";
      case ScenarioPreset::ArCall:
        return "AR_Call";
      case ScenarioPreset::DroneOutdoor:
        return "Drone_Outdoor";
      case ScenarioPreset::DroneIndoor:
        return "Drone_Indoor";
      case ScenarioPreset::ArSocial:
        return "AR_Social";
    }
    return "unknown";
}

} // namespace workload
} // namespace dream
