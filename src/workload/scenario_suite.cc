#include "workload/scenario_suite.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "hw/system.h"

namespace dream {
namespace workload {

namespace {

/** Shortest decimal rendering that round-trips to the same double
 *  (the runner::preciseDouble discipline, local to keep workload
 *  below runner in the layering). */
std::string
shortestDouble(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0 ? "inf" : "-inf";
    char buf[40];
    for (const int prec : {15, 16, 17}) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

// ------------------------------------------------ minimal JSON
//
// A small strict parser for the suite schema: objects, arrays,
// strings, numbers (raw token text kept so 64-bit seeds parse
// exactly), true/false/null. Anything else — including bare nan/inf
// tokens smuggled into a hand-edited file — is a parse error.

struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text; ///< string value, or the raw number token
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue* find(const std::string& key) const
    {
        for (const auto& kv : members) {
            if (kv.first == key)
                return &kv.second;
        }
        return nullptr;
    }
};

class JsonParser {
public:
    explicit JsonParser(std::istream& in)
    {
        std::ostringstream buf;
        buf << in.rdbuf();
        text_ = buf.str();
    }

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing content after the top-level value");
        return v;
    }

private:
    [[noreturn]] void
    fail(const std::string& why) const
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    JsonValue
    value()
    {
        const char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.text = string();
            return v;
        }
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            literal("null");
            return JsonValue{};
        }
        return number();
    }

    void
    literal(const char* word)
    {
        for (const char* p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("invalid literal (expected '") +
                     word + "')");
            ++pos_;
        }
    }

    JsonValue
    boolean()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (text_[pos_] == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
        }
        return v;
    }

    JsonValue
    number()
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        const auto digits = [&]() {
            size_t n = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            fail("invalid number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                fail("invalid number (no fraction digits)");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                fail("invalid number (no exponent digits)");
        }
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.text = text_.substr(start, pos_ - start);
        v.number = std::strtod(v.text.c_str(), nullptr);
        return v;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  default:
                    fail("unsupported escape sequence");
                }
            } else {
                out += c;
            }
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(value());
            const char c = peek();
            if (c == ']') {
                ++pos_;
                return v;
            }
            expect(',');
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            std::string key = string();
            expect(':');
            v.members.emplace_back(std::move(key), value());
            const char c = peek();
            if (c == '}') {
                ++pos_;
                return v;
            }
            expect(',');
        }
    }

    std::string text_;
    size_t pos_ = 0;
};

/** JSON string escaping (suite names are plain, but be correct). */
std::string
jsonEscape(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out += c;
        }
    }
    out += '"';
    return out;
}

// ------------------------------------- spec <-> JSON field table

struct SpecField {
    const char* key;
    double ScenarioGenSpec::* value;
};

/** Every numeric spec knob, in canonical (serialisation) order. */
const SpecField kSpecFields[] = {
    {"min_fps", &ScenarioGenSpec::minFps},
    {"max_fps", &ScenarioGenSpec::maxFps},
    {"chain_prob", &ScenarioGenSpec::chainProb},
    {"min_trigger_prob", &ScenarioGenSpec::minTriggerProb},
    {"max_trigger_prob", &ScenarioGenSpec::maxTriggerProb},
    {"activation_prob", &ScenarioGenSpec::activationProb},
    {"horizon_us", &ScenarioGenSpec::horizonUs},
    {"skip_prob_min", &ScenarioGenSpec::skipProbMin},
    {"skip_prob_max", &ScenarioGenSpec::skipProbMax},
    {"exit_prob_min", &ScenarioGenSpec::exitProbMin},
    {"exit_prob_max", &ScenarioGenSpec::exitProbMax},
    {"supernet_prob", &ScenarioGenSpec::supernetProb},
    {"target_load", &ScenarioGenSpec::targetLoad},
};

uint64_t
parseU64(const JsonValue& v, const std::string& what)
{
    if (v.kind != JsonValue::Kind::Number ||
        v.text.find_first_of(".eE-") != std::string::npos)
        throw std::runtime_error(what +
                                 " must be a non-negative integer");
    char* end = nullptr;
    const unsigned long long u = std::strtoull(v.text.c_str(), &end,
                                               10);
    if (end != v.text.c_str() + v.text.size())
        throw std::runtime_error(what +
                                 " must be a non-negative integer");
    return uint64_t(u);
}

double
parseNumber(const JsonValue& v, const std::string& what)
{
    if (v.kind != JsonValue::Kind::Number)
        throw std::runtime_error(what + " must be a number");
    return v.number;
}

ScenarioGenSpec
parseSpec(const JsonValue& v)
{
    if (v.kind != JsonValue::Kind::Object)
        throw std::runtime_error("spec must be an object");
    ScenarioGenSpec spec;
    for (const auto& [key, value] : v.members) {
        if (key == "min_tasks") {
            spec.minTasks = int(parseU64(value, key));
        } else if (key == "max_tasks") {
            spec.maxTasks = int(parseU64(value, key));
        } else if (key == "load_system") {
            if (value.kind != JsonValue::Kind::String)
                throw std::runtime_error("load_system must be a "
                                         "string");
            spec.loadSystem = value.text;
        } else {
            bool known = false;
            for (const auto& field : kSpecFields) {
                if (key == field.key) {
                    spec.*field.value = parseNumber(value, key);
                    known = true;
                    break;
                }
            }
            if (!known)
                throw std::runtime_error("unknown spec field '" + key +
                                         "'");
        }
    }
    return spec;
}

void
writeSpec(const ScenarioGenSpec& spec, std::ostream& out,
          const std::string& indent)
{
    out << "{\n";
    out << indent << "  \"min_tasks\": " << spec.minTasks << ",\n";
    out << indent << "  \"max_tasks\": " << spec.maxTasks << ",\n";
    for (const auto& field : kSpecFields) {
        out << indent << "  \"" << field.key
            << "\": " << shortestDouble(spec.*field.value) << ",\n";
    }
    out << indent
        << "  \"load_system\": " << jsonEscape(spec.loadSystem)
        << "\n";
    out << indent << "}";
}

bool
knownSystemPreset(const std::string& name)
{
    for (const auto preset : hw::allSystemPresets()) {
        if (hw::toString(preset) == name)
            return true;
    }
    return false;
}

HardScenarioEntry
parseEntry(const JsonValue& v)
{
    if (v.kind != JsonValue::Kind::Object)
        throw std::runtime_error("entry must be an object");
    HardScenarioEntry entry;
    bool have_seed = false;
    for (const auto& [key, value] : v.members) {
        if (key == "name") {
            if (value.kind != JsonValue::Kind::String ||
                value.text.empty())
                throw std::runtime_error("name must be a non-empty "
                                         "string");
            entry.name = value.text;
        } else if (key == "gen_seed") {
            entry.genSeed = parseU64(value, key);
            have_seed = true;
        } else if (key == "spec") {
            entry.spec = parseSpec(value);
        } else if (key == "expected") {
            if (value.kind != JsonValue::Kind::Object)
                throw std::runtime_error("expected must be an "
                                         "object");
            for (const auto& [sched, ux] : value.members) {
                entry.expected.emplace_back(
                    sched, parseNumber(ux, "expected." + sched));
            }
        } else {
            throw std::runtime_error("unknown entry field '" + key +
                                     "'");
        }
    }
    if (entry.name.empty())
        throw std::runtime_error("entry has no name");
    if (!have_seed)
        throw std::runtime_error("entry has no gen_seed");
    return entry;
}

} // anonymous namespace

std::string
serializeGenSpec(const ScenarioGenSpec& spec)
{
    std::string out = "minTasks=" + std::to_string(spec.minTasks) +
                      ",maxTasks=" + std::to_string(spec.maxTasks);
    for (const auto& field : kSpecFields) {
        out += ',';
        out += field.key;
        out += '=';
        out += shortestDouble(spec.*field.value);
    }
    out += ",load_system=" + spec.loadSystem;
    return out;
}

HardScenarioSuite
loadHardScenarioSuite(std::istream& in, const std::string& context)
{
    const auto fail = [&context](const std::string& why) -> void {
        throw std::runtime_error(context + ": " + why);
    };

    JsonValue root;
    try {
        root = JsonParser(in).parse();
    } catch (const std::runtime_error& e) {
        fail(e.what());
    }
    if (root.kind != JsonValue::Kind::Object)
        fail("top level must be an object");

    const JsonValue* schema = root.find("schema");
    if (!schema || schema->kind != JsonValue::Kind::String)
        fail("missing \"schema\" string");
    if (schema->text != kHardSuiteSchemaV1)
        fail("unsupported schema '" + schema->text + "' (want " +
             std::string(kHardSuiteSchemaV1) + ")");

    HardScenarioSuite suite;
    try {
        const JsonValue* system = root.find("system");
        if (!system || system->kind != JsonValue::Kind::String)
            throw std::runtime_error("missing \"system\" string");
        suite.system = system->text;
        if (!knownSystemPreset(suite.system))
            throw std::runtime_error("unknown system preset '" +
                                     suite.system + "'");

        const JsonValue* window = root.find("window_us");
        if (!window)
            throw std::runtime_error("missing \"window_us\"");
        suite.windowUs = parseNumber(*window, "window_us");
        if (!(suite.windowUs > 0.0) || !std::isfinite(suite.windowUs))
            throw std::runtime_error("window_us must be finite and "
                                     "> 0");

        const JsonValue* seeds = root.find("seeds");
        if (!seeds || seeds->kind != JsonValue::Kind::Array ||
            seeds->items.empty())
            throw std::runtime_error("missing or empty \"seeds\" "
                                     "array");
        suite.seeds.clear();
        for (const auto& s : seeds->items)
            suite.seeds.push_back(parseU64(s, "seeds[]"));

        const JsonValue* entries = root.find("entries");
        if (!entries || entries->kind != JsonValue::Kind::Array ||
            entries->items.empty())
            throw std::runtime_error("missing or empty \"entries\" "
                                     "array");

        for (const auto& [key, value] : root.members) {
            (void)value;
            if (key != "schema" && key != "system" &&
                key != "window_us" && key != "seeds" &&
                key != "entries")
                throw std::runtime_error("unknown suite field '" +
                                         key + "'");
        }

        std::set<std::string> names;
        for (size_t i = 0; i < entries->items.size(); ++i) {
            const auto entry_fail =
                [&](const std::string& why) -> void {
                throw std::runtime_error(
                    "entry[" + std::to_string(i) + "]: " + why);
            };
            HardScenarioEntry entry;
            try {
                entry = parseEntry(entries->items[i]);
            } catch (const std::runtime_error& e) {
                entry_fail(e.what());
            }
            if (!names.insert(entry.name).second)
                entry_fail("duplicate entry name '" + entry.name +
                           "'");
            // Every entry runs the full validation gauntlet: the
            // spec knobs first (NaN, half-set ranges, unknown
            // loadSystem), then the scenario the (spec, genSeed)
            // pair actually generates.
            std::string why;
            if (!validateGenSpec(entry.spec, &why))
                entry_fail("('" + entry.name + "') invalid spec: " +
                           why);
            const ScenarioGenerator gen(entry.spec);
            if (!validateScenario(gen.generate(entry.genSeed), &why))
                entry_fail("('" + entry.name +
                           "') generated scenario invalid: " + why);
            for (const auto& [sched, ux] : entry.expected) {
                if (sched.empty() || !std::isfinite(ux))
                    entry_fail("('" + entry.name +
                               "') expected UXCost for '" + sched +
                               "' must be finite");
            }
            suite.entries.push_back(std::move(entry));
        }
    } catch (const std::runtime_error& e) {
        fail(e.what());
    }
    return suite;
}

HardScenarioSuite
loadHardScenarioSuite(const std::string& path)
{
    std::ifstream in(path);
    if (!in.is_open())
        throw std::runtime_error(path + ": cannot open suite file");
    return loadHardScenarioSuite(in, path);
}

void
saveHardScenarioSuite(const HardScenarioSuite& suite,
                      std::ostream& out)
{
    out << "{\n";
    out << "  \"schema\": " << jsonEscape(kHardSuiteSchemaV1) << ",\n";
    out << "  \"system\": " << jsonEscape(suite.system) << ",\n";
    out << "  \"window_us\": " << shortestDouble(suite.windowUs)
        << ",\n";
    out << "  \"seeds\": [";
    for (size_t i = 0; i < suite.seeds.size(); ++i)
        out << (i ? ", " : "") << suite.seeds[i];
    out << "],\n";
    out << "  \"entries\": [\n";
    for (size_t i = 0; i < suite.entries.size(); ++i) {
        const auto& e = suite.entries[i];
        out << "    {\n";
        out << "      \"name\": " << jsonEscape(e.name) << ",\n";
        out << "      \"gen_seed\": " << e.genSeed << ",\n";
        out << "      \"spec\": ";
        writeSpec(e.spec, out, "      ");
        if (!e.expected.empty()) {
            out << ",\n      \"expected\": {\n";
            for (size_t k = 0; k < e.expected.size(); ++k) {
                out << "        " << jsonEscape(e.expected[k].first)
                    << ": " << shortestDouble(e.expected[k].second)
                    << (k + 1 < e.expected.size() ? "," : "") << "\n";
            }
            out << "      }\n";
        } else {
            out << "\n";
        }
        out << "    }" << (i + 1 < suite.entries.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

void
saveHardScenarioSuite(const HardScenarioSuite& suite,
                      const std::string& path)
{
    std::ofstream out(path);
    if (!out.is_open())
        throw std::runtime_error(path +
                                 ": cannot open suite file for "
                                 "writing");
    saveHardScenarioSuite(suite, out);
}

} // namespace workload
} // namespace dream
