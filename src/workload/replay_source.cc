#include "workload/replay_source.h"

#include <cmath>
#include <stdexcept>

namespace dream {
namespace workload {

bool
TraceFrame::completed() const
{
    return !std::isnan(completionUs);
}

std::string
FrameTrace::metaValue(const std::string& key) const
{
    for (const auto& kv : meta) {
        if (kv.first == key)
            return kv.second;
    }
    return {};
}

ReplaySource::ReplaySource(const Scenario& scenario, uint64_t seed,
                           const FrameTrace& trace)
    : paths_(scenario, seed), trace_(&trace)
{
    const auto& tasks = paths_.scenario().tasks;
    for (size_t i = 0; i < trace.frames.size(); ++i) {
        const TraceFrame& fr = trace.frames[i];
        if (fr.task < 0 || size_t(fr.task) >= tasks.size())
            throw std::runtime_error(
                "trace frame " + std::to_string(i) + " names task " +
                std::to_string(fr.task) + ", scenario '" +
                scenario.name + "' has " +
                std::to_string(tasks.size()) + " tasks");
        if (fr.model != tasks[size_t(fr.task)].model.name)
            throw std::runtime_error(
                "trace frame " + std::to_string(i) + " names model '" +
                fr.model + "' for task " + std::to_string(fr.task) +
                ", scenario '" + scenario.name + "' has '" +
                tasks[size_t(fr.task)].model.name + "' there");
    }
}

std::vector<FrameSpec>
ReplaySource::rootFrames(double window_us) const
{
    // Every recorded frame is injected at its recorded arrival —
    // including cascade-released ones, whose recorded arrival is the
    // parent's completion time in the original run. Trace order is
    // the recorded admission order; the simulator's stable sort
    // preserves it for simultaneous arrivals.
    std::vector<FrameSpec> frames;
    frames.reserve(trace_->frames.size());
    for (const TraceFrame& fr : trace_->frames) {
        if (fr.arrivalUs >= window_us)
            continue;
        FrameSpec spec;
        spec.task = fr.task;
        spec.frameIdx = fr.frameIdx;
        spec.arrivalUs = fr.arrivalUs;
        spec.deadlineUs = fr.deadlineUs;
        spec.path = paths_.materialisePath(fr.task, fr.frameIdx);
        // Cascade gates stay cleared: dependent frames are already in
        // the trace, and re-firing them would admit each child twice.
        frames.push_back(std::move(spec));
    }
    return frames;
}

FrameSpec
ReplaySource::childFrame(TaskId, int, double, double) const
{
    throw std::logic_error(
        "ReplaySource::childFrame: a replay injects recorded cascade "
        "frames directly and never re-fires their gates");
}

} // namespace workload
} // namespace dream
