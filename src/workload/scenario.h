/**
 * @file
 * RTMM workload scenarios: tasks (periodic model inferences) with
 * FPS targets and control/data dependencies, including the five
 * industry-originated scenarios of Table 3.
 */

#ifndef DREAM_WORKLOAD_SCENARIO_H
#define DREAM_WORKLOAD_SCENARIO_H

#include <limits>
#include <string>
#include <vector>

#include "models/model.h"

namespace dream {
namespace workload {

/** Index of a task within a scenario. */
using TaskId = int;

/** No-parent marker for root tasks. */
constexpr TaskId kNoParent = -1;

/**
 * One task: periodic inference of one model.
 *
 * Root tasks (dependsOn == kNoParent) release a frame every
 * 1e6/fps microseconds. Dependent tasks release a frame when the
 * parent task's frame completes and the parent's cascade gate fired
 * (control dependency with probability @ref triggerProb).
 */
struct TaskSpec {
    models::Model model;
    double fps = 30.0;
    TaskId dependsOn = kNoParent;
    /** P(child launches | parent frame completes). */
    double triggerProb = 1.0;
    /** Activation window (task-level dynamicity). */
    double startUs = 0.0;
    double endUs = std::numeric_limits<double>::infinity();

    /** Frame period in microseconds. */
    double periodUs() const { return 1e6 / fps; }
};

/** A complete RTMM workload: a set of (possibly dependent) tasks. */
struct Scenario {
    std::string name;
    std::vector<TaskSpec> tasks;

    /** Children of task @p parent. */
    std::vector<TaskId> childrenOf(TaskId parent) const;
    /** True if no other task depends on @p task (frame-drop Cond. 3). */
    bool isLeaf(TaskId task) const;
};

/** Identifier for the five Table 3 scenarios. */
enum class ScenarioPreset {
    VrGaming,
    ArCall,
    DroneOutdoor,
    DroneIndoor,
    ArSocial,
};

/**
 * Build a Table 3 scenario.
 *
 * @param preset        which scenario
 * @param cascade_prob  probability of launching dependent pipeline
 *                      stages (the paper's default is 0.5; Figure 12
 *                      sweeps it to 0.99)
 */
Scenario makeScenario(ScenarioPreset preset, double cascade_prob = 0.5);

/** All five presets in Table 3 order. */
std::vector<ScenarioPreset> allScenarioPresets();

/** Display name, e.g. "VR_Gaming". */
std::string toString(ScenarioPreset preset);

} // namespace workload
} // namespace dream

#endif // DREAM_WORKLOAD_SCENARIO_H
