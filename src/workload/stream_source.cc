#include "workload/stream_source.h"

#include <stdexcept>
#include <utility>

namespace dream {
namespace workload {

StreamSource::StreamSource(const ArrivalSource& delegate)
    : delegate_(&delegate)
{
}

void
StreamSource::push(FrameSpec frame)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_)
            throw std::logic_error("push() on a closed StreamSource");
        if (frame.arrivalUs < lastArrivalUs_)
            throw std::invalid_argument(
                "stream frames must be pushed in nondecreasing "
                "arrival order");
        lastArrivalUs_ = frame.arrivalUs;
        queue_.push_back(std::move(frame));
    }
    cv_.notify_all();
}

void
StreamSource::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

bool
StreamSource::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

size_t
StreamSource::pending() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

std::vector<FrameSpec>
StreamSource::drain()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FrameSpec> out(queue_.begin(), queue_.end());
    queue_.clear();
    return out;
}

std::vector<FrameSpec>
StreamSource::waitDrain()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    std::vector<FrameSpec> out(queue_.begin(), queue_.end());
    queue_.clear();
    return out;
}

std::vector<FrameSpec>
StreamSource::rootFrames(double window_us) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FrameSpec> out;
    for (const auto& frame : queue_) {
        if (frame.arrivalUs < window_us)
            out.push_back(frame);
    }
    return out;
}

FrameSpec
StreamSource::childFrame(TaskId child, int frame_idx,
                         double parent_arrival_us,
                         double parent_completion_us) const
{
    return delegate_->childFrame(child, frame_idx, parent_arrival_us,
                                 parent_completion_us);
}

} // namespace workload
} // namespace dream
