/**
 * @file
 * Trace replay: typed per-frame records of a recorded run
 * (FrameTrace, parsed from a frame-trace CSV by
 * runner::readFrameTraceCsv) and the ReplaySource that re-injects
 * the recorded arrival/deadline sequence into the simulator, so
 * scheduler comparisons see byte-identical load instead of
 * re-randomized arrivals.
 */

#ifndef DREAM_WORKLOAD_REPLAY_SOURCE_H
#define DREAM_WORKLOAD_REPLAY_SOURCE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "workload/frame_source.h"
#include "workload/scenario.h"

namespace dream {
namespace workload {

/**
 * One recorded frame outcome — the typed form of one frame-trace CSV
 * row. completionUs/latencyUs are NaN for frames that never
 * completed (dropped, or unfinished at window end): the CSV writes
 * them as empty cells, so downstream tooling cannot mistake a drop
 * for a negative latency.
 */
struct TraceFrame {
    TaskId task = 0;
    std::string model;
    int frameIdx = 0;
    double arrivalUs = 0.0;
    double deadlineUs = 0.0;
    double completionUs = 0.0; ///< NaN if never completed
    double latencyUs = 0.0;    ///< NaN if never completed
    bool violated = false;
    bool dropped = false;
    /** Deadline inside the run window (counted in TaskStats). */
    bool inWindow = true;
    int variant = 0;
    double energyMj = 0.0;

    /** True when the frame completed (completionUs is a number). */
    bool completed() const;
};

/**
 * A parsed frame trace: the recorded frames in admission order, plus
 * the "# key=value" metadata lines the engine's --record-trace
 * recorder prepends (scenario/system/scheduler/params/seed/
 * window_us/index) so a trace file is self-describing.
 */
struct FrameTrace {
    /** Metadata key/value pairs, in file order. */
    std::vector<std::pair<std::string, std::string>> meta;
    /** Recorded frames, in the original run's admission order. */
    std::vector<TraceFrame> frames;

    /** Value of metadata key @p key; empty string if absent. */
    std::string metaValue(const std::string& key) const;
};

/**
 * Arrival source that drives the simulator with a recorded trace's
 * exact arrival/deadline sequence per task instead of periodic
 * generation.
 *
 * Every recorded frame — root and cascade-released alike — is
 * injected at its recorded arrival time, so the load is byte-
 * identical across whatever schedulers a sweep compares (a
 * generative run would re-derive child arrivals from each
 * scheduler's own completion times). Execution paths are
 * re-materialised from (scenario, seed) with the same per-frame RNG
 * as the recording, so replaying under the recorded scheduler
 * reproduces the original run's per-frame outcomes exactly; cascade
 * gates are suppressed (children already appear in the trace).
 *
 * Caveat: the exactness guarantee rests on the recorded admission
 * order being recoverable from arrival times (the simulator's
 * stable sort). If a cascade release and an earlier root arrival
 * coincide within the simulator's 1e-9 event epsilon — distinct
 * times, same event step — the replay can admit them in timestamp
 * order instead of the original completion-first order. This has
 * measure zero for continuous timings and is asserted away by the
 * round-trip tests/CI for the recorded benches.
 */
class ReplaySource : public ArrivalSource {
public:
    /**
     * @param scenario  the recorded scenario (same task list)
     * @param seed      the recorded run's workload seed
     * @param trace     the recorded trace; must outlive this source
     *
     * @throws std::runtime_error if a trace frame names a task the
     * scenario does not have, or a model name that does not match
     * the scenario's task (replaying against the wrong scenario
     * would silently simulate a different workload).
     */
    ReplaySource(const Scenario& scenario, uint64_t seed,
                 const FrameTrace& trace);

    /** The recorded frames, as injectable FrameSpecs. */
    std::vector<FrameSpec> rootFrames(double window_us) const override;

    /**
     * Never called during a replay (cascade gates are suppressed);
     * @throws std::logic_error.
     */
    FrameSpec childFrame(TaskId child, int frame_idx,
                         double parent_arrival_us,
                         double parent_completion_us) const override;

    /** The trace being replayed. */
    const FrameTrace& trace() const { return *trace_; }

private:
    FrameSource paths_; ///< path materialisation, recording RNG
    const FrameTrace* trace_;
};

} // namespace workload
} // namespace dream

#endif // DREAM_WORKLOAD_REPLAY_SOURCE_H
