/**
 * @file
 * Frame materialisation: turns a Scenario into the per-frame inference
 * requests the simulator executes, resolving all workload dynamicity
 * (skip gates, early exits, cascade triggers) with a deterministic
 * per-frame RNG so every scheduler sees the identical workload.
 */

#ifndef DREAM_WORKLOAD_FRAME_SOURCE_H
#define DREAM_WORKLOAD_FRAME_SOURCE_H

#include <cstdint>
#include <vector>

#include "workload/scenario.h"

namespace dream {
namespace workload {

/** One materialised inference request (a frame of a task). */
struct FrameSpec {
    TaskId task = 0;
    int frameIdx = 0;
    double arrivalUs = 0.0;
    double deadlineUs = 0.0;
    /**
     * Materialised execution path: the model's layers after applying
     * skip gates and early exits. Supernet models start on their
     * default (Original) path; the scheduler may switch variants.
     */
    std::vector<models::Layer> path;
    /**
     * Cascade-gate outcomes for this frame's dependent tasks, aligned
     * with Scenario::childrenOf(task). Sampled from the parent frame's
     * RNG, so they are fixed per frame across schedulers.
     */
    std::vector<char> childTriggers;
};

/**
 * Where the simulator's frames come from. The generative
 * implementation (FrameSource) materialises periodic arrivals from
 * the scenario; ReplaySource re-injects a recorded trace's exact
 * arrival sequence. Implementations must be const-thread-safe: one
 * instance may serve several concurrent runs.
 */
class ArrivalSource {
public:
    virtual ~ArrivalSource() = default;

    /**
     * Every externally-released frame whose arrival falls inside
     * [0, window_us), in an order the simulator may stably re-sort
     * by arrival time.
     */
    virtual std::vector<FrameSpec> rootFrames(double window_us)
        const = 0;

    /**
     * Materialise the dependent frame of @p child for pipeline frame
     * @p frame_idx, released when the parent completed at
     * @p parent_completion_us. Only called for frames whose parent's
     * cascade gate (FrameSpec::childTriggers) fired.
     */
    virtual FrameSpec childFrame(TaskId child, int frame_idx,
                                 double parent_arrival_us,
                                 double parent_completion_us) const = 0;
};

/**
 * Deterministic frame generator for one run.
 *
 * Per-frame randomness derives from hash(seed, task, frameIdx), never
 * from call order, so different schedulers (which complete parents at
 * different times) still face the same materialised workload.
 */
class FrameSource : public ArrivalSource {
public:
    FrameSource(const Scenario& scenario, uint64_t seed);

    /** The scenario being generated. */
    const Scenario& scenario() const { return scenario_; }
    /** The run seed. */
    uint64_t seed() const { return seed_; }

    /**
     * All root-task frames whose arrival falls inside
     * [task.startUs, min(task.endUs, window_us)).
     */
    std::vector<FrameSpec> rootFrames(double window_us) const override;

    /**
     * Materialise the dependent frame of @p child for pipeline frame
     * @p frame_idx, released when the parent completed at
     * @p parent_completion_us. The deadline is the child's own
     * FPS-derived period from its release.
     */
    FrameSpec childFrame(TaskId child, int frame_idx,
                         double parent_arrival_us,
                         double parent_completion_us) const override;

    /**
     * Materialise one externally-timed root frame — the live-ingest
     * entry point (dream_serve --ingest). The deadline is one period
     * after the arrival, exactly like generated frames; path and
     * cascade gates come from the same per-frame RNG, so an ingested
     * (task, frame_idx) is the frame rootFrames() would have
     * generated at that time. Throws std::invalid_argument when
     * @p task is out of range or not a root task.
     */
    FrameSpec rootFrame(TaskId task, int frame_idx,
                        double arrival_us) const;

    /**
     * Materialise the execution path of @p task for frame
     * @p frame_idx (exposed for testing).
     */
    std::vector<models::Layer> materialisePath(TaskId task,
                                               int frame_idx) const;

private:
    FrameSpec makeFrame(TaskId task, int frame_idx, double arrival_us,
                        double deadline_us) const;

    Scenario scenario_;
    uint64_t seed_;
};

} // namespace workload
} // namespace dream

#endif // DREAM_WORKLOAD_FRAME_SOURCE_H
