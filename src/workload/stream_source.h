/**
 * @file
 * Streaming arrival source: the third ArrivalSource implementation.
 * Where FrameSource materialises a whole window up front and
 * ReplaySource re-injects a recorded trace, StreamSource is fed one
 * frame at a time through a thread-safe ingest queue — the seam a
 * long-running serve loop (tools/dream_serve) pushes live traffic
 * through. Cascade children are delegated to a wrapped source so
 * generative dynamicity (FrameSource) and replay (ReplaySource) both
 * work unchanged behind it.
 */

#ifndef DREAM_WORKLOAD_STREAM_SOURCE_H
#define DREAM_WORKLOAD_STREAM_SOURCE_H

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "workload/frame_source.h"

namespace dream {
namespace workload {

/**
 * Producer/consumer frame queue behind the ArrivalSource interface.
 *
 * Producers push() frames in nondecreasing arrival order and close()
 * the stream when done; the consumer (a serve loop) drains them and
 * offers each to the simulator. rootFrames() snapshots the currently
 * queued frames without consuming them, so a StreamSource whose
 * whole load was pushed up front is a drop-in offline source too.
 *
 * The queue is mutex-guarded (const-thread-safe like its siblings);
 * determinism is preserved regardless of producer timing because
 * frames carry their own virtual arrival times and must be pushed in
 * order.
 */
class StreamSource : public ArrivalSource {
public:
    /** @p delegate materialises cascade children (and must outlive
     *  this source); the caller keeps ownership. */
    explicit StreamSource(const ArrivalSource& delegate);

    /**
     * Queue one externally-released frame. Throws
     * std::invalid_argument when @p frame arrives before the last
     * pushed frame, std::logic_error after close().
     */
    void push(FrameSpec frame);

    /** Mark the end of the stream; further push() calls throw. */
    void close();

    bool closed() const;

    /** Frames currently queued (pushed, not yet drained). */
    size_t pending() const;

    /** Pop every currently queued frame, without blocking. */
    std::vector<FrameSpec> drain();

    /**
     * Block until at least one frame is queued or the stream is
     * closed, then pop everything queued. An empty result therefore
     * means end-of-stream.
     */
    std::vector<FrameSpec> waitDrain();

    /** Snapshot of queued frames with arrival inside [0, window). */
    std::vector<FrameSpec> rootFrames(double window_us) const override;

    /** Delegated to the wrapped source. */
    FrameSpec childFrame(TaskId child, int frame_idx,
                         double parent_arrival_us,
                         double parent_completion_us) const override;

private:
    const ArrivalSource* delegate_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<FrameSpec> queue_;
    double lastArrivalUs_ = 0.0;
    bool closed_ = false;
};

} // namespace workload
} // namespace dream

#endif // DREAM_WORKLOAD_STREAM_SOURCE_H
