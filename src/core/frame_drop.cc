#include "core/frame_drop.h"

#include <algorithm>

namespace dream {
namespace core {

bool
FrameDropEngine::expectedViolation(const sim::SchedulerContext& ctx,
                                   const MapScoreEngine& scores,
                                   const sim::Request& req) const
{
    const double slack = req.deadlineUs - ctx.nowUs;
    // Variant-aware: a frame that Supernet switching can still save
    // is not a violation candidate.
    return scores.minToGoBestVariantUs(ctx, req) > slack;
}

bool
FrameDropEngine::dropBudgetAvailable(const sim::SchedulerContext& ctx,
                                     workload::TaskId task) const
{
    const auto& ts = ctx.stats->tasks[size_t(task)];
    // Cumulative-rate form of the per-window bound: one more drop must
    // keep the task at or under maxDropRate, evaluated against at
    // least one window's worth of frames so early drops are allowed.
    const double frames = std::max<double>(
        double(config_.dropRateWindowFrames),
        double(ts.completedFrames + ts.droppedFrames + 1));
    return (double(ts.droppedFrames) + 1.0) / frames <=
           config_.maxDropRate + 1e-12;
}

std::optional<int>
FrameDropEngine::selectDrop(const sim::SchedulerContext& ctx,
                            const MapScoreEngine& scores) const
{
    // Condition 2: more than one live job expected to violate.
    int expected_violations = 0;
    for (const auto* req : ctx.live) {
        if (expectedViolation(ctx, scores, *req))
            ++expected_violations;
    }
    if (expected_violations <= 1)
        return std::nullopt;

    const sim::Request* victim = nullptr;
    double worst_ratio = 0.0;
    for (const auto* req : ctx.ready) { // droppable: not in flight
        // Condition 1.
        if (!expectedViolation(ctx, scores, *req))
            continue;
        // Condition 3: only pipeline leaves may be dropped.
        if (!ctx.scenario->isLeaf(req->task))
            continue;
        // Condition 4: drop-rate bound.
        if (!dropBudgetAvailable(ctx, req->task))
            continue;
        const double slack =
            std::max(req->deadlineUs - ctx.nowUs, 1.0);
        const double ratio =
            scores.minToGoBestVariantUs(ctx, *req) / slack;
        if (ratio > worst_ratio) {
            worst_ratio = ratio;
            victim = req;
        }
    }
    if (!victim)
        return std::nullopt;
    return victim->id;
}

} // namespace core
} // namespace dream
