/**
 * @file
 * Supernet switching engine (Section 4.5.1).
 *
 * When the job assignment engine is about to dispatch a Supernet
 * request that has not passed its switch point, this engine estimates
 * whether the current subnet can still meet the deadline and, if not,
 * switches to the heaviest lighter variant that can (or the lightest
 * variant when none can). Variant selection never blocks execution.
 */

#ifndef DREAM_CORE_SUPERNET_SWITCH_H
#define DREAM_CORE_SUPERNET_SWITCH_H

#include <optional>

#include "core/dream_config.h"
#include "core/mapscore.h"
#include "sim/scheduler.h"

namespace dream {
namespace core {

/** Chooses Supernet variants at dispatch time. */
class SupernetSwitchEngine {
public:
    explicit SupernetSwitchEngine(const DreamConfig& config)
        : config_(config)
    {}

    /**
     * If @p req is a Supernet frame still before its switch point,
     * return the variant it should run (possibly its current one
     * returns nullopt when no change is needed or possible).
     */
    std::optional<int> chooseVariant(const sim::SchedulerContext& ctx,
                                     const MapScoreEngine& scores,
                                     const sim::Request& req) const;

private:
    DreamConfig config_;
};

} // namespace core
} // namespace dream

#endif // DREAM_CORE_SUPERNET_SWITCH_H
