#include "core/dream_config.h"

namespace dream {
namespace core {

DreamConfig
DreamConfig::mapScore()
{
    DreamConfig c;
    c.paramOptimization = true;
    c.smartDrop = false;
    c.supernetSwitch = false;
    return c;
}

DreamConfig
DreamConfig::smartDropConfig()
{
    DreamConfig c = mapScore();
    c.smartDrop = true;
    return c;
}

DreamConfig
DreamConfig::full()
{
    DreamConfig c = smartDropConfig();
    c.supernetSwitch = true;
    return c;
}

DreamConfig
DreamConfig::fixedParams(double alpha, double beta)
{
    DreamConfig c;
    c.alpha = alpha;
    c.beta = beta;
    c.paramOptimization = false;
    c.smartDrop = false;
    c.supernetSwitch = false;
    return c;
}

} // namespace core
} // namespace dream
