/**
 * @file
 * Smart Frame Drop engine (Section 4.2.1).
 *
 * A frame is dropped only when all four conditions hold:
 *  1. Deadline-violation likelihood: minimum_to_go > slack.
 *  2. Multi-model violation: more than one live job is expected to
 *     violate its deadline (dropping helps someone else).
 *  3. Dependency-free: the frame's task is the last model of its
 *     pipeline (no other model depends on it).
 *  4. Drop-rate bound: the task stays under the maximum frame-drop
 *     rate over the configured frame window.
 *
 * Among qualifying frames the one with the highest
 * minimum_to_go / slack ratio is dropped.
 */

#ifndef DREAM_CORE_FRAME_DROP_H
#define DREAM_CORE_FRAME_DROP_H

#include <optional>

#include "core/dream_config.h"
#include "core/mapscore.h"
#include "sim/scheduler.h"

namespace dream {
namespace core {

/** Selects at most one frame to drop per scheduling round. */
class FrameDropEngine {
public:
    explicit FrameDropEngine(const DreamConfig& config)
        : config_(config)
    {}

    /**
     * Evaluate the four conditions over the ready frames and return
     * the request id to drop, if any.
     */
    std::optional<int> selectDrop(const sim::SchedulerContext& ctx,
                                  const MapScoreEngine& scores) const;

    /**
     * Condition 1 helper: is @p req expected to violate its deadline
     * even on the best-latency accelerators?
     */
    bool expectedViolation(const sim::SchedulerContext& ctx,
                           const MapScoreEngine& scores,
                           const sim::Request& req) const;

    /**
     * Condition 4 helper: would dropping one more frame of @p task
     * stay within the drop-rate bound?
     */
    bool dropBudgetAvailable(const sim::SchedulerContext& ctx,
                             workload::TaskId task) const;

private:
    DreamConfig config_;
};

} // namespace core
} // namespace dream

#endif // DREAM_CORE_FRAME_DROP_H
