#include "core/dream_scheduler.h"

#include <algorithm>
#include <limits>
#include <string>

#include "sim/cost_cache.h"

namespace dream {
namespace core {

namespace {

/**
 * True when deferring @p req until a well-matched accelerator frees
 * up still leaves enough slack to finish in time.
 */
bool
waitIsSafe(const sim::SchedulerContext& ctx, const sim::Request& req,
           const cost::CostTable::LayerView& next_view,
           double best_next_lat, const DreamConfig& cfg)
{
    double earliest_free = std::numeric_limits<double>::max();
    for (size_t a = 0; a < ctx.numAccels(); ++a) {
        const double lat = next_view.cost(a).latencyUs;
        if (lat <= cfg.settleFactor * best_next_lat) {
            const auto& acc = ctx.accel(a);
            earliest_free = std::min(
                earliest_free,
                acc.idle() ? ctx.nowUs : acc.busyUntilUs);
        }
    }
    if (earliest_free == std::numeric_limits<double>::max())
        return false;
    const double slack = req.deadlineUs - ctx.nowUs;
    const double wait = earliest_free - ctx.nowUs;
    // Optimistic remaining time once the preferred accelerator frees.
    double min_to_go = 0.0;
    {
        const auto& cache = sim::ensureCostCache(req, *ctx.costs);
        min_to_go = cache.suffixMin[req.nextLayer];
    }
    return wait + min_to_go <= cfg.waitSafety * slack;
}

} // anonymous namespace

DreamScheduler::DreamScheduler(DreamConfig config)
    : config_(config), engine_(config.alpha, config.beta),
      dropEngine_(config), supernetEngine_(config), tuner_(config)
{
}

std::string
DreamScheduler::name() const
{
    std::string base;
    if (!config_.paramOptimization)
        base = "DREAM-Fixed";
    else if (!config_.smartDrop)
        base = "DREAM-MapScore";
    else if (!config_.supernetSwitch)
        base = "DREAM-SmartDrop";
    else
        base = "DREAM-Full";
    if (config_.objective != metrics::Objective::UxCost) {
        base += "[";
        base += metrics::toString(config_.objective);
        base += "]";
    }
    return base;
}

void
DreamScheduler::reset(const sim::SchedulerContext& ctx)
{
    (void)ctx;
    engine_.setParams(config_.alpha, config_.beta);
    // Scenario/cost objects of the new run may reuse the previous
    // run's addresses — drop the scratch caches explicitly.
    engine_.clearScratch();
    // Fresh tuner state; a batch evaluator installed for simulation
    // studies (engine::attachBatchTuner) survives resets.
    tuner_.reset();
}

sim::Plan
DreamScheduler::plan(const sim::SchedulerContext& ctx)
{
    sim::Plan p;

    // Adaptivity engine: advance online tuning without blocking
    // the dispatch flow.
    p.wakeUpUs = tuner_.update(ctx, engine_);

    // Smart frame drop: retire at most one doomed frame per round;
    // the simulator re-invokes us with the refreshed state.
    if (config_.smartDrop) {
        if (const auto victim = dropEngine_.selectDrop(ctx, engine_)) {
            p.drops.push_back({*victim});
            return p;
        }
    }

    // Job assignment: highest-MapScore (request, accelerator) pair
    // among ready heads and idle accelerators. A pair whose
    // accelerator is far off the request's best latency is skipped
    // while waiting for a preferred accelerator still meets the
    // deadline — dispatching a 60 FPS vision layer onto a 10x-slower
    // dataflow "because it is idle" is worse than a short wait
    // (the current-system-load consideration of Section 3.1).
    const sim::Request* best_req = nullptr;
    size_t best_acc = 0;
    double best_score = -std::numeric_limits<double>::max();
    for (const auto* req : ctx.ready) {
        const models::Layer& next = req->path[req->nextLayer];
        // One lookup per ready head; the precomputed aggregate IS
        // the former min-over-accelerators loop.
        const cost::CostTable::LayerView nv = ctx.costs->view(next);
        const double best_lat = nv.agg().minLatencyUs;
        for (size_t a = 0; a < ctx.numAccels(); ++a) {
            if (!ctx.accel(a).idle())
                continue;
            const double lat_here = nv.cost(a).latencyUs;
            if (config_.settleFactor > 0.0 &&
                lat_here > config_.settleFactor * best_lat &&
                waitIsSafe(ctx, *req, nv, best_lat, config_)) {
                continue;
            }
            const ScoreBreakdown s = engine_.score(ctx, *req, a);
            if (s.mapScore > best_score) {
                best_score = s.mapScore;
                best_req = req;
                best_acc = a;
            }
        }
    }
    if (!best_req)
        return p;

    // Supernet switching at (or before) the switch point.
    if (config_.supernetSwitch) {
        if (const auto variant =
                supernetEngine_.chooseVariant(ctx, engine_, *best_req)) {
            p.switches.push_back({best_req->id, *variant});
        }
    }

    sim::Dispatch d;
    d.requestId = best_req->id;
    d.numLayers = 1;
    d.accel = int(best_acc);
    d.slices = 0; // whole accelerator
    p.dispatches.push_back(d);
    return p;
}

} // namespace core
} // namespace dream
