/**
 * @file
 * Adaptivity engine (Sections 3.6 and 4.4).
 *
 * Two cooperating pieces:
 *
 *  - ParamSearch: the offline iterative (alpha, beta) optimisation of
 *    Section 3.6 — sample neighbouring and distant parameter pairs,
 *    move to the interpolation of the two minimum-cost pairs, shrink
 *    the radius, repeat until the radius passes the threshold
 *    (Figures 3, 10, 11).
 *
 *  - OnlineTuner: the non-blocking run-time variant of Section 4.4 —
 *    tests a small number of (alpha, beta) pairs around the current
 *    value in consecutive short execution windows, moves to the pair
 *    with the lowest windowed UXCost, and re-triggers itself when the
 *    workload fingerprint or the violation/drop level changes. The
 *    workload keeps executing with valid schedules throughout.
 */

#ifndef DREAM_CORE_ADAPTIVITY_H
#define DREAM_CORE_ADAPTIVITY_H

#include <functional>
#include <utility>
#include <vector>

#include "core/dream_config.h"
#include "core/mapscore.h"
#include "sim/scheduler.h"

namespace dream {
namespace core {

/** One evaluated point of an offline search. */
struct SearchStep {
    double alpha = 0.0;
    double beta = 0.0;
    double cost = 0.0;
    double radius = 0.0;
    int step = 0;  ///< optimisation step index (0 == initial point)
};

/** Result of an offline search. */
struct SearchResult {
    double alpha = 0.0;
    double beta = 0.0;
    double cost = 0.0;
    /** The point accepted after each step (Figure 10 trajectory). */
    std::vector<SearchStep> trajectory;
    /** Every point evaluated (for search-cost accounting). */
    int evaluations = 0;
    /**
     * Candidate evaluations served from a transposition table —
     * engine::ParamSearch fills these; the plain core search
     * executes every evaluation, so memoHits stays 0 and
     * simulated == evaluations.
     */
    int memoHits = 0;
    /** Cost-function executions actually performed. */
    int simulated = 0;
};

/** Cost callback: objective value at (alpha, beta); lower is better. */
using CostFn = std::function<double(double, double)>;

/**
 * Batched cost callback: objective values for a list of (alpha,
 * beta) pairs, in order. Lets callers evaluate the independent
 * candidate points of one search step concurrently (e.g. on the
 * sweep engine's WorkerPool) while the search itself stays
 * sequential — results are identical to the serial CostFn path.
 */
using BatchCostFn = std::function<std::vector<double>(
    const std::vector<std::pair<double, double>>&)>;

/** Offline shrinking-radius (alpha, beta) search. */
class ParamSearch {
public:
    ParamSearch(double initial_radius, double radius_threshold,
                double param_min, double param_max)
        : initialRadius_(initial_radius),
          radiusThreshold_(radius_threshold), paramMin_(param_min),
          paramMax_(param_max)
    {}

    /** Build from a DreamConfig's search settings. */
    explicit ParamSearch(const DreamConfig& config)
        : ParamSearch(config.initialRadius, config.radiusThreshold,
                      config.paramMin, config.paramMax)
    {}

    /** Run the search from (a0, b0). */
    SearchResult optimize(const CostFn& cost, double a0,
                          double b0) const;

    /**
     * Run the search from (a0, b0), evaluating each step's candidate
     * points through one batched call (bit-identical to the serial
     * overload).
     */
    SearchResult optimize(const BatchCostFn& cost, double a0,
                          double b0) const;

private:
    double clamp(double v) const;

    double initialRadius_;
    double radiusThreshold_;
    double paramMin_;
    double paramMax_;
};

/**
 * Windowed objective between two cumulative stats snapshots: applies
 * Algorithm 2 to the per-task deltas of the interval.
 */
double windowedObjective(metrics::Objective objective,
                         const sim::RunStats& begin,
                         const sim::RunStats& end);

/** Non-blocking run-time (alpha, beta) tuner. */
class OnlineTuner {
public:
    explicit OnlineTuner(const DreamConfig& config);

    /**
     * Advance the tuner state machine; may update @p engine's
     * parameters.
     *
     * @return the time at which the tuner wants to be re-invoked, or
     *         a negative value if no timer is needed.
     */
    double update(const sim::SchedulerContext& ctx,
                  MapScoreEngine& engine);

    /**
     * Simulation-study shortcut: when set, each tuning round
     * evaluates its candidate (alpha, beta) pairs through one
     * batched call (e.g. engine::makeBatchEvaluator, which runs the
     * batch concurrently on a worker pool) instead of consuming
     * consecutive live trial windows. Rounds then complete
     * synchronously inside update(), shrinking the radius until the
     * threshold passes — the workload never runs under probe
     * parameters. Deterministic for any worker count as long as the
     * evaluator is (the engine's is).
     */
    void setBatchEvaluator(BatchCostFn evaluate);

    /**
     * Return to the initial (not-yet-started) state for a fresh run,
     * keeping the configuration and any installed batch evaluator.
     */
    void reset();

    /** True while a tuning round is in flight. */
    bool tuning() const { return phase_ == Phase::Trial; }
    /** Completed tuning rounds (radius shrink steps). */
    int completedSteps() const { return completedSteps_; }
    /** Tuning restarts triggered by workload changes. */
    int retriggers() const { return retriggers_; }

private:
    enum class Phase { Idle, Trial };

    struct Candidate {
        double alpha, beta, cost;
        bool evaluated = false;
    };

    void buildCandidates();
    void startRound(const sim::SchedulerContext& ctx,
                    MapScoreEngine& engine);
    void beginTrial(const sim::SchedulerContext& ctx,
                    MapScoreEngine& engine, size_t candidate);
    void finishRound(MapScoreEngine& engine);
    uint64_t fingerprint(const sim::SchedulerContext& ctx) const;

    DreamConfig config_;
    BatchCostFn batchEvaluate_;
    Phase phase_ = Phase::Idle;
    double radius_ = 0.0;
    double curAlpha_ = 1.0;
    double curBeta_ = 1.0;
    std::vector<Candidate> candidates_;
    size_t trialIdx_ = 0;
    double trialEndUs_ = -1.0;
    sim::RunStats trialStart_;
    uint64_t lastFingerprint_ = 0;
    double lastViolationFraction_ = 0.0;
    bool started_ = false;
    int completedSteps_ = 0;
    int retriggers_ = 0;
};

} // namespace core
} // namespace dream

#endif // DREAM_CORE_ADAPTIVITY_H
