#include "core/adaptivity.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dream {
namespace core {

double
ParamSearch::clamp(double v) const
{
    return std::min(paramMax_, std::max(paramMin_, v));
}

SearchResult
ParamSearch::optimize(const CostFn& cost, double a0, double b0) const
{
    const BatchCostFn batch =
        [&cost](const std::vector<std::pair<double, double>>& pts) {
            std::vector<double> out;
            out.reserve(pts.size());
            for (const auto& pt : pts)
                out.push_back(cost(pt.first, pt.second));
            return out;
        };
    return optimize(batch, a0, b0);
}

SearchResult
ParamSearch::optimize(const BatchCostFn& cost, double a0,
                      double b0) const
{
    const auto eval1 = [&cost](double a, double b) {
        return cost({{a, b}}).front();
    };

    SearchResult result;
    double a = clamp(a0);
    double b = clamp(b0);
    double c = eval1(a, b);
    ++result.evaluations;
    result.trajectory.push_back({a, b, c, initialRadius_, 0});

    double best_a = a, best_b = b, best_c = c;
    int step = 0;
    for (double radius = initialRadius_; radius >= radiusThreshold_;
         radius *= 0.5) {
        ++step;
        // Neighbouring pairs at the radius plus distant pairs at twice
        // the radius (diagonals), Section 3.6. The candidates of one
        // step are independent: evaluate them as one batch.
        const double r2 = 2.0 * radius;
        std::vector<std::pair<double, double>> pts = {
            {clamp(a + radius), clamp(b)}, {clamp(a - radius), clamp(b)},
            {clamp(a), clamp(b + radius)}, {clamp(a), clamp(b - radius)},
            {clamp(a + r2), clamp(b + r2)}, {clamp(a - r2), clamp(b + r2)},
            {clamp(a + r2), clamp(b - r2)}, {clamp(a - r2), clamp(b - r2)},
        };
        const std::vector<double> costs = cost(pts);
        assert(costs.size() == pts.size());
        result.evaluations += int(pts.size());

        // Current + candidates; keep the two minima in batch order.
        double c1a = a, c1b = b, c1c = c;
        double c2a = a, c2b = b, c2c = std::numeric_limits<double>::max();
        for (size_t i = 0; i < pts.size(); ++i) {
            const double pa = pts[i].first;
            const double pb = pts[i].second;
            const double pc = costs[i];
            if (pc < c1c) {
                c2a = c1a; c2b = c1b; c2c = c1c;
                c1a = pa; c1b = pb; c1c = pc;
            } else if (pc < c2c) {
                c2a = pa; c2b = pb; c2c = pc;
            }
        }

        // Move to the interpolation of the two minimum pairs.
        const double ia = clamp(0.5 * (c1a + c2a));
        const double ib = clamp(0.5 * (c1b + c2b));
        const double ic = eval1(ia, ib);
        ++result.evaluations;
        if (ic <= c1c) {
            a = ia; b = ib; c = ic;
        } else {
            a = c1a; b = c1b; c = c1c;
        }
        if (c < best_c) {
            best_a = a; best_b = b; best_c = c;
        }
        result.trajectory.push_back({a, b, c, radius, step});
    }

    result.alpha = best_a;
    result.beta = best_b;
    result.cost = best_c;
    result.simulated = result.evaluations;
    return result;
}

double
windowedObjective(metrics::Objective objective,
                  const sim::RunStats& begin, const sim::RunStats& end)
{
    assert(begin.tasks.size() == end.tasks.size());
    sim::RunStats window;
    window.tasks.resize(end.tasks.size());
    for (size_t t = 0; t < end.tasks.size(); ++t) {
        auto& w = window.tasks[t];
        const auto& s0 = begin.tasks[t];
        const auto& s1 = end.tasks[t];
        w.model = s1.model;
        w.totalFrames = s1.totalFrames - s0.totalFrames;
        w.completedFrames = s1.completedFrames - s0.completedFrames;
        w.violatedFrames = s1.violatedFrames - s0.violatedFrames;
        w.droppedFrames = s1.droppedFrames - s0.droppedFrames;
        w.energyMj = s1.energyMj - s0.energyMj;
        w.worstCaseEnergyMj = s1.worstCaseEnergyMj -
                              s0.worstCaseEnergyMj;
    }
    return metrics::evaluate(objective, window);
}

OnlineTuner::OnlineTuner(const DreamConfig& config) : config_(config)
{
    curAlpha_ = config.alpha;
    curBeta_ = config.beta;
}

uint64_t
OnlineTuner::fingerprint(const sim::SchedulerContext& ctx) const
{
    // The inference-model list the paper's adaptivity engine tracks:
    // which tasks currently have live requests.
    uint64_t fp = 0;
    for (const auto* req : ctx.live)
        fp |= 1ull << (unsigned(req->task) & 63u);
    return fp;
}

void
OnlineTuner::setBatchEvaluator(BatchCostFn evaluate)
{
    batchEvaluate_ = std::move(evaluate);
}

void
OnlineTuner::reset()
{
    phase_ = Phase::Idle;
    radius_ = 0.0;
    curAlpha_ = config_.alpha;
    curBeta_ = config_.beta;
    candidates_.clear();
    trialIdx_ = 0;
    trialEndUs_ = -1.0;
    trialStart_ = sim::RunStats{};
    lastFingerprint_ = 0;
    lastViolationFraction_ = 0.0;
    started_ = false;
    completedSteps_ = 0;
    retriggers_ = 0;
}

void
OnlineTuner::buildCandidates()
{
    candidates_.clear();
    const auto add = [this](double pa, double pb) {
        pa = std::min(config_.paramMax, std::max(config_.paramMin, pa));
        pb = std::min(config_.paramMax, std::max(config_.paramMin, pb));
        for (const auto& c : candidates_) {
            if (std::abs(c.alpha - pa) < 1e-9 &&
                std::abs(c.beta - pb) < 1e-9) {
                return;
            }
        }
        candidates_.push_back({pa, pb, 0.0, false});
    };
    // Online rounds probe only the immediate neighbourhood: unlike
    // the offline search, every probe executes real frames, so
    // distant (potentially bad) parameter pairs are not worth the
    // exploration cost while the workload is live.
    add(curAlpha_, curBeta_);
    add(curAlpha_ + radius_, curBeta_);
    add(curAlpha_ - radius_, curBeta_);
    add(curAlpha_, curBeta_ + radius_);
    add(curAlpha_, curBeta_ - radius_);
}

void
OnlineTuner::startRound(const sim::SchedulerContext& ctx,
                        MapScoreEngine& engine)
{
    buildCandidates();

    if (batchEvaluate_) {
        // Simulation-study path: the candidates of each round are
        // independent, so evaluate them as one batch (concurrently
        // on the caller's worker pool) and complete rounds
        // synchronously until the radius passes the threshold.
        phase_ = Phase::Trial;
        while (phase_ == Phase::Trial) {
            std::vector<std::pair<double, double>> pts;
            pts.reserve(candidates_.size());
            for (const auto& c : candidates_)
                pts.push_back({c.alpha, c.beta});
            const std::vector<double> costs = batchEvaluate_(pts);
            assert(costs.size() == pts.size());
            for (size_t i = 0; i < candidates_.size(); ++i) {
                candidates_[i].cost = costs[i];
                candidates_[i].evaluated = true;
            }
            finishRound(engine);
            if (phase_ == Phase::Trial)
                buildCandidates();
        }
        return;
    }

    phase_ = Phase::Trial;
    beginTrial(ctx, engine, 0);
}

void
OnlineTuner::beginTrial(const sim::SchedulerContext& ctx,
                        MapScoreEngine& engine, size_t candidate)
{
    trialIdx_ = candidate;
    trialStart_ = *ctx.stats;
    trialEndUs_ = ctx.nowUs + config_.trialWindowUs;
    engine.setParams(candidates_[candidate].alpha,
                     candidates_[candidate].beta);
}

void
OnlineTuner::finishRound(MapScoreEngine& engine)
{
    // Move to the interpolation of the two minimum-cost candidates —
    // but only when the winner beats the current point's own measured
    // cost by a clear margin, so windowed measurement noise cannot
    // drag the parameters away from a good operating point.
    size_t best = 0, second = 0;
    double best_c = std::numeric_limits<double>::max();
    double second_c = best_c;
    for (size_t i = 0; i < candidates_.size(); ++i) {
        const double c = candidates_[i].cost;
        if (c < best_c) {
            second = best;
            second_c = best_c;
            best = i;
            best_c = c;
        } else if (c < second_c) {
            second = i;
            second_c = c;
        }
    }
    // candidates_[0] is always the current point.
    const double current_cost = candidates_[0].cost;
    if (best != 0 &&
        best_c < current_cost * config_.onlineImprovementFactor) {
        curAlpha_ = 0.5 * (candidates_[best].alpha +
                           candidates_[second].alpha);
        curBeta_ = 0.5 * (candidates_[best].beta +
                          candidates_[second].beta);
        engine.setParams(curAlpha_, curBeta_);
    } else {
        engine.setParams(curAlpha_, curBeta_);
    }
    radius_ *= 0.5;
    ++completedSteps_;
    phase_ = (radius_ < config_.radiusThreshold) ? Phase::Idle
                                                 : Phase::Trial;
}

double
OnlineTuner::update(const sim::SchedulerContext& ctx,
                    MapScoreEngine& engine)
{
    if (!config_.paramOptimization)
        return -1.0;

    if (!started_) {
        started_ = true;
        lastFingerprint_ = fingerprint(ctx);
        radius_ = config_.initialRadius;
        startRound(ctx, engine);
        return phase_ == Phase::Trial ? trialEndUs_ : -1.0;
    }

    if (phase_ == Phase::Trial) {
        if (ctx.nowUs + 1e-9 < trialEndUs_)
            return trialEndUs_;
        // Close the current trial.
        candidates_[trialIdx_].cost =
            windowedObjective(config_.objective, trialStart_,
                              *ctx.stats);
        candidates_[trialIdx_].evaluated = true;
        if (trialIdx_ + 1 < candidates_.size()) {
            beginTrial(ctx, engine, trialIdx_ + 1);
            return trialEndUs_;
        }
        finishRound(engine);
        if (phase_ == Phase::Trial) {
            startRound(ctx, engine);
            return trialEndUs_;
        }
        return -1.0;
    }

    // Idle: watch for workload changes (task set or violation level).
    const uint64_t fp = fingerprint(ctx);
    const double viol = ctx.stats->violationFraction();
    const bool task_change = fp != lastFingerprint_ && fp != 0;
    const bool load_change =
        std::abs(viol - lastViolationFraction_) > 0.15;
    lastFingerprint_ = fp != 0 ? fp : lastFingerprint_;
    lastViolationFraction_ = viol;
    if (task_change || load_change) {
        ++retriggers_;
        radius_ = config_.initialRadius;
        startRound(ctx, engine);
        return phase_ == Phase::Trial ? trialEndUs_ : -1.0;
    }
    return -1.0;
}

} // namespace core
} // namespace dream
