#include "core/mapscore.h"

#include <algorithm>

#include "costmodel/layer_cost.h"
#include "sim/context_switch.h"
#include "sim/cost_cache.h"

namespace dream {
namespace core {

namespace {

/**
 * Slack floor as a fraction of the task period. Overdue or imminent
 * deadlines saturate the urgency score at ToGo / (fraction * period)
 * instead of diverging — an already-late frame stays urgent but must
 * not starve every still-meetable frame in the system.
 */
constexpr double kMinSlackPeriodFraction = 0.1;

} // anonymous namespace

double
MapScoreEngine::toGoUs(const sim::SchedulerContext& ctx,
                       const sim::Request& req) const
{
    const auto& cache = sim::ensureCostCache(req, *ctx.costs);
    return cache.suffixAvg[req.nextLayer];
}

double
MapScoreEngine::minToGoUs(const sim::SchedulerContext& ctx,
                          const std::vector<models::Layer>& path,
                          size_t from_layer) const
{
    const auto& costs = *ctx.costs;
    double sum = 0.0;
    for (size_t i = from_layer; i < path.size(); ++i)
        sum += costs.minLatencyUs(path[i]);
    return sum;
}

double
MapScoreEngine::minToGoUs(const sim::SchedulerContext& ctx,
                          const sim::Request& req) const
{
    const auto& cache = sim::ensureCostCache(req, *ctx.costs);
    return cache.suffixMin[req.nextLayer];
}

double
MapScoreEngine::minToGoBestVariantUs(const sim::SchedulerContext& ctx,
                                     const sim::Request& req) const
{
    const models::Model& model = ctx.scenario->tasks[req.task].model;
    if (!model.isSupernet() || req.nextLayer > model.supernetSwitchPoint)
        return minToGoUs(ctx, req);
    double best = minToGoUs(ctx, req);
    for (size_t v = 1; v <= model.variants.size(); ++v) {
        best = std::min(best, minToGoUs(ctx, model.variantPath(v),
                                        req.nextLayer));
    }
    return best;
}

ScoreBreakdown
MapScoreEngine::score(const sim::SchedulerContext& ctx,
                      const sim::Request& req, size_t accel) const
{
    const auto& costs = *ctx.costs;
    const models::Layer& next = req.path[req.nextLayer];

    ScoreBreakdown s;
    s.toGoUs = toGoUs(ctx, req);
    s.slackUs = req.deadlineUs - ctx.nowUs;

    // Line 7: urgency = ToGo / Slack (floored slack).
    const double min_slack =
        kMinSlackPeriodFraction *
        ctx.scenario->tasks[req.task].periodUs();
    s.urgency = s.toGoUs / std::max(s.slackUs, min_slack);

    // Line 8: latency preference = sum_i lat(next, i) / lat(next, acc).
    const double lat_here = costs.cost(next, accel).latencyUs;
    s.latPref = costs.sumLatencyUs(next) / lat_here;

    // Line 9: starvation = Tqueue / mean_i lat(next, i).
    const double t_queue = std::max(0.0, ctx.nowUs - req.lastEventUs);
    s.starvation = t_queue / costs.avgLatencyUs(next);

    // Line 10: context-switch cost = CswitchEnergy / EstEnergy.
    const auto& acc_state = ctx.accel(accel);
    const double e_here = costs.cost(next, accel).energyMj;
    const sim::SwitchTraffic cs = sim::switchTraffic(acc_state, req);
    if (cs.any()) {
        s.costSwitch = cost::contextSwitchEnergyMj(cs.flushBytes,
                                                   cs.fetchBytes) /
                       e_here;
    }

    // Lines 11-13: energy preference minus switch cost.
    s.energyPref = costs.sumEnergyMj(next) / e_here;
    s.energy = s.energyPref - s.costSwitch;

    // Lines 14-15.
    s.mapScore = s.urgency * s.latPref + alpha_ * s.starvation +
                 beta_ * s.energy;
    return s;
}

} // namespace core
} // namespace dream
