#include "core/mapscore.h"

#include <algorithm>
#include <cassert>

#include "costmodel/layer_cost.h"
#include "sim/context_switch.h"
#include "sim/cost_cache.h"

namespace dream {
namespace core {

namespace {

/**
 * Slack floor as a fraction of the task period. Overdue or imminent
 * deadlines saturate the urgency score at ToGo / (fraction * period)
 * instead of diverging — an already-late frame stays urgent but must
 * not starve every still-meetable frame in the system.
 */
constexpr double kMinSlackPeriodFraction = 0.1;

} // anonymous namespace

double
MapScoreEngine::toGoUs(const sim::SchedulerContext& ctx,
                       const sim::Request& req) const
{
    const auto& cache = sim::ensureCostCache(req, *ctx.costs);
    return cache.suffixAvg[req.nextLayer];
}

double
MapScoreEngine::minToGoUs(const sim::SchedulerContext& ctx,
                          const std::vector<models::Layer>& path,
                          size_t from_layer) const
{
    const auto& costs = *ctx.costs;
    double sum = 0.0;
    for (size_t i = from_layer; i < path.size(); ++i)
        sum += costs.minLatencyUs(path[i]);
    return sum;
}

double
MapScoreEngine::minToGoUs(const sim::SchedulerContext& ctx,
                          const sim::Request& req) const
{
    const auto& cache = sim::ensureCostCache(req, *ctx.costs);
    return cache.suffixMin[req.nextLayer];
}

void
MapScoreEngine::clearScratch()
{
    variantScratch_.clear();
    scratchScenario_ = nullptr;
    scratchCosts_ = nullptr;
}

const MapScoreEngine::VariantScratch&
MapScoreEngine::variantScratch(const sim::SchedulerContext& ctx,
                               workload::TaskId task) const
{
    if (scratchScenario_ != ctx.scenario ||
        scratchCosts_ != ctx.costs ||
        variantScratch_.size() != ctx.scenario->tasks.size()) {
        variantScratch_.assign(ctx.scenario->tasks.size(),
                               VariantScratch{});
        scratchScenario_ = ctx.scenario;
        scratchCosts_ = ctx.costs;
    }
    VariantScratch& s = variantScratch_[size_t(task)];
    if (s.built)
        return s;

    const models::Model& model = ctx.scenario->tasks[task].model;
    const auto& costs = *ctx.costs;
    const size_t sp = model.supernetSwitchPoint;
    s.switchPoint = sp;
    s.headSuffixMinUs.assign(sp + 1, 0.0);
    for (size_t i = sp; i-- > 0;) {
        s.headSuffixMinUs[i] = costs.minLatencyUs(model.layers[i]) +
                               s.headSuffixMinUs[i + 1];
    }
    s.bodyMinUs.assign(model.variants.size() + 1, 0.0);
    for (size_t i = model.layers.size(); i-- > sp;)
        s.bodyMinUs[0] +=
            costs.minLatencyUs(model.layers[i]);
    for (size_t v = 0; v < model.variants.size(); ++v) {
        const auto& body = model.variants[v].bodyLayers;
        for (size_t i = body.size(); i-- > 0;)
            s.bodyMinUs[v + 1] += costs.minLatencyUs(body[i]);
    }
    s.built = true;
    return s;
}

double
MapScoreEngine::minToGoVariantUs(const sim::SchedulerContext& ctx,
                                 const sim::Request& req,
                                 size_t variant) const
{
    const VariantScratch& s = variantScratch(ctx, req.task);
    assert(req.nextLayer <= s.switchPoint &&
           "variant to-go past the switch point");
    return s.headSuffixMinUs[req.nextLayer] + s.bodyMinUs[variant];
}

double
MapScoreEngine::minToGoBestVariantUs(const sim::SchedulerContext& ctx,
                                     const sim::Request& req) const
{
    const models::Model& model = ctx.scenario->tasks[req.task].model;
    if (!model.isSupernet() || req.nextLayer > model.supernetSwitchPoint)
        return minToGoUs(ctx, req);
    double best = minToGoUs(ctx, req);
    for (size_t v = 1; v <= model.variants.size(); ++v)
        best = std::min(best, minToGoVariantUs(ctx, req, v));
    return best;
}

ScoreBreakdown
MapScoreEngine::score(const sim::SchedulerContext& ctx,
                      const sim::Request& req, size_t accel) const
{
    const models::Layer& next = req.path[req.nextLayer];
    // One hash lookup serves every per-accelerator and aggregate
    // query below (the former code paid a lookup per query).
    const cost::CostTable::LayerView nv = ctx.costs->view(next);

    ScoreBreakdown s;
    s.toGoUs = toGoUs(ctx, req);
    s.slackUs = req.deadlineUs - ctx.nowUs;

    // Line 7: urgency = ToGo / Slack (floored slack).
    const double min_slack =
        kMinSlackPeriodFraction *
        ctx.scenario->tasks[req.task].periodUs();
    s.urgency = s.toGoUs / std::max(s.slackUs, min_slack);

    // Line 8: latency preference = sum_i lat(next, i) / lat(next, acc).
    const double lat_here = nv.cost(accel).latencyUs;
    s.latPref = nv.agg().sumLatencyUs / lat_here;

    // Line 9: starvation = Tqueue / mean_i lat(next, i).
    const double t_queue = std::max(0.0, ctx.nowUs - req.lastEventUs);
    s.starvation = t_queue / nv.agg().avgLatencyUs;

    // Line 10: context-switch cost = CswitchEnergy / EstEnergy.
    const auto& acc_state = ctx.accel(accel);
    const double e_here = nv.cost(accel).energyMj;
    const sim::SwitchTraffic cs = sim::switchTraffic(acc_state, req);
    if (cs.any()) {
        s.costSwitch = cost::contextSwitchEnergyMj(cs.flushBytes,
                                                   cs.fetchBytes) /
                       e_here;
    }

    // Lines 11-13: energy preference minus switch cost.
    s.energyPref = nv.agg().sumEnergyMj / e_here;
    s.energy = s.energyPref - s.costSwitch;

    // Lines 14-15.
    s.mapScore = s.urgency * s.latPref + alpha_ * s.starvation +
                 beta_ * s.energy;
    return s;
}

} // namespace core
} // namespace dream
