#include "core/supernet_switch.h"

#include <algorithm>

namespace dream {
namespace core {

std::optional<int>
SupernetSwitchEngine::chooseVariant(const sim::SchedulerContext& ctx,
                                    const MapScoreEngine& scores,
                                    const sim::Request& req) const
{
    const models::Model& model =
        ctx.scenario->tasks[req.task].model;
    if (!model.isSupernet())
        return std::nullopt;
    if (req.nextLayer > model.supernetSwitchPoint)
        return std::nullopt; // past the switch point; path is fixed

    const double slack = req.deadlineUs - ctx.nowUs;

    // System-load pressure (Figure 6: "based on the system load and
    // slack"): the work already committed to the accelerators plus
    // the optimistic demand of every queued request, spread across
    // the accelerators, delays this frame's layers. Discounting the
    // slack by that expected delay deploys lighter subnets
    // proactively under heavy load, not just when this frame is
    // already critical.
    double committed_us = 0.0;
    for (size_t a = 0; a < ctx.numAccels(); ++a) {
        const auto& acc = ctx.accel(a);
        if (!acc.idle())
            committed_us += std::max(0.0, acc.busyUntilUs - ctx.nowUs);
    }
    for (const auto* other : ctx.ready) {
        if (other->id != req.id)
            committed_us += scores.minToGoUs(ctx, *other);
    }
    const double expected_delay =
        config_.supernetLoadSensitivity * committed_us /
        double(ctx.numAccels());
    const double budget =
        (slack - expected_delay) * config_.supernetSlackMargin;

    // Variants are ordered heaviest (0 == Original) to lightest.
    // Pick the heaviest one whose optimistic remaining time fits the
    // load-discounted budget; fall back to the lightest. The scratch-
    // cached to-go replaces the former per-variant path
    // materialisation (a vector<Layer> allocation per candidate per
    // scheduling event).
    const int num_variants = int(model.variants.size()) + 1;
    int chosen = num_variants - 1;
    for (int v = 0; v < num_variants; ++v) {
        const double min_to_go =
            scores.minToGoVariantUs(ctx, req, size_t(v));
        if (min_to_go <= budget) {
            chosen = v;
            break;
        }
    }
    if (chosen == req.variant)
        return std::nullopt;
    return chosen;
}

} // namespace core
} // namespace dream
