/**
 * @file
 * MapScore engine: the scoring metric of Algorithm 1.
 *
 * MapScore(tsk, acc) = ScoreUrgency(tsk) * ScoreLatPref(tsk, acc)
 *                    + alpha * ScoreStarv(tsk)
 *                    + beta  * ScoreEnergy(tsk, acc)
 *
 * where urgency is ToGo/Slack, latency preference is the inverse
 * significance of the next layer's latency on the accelerator,
 * starvation is queue time over mean next-layer latency, and energy
 * combines the inverse energy significance with the context-switch
 * energy penalty of displacing the accelerator's previous task.
 */

#ifndef DREAM_CORE_MAPSCORE_H
#define DREAM_CORE_MAPSCORE_H

#include <vector>

#include "costmodel/cost_table.h"
#include "sim/scheduler.h"

namespace dream {
namespace core {

/** All unit scores plus the combined MapScore for one (task, acc). */
struct ScoreBreakdown {
    double toGoUs = 0.0;
    double slackUs = 0.0;
    double urgency = 0.0;
    double latPref = 0.0;
    double starvation = 0.0;
    double energyPref = 0.0;
    double costSwitch = 0.0;
    double energy = 0.0;
    double mapScore = 0.0;
};

/**
 * Computes MapScore for (request, accelerator) pairs against a
 * SchedulerContext snapshot. Stateless apart from the tunable
 * (alpha, beta) parameters.
 */
class MapScoreEngine {
public:
    MapScoreEngine(double alpha, double beta)
        : alpha_(alpha), beta_(beta)
    {}

    double alpha() const { return alpha_; }
    double beta() const { return beta_; }
    void setParams(double alpha, double beta)
    {
        alpha_ = alpha;
        beta_ = beta;
    }

    /**
     * ToGo (Algorithm 1 line 2): predicted remaining processing time,
     * averaged across accelerators.
     */
    double toGoUs(const sim::SchedulerContext& ctx,
                  const sim::Request& req) const;

    /**
     * Minimum remaining time to completion assuming the best-latency
     * accelerator per layer and no context switches (the
     * minimum_to_go of the smart-frame-drop conditions).
     */
    double minToGoUs(const sim::SchedulerContext& ctx,
                     const sim::Request& req) const;

    /** minToGoUs() over an explicit remaining-layer span. */
    double minToGoUs(const sim::SchedulerContext& ctx,
                     const std::vector<models::Layer>& path,
                     size_t from_layer) const;

    /**
     * minToGoUs() assuming the most favourable Supernet variant is
     * still selectable (the drop engine must not retire a frame that
     * variant switching could save). Falls back to minToGoUs() for
     * non-Supernet requests or past the switch point.
     */
    double minToGoBestVariantUs(const sim::SchedulerContext& ctx,
                                const sim::Request& req) const;

    /**
     * minToGoUs() of the request's model's variantPath(@p variant)
     * from the request's next layer. Only valid at or before the
     * switch point (the callers' precondition — past it the path is
     * fixed). Served from a per-task scratch cache of suffix-min
     * sums, so no per-call path materialisation: the former
     * model.variantPath() allocation in the drop/switch hot loops.
     */
    double minToGoVariantUs(const sim::SchedulerContext& ctx,
                            const sim::Request& req,
                            size_t variant) const;

    /** Full Algorithm 1 evaluation for (request, accelerator). */
    ScoreBreakdown score(const sim::SchedulerContext& ctx,
                         const sim::Request& req, size_t accel) const;

    /**
     * Drop the per-run scratch caches (fresh run — scenario/cost
     * objects may be reused at the same addresses across runs, so
     * DreamScheduler::reset clears explicitly instead of trusting
     * pointer identity alone).
     */
    void clearScratch();

private:
    /**
     * Per-task Supernet to-go scratch: suffix-min sums over the
     * shared head (model.layers[i .. switchPoint)) plus each
     * variant's body total, so minToGoVariantUs is two array reads.
     * Accumulation is right-associated like the per-request suffix
     * caches (sim/cost_cache.cc).
     */
    struct VariantScratch {
        bool built = false;
        size_t switchPoint = 0;
        /** [i] = sum of min-latencies of layers[i .. switchPoint). */
        std::vector<double> headSuffixMinUs;
        /** [v] = min-latency total of variantPath(v)'s body. */
        std::vector<double> bodyMinUs;
    };

    const VariantScratch&
    variantScratch(const sim::SchedulerContext& ctx,
                   workload::TaskId task) const;

    double alpha_;
    double beta_;
    /** Scratch is per-scheduler-instance state; one simulation
     *  thread owns a scheduler, so no synchronisation. */
    mutable std::vector<VariantScratch> variantScratch_;
    mutable const void* scratchScenario_ = nullptr;
    mutable const void* scratchCosts_ = nullptr;
};

} // namespace core
} // namespace dream

#endif // DREAM_CORE_MAPSCORE_H
