/**
 * @file
 * MapScore engine: the scoring metric of Algorithm 1.
 *
 * MapScore(tsk, acc) = ScoreUrgency(tsk) * ScoreLatPref(tsk, acc)
 *                    + alpha * ScoreStarv(tsk)
 *                    + beta  * ScoreEnergy(tsk, acc)
 *
 * where urgency is ToGo/Slack, latency preference is the inverse
 * significance of the next layer's latency on the accelerator,
 * starvation is queue time over mean next-layer latency, and energy
 * combines the inverse energy significance with the context-switch
 * energy penalty of displacing the accelerator's previous task.
 */

#ifndef DREAM_CORE_MAPSCORE_H
#define DREAM_CORE_MAPSCORE_H

#include "sim/scheduler.h"

namespace dream {
namespace core {

/** All unit scores plus the combined MapScore for one (task, acc). */
struct ScoreBreakdown {
    double toGoUs = 0.0;
    double slackUs = 0.0;
    double urgency = 0.0;
    double latPref = 0.0;
    double starvation = 0.0;
    double energyPref = 0.0;
    double costSwitch = 0.0;
    double energy = 0.0;
    double mapScore = 0.0;
};

/**
 * Computes MapScore for (request, accelerator) pairs against a
 * SchedulerContext snapshot. Stateless apart from the tunable
 * (alpha, beta) parameters.
 */
class MapScoreEngine {
public:
    MapScoreEngine(double alpha, double beta)
        : alpha_(alpha), beta_(beta)
    {}

    double alpha() const { return alpha_; }
    double beta() const { return beta_; }
    void setParams(double alpha, double beta)
    {
        alpha_ = alpha;
        beta_ = beta;
    }

    /**
     * ToGo (Algorithm 1 line 2): predicted remaining processing time,
     * averaged across accelerators.
     */
    double toGoUs(const sim::SchedulerContext& ctx,
                  const sim::Request& req) const;

    /**
     * Minimum remaining time to completion assuming the best-latency
     * accelerator per layer and no context switches (the
     * minimum_to_go of the smart-frame-drop conditions).
     */
    double minToGoUs(const sim::SchedulerContext& ctx,
                     const sim::Request& req) const;

    /** minToGoUs() over an explicit remaining-layer span. */
    double minToGoUs(const sim::SchedulerContext& ctx,
                     const std::vector<models::Layer>& path,
                     size_t from_layer) const;

    /**
     * minToGoUs() assuming the most favourable Supernet variant is
     * still selectable (the drop engine must not retire a frame that
     * variant switching could save). Falls back to minToGoUs() for
     * non-Supernet requests or past the switch point.
     */
    double minToGoBestVariantUs(const sim::SchedulerContext& ctx,
                                const sim::Request& req) const;

    /** Full Algorithm 1 evaluation for (request, accelerator). */
    ScoreBreakdown score(const sim::SchedulerContext& ctx,
                         const sim::Request& req, size_t accel) const;

private:
    double alpha_;
    double beta_;
};

} // namespace core
} // namespace dream

#endif // DREAM_CORE_MAPSCORE_H
