/**
 * @file
 * Configuration of the DREAM scheduler, including the three evaluated
 * variants of Table 4: DREAM-MapScore, DREAM-SmartDrop, DREAM-Full.
 */

#ifndef DREAM_CORE_DREAM_CONFIG_H
#define DREAM_CORE_DREAM_CONFIG_H

#include "metrics/uxcost.h"

namespace dream {
namespace core {

/** All DREAM tunables. */
struct DreamConfig {
    /** Starvation factor (alpha in Algorithm 1, range [0, 2]). */
    double alpha = 1.0;
    /** Energy factor (beta in Algorithm 1, range [0, 2]). */
    double beta = 1.0;

    /** Online (alpha, beta) optimisation (Section 3.6). */
    bool paramOptimization = true;
    /** Smart frame drop (Section 4.2). */
    bool smartDrop = false;
    /** Supernet switching (Section 4.5.1). */
    bool supernetSwitch = false;

    /** Maximum frame-drop rate per task (evaluation uses 20%). */
    double maxDropRate = 0.2;
    /** Frame window length used by the drop-rate bound. */
    int dropRateWindowFrames = 10;

    /** Length of one online-tuning trial window (us). */
    double trialWindowUs = 1.5e5;
    /** A candidate must beat the current point's measured cost by
     *  this factor before the tuner moves (noise guard). */
    double onlineImprovementFactor = 0.93;
    /** Initial search radius in (alpha, beta) space. */
    double initialRadius = 0.5;
    /** Stop shrinking the radius below this threshold. */
    double radiusThreshold = 0.05;
    /** Parameter-space bounds (paper: [0, 2]). */
    double paramMin = 0.0;
    double paramMax = 2.0;

    /** Optimisation objective (Figure 13 ablates this). */
    metrics::Objective objective = metrics::Objective::UxCost;

    /**
     * Settle-vs-wait rule of the dispatch engine: a (request,
     * accelerator) pair whose next-layer latency exceeds
     * settleFactor x the request's best-accelerator latency is
     * deferred while waiting is deadline-safe. 0 disables the rule
     * (pure greedy highest-MapScore dispatch).
     */
    double settleFactor = 2.5;
    /** Fraction of the slack the wait-for-preferred path may use. */
    double waitSafety = 0.7;

    /** Safety margin for Supernet switching: a variant is deemed
     *  feasible when minToGo <= supernetSlackMargin * slack. */
    double supernetSlackMargin = 1.0;
    /** How strongly system-load pressure biases Supernet switching
     *  towards lighter subnets (scales the expected queueing delay;
     *  0 disables the load term). */
    double supernetLoadSensitivity = 5.0;

    /** Table 4 row 1: score-driven assignment + param optimisation. */
    static DreamConfig mapScore();
    /** Table 4 row 2: MapScore + smart frame drop. */
    static DreamConfig smartDropConfig();
    /** Table 4 row 3: all optimisations. */
    static DreamConfig full();
    /** Figure 9 baseline: fixed alpha = beta = 1, no optimisation. */
    static DreamConfig fixedParams(double alpha = 1.0,
                                   double beta = 1.0);
};

} // namespace core
} // namespace dream

#endif // DREAM_CORE_DREAM_CONFIG_H
