/**
 * @file
 * The DREAM scheduler (Section 4): composes the MapScore engine, the
 * Smart Frame Drop engine, the Adaptivity engine and the Supernet
 * switching engine into the Job Assignment and Dispatch engine that
 * drives scheduling decisions.
 *
 * Flow per scheduling event (Figure 4): the adaptivity engine checks
 * for workload changes and advances the online (alpha, beta) tuning;
 * the frame drop engine may retire one doomed frame; the MapScore
 * engine scores every (ready request, idle accelerator) pair; the
 * dispatch engine launches the pair with the highest MapScore,
 * switching Supernet variants first when the deadline demands it.
 */

#ifndef DREAM_CORE_DREAM_SCHEDULER_H
#define DREAM_CORE_DREAM_SCHEDULER_H

#include "core/adaptivity.h"
#include "core/dream_config.h"
#include "core/frame_drop.h"
#include "core/mapscore.h"
#include "core/supernet_switch.h"
#include "sim/scheduler.h"

namespace dream {
namespace core {

/** The DREAM scheduler. */
class DreamScheduler : public sim::Scheduler {
public:
    explicit DreamScheduler(DreamConfig config = DreamConfig::full());

    std::string name() const override;
    void reset(const sim::SchedulerContext& ctx) override;
    sim::Plan plan(const sim::SchedulerContext& ctx) override;

    /** The active configuration. */
    const DreamConfig& config() const { return config_; }
    /** Current (alpha, beta) of the MapScore engine. */
    const MapScoreEngine& mapScore() const { return engine_; }
    /** The online tuner (for observability in tests/benches). */
    const OnlineTuner& tuner() const { return tuner_; }
    /**
     * Mutable tuner access, e.g. to install a batched candidate
     * evaluator for simulation studies (see
     * engine::attachBatchTuner).
     */
    OnlineTuner& tuner() { return tuner_; }

private:
    DreamConfig config_;
    MapScoreEngine engine_;
    FrameDropEngine dropEngine_;
    SupernetSwitchEngine supernetEngine_;
    OnlineTuner tuner_;
};

} // namespace core
} // namespace dream

#endif // DREAM_CORE_DREAM_SCHEDULER_H
