#include "models/layer.h"

#include <cassert>

namespace dream {
namespace models {

std::string
toString(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv2d:
        return "conv";
      case LayerKind::FullyConnected:
        return "fc";
      case LayerKind::Rnn:
        return "rnn";
      case LayerKind::Pool:
        return "pool";
      case LayerKind::Eltwise:
        return "eltwise";
    }
    return "??";
}

uint32_t
Layer::outH() const
{
    return (inH + stride - 1) / stride;
}

uint32_t
Layer::outW() const
{
    return (inW + stride - 1) / stride;
}

uint64_t
Layer::outPositions() const
{
    return uint64_t(outH()) * outW();
}

uint32_t
Layer::inCPerGroup() const
{
    assert(groups >= 1 && inC % groups == 0);
    return inC / groups;
}

uint64_t
Layer::accumulationDepth() const
{
    return uint64_t(inCPerGroup()) * kH * kW;
}

uint64_t
Layer::macs() const
{
    switch (kind) {
      case LayerKind::Conv2d:
      case LayerKind::FullyConnected:
      case LayerKind::Rnn:
        return outPositions() * outC * accumulationDepth() * repeat;
      case LayerKind::Pool:
        // One accumulate per pooling-window tap.
        return outPositions() * outC * kH * kW * repeat;
      case LayerKind::Eltwise:
        return outPositions() * outC * repeat;
    }
    return 0;
}

uint64_t
Layer::weightBytes() const
{
    switch (kind) {
      case LayerKind::Conv2d:
      case LayerKind::FullyConnected:
      case LayerKind::Rnn:
        // int8 weights; biases are negligible and omitted.
        return uint64_t(outC) * accumulationDepth();
      case LayerKind::Pool:
      case LayerKind::Eltwise:
        return 0;
    }
    return 0;
}

uint64_t
Layer::inputBytes() const
{
    return uint64_t(inH) * inW * inC * repeat;
}

uint64_t
Layer::outputBytes() const
{
    return outPositions() * outC * repeat;
}

Layer
conv(const std::string& name, uint32_t in_h, uint32_t in_w, uint32_t in_c,
     uint32_t out_c, uint32_t k, uint32_t stride)
{
    Layer l;
    l.name = name;
    l.kind = LayerKind::Conv2d;
    l.inH = in_h;
    l.inW = in_w;
    l.inC = in_c;
    l.outC = out_c;
    l.kH = k;
    l.kW = k;
    l.stride = stride;
    return l;
}

Layer
dwConv(const std::string& name, uint32_t in_h, uint32_t in_w, uint32_t c,
       uint32_t k, uint32_t stride)
{
    Layer l = conv(name, in_h, in_w, c, c, k, stride);
    l.groups = c;
    return l;
}

Layer
pwConv(const std::string& name, uint32_t in_h, uint32_t in_w, uint32_t in_c,
       uint32_t out_c)
{
    return conv(name, in_h, in_w, in_c, out_c, 1, 1);
}

Layer
fc(const std::string& name, uint32_t in_features, uint32_t out_features)
{
    Layer l;
    l.name = name;
    l.kind = LayerKind::FullyConnected;
    l.inC = in_features;
    l.outC = out_features;
    return l;
}

Layer
rnn(const std::string& name, uint32_t in_features, uint32_t out_features,
    uint32_t steps)
{
    Layer l = fc(name, in_features, out_features);
    l.kind = LayerKind::Rnn;
    l.repeat = steps;
    return l;
}

Layer
pool(const std::string& name, uint32_t in_h, uint32_t in_w, uint32_t c,
     uint32_t k, uint32_t stride)
{
    Layer l;
    l.name = name;
    l.kind = LayerKind::Pool;
    l.inH = in_h;
    l.inW = in_w;
    l.inC = c;
    l.outC = c;
    l.kH = k;
    l.kW = k;
    l.stride = stride;
    return l;
}

Layer
eltwise(const std::string& name, uint32_t h, uint32_t w, uint32_t c)
{
    Layer l;
    l.name = name;
    l.kind = LayerKind::Eltwise;
    l.inH = h;
    l.inW = w;
    l.inC = c;
    l.outC = c;
    return l;
}

} // namespace models
} // namespace dream
