#include "models/model.h"

#include <algorithm>
#include <cassert>

namespace dream {
namespace models {

uint64_t
totalMacs(const std::vector<Layer>& layers)
{
    uint64_t total = 0;
    for (const auto& l : layers)
        total += l.macs();
    return total;
}

uint64_t
Model::totalMacs() const
{
    return models::totalMacs(layers);
}

uint64_t
Model::totalWeightBytes() const
{
    uint64_t total = 0;
    for (const auto& l : layers)
        total += l.weightBytes();
    return total;
}

uint64_t
Model::peakActivationBytes() const
{
    uint64_t peak = 0;
    for (const auto& l : layers) {
        // Live set while executing a layer: its input and output tiles.
        // Rnn layers stream step-by-step, so only one step is live.
        const uint64_t rep = std::max<uint32_t>(l.repeat, 1);
        peak = std::max(peak, (l.inputBytes() + l.outputBytes()) / rep);
    }
    return peak;
}

std::vector<Layer>
Model::variantPath(size_t variant_idx) const
{
    if (variant_idx == 0 || variants.empty())
        return layers;
    assert(variant_idx <= variants.size());
    assert(supernetSwitchPoint <= layers.size());
    std::vector<Layer> path(layers.begin(),
                            layers.begin() + supernetSwitchPoint);
    const auto& body = variants[variant_idx - 1].bodyLayers;
    path.insert(path.end(), body.begin(), body.end());
    return path;
}

} // namespace models
} // namespace dream
