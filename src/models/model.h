/**
 * @file
 * Model descriptor: an ordered list of layers plus the dynamic-control
 * structure DREAM exploits (skip gates, early exits, Supernet variants).
 */

#ifndef DREAM_MODELS_MODEL_H
#define DREAM_MODELS_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "models/layer.h"

namespace dream {
namespace models {

/**
 * A contiguous block of layers that a control gate can skip
 * (SkipNet-style operator-level dynamicity). When the gate fires, layers
 * [begin, end) are removed from the frame's execution path.
 */
struct SkipBlock {
    size_t begin = 0;       ///< first skippable layer index (inclusive)
    size_t end = 0;         ///< one past the last skippable layer
    double skipProb = 0.0;  ///< probability the gate skips the block
};

/**
 * Early-exit point (BranchyNet / RAPID-RL-style). With probability
 * @ref exitProb the network exits after layer @ref afterLayer and all
 * later layers are removed from the frame's execution path.
 */
struct EarlyExit {
    size_t afterLayer = 0;  ///< exit taken after this layer index
    double exitProb = 0.0;  ///< probability of taking the exit
};

/**
 * One deployable sub-network of a weight-sharing Supernet
 * (Once-for-All). Variants share the prefix [0, switchPoint) of the
 * base model; @ref bodyLayers replaces everything from the switch
 * point on.
 */
struct SupernetVariant {
    std::string name;               ///< e.g. "ofa-v2"
    std::vector<Layer> bodyLayers;  ///< layers after the switch point
};

/**
 * A complete network. `layers` is the default (heaviest) execution
 * path. The dynamic-control members describe the alternative paths a
 * frame can materialise at run time.
 */
struct Model {
    std::string name;
    std::vector<Layer> layers;

    /** SkipNet-style gated blocks (may be empty). */
    std::vector<SkipBlock> skipBlocks;
    /** Early-exit points (may be empty). */
    std::vector<EarlyExit> earlyExits;
    /**
     * Supernet variants (empty for ordinary models). Variant paths are
     * `layers[0, supernetSwitchPoint) + variants[i].bodyLayers`. The
     * default path (`layers`) is the "Original" heaviest subnet.
     */
    std::vector<SupernetVariant> variants;
    /** Layer index where Supernet variants diverge. */
    size_t supernetSwitchPoint = 0;

    /** True if this model is Supernet-based. */
    bool isSupernet() const { return !variants.empty(); }

    /** Total MACs of the default path. */
    uint64_t totalMacs() const;
    /** Total weight bytes of the default path. */
    uint64_t totalWeightBytes() const;
    /**
     * Peak live activation footprint in bytes: the largest
     * input+output footprint over the default path. Used for
     * context-switch (activation flush/fetch) energy.
     */
    uint64_t peakActivationBytes() const;

    /**
     * Materialise the layer sequence for Supernet variant
     * @p variant_idx (0 == original / default path).
     */
    std::vector<Layer> variantPath(size_t variant_idx) const;
};

/** Sum of MACs over a layer sequence. */
uint64_t totalMacs(const std::vector<Layer>& layers);

} // namespace models
} // namespace dream

#endif // DREAM_MODELS_MODEL_H
