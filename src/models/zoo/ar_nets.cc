/**
 * @file
 * AR-scenario networks: HandPoseNet, FocalLengthDepth and ED-TCN.
 */

#include "models/zoo.h"

#include "models/zoo/builders.h"

namespace dream {
namespace models {
namespace zoo {

Model
handPoseNet()
{
    Model m;
    m.name = "HandPoseNet";
    // Global-to-local hand pose regression (Madadi et al.) on a 96x96
    // depth crop; FC-heavy regression tail.
    Cursor cur{96, 96, 1};
    addConv(m.layers, cur, "conv1", 32, 5, 2);
    addConv(m.layers, cur, "conv2", 64, 3, 1);
    addPool(m.layers, cur, "pool2", 2, 2);
    addConv(m.layers, cur, "conv3", 128, 3, 1);
    addConv(m.layers, cur, "conv4", 192, 3, 1);
    addPool(m.layers, cur, "pool4", 2, 2);
    addConv(m.layers, cur, "conv5", 256, 3, 1);
    addPool(m.layers, cur, "pool5", 2, 2);
    m.layers.push_back(fc("fc1", 256 * 6 * 6, 1024));
    m.layers.push_back(fc("fc2", 1024, 1024));
    // 21 joints x 3 coordinates.
    m.layers.push_back(fc("joints", 1024, 63));
    return m;
}

Model
focalLengthDepth()
{
    Model m;
    m.name = "FocalLengthDepth";
    // Encoder-decoder monocular depth (He et al., TIP'18): MobileNetV2
    // style encoder plus a transposed-conv decoder to full resolution.
    Cursor cur{224, 224, 3};
    addConv(m.layers, cur, "enc.stem", 32, 3, 2);
    const struct { uint32_t c; int n; uint32_t s; uint32_t e; } enc[] =
        {{16, 1, 1, 1}, {24, 2, 2, 6}, {32, 3, 2, 6},
         {64, 3, 2, 6}, {128, 3, 2, 6}};
    int stage_idx = 0;
    for (const auto& st : enc) {
        for (int b = 0; b < st.n; ++b) {
            addInvertedResidual(
                m.layers, cur,
                "enc.s" + std::to_string(stage_idx) + ".b" +
                    std::to_string(b),
                st.c, 3, b == 0 ? st.s : 1, st.e);
        }
        ++stage_idx;
    }
    // Decoder: upsample + conv at each scale back to 224x224.
    const struct { uint32_t h; uint32_t c; } dec[] =
        {{14, 96}, {28, 64}, {56, 32}, {112, 16}};
    int didx = 0;
    for (const auto& d : dec) {
        cur.h = d.h;
        cur.w = d.h;
        addConv(m.layers, cur, "dec.up" + std::to_string(didx++), d.c,
                3, 1);
    }
    cur.h = 224;
    cur.w = 224;
    addConv(m.layers, cur, "dec.depth", 1, 3, 1);
    return m;
}

Model
edTcn()
{
    Model m;
    m.name = "ED-TCN";
    // Encoder-decoder temporal conv net (Lea et al., CVPR'17) over a
    // 96-step window of 128-d frame features.
    Cursor cur{1, 96, 128};
    addConv1d(m.layers, cur, "enc.conv1", 96, 25, 1);
    addPool(m.layers, cur, "enc.pool1", 1, 2);
    addConv1d(m.layers, cur, "enc.conv2", 160, 25, 1);
    addPool(m.layers, cur, "enc.pool2", 1, 2);
    // Decoder mirrors the encoder with upsampling.
    cur.w *= 2;
    addConv1d(m.layers, cur, "dec.conv1", 96, 25, 1);
    cur.w *= 2;
    addConv1d(m.layers, cur, "dec.conv2", 64, 25, 1);
    m.layers.push_back(fc("cls.frame", 64, 24));
    return m;
}

} // namespace zoo
} // namespace models
} // namespace dream
