/**
 * @file
 * Audio/speech networks: res8 keyword spotting, GNMT translation and
 * the VGG-M VoxCeleb verification network.
 */

#include "models/zoo.h"

#include "models/zoo/builders.h"

namespace dream {
namespace models {
namespace zoo {

Model
kwsRes8()
{
    Model m;
    m.name = "KWS_res8";
    // 40 MFCC features x 101 frames, res8 (Tang & Lin, ICASSP'18).
    Cursor cur{101, 40, 1};
    addConv(m.layers, cur, "conv0", 45, 3, 1);
    addPool(m.layers, cur, "pool0", 4, 4);
    for (int b = 0; b < 3; ++b) {
        const std::string name = "res" + std::to_string(b);
        addConv(m.layers, cur, name + ".conv1", 45, 3, 1);
        addConv(m.layers, cur, name + ".conv2", 45, 3, 1);
        m.layers.push_back(eltwise(name + ".add", cur.h, cur.w, cur.c));
    }
    addPool(m.layers, cur, "gap", cur.h, cur.h);
    m.layers.push_back(fc("cls", 45, 12));
    return m;
}

Model
gnmt()
{
    Model m;
    m.name = "GNMT";
    // Mobile-scaled GNMT: 2+2 LSTM layers, 1024 hidden, 16k vocab,
    // 32 decode steps (sustained conversational translation).
    // Preserves the datacenter original's RNN/FC-dominated,
    // weight-bandwidth-bound profile.
    constexpr uint32_t hidden = 1024;
    constexpr uint32_t steps = 32;
    constexpr uint32_t vocab = 16384;
    // LSTM cell: [x_t ; h_{t-1}] (2*hidden) -> 4 gates (4*hidden).
    m.layers.push_back(rnn("enc.lstm0", 2 * hidden, 4 * hidden, steps));
    m.layers.push_back(rnn("enc.lstm1", 2 * hidden, 4 * hidden, steps));
    m.layers.push_back(rnn("dec.lstm0", 2 * hidden, 4 * hidden, steps));
    m.layers.push_back(rnn("dec.attn", hidden, 2 * hidden, steps));
    m.layers.push_back(rnn("dec.lstm1", 2 * hidden, 4 * hidden, steps));
    m.layers.push_back(rnn("dec.proj", hidden, vocab, steps));
    return m;
}

Model
vggVoxCeleb()
{
    Model m;
    m.name = "VGG_VoxCeleb";
    // VGG-M verification network (Nagrani et al., Interspeech'17),
    // at a 384x224 deployment crop. AR social interaction verifies
    // kFaces detected faces per frame (multi-party conversation),
    // expressed with the repeat field.
    constexpr uint32_t kFaces = 2;
    Cursor cur{384, 224, 1};
    const auto add = [&m](Layer l) {
        l.repeat = kFaces;
        m.layers.push_back(std::move(l));
    };
    Cursor c = cur;
    auto conv_adv = [&c, &add](const std::string& name, uint32_t out_c,
                               uint32_t k, uint32_t stride) {
        Layer l = conv(name, c.h, c.w, c.c, out_c, k, stride);
        c.h = l.outH();
        c.w = l.outW();
        c.c = out_c;
        add(std::move(l));
    };
    auto pool_adv = [&c, &add](const std::string& name, uint32_t k,
                               uint32_t stride) {
        Layer l = pool(name, c.h, c.w, c.c, k, stride);
        c.h = l.outH();
        c.w = l.outW();
        add(std::move(l));
    };
    conv_adv("conv1", 96, 7, 2);
    pool_adv("pool1", 3, 2);
    conv_adv("conv2", 256, 5, 2);
    pool_adv("pool2", 3, 2);
    conv_adv("conv3", 384, 3, 1);
    conv_adv("conv4", 256, 3, 1);
    conv_adv("conv5", 256, 3, 1);
    pool_adv("pool5", 5, 3);
    // fc6 is a 9x1 conv applied at each temporal position of the
    // pooled map (support 9 x 256), then pooled over time.
    m.layers.push_back(rnn("fc6", 9 * 256, 4096, c.w * kFaces));
    Layer fc7 = fc("fc7", 4096, 1024);
    fc7.repeat = kFaces;
    m.layers.push_back(std::move(fc7));
    Layer fc8 = fc("fc8.embed", 1024, 1024);
    fc8.repeat = kFaces;
    m.layers.push_back(std::move(fc8));
    return m;
}

} // namespace zoo
} // namespace models
} // namespace dream
