/**
 * @file
 * Vision backbones: FBNet-C, SSD-MobileNetV2 and the Once-for-All
 * Supernet used for visual context understanding.
 */

#include "models/zoo.h"

#include "models/zoo/builders.h"

namespace dream {
namespace models {
namespace zoo {

namespace {

/** One stage spec of an inverted-residual chain. */
struct MbStage {
    uint32_t outC;
    uint32_t numBlocks;
    uint32_t kernel;
    uint32_t stride;  ///< stride of the first block in the stage
    uint32_t expand;
};

void
addMbStages(std::vector<Layer>& layers, Cursor& cur,
            const std::string& prefix, const std::vector<MbStage>& stages)
{
    int stage_idx = 0;
    for (const auto& st : stages) {
        for (uint32_t b = 0; b < st.numBlocks; ++b) {
            const std::string name = prefix + ".s" +
                std::to_string(stage_idx) + ".b" + std::to_string(b);
            addInvertedResidual(layers, cur, name, st.outC, st.kernel,
                                b == 0 ? st.stride : 1, st.expand);
        }
        ++stage_idx;
    }
}

} // anonymous namespace

Model
fbnetC()
{
    Model m;
    m.name = "FBNet-C";
    Cursor cur{224, 224, 3};
    addConv(m.layers, cur, "stem", 16, 3, 2);
    // FBNet-C block schedule (Wu et al., CVPR'19), kernels mixed 3/5.
    addMbStages(m.layers, cur, "fbnet",
                {{16, 1, 3, 1, 1},
                 {24, 4, 3, 2, 6},
                 {32, 4, 5, 2, 6},
                 {64, 4, 5, 2, 6},
                 {112, 4, 3, 1, 6},
                 {184, 4, 5, 2, 6},
                 {352, 1, 3, 1, 6}});
    addConv(m.layers, cur, "head.pw", 1504, 1, 1);
    addPool(m.layers, cur, "head.gap", 7, 7);
    m.layers.push_back(fc("head.gaze", 1504, 64));
    return m;
}

Model
ssdMobileNetV2()
{
    Model m;
    m.name = "SSD_MobileNetV2";
    Cursor cur{300, 300, 3};
    addConv(m.layers, cur, "stem", 32, 3, 2);
    addMbStages(m.layers, cur, "mnv2",
                {{16, 1, 3, 1, 1},
                 {24, 2, 3, 2, 6},
                 {32, 3, 3, 2, 6},
                 {64, 4, 3, 2, 6},
                 {96, 3, 3, 1, 6},
                 {160, 3, 3, 2, 6},
                 {320, 1, 3, 1, 6}});
    addConv(m.layers, cur, "head.pw", 1280, 1, 1);
    // SSD extra feature layers.
    addConv(m.layers, cur, "extra0.reduce", 256, 1, 1);
    addConv(m.layers, cur, "extra0", 512, 3, 2);
    addConv(m.layers, cur, "extra1.reduce", 128, 1, 1);
    addConv(m.layers, cur, "extra1", 256, 3, 2);
    addConv(m.layers, cur, "extra2.reduce", 128, 1, 1);
    addConv(m.layers, cur, "extra2", 256, 3, 2);
    // Class/box prediction convs on the last feature map; earlier
    // heads are folded into one representative conv per map scale.
    addConv(m.layers, cur, "pred.cls", 486, 3, 1);
    addConv(m.layers, cur, "pred.box", 24, 3, 1);
    return m;
}

namespace {

/**
 * Build an OFA MobileNetV3-style body from multipliers. The Original
 * subnet uses full depth/width; lighter subnets shrink both plus the
 * expansion ratio, mirroring Once-for-All's elastic depth/width/kernel.
 */
std::vector<Layer>
ofaBody(const std::string& prefix, Cursor cur,
        const std::vector<MbStage>& stages, uint32_t head_c)
{
    std::vector<Layer> layers;
    addMbStages(layers, cur, prefix, stages);
    addConv(layers, cur, prefix + ".head.pw", head_c, 1, 1);
    addPool(layers, cur, prefix + ".gap", cur.h, cur.h);
    layers.push_back(fc(prefix + ".cls", head_c, 400));
    return layers;
}

} // anonymous namespace

Model
ofaSupernet()
{
    Model m;
    m.name = "OFA_Supernet";
    Cursor cur{224, 224, 3};
    addConv(m.layers, cur, "stem", 16, 3, 2);
    addInvertedResidual(m.layers, cur, "stem.b0", 16, 3, 1, 1);
    // Variants diverge after the shared stem.
    m.supernetSwitchPoint = m.layers.size();
    const Cursor at_switch = cur;

    // Original (heaviest) subnet: full depth, width and expansion.
    auto original =
        ofaBody("ofa", at_switch,
                {{24, 3, 5, 2, 6},
                 {40, 4, 5, 2, 6},
                 {80, 4, 3, 2, 6},
                 {112, 4, 5, 1, 6},
                 {160, 4, 5, 2, 6}},
                960);
    m.layers.insert(m.layers.end(), original.begin(), original.end());

    // Lighter subnets: elastic depth (v1), width (v2), both (v3).
    m.variants.push_back(
        {"ofa-v1", ofaBody("ofa.v1", at_switch,
                           {{24, 2, 5, 2, 4},
                            {40, 3, 5, 2, 4},
                            {80, 3, 3, 2, 4},
                            {112, 3, 5, 1, 4},
                            {160, 3, 5, 2, 4}},
                           960)});
    m.variants.push_back(
        {"ofa-v2", ofaBody("ofa.v2", at_switch,
                           {{24, 2, 3, 2, 4},
                            {32, 2, 3, 2, 4},
                            {64, 3, 3, 2, 4},
                            {96, 2, 3, 1, 4},
                            {128, 2, 3, 2, 4}},
                           640)});
    m.variants.push_back(
        {"ofa-v3", ofaBody("ofa.v3", at_switch,
                           {{16, 1, 3, 2, 3},
                            {24, 2, 3, 2, 3},
                            {40, 2, 3, 2, 3},
                            {64, 2, 3, 1, 3},
                            {96, 1, 3, 2, 3}},
                           480)});
    return m;
}

} // namespace zoo
} // namespace models
} // namespace dream
