#include "models/zoo/builders.h"

#include <cassert>

namespace dream {
namespace models {
namespace zoo {

void
addConv(std::vector<Layer>& layers, Cursor& cur, const std::string& name,
        uint32_t out_c, uint32_t k, uint32_t stride)
{
    Layer l = conv(name, cur.h, cur.w, cur.c, out_c, k, stride);
    cur.h = l.outH();
    cur.w = l.outW();
    cur.c = out_c;
    layers.push_back(std::move(l));
}

void
addConv1d(std::vector<Layer>& layers, Cursor& cur, const std::string& name,
          uint32_t out_c, uint32_t k, uint32_t stride)
{
    Layer l;
    l.name = name;
    l.kind = LayerKind::Conv2d;
    l.inH = 1;
    l.inW = cur.w;
    l.inC = cur.c;
    l.outC = out_c;
    l.kH = 1;
    l.kW = k;
    l.stride = stride;
    cur.h = 1;
    cur.w = l.outW();
    cur.c = out_c;
    layers.push_back(std::move(l));
}

void
addDwConv(std::vector<Layer>& layers, Cursor& cur, const std::string& name,
          uint32_t k, uint32_t stride)
{
    Layer l = dwConv(name, cur.h, cur.w, cur.c, k, stride);
    cur.h = l.outH();
    cur.w = l.outW();
    layers.push_back(std::move(l));
}

void
addPool(std::vector<Layer>& layers, Cursor& cur, const std::string& name,
        uint32_t k, uint32_t stride)
{
    Layer l = pool(name, cur.h, cur.w, cur.c, k, stride);
    cur.h = l.outH();
    cur.w = l.outW();
    layers.push_back(std::move(l));
}

size_t
addInvertedResidual(std::vector<Layer>& layers, Cursor& cur,
                    const std::string& name, uint32_t out_c, uint32_t k,
                    uint32_t stride, uint32_t expand)
{
    assert(expand >= 1);
    const uint32_t in_c = cur.c;
    const bool residual = (stride == 1 && in_c == out_c);
    size_t added = 0;
    if (expand > 1) {
        Layer e = pwConv(name + ".expand", cur.h, cur.w, cur.c,
                         in_c * expand);
        cur.c = in_c * expand;
        layers.push_back(std::move(e));
        ++added;
    }
    addDwConv(layers, cur, name + ".dw", k, stride);
    ++added;
    Layer p = pwConv(name + ".project", cur.h, cur.w, cur.c, out_c);
    cur.c = out_c;
    layers.push_back(std::move(p));
    ++added;
    if (residual) {
        layers.push_back(eltwise(name + ".add", cur.h, cur.w, cur.c));
        ++added;
    }
    return added;
}

size_t
addBasicBlock(std::vector<Layer>& layers, Cursor& cur,
              const std::string& name, uint32_t out_c, uint32_t stride)
{
    const bool projection = (stride != 1 || cur.c != out_c);
    size_t added = 0;
    if (projection) {
        // Shortcut projection runs alongside the main path; appended
        // first so the block's skippable range stays contiguous.
        Layer s = conv(name + ".proj", cur.h, cur.w, cur.c, out_c, 1,
                       stride);
        layers.push_back(std::move(s));
        ++added;
    }
    addConv(layers, cur, name + ".conv1", out_c, 3, stride);
    ++added;
    addConv(layers, cur, name + ".conv2", out_c, 3, 1);
    ++added;
    layers.push_back(eltwise(name + ".add", cur.h, cur.w, cur.c));
    ++added;
    return added;
}

void
addInception(std::vector<Layer>& layers, Cursor& cur,
             const std::string& name, uint32_t b1, uint32_t b3r,
             uint32_t b3, uint32_t b5r, uint32_t b5, uint32_t bp)
{
    const Cursor in = cur;
    // Branch 1: 1x1.
    layers.push_back(pwConv(name + ".b1", in.h, in.w, in.c, b1));
    // Branch 2: 1x1 reduce -> 3x3.
    layers.push_back(pwConv(name + ".b3r", in.h, in.w, in.c, b3r));
    layers.push_back(conv(name + ".b3", in.h, in.w, b3r, b3, 3, 1));
    // Branch 3: 1x1 reduce -> 5x5.
    layers.push_back(pwConv(name + ".b5r", in.h, in.w, in.c, b5r));
    layers.push_back(conv(name + ".b5", in.h, in.w, b5r, b5, 5, 1));
    // Branch 4: 3x3 pool -> 1x1 proj.
    layers.push_back(pool(name + ".pool", in.h, in.w, in.c, 3, 1));
    layers.push_back(pwConv(name + ".bp", in.h, in.w, in.c, bp));
    cur.c = b1 + b3 + b5 + bp;
}

} // namespace zoo
} // namespace models
} // namespace dream
