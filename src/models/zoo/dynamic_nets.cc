/**
 * @file
 * Operator-level dynamic networks: SkipNet (gated residual blocks)
 * and RAPID-RL (preemptive early exits).
 */

#include "models/zoo.h"

#include "models/zoo/builders.h"

namespace dream {
namespace models {
namespace zoo {

Model
skipNet()
{
    Model m;
    m.name = "SkipNet";
    // ResNet-34-style backbone with skip gates on every non-transition
    // residual block. The paper assumes a 50% skip probability per
    // gated block (72% ImageNet top-1 operating point).
    Cursor cur{224, 224, 3};
    addConv(m.layers, cur, "stem", 64, 7, 2);
    addPool(m.layers, cur, "pool", 3, 2);
    const struct { uint32_t c; int blocks; } stages[] =
        {{64, 3}, {128, 4}, {256, 6}, {512, 3}};
    int stage_idx = 0;
    for (const auto& st : stages) {
        for (int b = 0; b < st.blocks; ++b) {
            const std::string name = "g" + std::to_string(stage_idx) +
                ".b" + std::to_string(b);
            const uint32_t stride = (b == 0 && stage_idx > 0) ? 2 : 1;
            const size_t begin = m.layers.size();
            addBasicBlock(m.layers, cur, name, st.c, stride);
            // Transition blocks (stride/width change) are not gated;
            // identity blocks can be skipped.
            if (stride == 1 && b > 0)
                m.skipBlocks.push_back({begin, m.layers.size(), 0.5});
        }
        ++stage_idx;
    }
    addPool(m.layers, cur, "gap", cur.h, cur.h);
    m.layers.push_back(fc("cls", 512, 1000));
    return m;
}

Model
rapidRl()
{
    Model m;
    m.name = "RAPID_RL";
    // Preemptive-exit policy network (Kosta et al., ICRA'22): conv
    // trunk with two exit branches, each taken with probability 0.5.
    Cursor cur{120, 160, 4};
    addConv(m.layers, cur, "conv1", 32, 8, 4);
    addConv(m.layers, cur, "conv2", 64, 4, 2);
    m.layers.push_back(fc("exit1.head", 64 * 15 * 20, 256));
    m.earlyExits.push_back({m.layers.size() - 1, 0.5});
    addConv(m.layers, cur, "conv3", 64, 3, 1);
    m.layers.push_back(fc("exit2.head", 64 * 15 * 20, 256));
    m.earlyExits.push_back({m.layers.size() - 1, 0.5});
    addConv(m.layers, cur, "conv4", 128, 3, 1);
    m.layers.push_back(fc("fc1", 128 * 15 * 20, 512));
    m.layers.push_back(fc("policy", 512, 16));
    return m;
}

} // namespace zoo
} // namespace models
} // namespace dream
