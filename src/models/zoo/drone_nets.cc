/**
 * @file
 * Drone-scenario networks: TrailNet navigation, SOSNet descriptors
 * and GoogLeNet-car classification.
 */

#include "models/zoo.h"

#include "models/zoo/builders.h"

namespace dream {
namespace models {
namespace zoo {

Model
trailNet()
{
    Model m;
    m.name = "TrailNet";
    // s-ResNet-18-style trail orientation/offset net (TrailMAV,
    // Smolyanskiy et al., IROS'17), 320x180 camera input.
    Cursor cur{180, 320, 3};
    addConv(m.layers, cur, "stem", 32, 7, 2);
    addPool(m.layers, cur, "pool", 3, 2);
    const struct { uint32_t c; int blocks; uint32_t stride; } stages[] =
        {{32, 2, 1}, {64, 2, 2}, {128, 2, 2}, {256, 2, 2}};
    int stage_idx = 0;
    for (const auto& st : stages) {
        for (int b = 0; b < st.blocks; ++b) {
            const std::string name = "s" + std::to_string(stage_idx) +
                ".b" + std::to_string(b);
            addBasicBlock(m.layers, cur, name, st.c,
                          b == 0 ? st.stride : 1);
        }
        ++stage_idx;
    }
    addPool(m.layers, cur, "gap", cur.h, cur.h);
    // 3-way view orientation + 3-way lateral offset heads.
    m.layers.push_back(fc("heads", 256, 6));
    return m;
}

Model
sosNet()
{
    Model m;
    m.name = "SOSNet";
    // Local descriptor network (Tian et al., CVPR'19) evaluated on a
    // batch of 16 keypoint patches per frame (32x32 each); the batch
    // is expressed with the repeat field.
    constexpr uint32_t patches = 16;
    Cursor cur{32, 32, 1};
    const struct { uint32_t c; uint32_t k; uint32_t s; } convs[] =
        {{32, 3, 1}, {32, 3, 1}, {64, 3, 2}, {64, 3, 1},
         {128, 3, 2}, {128, 3, 1}};
    int idx = 0;
    for (const auto& cv : convs) {
        Layer l = conv("conv" + std::to_string(idx++), cur.h, cur.w,
                       cur.c, cv.c, cv.k, cv.s);
        l.repeat = patches;
        cur.h = l.outH();
        cur.w = l.outW();
        cur.c = cv.c;
        m.layers.push_back(std::move(l));
    }
    Layer d = conv("desc", cur.h, cur.w, cur.c, 128, 8, 8);
    d.repeat = patches;
    m.layers.push_back(std::move(d));
    return m;
}

Model
googLeNetCar()
{
    Model m;
    m.name = "GoogLeNet-car";
    // GoogLeNet (Inception v1) fine-tuned on CompCars (431 classes).
    Cursor cur{224, 224, 3};
    addConv(m.layers, cur, "stem.conv1", 64, 7, 2);
    addPool(m.layers, cur, "stem.pool1", 3, 2);
    addConv(m.layers, cur, "stem.conv2r", 64, 1, 1);
    addConv(m.layers, cur, "stem.conv2", 192, 3, 1);
    addPool(m.layers, cur, "stem.pool2", 3, 2);
    addInception(m.layers, cur, "3a", 64, 96, 128, 16, 32, 32);
    addInception(m.layers, cur, "3b", 128, 128, 192, 32, 96, 64);
    addPool(m.layers, cur, "pool3", 3, 2);
    addInception(m.layers, cur, "4a", 192, 96, 208, 16, 48, 64);
    addInception(m.layers, cur, "4b", 160, 112, 224, 24, 64, 64);
    addInception(m.layers, cur, "4c", 128, 128, 256, 24, 64, 64);
    addInception(m.layers, cur, "4d", 112, 144, 288, 32, 64, 64);
    addInception(m.layers, cur, "4e", 256, 160, 320, 32, 128, 128);
    addPool(m.layers, cur, "pool4", 3, 2);
    addInception(m.layers, cur, "5a", 256, 160, 320, 32, 128, 128);
    addInception(m.layers, cur, "5b", 384, 192, 384, 48, 128, 128);
    addPool(m.layers, cur, "gap", cur.h, cur.h);
    m.layers.push_back(fc("cls.car", 1024, 431));
    return m;
}

} // namespace zoo
} // namespace models
} // namespace dream
