/**
 * @file
 * Reusable block builders for the model zoo (inverted residuals,
 * residual blocks, inception modules, conv1d).
 */

#ifndef DREAM_MODELS_ZOO_BUILDERS_H
#define DREAM_MODELS_ZOO_BUILDERS_H

#include <cstdint>
#include <string>
#include <vector>

#include "models/layer.h"

namespace dream {
namespace models {
namespace zoo {

/**
 * Running spatial cursor used while appending blocks to a layer list.
 * Tracks the current feature-map shape so block builders can chain.
 */
struct Cursor {
    uint32_t h = 0;
    uint32_t w = 0;
    uint32_t c = 0;
};

/** Append a conv + implicit BN/ReLU; advances the cursor. */
void addConv(std::vector<Layer>& layers, Cursor& cur,
             const std::string& name, uint32_t out_c, uint32_t k,
             uint32_t stride = 1);

/** Append a 1-D temporal conv over a (1 x T x C) tensor. */
void addConv1d(std::vector<Layer>& layers, Cursor& cur,
               const std::string& name, uint32_t out_c, uint32_t k,
               uint32_t stride = 1);

/** Append a depthwise conv; advances the cursor. */
void addDwConv(std::vector<Layer>& layers, Cursor& cur,
               const std::string& name, uint32_t k, uint32_t stride = 1);

/** Append a pooling layer; advances the cursor. */
void addPool(std::vector<Layer>& layers, Cursor& cur,
             const std::string& name, uint32_t k, uint32_t stride);

/**
 * Append a MobileNetV2-style inverted-residual block:
 * pw expand (ratio @p expand) -> dw kxk (stride) -> pw project
 * (+ residual eltwise when stride==1 and channels match).
 *
 * @return the number of layers appended.
 */
size_t addInvertedResidual(std::vector<Layer>& layers, Cursor& cur,
                           const std::string& name, uint32_t out_c,
                           uint32_t k, uint32_t stride, uint32_t expand);

/**
 * Append a ResNet basic block (two 3x3 convs + residual add).
 * When @p stride > 1 or channels change, a projection shortcut conv is
 * also appended.
 *
 * @return the number of layers appended.
 */
size_t addBasicBlock(std::vector<Layer>& layers, Cursor& cur,
                     const std::string& name, uint32_t out_c,
                     uint32_t stride = 1);

/**
 * Append a GoogLeNet inception module with branch output channels
 * @p b1 (1x1), @p b3r -> @p b3 (3x3 reduce/out), @p b5r -> @p b5
 * (5x5 reduce/out) and @p bp (pool-proj). Branches are laid out
 * sequentially in the layer list (the scheduler treats the model as a
 * layer chain; branch-level parallelism inside one model is below the
 * paper's scheduling granularity).
 */
void addInception(std::vector<Layer>& layers, Cursor& cur,
                  const std::string& name, uint32_t b1, uint32_t b3r,
                  uint32_t b3, uint32_t b5r, uint32_t b5, uint32_t bp);

} // namespace zoo
} // namespace models
} // namespace dream

#endif // DREAM_MODELS_ZOO_BUILDERS_H
