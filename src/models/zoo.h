/**
 * @file
 * Model zoo: layer-level descriptions of every network used in the
 * paper's five RTMM scenarios (Table 3).
 *
 * Shapes follow the published architectures, scaled where the original
 * is a datacenter-class network (GNMT) to the mobile-class deployment
 * the paper targets; the scaling preserves each network's character
 * (FC/RNN-heavy vs conv-heavy, activation-heavy vs weight-heavy),
 * which is what drives dataflow affinity and scheduling behaviour.
 */

#ifndef DREAM_MODELS_ZOO_H
#define DREAM_MODELS_ZOO_H

#include "models/model.h"

namespace dream {
namespace models {
namespace zoo {

/** FBNet-C, used for gaze estimation (VR_Gaming). ~240 MMACs. */
Model fbnetC();

/** SSD-MobileNetV2 300x300 detector (hand/object/face detection). */
Model ssdMobileNetV2();

/** HandPoseNet: depth-image hand pose regression (VR_Gaming). */
Model handPoseNet();

/**
 * Once-for-All Supernet for (visual) context understanding, with four
 * weight-sharing subnets: Original (default path) plus three lighter
 * variants selected by DREAM's Supernet switching.
 */
Model ofaSupernet();

/** res8 keyword-spotting network (audio pipelines). */
Model kwsRes8();

/**
 * GNMT translation model (mobile-scaled: 4 LSTM layers, 1024 hidden,
 * 16k vocab, 24 decode steps). RNN/FC dominated and DRAM-heavy, as in
 * the datacenter original.
 */
Model gnmt();

/**
 * SkipNet: ResNet-34-style backbone with per-block skip gates
 * (operator-level dynamicity; 50% skip probability per gated block,
 * as assumed in the paper's evaluation).
 */
Model skipNet();

/** TrailNet: s-ResNet-18-style trail navigation (Drone_Outdoor). */
Model trailNet();

/** SOSNet: local-descriptor network batched over image patches. */
Model sosNet();

/**
 * RAPID-RL: reconfigurable policy network with preemptive exits
 * (Drone_Indoor); two early-exit branches at 50% each.
 */
Model rapidRl();

/** GoogLeNet fine-tuned for car classification (Drone_Indoor). */
Model googLeNetCar();

/** Single-image depth estimation with focal-length embedding. */
Model focalLengthDepth();

/** ED-TCN: temporal convolutional action segmentation. */
Model edTcn();

/** VGG-M speaker/face-verification network (VoxCeleb). */
Model vggVoxCeleb();

} // namespace zoo
} // namespace models
} // namespace dream

#endif // DREAM_MODELS_ZOO_H
