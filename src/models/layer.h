/**
 * @file
 * Layer (operator) descriptor for the DREAM model zoo.
 *
 * DREAM consumes per-(layer, accelerator) latency/energy tables generated
 * offline by a cost model (the paper uses MAESTRO). The scheduler therefore
 * only needs each operator's *shape*: MAC count, weight footprint and
 * activation footprint, plus enough structure (accumulation depth, output
 * positions, grouping) for a dataflow-aware cost model to rank WS vs OS
 * affinity the way MAESTRO does.
 *
 * All tensors are int8-quantised (1 byte/element), the common deployment
 * format for dense edge accelerators such as NVDLA.
 */

#ifndef DREAM_MODELS_LAYER_H
#define DREAM_MODELS_LAYER_H

#include <cstdint>
#include <string>

namespace dream {
namespace models {

/** Operator category. Determines the MAC/footprint formulas. */
enum class LayerKind {
    /** 2-D convolution (optionally grouped / depthwise). */
    Conv2d,
    /** Fully-connected / matrix-vector layer. */
    FullyConnected,
    /**
     * Recurrent cell applied @ref Layer::repeat times (LSTM/GRU step).
     * Weights are shared across steps; activations stream per step.
     */
    Rnn,
    /** Pooling (max/avg); no weights, one multiply-accumulate per tap. */
    Pool,
    /** Elementwise op (residual add, activation); one op per element. */
    Eltwise,
};

/** Short name ("conv", "fc", ...). */
std::string toString(LayerKind kind);

/**
 * Shape descriptor of one operator instance.
 *
 * Convolutions use the full field set; FC layers set the spatial fields
 * to one and use inC/outC as in/out features. Same-padding is assumed,
 * so outH = ceil(inH/stride).
 */
struct Layer {
    std::string name;
    LayerKind kind = LayerKind::Conv2d;

    uint32_t inH = 1;     ///< input height
    uint32_t inW = 1;     ///< input width
    uint32_t inC = 1;     ///< input channels (or in features)
    uint32_t outC = 1;    ///< output channels (or out features)
    uint32_t kH = 1;      ///< kernel height
    uint32_t kW = 1;      ///< kernel width
    uint32_t stride = 1;  ///< spatial stride
    uint32_t groups = 1;  ///< channel groups (== inC for depthwise)
    uint32_t repeat = 1;  ///< temporal steps (Rnn) or batched repeats

    /** Output height under same-padding. */
    uint32_t outH() const;
    /** Output width under same-padding. */
    uint32_t outW() const;
    /** Output spatial positions (outH * outW). */
    uint64_t outPositions() const;
    /** Input channels per group. */
    uint32_t inCPerGroup() const;
    /** Accumulation depth per output element (icg * kH * kW). */
    uint64_t accumulationDepth() const;

    /** Total multiply-accumulates for one inference of this layer. */
    uint64_t macs() const;
    /** Weight footprint in bytes (int8). */
    uint64_t weightBytes() const;
    /** Input activation footprint in bytes (int8), across all repeats. */
    uint64_t inputBytes() const;
    /** Output activation footprint in bytes (int8), across all repeats. */
    uint64_t outputBytes() const;
};

/** @name Layer factory helpers used throughout the zoo. */
/// @{

/** Standard 2-D convolution. */
Layer conv(const std::string& name, uint32_t in_h, uint32_t in_w,
           uint32_t in_c, uint32_t out_c, uint32_t k, uint32_t stride = 1);

/** Depthwise 2-D convolution (groups == inC == outC). */
Layer dwConv(const std::string& name, uint32_t in_h, uint32_t in_w,
             uint32_t c, uint32_t k, uint32_t stride = 1);

/** Pointwise (1x1) convolution. */
Layer pwConv(const std::string& name, uint32_t in_h, uint32_t in_w,
             uint32_t in_c, uint32_t out_c);

/** Fully-connected layer. */
Layer fc(const std::string& name, uint32_t in_features,
         uint32_t out_features);

/** Recurrent cell run for @p steps steps. */
Layer rnn(const std::string& name, uint32_t in_features,
          uint32_t out_features, uint32_t steps);

/** Pooling layer. */
Layer pool(const std::string& name, uint32_t in_h, uint32_t in_w,
           uint32_t c, uint32_t k, uint32_t stride);

/** Elementwise layer over an (h, w, c) tensor. */
Layer eltwise(const std::string& name, uint32_t h, uint32_t w, uint32_t c);

/// @}

} // namespace models
} // namespace dream

#endif // DREAM_MODELS_LAYER_H
