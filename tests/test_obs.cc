/**
 * @file
 * Tests for the telemetry layer: the exact-quantile latency
 * histogram and metrics registry (src/obs/metrics.h), the Chrome
 * trace-event sink (src/obs/trace_event.h), the trace reader/
 * profiler behind dream_prof (src/tools/trace_prof.h), the
 * simulator/engine hooks that feed them, and the per-worker
 * occupancy reporting in WorkerPool and the shard orchestrator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/worker_pool.h"
#include "costmodel/cost_table.h"
#include "costmodel/cost_table_cache.h"
#include "hw/system.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace_event.h"
#include "runner/experiment.h"
#include "sched/fcfs.h"
#include "sim/simulator.h"
#include "tools/shard_sched.h"
#include "tools/trace_prof.h"
#include "workload/scenario.h"

namespace dream {
namespace {

// ------------------------------------------------ LatencyHistogram

TEST(LatencyHistogram, EmptyHistogramYieldsNaNEverywhere)
{
    obs::LatencyHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(std::isnan(h.min()));
    EXPECT_TRUE(std::isnan(h.max()));
    EXPECT_TRUE(std::isnan(h.mean()));
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
    EXPECT_EQ(h.sum(), 0.0);
}

TEST(LatencyHistogram, SingleSampleIsEveryQuantile)
{
    obs::LatencyHistogram h;
    h.record(42.5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 42.5);
    EXPECT_EQ(h.max(), 42.5);
    EXPECT_EQ(h.quantile(0.0), 42.5);
    EXPECT_EQ(h.quantile(0.5), 42.5);
    EXPECT_EQ(h.quantile(0.999), 42.5);
    EXPECT_EQ(h.mean(), 42.5);
}

TEST(LatencyHistogram, NaNSamplesAreDropped)
{
    obs::LatencyHistogram h;
    h.record(std::numeric_limits<double>::quiet_NaN());
    EXPECT_TRUE(h.empty());
    h.record(1.0);
    h.record(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.quantile(0.5), 1.0);
}

TEST(LatencyHistogram, QuantilesInterpolateBetweenOrderStatistics)
{
    obs::LatencyHistogram h;
    // Inserted out of order on purpose: quantiles sort internally.
    for (double v : {40.0, 10.0, 30.0, 20.0})
        h.record(v);
    // pos = q * (n - 1): q=0.5 -> 1.5 -> halfway 20..30.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 25.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 40.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0 / 3.0), 20.0);
}

TEST(LatencyHistogram, MergeIsOrderIndependent)
{
    // The sum is accumulated over the sorted samples, so any merge
    // interleaving yields bit-identical aggregates — the property
    // the --jobs determinism of --metrics rests on.
    obs::LatencyHistogram a, b;
    const std::vector<double> va = {3.125, 1e9, 0.1, 7.75};
    const std::vector<double> vb = {2.5, 1e-3, 88.0};
    for (double v : va)
        a.record(v);
    for (double v : vb)
        b.record(v);

    obs::LatencyHistogram ab, ba;
    ab.merge(a);
    ab.merge(b);
    ba.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab.count(), ba.count());
    EXPECT_EQ(ab.sum(), ba.sum());
    EXPECT_EQ(ab.min(), ba.min());
    EXPECT_EQ(ab.max(), ba.max());
    for (double q : {0.5, 0.9, 0.99, 0.999})
        EXPECT_EQ(ab.quantile(q), ba.quantile(q)) << q;
}

// ------------------------------------------------- MetricsRegistry

TEST(MetricsRegistry, MergeAddsCountersGaugesAndHistograms)
{
    obs::MetricsRegistry a, b;
    a.count("frames", 3);
    b.count("frames", 4);
    b.count("drops");
    a.gaugeAdd("energy", 1.5);
    b.gaugeAdd("energy", 2.5);
    a.histogram("lat").record(1.0);
    b.histogram("lat").record(2.0);

    obs::MetricsRegistry m;
    m.merge(a);
    m.merge(b);
    std::ostringstream out;
    m.writeJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"frames\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"drops\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"energy\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
}

TEST(MetricsRegistry, VolatileMetricsStayOutOfTheCanonicalDump)
{
    obs::MetricsRegistry m;
    m.count("stable", 1);
    m.histogram("wall_ns").record(123.0);
    m.markVolatile("wall_ns");
    m.gaugeSet("busy_s", 9.0);
    m.markVolatile("busy_s");

    std::ostringstream canonical, full;
    m.writeJson(canonical);
    m.writeJson(full, /*include_volatile=*/true);
    EXPECT_EQ(canonical.str().find("wall_ns"), std::string::npos);
    EXPECT_EQ(canonical.str().find("busy_s"), std::string::npos);
    EXPECT_NE(canonical.str().find("stable"), std::string::npos);
    EXPECT_NE(full.str().find("wall_ns"), std::string::npos);
    EXPECT_NE(full.str().find("busy_s"), std::string::npos);
}

TEST(MetricsRegistry, MergedDumpIsByteIdenticalInAnyOrder)
{
    obs::MetricsRegistry a, b;
    for (int i = 0; i < 17; ++i)
        a.histogram("h").record(std::sqrt(double(i) + 0.3));
    for (int i = 0; i < 11; ++i)
        b.histogram("h").record(1.0 / (double(i) + 1.7));
    a.count("c", 5);
    b.count("c", 9);

    obs::MetricsRegistry ab, ba;
    ab.merge(a);
    ab.merge(b);
    ba.merge(b);
    ba.merge(a);
    std::ostringstream sab, sba;
    ab.writeJson(sab);
    ba.writeJson(sba);
    EXPECT_EQ(sab.str(), sba.str());
}

// -------------------------------------------------- TraceEventSink

TEST(TraceEventSink, WritesParsableChromeTraceJson)
{
    obs::TraceEventSink sink{7};
    sink.processName("point-key");
    sink.threadName(0, "accel0 WS0-2K");
    sink.threadName(1, "scheduler");
    sink.runMeta(obs::TraceArgs()
                     .str("key", "point-key")
                     .num("window_us", 1000.0));
    sink.span(0, "ssd", "job", 10.0, 30.0,
              obs::TraceArgs().integer("frame", 1));
    sink.span(1, "schedule", "sched", 15.0, 0.0,
              obs::TraceArgs().num("wall_ns", 250.0).num("rounds",
                                                         1.0));
    sink.instant(1, "frame_arrival", "frame", 20.0,
                 obs::TraceArgs().str("task", "a \"b\"\nc"));

    std::ostringstream out;
    sink.writeJson(out);

    std::istringstream in(out.str());
    const auto profile = tools::readTraceEventJson(in, "test");
    ASSERT_EQ(profile.events.size(), 7u);
    ASSERT_EQ(profile.points.size(), 1u);
    const auto& pt = profile.points[0];
    EXPECT_EQ(pt.pid, 7);
    EXPECT_EQ(pt.key, "point-key");
    EXPECT_EQ(pt.windowUs, 1000.0);
    ASSERT_EQ(pt.accels.size(), 1u);
    EXPECT_EQ(pt.accels[0].name, "accel0 WS0-2K");
    EXPECT_EQ(pt.accels[0].jobs, 1u);
    EXPECT_EQ(pt.accels[0].busyUs, 30.0);
    EXPECT_EQ(pt.schedInvocations, 1u);
    ASSERT_EQ(pt.decisionWallNs.size(), 1u);
    EXPECT_EQ(pt.decisionWallNs[0], 250.0);
    EXPECT_EQ(pt.frameArrivals, 1u);

    // The escaped instant arg round-trips through quote/unquote.
    bool found = false;
    for (const auto& ev : profile.events) {
        if (ev.ph != 'i')
            continue;
        const std::string* task = ev.arg("task");
        ASSERT_NE(task, nullptr);
        EXPECT_EQ(*task, "a \"b\"\nc");
        found = true;
    }
    EXPECT_TRUE(found);
}

TEST(TraceProf, RejectsBackwardTimestampsOnOneTrack)
{
    const std::string bad =
        "[\n"
        "{\"name\": \"a\", \"ph\": \"i\", \"ts\": 10, \"s\": \"t\","
        " \"pid\": 0, \"tid\": 0},\n"
        "{\"name\": \"b\", \"ph\": \"i\", \"ts\": 5, \"s\": \"t\","
        " \"pid\": 0, \"tid\": 0}\n"
        "]\n";
    std::istringstream in(bad);
    EXPECT_THROW(tools::readTraceEventJson(in, "bad"),
                 std::runtime_error);

    // The same timestamps on DIFFERENT tracks are fine — the
    // monotonicity contract is per (pid, tid).
    const std::string ok =
        "[\n"
        "{\"name\": \"a\", \"ph\": \"i\", \"ts\": 10, \"s\": \"t\","
        " \"pid\": 0, \"tid\": 0},\n"
        "{\"name\": \"b\", \"ph\": \"i\", \"ts\": 5, \"s\": \"t\","
        " \"pid\": 0, \"tid\": 1}\n"
        "]\n";
    std::istringstream in_ok(ok);
    EXPECT_NO_THROW(tools::readTraceEventJson(in_ok, "ok"));
}

TEST(TraceProf, RejectsMalformedEvents)
{
    const auto reject = [](const std::string& text) {
        std::istringstream in(text);
        EXPECT_THROW(tools::readTraceEventJson(in, "t"),
                     std::runtime_error)
            << text;
    };
    reject("{}");                   // not an array
    reject("[{\"ph\": \"X\"}]");    // missing name/pid/tid
    reject("[{\"name\": \"a\", \"ph\": \"X\", \"ts\": 1, "
           "\"dur\": -2, \"pid\": 0, \"tid\": 0}]"); // negative dur
    reject("[{\"name\": \"a\", \"ph\": \"Q\", \"ts\": 1, "
           "\"pid\": 0, \"tid\": 0}]"); // unknown phase
    reject("[] trailing");
}

// ------------------------------------------- metrics-dump reader

TEST(MetricsProf, RoundTripsARegistryDumpIntoTheCacheReport)
{
    obs::MetricsRegistry m;
    m.count("costcache/hit", 9);
    m.count("costcache/miss", 3);
    m.count("costcache/evict", 1);
    m.markVolatile("costcache/hit");
    m.markVolatile("costcache/miss");
    m.markVolatile("costcache/evict");
    m.count("frames/total", 42);
    m.gaugeSet("busy", 0.5);
    m.histogram("wall_ns").record(100.0);

    std::ostringstream full;
    m.writeJson(full, /*include_volatile=*/true);
    std::istringstream in(full.str());
    const auto profile = tools::readMetricsJson(in, "t");

    EXPECT_TRUE(profile.has("costcache/hit"));
    EXPECT_EQ(profile.counter("costcache/hit"), 9.0);
    EXPECT_EQ(profile.counter("costcache/miss"), 3.0);
    EXPECT_EQ(profile.counter("frames/total"), 42.0);
    EXPECT_EQ(profile.counter("absent", -1.0), -1.0);

    const auto report = tools::cacheReport(profile);
    EXPECT_NE(report.find("hits"), std::string::npos);
    EXPECT_NE(report.find("9"), std::string::npos);
    EXPECT_NE(report.find("75.0%"), std::string::npos);
}

TEST(MetricsProf, CanonicalDumpWithoutCacheCountersExplainsItself)
{
    obs::MetricsRegistry m;
    m.count("costcache/hit", 9);
    m.markVolatile("costcache/hit");
    m.count("frames/total", 42);

    // The canonical dump excludes the volatile cache counters, so
    // the report must say how to record them, not print zeros.
    std::ostringstream canonical;
    m.writeJson(canonical);
    std::istringstream in(canonical.str());
    const auto report = tools::cacheReport(tools::readMetricsJson(in));
    EXPECT_NE(report.find("--metrics-full"), std::string::npos);
    EXPECT_EQ(report.find("hit rate"), std::string::npos);
}

TEST(MetricsProf, RejectsMalformedDumps)
{
    const auto reject = [](const std::string& text) {
        std::istringstream in(text);
        EXPECT_THROW(tools::readMetricsJson(in, "t"),
                     std::runtime_error)
            << text;
    };
    reject("");
    reject("[]");                      // not an object
    reject("{\"counters\": 3}");       // section not an object
    reject("{\"counters\": {}} junk"); // trailing data
}

// ------------------------------------------- simulator telemetry

struct SimRun {
    sim::RunStats stats;
    obs::TraceEventSink trace{0};
    obs::MetricsRegistry metrics;
};

SimRun
runWithTelemetry(bool attach)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    cost::CostTable costs(system);
    for (const auto& t : scenario.tasks)
        costs.addModel(t.model);

    sim::SimConfig cfg;
    cfg.windowUs = 2e5;
    cfg.seed = 11;
    SimRun run;
    obs::SimTelemetry telemetry;
    if (attach) {
        run.trace.runMeta(
            obs::TraceArgs().num("window_us", cfg.windowUs));
        telemetry.trace = &run.trace;
        telemetry.metrics = &run.metrics;
        cfg.telemetry = &telemetry;
    }
    sched::FcfsScheduler fcfs;
    sim::Simulator simulator(system, scenario, costs, cfg);
    run.stats = simulator.run(fcfs);
    return run;
}

TEST(SimTelemetry, JobSpanUnionMatchesReportedBusyTime)
{
    SimRun run = runWithTelemetry(true);
    ASSERT_GT(run.trace.size(), 0u);

    std::ostringstream out;
    run.trace.writeJson(out);
    std::istringstream in(out.str());
    const auto profile = tools::readTraceEventJson(in, "sim");
    ASSERT_EQ(profile.points.size(), 1u);
    const auto& pt = profile.points[0];
    ASSERT_EQ(pt.accels.size(), run.stats.accelBusyUs.size());
    for (size_t i = 0; i < pt.accels.size(); ++i) {
        // dream_prof recomputes the SAME busy quantity the
        // simulator tracks: union of job spans clamped to the
        // window. Exact equality, not approximate.
        EXPECT_DOUBLE_EQ(pt.accels[i].busyUs,
                         run.stats.accelBusyUs[i])
            << "accel " << i;
        EXPECT_GT(pt.accels[i].jobs, 0u);
        EXPECT_LE(run.stats.accelBusyUs[i], run.stats.windowUs);
    }
    EXPECT_GT(pt.frameArrivals, 0u);
    EXPECT_GT(pt.schedInvocations, 0u);
    EXPECT_EQ(pt.decisionWallNs.size(), pt.schedInvocations);
}

TEST(SimTelemetry, AttachingTelemetryDoesNotChangeTheRun)
{
    SimRun with = runWithTelemetry(true);
    SimRun without = runWithTelemetry(false);
    EXPECT_EQ(without.trace.size(), 0u);
    EXPECT_TRUE(without.metrics.empty());

    ASSERT_EQ(with.stats.tasks.size(), without.stats.tasks.size());
    for (size_t t = 0; t < with.stats.tasks.size(); ++t) {
        EXPECT_EQ(with.stats.tasks[t].totalFrames,
                  without.stats.tasks[t].totalFrames);
        EXPECT_EQ(with.stats.tasks[t].violatedFrames,
                  without.stats.tasks[t].violatedFrames);
        EXPECT_EQ(with.stats.tasks[t].energyMj,
                  without.stats.tasks[t].energyMj);
    }
    EXPECT_EQ(with.stats.contextSwitches,
              without.stats.contextSwitches);
    ASSERT_EQ(with.stats.accelBusyUs.size(),
              without.stats.accelBusyUs.size());
    for (size_t i = 0; i < with.stats.accelBusyUs.size(); ++i)
        EXPECT_EQ(with.stats.accelBusyUs[i],
                  without.stats.accelBusyUs[i]);
}

TEST(SimTelemetry, FrameCountersMatchRunStats)
{
    SimRun run = runWithTelemetry(true);
    std::ostringstream out;
    run.metrics.writeJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"frames/total\": " +
                        std::to_string(run.stats.totalFrames())),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"frames/violated\": " +
                        std::to_string(run.stats.totalViolated())),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("frame/latency_us"), std::string::npos);
    EXPECT_NE(json.find("frame/queue_wait_us"), std::string::npos);
    // Wall-clock decision time is volatile: in the trace args and
    // the full dump, never in the canonical one.
    EXPECT_EQ(json.find("sched/decision_wall_ns"),
              std::string::npos);
    std::ostringstream full;
    run.metrics.writeJson(full, /*include_volatile=*/true);
    EXPECT_NE(full.str().find("sched/decision_wall_ns"),
              std::string::npos);
}

// ----------------------------------------------- engine plumbing

engine::SweepGrid
obsGrid()
{
    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::ArCall)
        .addSystem(hw::SystemPreset::Sys4k2Ws)
        .addScheduler(runner::SchedKind::Fcfs)
        .addScheduler(runner::SchedKind::StaticFcfs)
        .seeds({11, 13})
        .window(1e5);
    return grid;
}

TEST(EngineTelemetry, MetricsDumpIsByteIdenticalAcrossJobs)
{
    const auto grid = obsGrid();
    obs::MetricsRegistry m1, m4;
    engine::EngineOptions o1, o4;
    o1.jobs = 1;
    o1.metrics = &m1;
    o4.jobs = 4;
    o4.metrics = &m4;
    engine::Engine(o1).run(grid);
    engine::Engine(o4).run(grid);

    std::ostringstream s1, s4;
    m1.writeJson(s1);
    m4.writeJson(s4);
    EXPECT_FALSE(m1.empty());
    EXPECT_EQ(s1.str(), s4.str());
}

TEST(EngineTelemetry, CostCacheCountersAreRecordedButVolatile)
{
    // Cache traffic depends on scheduling history (which worker
    // misses first), so the counters must reach profilers through
    // the full dump while staying out of the canonical one.
    const bool saved = cost::CostTableCache::enabled();
    cost::CostTableCache::setEnabled(true);
    cost::CostTableCache::global().clear();

    const auto grid = obsGrid();
    obs::MetricsRegistry m;
    engine::EngineOptions opts;
    opts.jobs = 1;
    opts.metrics = &m;
    engine::Engine(opts).run(grid);

    cost::CostTableCache::setEnabled(saved);
    cost::CostTableCache::global().clear();

    ASSERT_TRUE(m.counters().count("costcache/hit"));
    ASSERT_TRUE(m.counters().count("costcache/miss"));
    // One (system, model set) pair across the grid's four points:
    // the first acquisition builds, the other three hit.
    EXPECT_EQ(m.counters().at("costcache/miss"), 1u);
    EXPECT_EQ(m.counters().at("costcache/hit"), 3u);

    std::ostringstream canonical, full;
    m.writeJson(canonical);
    m.writeJson(full, /*include_volatile=*/true);
    EXPECT_EQ(canonical.str().find("costcache/"), std::string::npos);
    EXPECT_NE(full.str().find("costcache/hit"), std::string::npos);
    EXPECT_NE(full.str().find("costcache/miss"), std::string::npos);
}

TEST(EngineTelemetry, WritesOneValidTraceFilePerPoint)
{
    const std::string dir =
        ::testing::TempDir() + "dream_obs_trace_events";
    std::filesystem::remove_all(dir);
    const auto grid = obsGrid();
    engine::EngineOptions opts;
    opts.jobs = 2;
    opts.traceEventDir = dir;
    engine::Engine(opts).run(grid);

    for (size_t i = 0; i < grid.size(); ++i) {
        const auto point = grid.point(i);
        const std::string name = engine::traceEventFileName(point);
        EXPECT_EQ(name.substr(name.size() - 11), ".trace.json");
        const std::string path = dir + '/' + name;
        ASSERT_TRUE(std::filesystem::exists(path)) << path;
        const auto profile = tools::readTraceEventJson(path);
        ASSERT_EQ(profile.points.size(), 1u);
        EXPECT_EQ(profile.points[0].pid, (long long) i);
        EXPECT_EQ(profile.points[0].key, point.key());
        EXPECT_EQ(profile.points[0].windowUs, point.windowUs);
        EXPECT_FALSE(profile.points[0].accels.empty());
    }
    std::filesystem::remove_all(dir);
}

TEST(EngineTelemetry, DisabledTelemetryWritesNoFiles)
{
    const std::string dir =
        ::testing::TempDir() + "dream_obs_disabled";
    std::filesystem::remove_all(dir);
    const auto grid = obsGrid();
    engine::EngineOptions opts; // no traceEventDir, no metrics
    opts.jobs = 2;
    engine::Engine(opts).run(grid);
    EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(WorkerPool, ReportsPerWorkerOccupancy)
{
    engine::WorkerPool pool(3);
    pool.parallelFor(16, [](size_t) {});
    const auto& stats = pool.lastRunStats();
    ASSERT_LE(stats.size(), 3u);
    ASSERT_FALSE(stats.empty());
    uint64_t items = 0;
    for (const auto& ws : stats) {
        items += ws.items;
        EXPECT_GE(ws.busySeconds, 0.0);
        EXPECT_GE(ws.idleSeconds, 0.0);
    }
    EXPECT_EQ(items, 16u);

    engine::WorkerPool serial(1);
    serial.parallelFor(5, [](size_t) {});
    ASSERT_EQ(serial.lastRunStats().size(), 1u);
    EXPECT_EQ(serial.lastRunStats()[0].items, 5u);
    EXPECT_EQ(serial.lastRunStats()[0].steals, 0u);
}

TEST(ChunkReport, IncludesPerWorkerUtilizationSection)
{
    tools::OrchestratorOptions opts;
    opts.command = {"bench"};
    tools::OrchestratorResult result;
    result.ok = true;
    result.workers = 2;
    result.wallSeconds = 10.0;
    result.chunks.resize(2);
    result.chunks[0].chunk = {0, 4};
    result.chunks[0].attempts = 1;
    result.chunks[0].worker = 0;
    result.chunks[0].wallSeconds = 4.0;
    result.chunks[0].ok = true;
    result.chunks[1].chunk = {4, 8};
    result.chunks[1].attempts = 2;
    result.chunks[1].worker = 1;
    result.chunks[1].wallSeconds = 6.0;
    result.chunks[1].ok = true;
    result.workerStats.resize(2);
    result.workerStats[0] = {2, 1, 7.5};
    result.workerStats[1] = {1, 0, 6.0};

    std::ostringstream out;
    tools::writeChunkReport(opts, result, out);
    const std::string report = out.str();
    EXPECT_NE(report.find("| worker | chunks run | failed attempts "
                          "| busy (s) | idle (s) | utilization |"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("| 0 | 2 | 1 | 7.500 | 2.500 | 75.0% |"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("| 1 | 1 | 0 | 6.000 | 4.000 | 60.0% |"),
              std::string::npos)
        << report;
}

// --------------------------------------------------- FrameRecord

TEST(FrameRecord, CompletionDefaultsToNaNNotSentinel)
{
    sim::FrameRecord fr;
    EXPECT_TRUE(std::isnan(fr.completionUs));
    EXPECT_FALSE(fr.isCompleted());
    fr.completionUs = 0.0; // completing exactly at t=0 is valid
    EXPECT_TRUE(fr.isCompleted());
}

} // namespace
} // namespace dream
