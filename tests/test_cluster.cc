/** @file Tests for the cluster serving layer: Simulator streaming
 *  edge cases, SessionDemux pinning, Dispatcher policies, the
 *  single-device Cluster's bit-identity with ServeLoop::run,
 *  N-device replay determinism, and the device-namespaced metric
 *  schema. */

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "costmodel/cost_table.h"
#include "runner/experiment.h"
#include "runner/trace.h"
#include "sched/fcfs.h"
#include "serve/cluster.h"
#include "serve/dispatcher.h"
#include "serve/serve_loop.h"
#include "sim/simulator.h"
#include "workload/frame_source.h"
#include "workload/session_demux.h"
#include "workload/stream_source.h"

#include "test_util.h"

namespace dream {
namespace {

cost::CostTable
buildCosts(const hw::SystemConfig& system,
           const workload::Scenario& scenario)
{
    cost::CostTable costs(system);
    for (const auto& t : scenario.tasks)
        costs.addModel(t.model);
    return costs;
}

/** Push every root frame in arrival order and close the stream. */
void
feedStream(workload::StreamSource& stream,
           const workload::ArrivalSource& source, double window_us)
{
    auto frames = source.rootFrames(window_us);
    std::stable_sort(frames.begin(), frames.end(),
                     [](const auto& a, const auto& b) {
                         return a.arrivalUs < b.arrivalUs;
                     });
    for (auto& frame : frames)
        stream.push(std::move(frame));
    stream.close();
}

serve::ClusterResult
runCluster(const hw::SystemConfig& system,
           const workload::Scenario& scenario,
           const cost::CostTable& costs, serve::ClusterConfig config,
           double window_us, uint64_t seed)
{
    config.serve.windowUs = window_us;
    config.serve.seed = seed;
    const workload::FrameSource frames(scenario, seed);
    workload::StreamSource intake(frames);
    feedStream(intake, frames, window_us);
    serve::Cluster cluster(system, scenario, costs, config);
    return cluster.run(
        [] { return runner::makeScheduler(runner::SchedKind::Fcfs); },
        intake);
}

// --------------------------------- Simulator streaming edge cases

TEST(ClusterSim, AdvanceToWithNoPendingArrivalsIsHarmless)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const auto costs = buildCosts(system, scenario);

    sim::SimConfig cfg;
    cfg.windowUs = 2e5;
    sim::Simulator sim(system, scenario, costs, cfg);
    sched::FcfsScheduler fcfs;
    sim.beginStream(fcfs);

    // Advancing an idle simulator (nothing offered yet) is a no-op:
    // the clock is event-driven, so with no pending arrivals,
    // completions or wakeups it stays put — in any number of steps.
    sim.advanceTo(1e4);
    sim.advanceTo(5e4);
    EXPECT_EQ(sim.nowUs(), 0.0);
    EXPECT_EQ(sim.liveFrames(), 0u);

    // A frame offered after the silent advance still executes.
    workload::FrameSpec f;
    f.arrivalUs = 6e4;
    f.deadlineUs = 1e5;
    f.path = scenario.tasks[0].model.layers;
    sim.offerArrival(f);
    const auto stats = sim.finishStream();
    EXPECT_EQ(stats.frames.size(), 1u);
    EXPECT_TRUE(stats.frames[0].isCompleted());
}

TEST(ClusterSim, OfferArrivalExactlyAtNowIsAccepted)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const auto costs = buildCosts(system, scenario);

    sim::Simulator sim(system, scenario, costs, {});
    sched::FcfsScheduler fcfs;
    sim.beginStream(fcfs);

    // Process a first frame so the event loop moves the clock off
    // zero, then offer a second arrival at exactly nowUs(). That is
    // legal — the serve loop advances to arrival - 1e-9 before
    // offering, so "exactly now" is the common case, not the
    // violation (only arrivals strictly behind the clock throw).
    workload::FrameSpec f;
    f.arrivalUs = 0.0;
    f.deadlineUs = 1e5;
    f.path = scenario.tasks[0].model.layers;
    sim.offerArrival(f);
    sim.advanceTo(1e5);
    ASSERT_GT(sim.nowUs(), 0.0);
    workload::FrameSpec g = f;
    g.arrivalUs = sim.nowUs();
    g.deadlineUs = g.arrivalUs + 1e5;
    EXPECT_NO_THROW(sim.offerArrival(g));
    const auto stats = sim.finishStream();
    EXPECT_EQ(stats.frames.size(), 2u);
}

TEST(ClusterSim, FinishStreamIsIdempotent)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const auto costs = buildCosts(system, scenario);

    sim::SimConfig cfg;
    cfg.windowUs = 2e5;
    sim::Simulator sim(system, scenario, costs, cfg);
    sched::FcfsScheduler fcfs;
    sim.beginStream(fcfs);
    workload::FrameSpec f;
    f.arrivalUs = 0.0;
    f.deadlineUs = 1e5;
    f.path = scenario.tasks[0].model.layers;
    sim.offerArrival(f);

    const auto first = sim.finishStream();
    const auto second = sim.finishStream();
    EXPECT_EQ(runner::frameTraceCsv(first, scenario),
              runner::frameTraceCsv(second, scenario));
    EXPECT_EQ(first.schedulerInvocations,
              second.schedulerInvocations);
    EXPECT_EQ(first.accelBusyUs, second.accelBusyUs);
}

// ------------------------------------------- FrameSource::rootFrame

TEST(ClusterIngest, RootFrameValidatesItsInputs)
{
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall, 1.0);
    const workload::FrameSource source(scenario, 7);

    const auto frame = source.rootFrame(0, 3, 1234.5);
    EXPECT_EQ(frame.task, 0);
    EXPECT_EQ(frame.frameIdx, 3);
    EXPECT_EQ(frame.arrivalUs, 1234.5);
    EXPECT_GT(frame.deadlineUs, frame.arrivalUs);

    // Out-of-range task, dependent (non-root) task, and non-finite
    // or negative arrivals are contract violations.
    EXPECT_THROW(source.rootFrame(workload::TaskId(99), 0, 0.0),
                 std::invalid_argument);
    workload::TaskId dependent = workload::kNoParent;
    for (size_t t = 0; t < scenario.tasks.size(); ++t) {
        if (scenario.tasks[t].dependsOn != workload::kNoParent)
            dependent = workload::TaskId(t);
    }
    ASSERT_NE(dependent, workload::kNoParent);
    EXPECT_THROW(source.rootFrame(dependent, 0, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(source.rootFrame(0, 0, -1.0),
                 std::invalid_argument);
    EXPECT_THROW(source.rootFrame(0, 0, std::nan("")),
                 std::invalid_argument);
}

// ------------------------------------------------- SessionDemux

TEST(ClusterDemux, SessionsStickToTheirFirstDevice)
{
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const workload::FrameSource delegate(scenario, 1);
    workload::SessionDemux demux(delegate, 3);

    EXPECT_EQ(demux.assignment(0), -1);

    workload::FrameSpec f;
    f.task = 0;
    f.arrivalUs = 0.0;
    EXPECT_EQ(demux.push(f, 2), 2u);
    EXPECT_EQ(demux.assignment(0), 2);

    // Later frames of the pinned session ignore device_if_new.
    f.arrivalUs = 100.0;
    EXPECT_EQ(demux.push(f, 0), 2u);
    EXPECT_EQ(demux.stream(2).pending(), 2u);
    EXPECT_EQ(demux.stream(0).pending(), 0u);

    workload::FrameSpec g;
    g.task = 1;
    g.arrivalUs = 50.0;
    EXPECT_EQ(demux.push(g, 0), 0u);
    EXPECT_EQ(demux.assignment(1), 0);

    EXPECT_THROW(demux.push(f, 7), std::out_of_range);
    workload::FrameSpec bad;
    bad.task = workload::TaskId(-1);
    EXPECT_THROW(demux.push(bad, 0), std::invalid_argument);

    demux.closeAll();
    EXPECT_TRUE(demux.stream(0).closed());
    EXPECT_TRUE(demux.stream(1).closed());
    EXPECT_TRUE(demux.stream(2).closed());
}

// --------------------------------------------------- Dispatcher

TEST(ClusterDispatcher, PolicyNamesRoundTrip)
{
    for (const auto policy : serve::allRouterPolicies()) {
        serve::RouterPolicy parsed;
        EXPECT_TRUE(
            serve::parseRouterPolicy(toString(policy), &parsed));
        EXPECT_EQ(parsed, policy);
    }
    EXPECT_FALSE(serve::parseRouterPolicy("fastest_first", nullptr));
}

TEST(ClusterDispatcher, RoundRobinCyclesAndValidatesSessions)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const auto costs = buildCosts(system, scenario);
    serve::Dispatcher dispatcher(serve::RouterPolicy::RoundRobin, 3,
                                 scenario, costs, 1e6);

    const std::vector<serve::DeviceGauges> gauges(3);
    EXPECT_EQ(dispatcher.route(0, 0.0, gauges), 0u);
    EXPECT_EQ(dispatcher.route(1, 1.0, gauges), 1u);
    EXPECT_EQ(dispatcher.route(0, 2.0, gauges), 2u);
    EXPECT_EQ(dispatcher.route(1, 3.0, gauges), 0u);
    EXPECT_THROW(dispatcher.route(workload::TaskId(99), 0.0, gauges),
                 std::invalid_argument);
}

TEST(ClusterDispatcher, LeastLoadedAvoidsTheBackloggedDevice)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const auto costs = buildCosts(system, scenario);
    serve::Dispatcher dispatcher(serve::RouterPolicy::LeastLoaded, 2,
                                 scenario, costs, 1e6);

    // Equal gauges tie toward the lower index; a backlogged device 0
    // pushes the next session to device 1.
    std::vector<serve::DeviceGauges> gauges(2);
    EXPECT_EQ(dispatcher.route(0, 0.0, gauges), 0u);
    gauges[0].backlogUs = 1e9;
    EXPECT_EQ(dispatcher.route(1, 0.0, gauges), 1u);
}

// ----------------------------------------------------- Cluster

TEST(Cluster, SingleDeviceIsBitIdenticalToServeLoopRun)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall, 0.7);
    const auto costs = buildCosts(system, scenario);
    const double window_us = 1e6;
    const uint64_t seed = 11;

    const workload::FrameSource frames(scenario, seed);
    workload::StreamSource direct(frames);
    feedStream(direct, frames, window_us);
    serve::ServeConfig serve_config;
    serve_config.windowUs = window_us;
    serve_config.seed = seed;
    serve::ServeLoop loop(system, scenario, costs, serve_config);
    auto sched = runner::makeScheduler(runner::SchedKind::Fcfs);
    const auto direct_stats = loop.run(*sched, direct).stats;

    for (const auto router : serve::allRouterPolicies()) {
        serve::ClusterConfig config;
        config.devices = 1;
        config.router = router;
        const auto clustered = runCluster(
            system, scenario, costs, config, window_us, seed);
        EXPECT_EQ(runner::frameTraceCsv(direct_stats, scenario),
                  runner::frameTraceCsv(clustered.stats, scenario));
        EXPECT_EQ(direct_stats.schedulerInvocations,
                  clustered.stats.schedulerInvocations);
        EXPECT_EQ(direct_stats.accelBusyUs,
                  clustered.stats.accelBusyUs);
    }
}

TEST(Cluster, FourDeviceRunsReplayIdenticallyUnderEveryRouter)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto scenario = workload::makeScenario(
        workload::ScenarioPreset::VrGaming, 0.9);
    const auto costs = buildCosts(system, scenario);
    const double window_us = 5e5;

    for (const auto router : serve::allRouterPolicies()) {
        serve::ClusterConfig config;
        config.devices = 4;
        config.router = router;
        const auto a = runCluster(system, scenario, costs, config,
                                  window_us, 23);
        const auto b = runCluster(system, scenario, costs, config,
                                  window_us, 23);
        EXPECT_EQ(runner::frameTraceCsv(a.stats, scenario),
                  runner::frameTraceCsv(b.stats, scenario));
        EXPECT_EQ(a.assignment, b.assignment);
        EXPECT_EQ(a.fairnessSpread, b.fairnessSpread);
        ASSERT_EQ(a.devices.size(), 4u);
        for (size_t k = 0; k < 4; ++k) {
            EXPECT_EQ(
                runner::frameTraceCsv(a.devices[k].stats, scenario),
                runner::frameTraceCsv(b.devices[k].stats, scenario))
                << "device " << k;
        }
        // Sessions are pinned: every root task that arrived has a
        // device, and the merged frame tallies match the sum of the
        // per-device tallies.
        uint64_t device_frames = 0;
        for (const auto& device : a.devices)
            device_frames += device.stats.totalFrames();
        EXPECT_EQ(a.stats.totalFrames(), device_frames);
    }
}

TEST(Cluster, MetricsAreDeviceNamespacedWithClusterRollups)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall, 0.5);
    const auto costs = buildCosts(system, scenario);

    obs::MetricsRegistry metrics;
    serve::ClusterConfig config;
    config.devices = 2;
    config.router = serve::RouterPolicy::RoundRobin;
    config.serve.metrics = &metrics;
    const auto result =
        runCluster(system, scenario, costs, config, 5e5, 11);

    const auto& counters = metrics.counters();
    ASSERT_TRUE(counters.count("serve/dev0/frames/offered"));
    ASSERT_TRUE(counters.count("serve/dev1/frames/offered"));
    ASSERT_TRUE(counters.count("serve/frames/offered"));
    EXPECT_EQ(counters.at("serve/frames/offered"),
              counters.at("serve/dev0/frames/offered") +
                  counters.at("serve/dev1/frames/offered"));
    EXPECT_EQ(counters.at("serve/frames/offered"),
              result.admission.offered);

    // The simulator's un-namespaced keys stay detached in cluster
    // mode: their gauges would be last-writer-wins across devices.
    EXPECT_FALSE(counters.count("frames/completed"));

    const auto& gauges = metrics.gauges();
    ASSERT_TRUE(gauges.count("serve/cluster/devices"));
    EXPECT_EQ(gauges.at("serve/cluster/devices"), 2.0);
    ASSERT_TRUE(gauges.count("serve/cluster/fairness_spread"));
    EXPECT_EQ(gauges.at("serve/cluster/fairness_spread"),
              result.fairnessSpread);
}

TEST(Cluster, FairnessRatiosComeFromCompletedFrames)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall, 0.5);
    const auto costs = buildCosts(system, scenario);

    serve::ClusterConfig config;
    config.devices = 2;
    config.router = serve::RouterPolicy::RoundRobin;
    const auto result =
        runCluster(system, scenario, costs, config, 1e6, 11);

    ASSERT_EQ(result.fairnessRatio.size(), 2u);
    for (const double ratio : result.fairnessRatio) {
        if (std::isfinite(ratio))
            EXPECT_GT(ratio, 0.0);
    }
    EXPECT_GE(result.fairnessSpread, 1.0);
}

} // namespace
} // namespace dream
