/** @file Tests for the memoized engine::ParamSearch: bit-identity
 *  with the core shrinking-radius search, the no-duplicate-simulation
 *  guarantee of the transposition table, and branch-and-bound
 *  multi-start pruning. */

#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptivity.h"
#include "engine/param_eval.h"
#include "engine/param_search.h"
#include "engine/worker_pool.h"
#include "hw/system.h"
#include "workload/scenario.h"

namespace dream {
namespace {

/** Deterministic synthetic objective: a bowl with its minimum inside
 *  the search box, counting every point it actually evaluates. */
struct CountingBowl {
    std::map<std::pair<double, double>, int> evals;
    int points = 0;

    core::BatchCostFn fn()
    {
        return [this](
                   const std::vector<std::pair<double, double>>& pts) {
            std::vector<double> out;
            out.reserve(pts.size());
            for (const auto& p : pts) {
                ++points;
                ++evals[p];
                const double da = p.first - 0.7;
                const double db = p.second - 1.3;
                out.push_back(da * da + db * db);
            }
            return out;
        };
    }
};

void
expectResultsBitIdentical(const core::SearchResult& a,
                          const core::SearchResult& b)
{
    EXPECT_EQ(a.alpha, b.alpha);
    EXPECT_EQ(a.beta, b.beta);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.evaluations, b.evaluations);
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    for (size_t i = 0; i < a.trajectory.size(); ++i) {
        EXPECT_EQ(a.trajectory[i].alpha, b.trajectory[i].alpha);
        EXPECT_EQ(a.trajectory[i].beta, b.trajectory[i].beta);
        EXPECT_EQ(a.trajectory[i].cost, b.trajectory[i].cost);
        EXPECT_EQ(a.trajectory[i].radius, b.trajectory[i].radius);
        EXPECT_EQ(a.trajectory[i].step, b.trajectory[i].step);
    }
}

TEST(ParamSearch, MemoizedResultIsBitIdenticalToCoreSearch)
{
    CountingBowl plain_cost, memo_cost;
    const core::ParamSearch plain(0.5, 0.05, 0.0, 2.0);
    const auto expected = plain.optimize(plain_cost.fn(), 0.2, 1.8);

    engine::ParamSearch memo(memo_cost.fn());
    const auto got = memo.optimize(0.2, 1.8);

    expectResultsBitIdentical(expected, got);
    // The plain search executes every evaluation; the memo must
    // reach the same answer with strictly fewer executions (the
    // shrinking-radius walk revisits clamped/interpolated points).
    EXPECT_EQ(expected.simulated, expected.evaluations);
    EXPECT_LT(got.simulated, got.evaluations);
    EXPECT_EQ(got.simulated + got.memoHits, got.evaluations);
    EXPECT_GT(got.memoHits, 0);
}

TEST(ParamSearch, NoPointIsEverSimulatedTwice)
{
    CountingBowl cost;
    engine::ParamSearch memo(cost.fn());
    memo.optimize(0.2, 1.8);
    memo.optimize(1.9, 0.1);
    memo.optimize({{0.2, 1.8}, {1.0, 1.0}, {0.0, 0.0}});

    for (const auto& [point, count] : cost.evals)
        EXPECT_EQ(count, 1) << "point (" << point.first << ", "
                            << point.second << ") re-simulated";
    // Executions == distinct points held: the table IS the record of
    // what was simulated.
    EXPECT_EQ(memo.simulations(), uint64_t(cost.points));
    EXPECT_EQ(memo.simulations(), uint64_t(memo.tableSize()));
}

TEST(ParamSearch, RepeatSearchIsServedEntirelyFromTheTable)
{
    CountingBowl cost;
    engine::ParamSearch memo(cost.fn());
    const auto first = memo.optimize(0.2, 1.8);
    const int executed = cost.points;
    const size_t held = memo.tableSize();

    const auto second = memo.optimize(0.2, 1.8);
    expectResultsBitIdentical(first, second);
    EXPECT_EQ(second.simulated, 0);
    EXPECT_EQ(second.memoHits, second.evaluations);
    EXPECT_EQ(cost.points, executed);
    EXPECT_EQ(memo.tableSize(), held);
}

TEST(ParamSearch, MultiStartPrunesStartsDominatedByTheIncumbent)
{
    CountingBowl cost;
    engine::ParamSearch memo(cost.fn());
    // One start sits on the bowl's minimum; the others probe far
    // higher than any full search's optimum, so the incumbent bound
    // cuts them after the depth-0 probe batch.
    const auto best =
        memo.optimize({{0.7, 1.3}, {0.0, 0.0}, {2.0, 2.0}});
    EXPECT_EQ(memo.prunedStarts(), 2u);

    // The winner is exactly the single-start search from the best
    // start (same searcher state notwithstanding: fresh searcher).
    CountingBowl fresh_cost;
    engine::ParamSearch fresh(fresh_cost.fn());
    expectResultsBitIdentical(fresh.optimize(0.7, 1.3), best);

    // Pruning must never re-simulate a probe point.
    for (const auto& [point, count] : cost.evals)
        EXPECT_EQ(count, 1) << "point (" << point.first << ", "
                            << point.second << ") re-simulated";
}

TEST(ParamSearch, SimulationBackedSearchMatchesBatchedCoreSearch)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    engine::WorkerPool pool(2);

    const auto batch =
        engine::makeBatchEvaluator(system, scenario, pool);
    const core::ParamSearch plain(0.5, 0.05, 0.0, 2.0);
    const auto expected = plain.optimize(batch, 0.2, 1.8);

    engine::ParamSearch memo(system, scenario, pool);
    const auto got = memo.optimize(0.2, 1.8);

    expectResultsBitIdentical(expected, got);
    EXPECT_EQ(memo.simulations() + memo.transpositionHits(),
              uint64_t(got.evaluations));
    EXPECT_EQ(memo.simulations(), uint64_t(memo.tableSize()));
}

TEST(ParamSearch, ContextKeyScopesTheTranspositionTable)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    engine::WorkerPool pool(1);

    const engine::ParamSearch a(system, scenario, pool);
    const engine::ParamSearch b(system, scenario, pool);
    EXPECT_NE(a.contextKey(), 0u);
    EXPECT_EQ(a.contextKey(), b.contextKey());

    engine::ParamSearch::Options other_seed;
    other_seed.seed = engine::kSearchSeed + 1;
    const engine::ParamSearch c(system, scenario, pool, other_seed);
    EXPECT_NE(a.contextKey(), c.contextKey());

    // A different system scopes a different table.
    const auto system2 = hw::makeSystem(hw::SystemPreset::Sys8k2Ws);
    const engine::ParamSearch d(system2, scenario, pool);
    EXPECT_NE(a.contextKey(), d.contextKey());

    // The explicit-cost-function constructor has no context.
    CountingBowl cost;
    engine::ParamSearch e(cost.fn());
    EXPECT_EQ(e.contextKey(), 0u);
}

} // anonymous namespace
} // namespace dream
