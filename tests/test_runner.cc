/** @file Tests for the experiment runner and table utilities. */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "runner/experiment.h"
#include "runner/table.h"

namespace dream {
namespace {

TEST(Runner, FactoryProducesAllSchedulers)
{
    const runner::SchedKind kinds[] = {
        runner::SchedKind::Fcfs,          runner::SchedKind::StaticFcfs,
        runner::SchedKind::Veltair,       runner::SchedKind::Planaria,
        runner::SchedKind::DreamFixed,    runner::SchedKind::DreamMapScore,
        runner::SchedKind::DreamSmartDrop, runner::SchedKind::DreamFull};
    for (const auto k : kinds) {
        auto s = runner::makeScheduler(k);
        ASSERT_NE(s, nullptr);
        EXPECT_FALSE(s->name().empty());
    }
}

TEST(Runner, EvaluationSetMatchesPaper)
{
    const auto set = runner::evaluationSchedulers();
    ASSERT_EQ(set.size(), 6u);
    EXPECT_EQ(set.front(), runner::SchedKind::Fcfs);
    EXPECT_EQ(set.back(), runner::SchedKind::DreamFull);
}

TEST(Runner, RunSeedsAveragesOverSeeds)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys8k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::DroneOutdoor);
    auto sched = runner::makeScheduler(runner::SchedKind::Fcfs);
    const auto r1 = runner::runOnce(system, scenario, *sched, 5e5, 1);
    const auto r2 = runner::runOnce(system, scenario, *sched, 5e5, 2);
    const auto agg =
        runner::runSeeds(system, scenario, *sched, 5e5, {1, 2});
    EXPECT_NEAR(agg.uxCost, (r1.uxCost + r2.uxCost) / 2.0, 1e-9);
}

TEST(Table, AlignsAndRenders)
{
    runner::Table t({"A", "LongHeader"});
    t.addRow({"x", "1"});
    t.addRow({"longer-cell", "2"});
    const auto s = t.str();
    EXPECT_NE(s.find("LongHeader"), std::string::npos);
    EXPECT_NE(s.find("longer-cell"), std::string::npos);
    // Header, separator, two rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(runner::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(runner::fmtPct(0.1234, 1), "12.3%");
}

TEST(Table, Geomean)
{
    EXPECT_DOUBLE_EQ(runner::geomean({4.0, 1.0}), 2.0);
    // The empty geomean has no identity: NaN, never a plausible 0.
    EXPECT_TRUE(std::isnan(runner::geomean({})));
    EXPECT_NEAR(runner::geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Runner, AllSchedKindsIsACompleteConstructibleRegistry)
{
    // Name-lookup registries (trace_replay's scheduler resolution)
    // iterate allSchedKinds(); this guards it against drifting from
    // the enum: every kind constructs, every name is real and
    // unique, and the evaluation subset is contained in it.
    const auto kinds = runner::allSchedKinds();
    std::vector<std::string> names;
    for (const auto kind : kinds) {
        EXPECT_NE(runner::makeScheduler(kind), nullptr);
        const std::string name = runner::toString(kind);
        EXPECT_NE(name, "??");
        EXPECT_EQ(std::count(names.begin(), names.end(), name), 0)
            << "duplicate scheduler name " << name;
        names.push_back(name);
    }
    for (const auto kind : runner::evaluationSchedulers()) {
        EXPECT_NE(std::find(kinds.begin(), kinds.end(), kind),
                  kinds.end())
            << runner::toString(kind);
    }
    // Update allSchedKinds() when adding a SchedKind — recorded
    // traces of the new scheduler are unreplayable until then.
    EXPECT_EQ(kinds.size(), 8u);
}

} // namespace
} // namespace dream
