/** @file Tests for the composed DREAM scheduler. */

#include <gtest/gtest.h>

#include "core/dream_scheduler.h"
#include "runner/experiment.h"
#include "test_util.h"

namespace dream {
namespace {

TEST(DreamScheduler, NamesFollowTable4)
{
    EXPECT_EQ(core::DreamScheduler(core::DreamConfig::mapScore())
                  .name(),
              "DREAM-MapScore");
    EXPECT_EQ(core::DreamScheduler(core::DreamConfig::smartDropConfig())
                  .name(),
              "DREAM-SmartDrop");
    EXPECT_EQ(core::DreamScheduler(core::DreamConfig::full()).name(),
              "DREAM-Full");
    EXPECT_EQ(core::DreamScheduler(core::DreamConfig::fixedParams())
                  .name(),
              "DREAM-Fixed");
    auto cfg = core::DreamConfig::full();
    cfg.objective = metrics::Objective::EnergyOnly;
    EXPECT_EQ(core::DreamScheduler(cfg).name(), "DREAM-Full[Energy]");
}

TEST(DreamScheduler, DispatchesOneLayerOnIdleAccelerator)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    auto* req = cb.addRequest(t, 0.0, 1e5);
    core::DreamScheduler sched(core::DreamConfig::fixedParams());
    auto& ctx = cb.context(0.0);
    sched.reset(ctx);
    const auto plan = sched.plan(ctx);
    ASSERT_EQ(plan.dispatches.size(), 1u);
    EXPECT_EQ(plan.dispatches[0].requestId, req->id);
    EXPECT_EQ(plan.dispatches[0].numLayers, 1u);
    EXPECT_EQ(plan.dispatches[0].slices, 0u);
}

TEST(DreamScheduler, EmptyPlanWhenNothingReady)
{
    test::ContextBuilder cb;
    cb.addTask(test::toyModel());
    core::DreamScheduler sched(core::DreamConfig::fixedParams());
    auto& ctx = cb.context(0.0);
    sched.reset(ctx);
    EXPECT_TRUE(sched.plan(ctx).dispatches.empty());
}

TEST(DreamScheduler, PicksPreferredAcceleratorWhenFree)
{
    test::ContextBuilder cb;
    models::Model m;
    m.name = "rnnish";
    m.layers.push_back(models::rnn("lstm", 1024, 2048, 16));
    const auto t = cb.addTask(std::move(m));
    cb.addRequest(t, 0.0, 1e6);
    core::DreamScheduler sched(core::DreamConfig::fixedParams());
    auto& ctx = cb.context(0.0);
    sched.reset(ctx);
    const auto plan = sched.plan(ctx);
    ASSERT_EQ(plan.dispatches.size(), 1u);
    // Accelerator 0 is WS: the right home for an RNN layer.
    EXPECT_EQ(plan.dispatches[0].accel, 0);
}

TEST(DreamScheduler, SettleRuleWaitsForMatchedAccelerator)
{
    test::ContextBuilder cb;
    models::Model m;
    m.name = "rnnish";
    // SRAM-resident weights: compute-bound, so the WS/OS latency gap
    // is large and the settle rule applies.
    m.layers.push_back(models::rnn("lstm", 1024, 2048, 16));
    const auto t = cb.addTask(std::move(m));
    cb.addRequest(t, 0.0, 1e6); // plenty of slack
    // WS (the preferred accelerator) briefly busy; OS idle.
    cb.accels()[0].runningJobs = 1;
    cb.accels()[0].freeSlices = 0;
    cb.accels()[0].busyUntilUs = 500.0;
    core::DreamScheduler sched(core::DreamConfig::fixedParams());
    auto& ctx = cb.context(0.0);
    sched.reset(ctx);
    const auto plan = sched.plan(ctx);
    // Waiting 500 us for WS beats settling for the mismatched OS.
    EXPECT_TRUE(plan.dispatches.empty());
}

TEST(DreamScheduler, SettlesWhenDeadlineDemands)
{
    test::ContextBuilder cb;
    models::Model m;
    m.name = "rnnish";
    m.layers.push_back(models::rnn("lstm", 1024, 2048, 16));
    const auto t = cb.addTask(std::move(m));
    auto* req = cb.addRequest(t, 0.0, 1e6);
    cb.accels()[0].runningJobs = 1;
    cb.accels()[0].freeSlices = 0;
    cb.accels()[0].busyUntilUs = 9e5; // WS busy for a long time
    // Make the deadline too tight to wait for WS.
    req->deadlineUs = 2e4;
    core::DreamScheduler sched(core::DreamConfig::fixedParams());
    auto& ctx = cb.context(0.0);
    sched.reset(ctx);
    const auto plan = sched.plan(ctx);
    ASSERT_EQ(plan.dispatches.size(), 1u);
    EXPECT_EQ(plan.dispatches[0].accel, 1); // settle for OS
}

TEST(DreamScheduler, ResetRestoresConfiguredParams)
{
    auto cfg = core::DreamConfig::fixedParams(0.3, 1.7);
    core::DreamScheduler sched(cfg);
    test::ContextBuilder cb;
    cb.addTask(test::toyModel());
    auto& ctx = cb.context(0.0);
    sched.reset(ctx);
    EXPECT_DOUBLE_EQ(sched.mapScore().alpha(), 0.3);
    EXPECT_DOUBLE_EQ(sched.mapScore().beta(), 1.7);
}

TEST(DreamScheduler, FullConfigRunsEndToEnd)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::VrGaming);
    core::DreamScheduler sched(core::DreamConfig::full());
    const auto r = runner::runOnce(system, scenario, sched, 1e6, 3);
    EXPECT_GT(r.stats.totalFrames(), 0u);
    // The online tuner must have been exercised.
    EXPECT_GE(sched.tuner().completedSteps(), 1);
}

} // namespace
} // namespace dream
