/**
 * @file
 * Hard-scenarios suite tests: JSON round-trip byte-stability,
 * validation routing (every malformed file fails loudly with the
 * context and entry index), the canonical spec serialisation, the
 * checked-in scenarios/hard_v1.json loading, and
 * SweepGrid::addHardScenarios wiring the entries as scenario-axis
 * values with byte-identical sweeps for any --jobs value.
 */

#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/sweep_grid.h"
#include "workload/scenario_suite.h"

namespace dream {
namespace {

workload::HardScenarioSuite
sampleSuite()
{
    workload::HardScenarioSuite suite;
    suite.system = "4K-1WS+2OS";
    suite.windowUs = 5e5;
    suite.seeds = {11, 13};

    workload::HardScenarioEntry a;
    a.name = "hard-01";
    a.genSeed = 123456789123456789ull;
    a.spec.maxTasks = 6;
    a.spec.chainProb = 0.75;
    a.spec.skipProbMin = 0.25;
    a.spec.skipProbMax = 0.75;
    a.spec.supernetProb = 0.5;
    a.expected = {{"FCFS", 3.25}, {"DREAM-Full", 1.125}};
    suite.entries.push_back(a);

    workload::HardScenarioEntry b;
    b.name = "hard-02";
    b.genSeed = 42;
    b.spec.targetLoad = 2.5;
    b.spec.exitProbMin = 0.1;
    b.spec.exitProbMax = 0.1;
    suite.entries.push_back(b);
    return suite;
}

TEST(ScenarioSuite, RoundTripIsByteStable)
{
    const auto suite = sampleSuite();
    std::ostringstream first;
    workload::saveHardScenarioSuite(suite, first);

    std::istringstream in(first.str());
    const auto loaded = workload::loadHardScenarioSuite(in, "mem");
    EXPECT_EQ(loaded.system, suite.system);
    EXPECT_EQ(loaded.windowUs, suite.windowUs);
    EXPECT_EQ(loaded.seeds, suite.seeds);
    ASSERT_EQ(loaded.entries.size(), suite.entries.size());
    for (size_t i = 0; i < suite.entries.size(); ++i) {
        EXPECT_EQ(loaded.entries[i].name, suite.entries[i].name);
        EXPECT_EQ(loaded.entries[i].genSeed,
                  suite.entries[i].genSeed);
        // Bit-exact spec round trip is what the canonical
        // serialisation asserts: equal strings iff equal specs.
        EXPECT_EQ(workload::serializeGenSpec(loaded.entries[i].spec),
                  workload::serializeGenSpec(suite.entries[i].spec));
        EXPECT_EQ(loaded.entries[i].expected,
                  suite.entries[i].expected);
    }

    // save(load(save(x))) == save(x): the writer is deterministic.
    std::ostringstream second;
    workload::saveHardScenarioSuite(loaded, second);
    EXPECT_EQ(first.str(), second.str());
}

TEST(ScenarioSuite, SerializeGenSpecDistinguishesSpecs)
{
    workload::ScenarioGenSpec a, b;
    EXPECT_EQ(workload::serializeGenSpec(a),
              workload::serializeGenSpec(b));
    b.targetLoad = 1e-9;
    EXPECT_NE(workload::serializeGenSpec(a),
              workload::serializeGenSpec(b));
}

/** Expect loadHardScenarioSuite to throw with @p fragment in the
 *  message. */
void
expectLoadError(const std::string& json, const std::string& fragment)
{
    std::istringstream in(json);
    try {
        workload::loadHardScenarioSuite(in, "ctx");
        FAIL() << "expected rejection of: " << json;
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("ctx"), std::string::npos) << what;
        EXPECT_NE(what.find(fragment), std::string::npos) << what;
    }
}

std::string
wrapEntries(const std::string& entries)
{
    return "{\"schema\": \"dream-hard-scenarios-v1\", "
           "\"system\": \"4K-1WS+2OS\", \"window_us\": 1e6, "
           "\"seeds\": [11], \"entries\": [" +
           entries + "]}";
}

TEST(ScenarioSuite, RejectsMalformedFiles)
{
    expectLoadError("", "JSON error");
    expectLoadError("[]", "top level must be an object");
    expectLoadError("{\"system\": \"4K-1WS+2OS\"}", "schema");
    expectLoadError("{\"schema\": \"dream-hard-scenarios-v0\"}",
                    "unsupported schema");
    expectLoadError(wrapEntries("") + " trailing", "trailing");

    // NaN cannot be smuggled in through a hand-edited file: it is
    // not a JSON token, so parsing fails before validation.
    expectLoadError(
        wrapEntries("{\"name\": \"x\", \"gen_seed\": 1, "
                    "\"spec\": {\"chain_prob\": nan}}"),
        "JSON error");

    // Out-of-range knobs are named with the entry index.
    expectLoadError(
        wrapEntries("{\"name\": \"x\", \"gen_seed\": 1, "
                    "\"spec\": {\"chain_prob\": 1.5}}"),
        "entry[0]");
    expectLoadError(
        wrapEntries("{\"name\": \"a\", \"gen_seed\": 1}, "
                    "{\"name\": \"b\", \"gen_seed\": 2, "
                    "\"spec\": {\"skip_prob_min\": 0.5}}"),
        "entry[1]");

    expectLoadError(wrapEntries("{\"gen_seed\": 1}"), "name");
    expectLoadError(wrapEntries("{\"name\": \"x\"}"), "gen_seed");
    expectLoadError(wrapEntries("{\"name\": \"x\", \"gen_seed\": 1, "
                                "\"bogus\": 3}"),
                    "unknown entry field");
    expectLoadError(
        wrapEntries("{\"name\": \"dup\", \"gen_seed\": 1}, "
                    "{\"name\": \"dup\", \"gen_seed\": 2}"),
        "duplicate");
    expectLoadError("{\"schema\": \"dream-hard-scenarios-v1\", "
                    "\"system\": \"no-such\", \"window_us\": 1e6, "
                    "\"seeds\": [11], \"entries\": []}",
                    "unknown system");
    expectLoadError("{\"schema\": \"dream-hard-scenarios-v1\", "
                    "\"system\": \"4K-1WS+2OS\", \"window_us\": 0, "
                    "\"seeds\": [11], \"entries\": []}",
                    "window_us");
    expectLoadError("{\"schema\": \"dream-hard-scenarios-v1\", "
                    "\"system\": \"4K-1WS+2OS\", \"window_us\": 1e6, "
                    "\"seeds\": [], \"entries\": []}",
                    "seeds");
}

TEST(ScenarioSuite, SixtyFourBitSeedsSurviveRoundTrip)
{
    // Hunt seeds use the full 64-bit range — far beyond double
    // precision, so the loader must parse the raw integer token.
    workload::HardScenarioSuite suite = sampleSuite();
    suite.entries[0].genSeed = 18446744073709551615ull; // 2^64 - 1
    std::ostringstream out;
    workload::saveHardScenarioSuite(suite, out);
    std::istringstream in(out.str());
    const auto loaded = workload::loadHardScenarioSuite(in, "mem");
    EXPECT_EQ(loaded.entries[0].genSeed, 18446744073709551615ull);
}

TEST(ScenarioSuite, CheckedInSuiteLoads)
{
    const auto suite = workload::loadHardScenarioSuite(
        std::string(DREAM_SOURCE_DIR) + "/scenarios/hard_v1.json");
    EXPECT_FALSE(suite.entries.empty());
    // Every entry carries expected UXCosts for the CI gate to
    // re-check.
    for (const auto& entry : suite.entries)
        EXPECT_FALSE(entry.expected.empty()) << entry.name;
}

TEST(ScenarioSuite, AddHardScenariosSweepsDeterministically)
{
    auto suite = sampleSuite();
    suite.windowUs = 2e5; // keep the test cheap
    const auto sweep = [&suite](int jobs) {
        engine::SweepGrid grid;
        grid.addHardScenarios(suite)
            .addSystem(hw::SystemPreset::Sys4k1Ws2Os)
            .addScheduler(runner::SchedKind::DreamFull)
            .seeds(suite.seeds)
            .window(suite.windowUs);
        std::ostringstream csv;
        engine::CsvSink sink(csv);
        engine::Engine(jobs).run(grid, {&sink});
        sink.close();
        return csv.str();
    };
    const std::string once = sweep(1);
    EXPECT_NE(once.find("hard-01"), std::string::npos);
    EXPECT_NE(once.find("hard-02"), std::string::npos);
    EXPECT_EQ(once, sweep(4));
}

} // namespace
} // namespace dream
