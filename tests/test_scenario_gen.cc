/**
 * @file
 * ScenarioGenerator tests: seeded determinism (same seed => the
 * identical scenario down to names, fps values and dependency
 * edges), seed diversity (different seeds => distinct mixes), spec
 * bounds, and the validity contract (every generated scenario passes
 * validateScenario; hand-built invalid scenarios fail it with a
 * reason).
 */

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>

#include "models/zoo.h"
#include "workload/scenario_gen.h"

namespace dream {
namespace {

std::string
fingerprint(const workload::Scenario& s)
{
    std::string out = s.name;
    for (const auto& t : s.tasks) {
        out += '|' + t.model.name + '/' + std::to_string(t.fps) + '/' +
               std::to_string(t.dependsOn) + '/' +
               std::to_string(t.triggerProb) + '/' +
               std::to_string(t.startUs) + '/' +
               std::to_string(t.endUs);
    }
    return out;
}

TEST(ScenarioGenerator, SameSeedYieldsIdenticalScenario)
{
    workload::ScenarioGenerator gen;
    for (const uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
        const auto a = gen.generate(seed);
        const auto b = gen.generate(seed);
        EXPECT_EQ(fingerprint(a), fingerprint(b)) << "seed " << seed;
        EXPECT_EQ(a.name, "Gen" + std::to_string(seed));
        // A fresh generator with the same spec agrees too.
        workload::ScenarioGenerator other;
        EXPECT_EQ(fingerprint(other.generate(seed)), fingerprint(a));
    }
}

TEST(ScenarioGenerator, DifferentSeedsYieldDistinctMixes)
{
    workload::ScenarioGenerator gen;
    std::set<std::string> prints;
    constexpr int kSeeds = 50;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed)
        prints.insert(fingerprint(gen.generate(seed)));
    // Task bodies must differ, not just the "Gen<seed>" names.
    std::set<std::string> bodies;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        auto s = gen.generate(seed);
        s.name.clear();
        bodies.insert(fingerprint(s));
    }
    EXPECT_EQ(prints.size(), size_t(kSeeds));
    EXPECT_GT(bodies.size(), size_t(kSeeds) * 9 / 10);
}

TEST(ScenarioGenerator, GeneratedScenariosAreValidAndInBounds)
{
    workload::ScenarioGenSpec spec;
    spec.minTasks = 3;
    spec.maxTasks = 5;
    spec.minFps = 10.0;
    spec.maxFps = 30.0;
    workload::ScenarioGenerator gen(spec);
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        const auto s = gen.generate(seed);
        std::string why;
        EXPECT_TRUE(workload::validateScenario(s, &why))
            << "seed " << seed << ": " << why;
        EXPECT_GE(s.tasks.size(), 3u);
        EXPECT_LE(s.tasks.size(), 5u);
        for (const auto& t : s.tasks) {
            EXPECT_GE(t.fps, 10.0);
            EXPECT_LE(t.fps, 30.0);
            EXPECT_GT(t.fps, 0.0);
            if (t.dependsOn != workload::kNoParent) {
                // Forest edges always point at earlier tasks.
                EXPECT_LT(t.dependsOn,
                          workload::TaskId(&t - s.tasks.data()));
            }
        }
    }
}

TEST(ScenarioGenerator, CustomPoolRestrictsModels)
{
    workload::ScenarioGenSpec spec;
    spec.pool = {models::zoo::kwsRes8(), models::zoo::fbnetC()};
    const std::string kws = models::zoo::kwsRes8().name;
    const std::string fbnet = models::zoo::fbnetC().name;
    workload::ScenarioGenerator gen(spec);
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        for (const auto& t : gen.generate(seed).tasks) {
            EXPECT_TRUE(t.model.name == kws || t.model.name == fbnet)
                << t.model.name;
        }
    }
}

/** Fingerprint including the operator-level dynamicity state the
 *  knob tests care about (skip/exit gate probabilities). */
std::string
dynFingerprint(const workload::Scenario& s)
{
    std::string out = fingerprint(s);
    for (const auto& t : s.tasks) {
        for (const auto& blk : t.model.skipBlocks)
            out += "|skip:" + std::to_string(blk.skipProb);
        for (const auto& exit : t.model.earlyExits)
            out += "|exit:" + std::to_string(exit.exitProb);
    }
    return out;
}

TEST(ScenarioGenerator, DynamicityKnobsAreDeterministic)
{
    workload::ScenarioGenSpec spec;
    spec.skipProbMin = 0.1;
    spec.skipProbMax = 0.6;
    spec.exitProbMin = 0.2;
    spec.exitProbMax = 0.8;
    spec.supernetProb = 0.5;
    spec.targetLoad = 2.0;
    std::string why;
    ASSERT_TRUE(workload::validateGenSpec(spec, &why)) << why;
    workload::ScenarioGenerator gen(spec);
    for (const uint64_t seed : {1ull, 9ull, 77ull}) {
        const auto a = gen.generate(seed);
        EXPECT_TRUE(workload::validateScenario(a, &why))
            << "seed " << seed << ": " << why;
        // Same generator and a freshly built one both reproduce the
        // mix exactly, gate probabilities included.
        EXPECT_EQ(dynFingerprint(gen.generate(seed)),
                  dynFingerprint(a));
        workload::ScenarioGenerator other(spec);
        EXPECT_EQ(dynFingerprint(other.generate(seed)),
                  dynFingerprint(a));
    }
}

TEST(ScenarioGenerator, SupernetKnobControlsPresence)
{
    workload::ScenarioGenSpec all;
    all.supernetProb = 1.0;
    workload::ScenarioGenerator gen_all(all);
    workload::ScenarioGenSpec none;
    none.supernetProb = 0.0;
    workload::ScenarioGenerator gen_none(none);
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        for (const auto& t : gen_all.generate(seed).tasks)
            EXPECT_TRUE(t.model.isSupernet()) << t.model.name;
        for (const auto& t : gen_none.generate(seed).tasks)
            EXPECT_FALSE(t.model.isSupernet()) << t.model.name;
    }
}

TEST(ScenarioGenerator, SkipExitOverridesApplyToEveryGate)
{
    workload::ScenarioGenSpec spec;
    spec.skipProbMin = spec.skipProbMax = 0.42;
    spec.exitProbMin = spec.exitProbMax = 0.17;
    workload::ScenarioGenerator gen(spec);
    int gates = 0;
    for (uint64_t seed = 1; seed <= 30; ++seed) {
        for (const auto& t : gen.generate(seed).tasks) {
            for (const auto& blk : t.model.skipBlocks) {
                EXPECT_DOUBLE_EQ(blk.skipProb, 0.42);
                ++gates;
            }
            for (const auto& exit : t.model.earlyExits) {
                EXPECT_DOUBLE_EQ(exit.exitProb, 0.17);
                ++gates;
            }
        }
    }
    // The zoo has dynamic models; the override must actually land.
    EXPECT_GT(gates, 0);
}

TEST(ScenarioGenerator, TargetLoadBiasesFpsDraws)
{
    // A high aggregate-load target must push the biased (model, rate)
    // picks toward heavier mixes than a low one. Compare the mean
    // total fps across seeds — latency-weighted load moves with it.
    const auto mean_fps_sum = [](double target) {
        workload::ScenarioGenSpec spec;
        spec.targetLoad = target;
        spec.minTasks = spec.maxTasks = 5;
        workload::ScenarioGenerator gen(spec);
        double sum = 0.0;
        for (uint64_t seed = 1; seed <= 20; ++seed) {
            for (const auto& t : gen.generate(seed).tasks)
                sum += t.fps;
        }
        return sum / 20.0;
    };
    EXPECT_GT(mean_fps_sum(6.0), mean_fps_sum(0.3));
}

TEST(ValidateGenSpec, AcceptsDefaultAndKnobbedSpecs)
{
    std::string why;
    EXPECT_TRUE(workload::validateGenSpec({}, &why)) << why;
    workload::ScenarioGenSpec spec;
    spec.skipProbMin = 0.0;
    spec.skipProbMax = 1.0;
    spec.exitProbMin = 0.5;
    spec.exitProbMax = 0.5;
    spec.supernetProb = 0.25;
    spec.targetLoad = 4.0;
    spec.loadSystem = "4K-1WS+2OS";
    EXPECT_TRUE(workload::validateGenSpec(spec, &why)) << why;
}

TEST(ValidateGenSpec, RejectsInvalidKnobs)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::string why;

    workload::ScenarioGenSpec bad_nan;
    bad_nan.chainProb = nan;
    EXPECT_FALSE(workload::validateGenSpec(bad_nan, &why));
    EXPECT_NE(why.find("chainProb"), std::string::npos);

    workload::ScenarioGenSpec nan_load;
    nan_load.targetLoad = nan;
    EXPECT_FALSE(workload::validateGenSpec(nan_load, &why));

    workload::ScenarioGenSpec nan_override;
    nan_override.skipProbMin = nan;
    nan_override.skipProbMax = nan;
    EXPECT_FALSE(workload::validateGenSpec(nan_override, &why));

    workload::ScenarioGenSpec half_set;
    half_set.exitProbMin = 0.3; // max left at -1: a typo, not a range
    EXPECT_FALSE(workload::validateGenSpec(half_set, &why));
    EXPECT_NE(why.find("early-exit"), std::string::npos);

    workload::ScenarioGenSpec bad_tasks;
    bad_tasks.minTasks = 5;
    bad_tasks.maxTasks = 2;
    EXPECT_FALSE(workload::validateGenSpec(bad_tasks, &why));

    workload::ScenarioGenSpec bad_trigger;
    bad_trigger.minTriggerProb = 0.9;
    bad_trigger.maxTriggerProb = 0.1;
    EXPECT_FALSE(workload::validateGenSpec(bad_trigger, &why));

    workload::ScenarioGenSpec bad_super;
    bad_super.supernetProb = 1.5;
    EXPECT_FALSE(workload::validateGenSpec(bad_super, &why));

    workload::ScenarioGenSpec bad_system;
    bad_system.loadSystem = "no-such-system";
    EXPECT_FALSE(workload::validateGenSpec(bad_system, &why));
    EXPECT_NE(why.find("no-such-system"), std::string::npos);
}

TEST(ValidateScenario, RejectsTriggerProbabilityOnRootTasks)
{
    // A gate probability on a task with no dependency is meaningless
    // (nothing triggers it) and indicates a malformed, e.g.
    // hand-edited, task list.
    auto s = workload::ScenarioGenerator().generate(1);
    ASSERT_EQ(s.tasks[0].dependsOn, workload::kNoParent);
    s.tasks[0].triggerProb = 0.5;
    std::string why;
    EXPECT_FALSE(workload::validateScenario(s, &why));
    EXPECT_NE(why.find("no dependency"), std::string::npos);
}

TEST(ValidateScenario, RejectsInvalidScenarios)
{
    std::string why;

    workload::Scenario empty;
    EXPECT_FALSE(workload::validateScenario(empty, &why));
    EXPECT_NE(why.find("no tasks"), std::string::npos);

    const auto base = workload::ScenarioGenerator().generate(1);

    auto bad_fps = base;
    bad_fps.tasks[0].fps = 0.0;
    EXPECT_FALSE(workload::validateScenario(bad_fps, &why));
    EXPECT_NE(why.find("fps"), std::string::npos);

    auto bad_dep = base;
    bad_dep.tasks[0].dependsOn =
        workload::TaskId(bad_dep.tasks.size());
    EXPECT_FALSE(workload::validateScenario(bad_dep, &why));

    auto self_dep = base;
    self_dep.tasks[0].dependsOn = 0;
    EXPECT_FALSE(workload::validateScenario(self_dep, &why));

    auto cycle = base;
    if (cycle.tasks.size() >= 2) {
        cycle.tasks[0].dependsOn = 1;
        cycle.tasks[1].dependsOn = 0;
        EXPECT_FALSE(workload::validateScenario(cycle, &why));
        EXPECT_NE(why.find("cycle"), std::string::npos);
    }

    auto bad_window = base;
    bad_window.tasks[0].startUs = 2.0;
    bad_window.tasks[0].endUs = 1.0;
    EXPECT_FALSE(workload::validateScenario(bad_window, &why));

    auto bad_trigger = base;
    bad_trigger.tasks[0].triggerProb = 1.5;
    EXPECT_FALSE(workload::validateScenario(bad_trigger, &why));

    EXPECT_TRUE(workload::validateScenario(base, &why)) << why;
}

TEST(ValidateScenario, AcceptsAllTable3Presets)
{
    for (const auto preset : workload::allScenarioPresets()) {
        std::string why;
        EXPECT_TRUE(workload::validateScenario(
            workload::makeScenario(preset), &why))
            << toString(preset) << ": " << why;
    }
}

} // namespace
} // namespace dream
