/**
 * @file
 * ScenarioGenerator tests: seeded determinism (same seed => the
 * identical scenario down to names, fps values and dependency
 * edges), seed diversity (different seeds => distinct mixes), spec
 * bounds, and the validity contract (every generated scenario passes
 * validateScenario; hand-built invalid scenarios fail it with a
 * reason).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "models/zoo.h"
#include "workload/scenario_gen.h"

namespace dream {
namespace {

std::string
fingerprint(const workload::Scenario& s)
{
    std::string out = s.name;
    for (const auto& t : s.tasks) {
        out += '|' + t.model.name + '/' + std::to_string(t.fps) + '/' +
               std::to_string(t.dependsOn) + '/' +
               std::to_string(t.triggerProb) + '/' +
               std::to_string(t.startUs) + '/' +
               std::to_string(t.endUs);
    }
    return out;
}

TEST(ScenarioGenerator, SameSeedYieldsIdenticalScenario)
{
    workload::ScenarioGenerator gen;
    for (const uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
        const auto a = gen.generate(seed);
        const auto b = gen.generate(seed);
        EXPECT_EQ(fingerprint(a), fingerprint(b)) << "seed " << seed;
        EXPECT_EQ(a.name, "Gen" + std::to_string(seed));
        // A fresh generator with the same spec agrees too.
        workload::ScenarioGenerator other;
        EXPECT_EQ(fingerprint(other.generate(seed)), fingerprint(a));
    }
}

TEST(ScenarioGenerator, DifferentSeedsYieldDistinctMixes)
{
    workload::ScenarioGenerator gen;
    std::set<std::string> prints;
    constexpr int kSeeds = 50;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed)
        prints.insert(fingerprint(gen.generate(seed)));
    // Task bodies must differ, not just the "Gen<seed>" names.
    std::set<std::string> bodies;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        auto s = gen.generate(seed);
        s.name.clear();
        bodies.insert(fingerprint(s));
    }
    EXPECT_EQ(prints.size(), size_t(kSeeds));
    EXPECT_GT(bodies.size(), size_t(kSeeds) * 9 / 10);
}

TEST(ScenarioGenerator, GeneratedScenariosAreValidAndInBounds)
{
    workload::ScenarioGenSpec spec;
    spec.minTasks = 3;
    spec.maxTasks = 5;
    spec.minFps = 10.0;
    spec.maxFps = 30.0;
    workload::ScenarioGenerator gen(spec);
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        const auto s = gen.generate(seed);
        std::string why;
        EXPECT_TRUE(workload::validateScenario(s, &why))
            << "seed " << seed << ": " << why;
        EXPECT_GE(s.tasks.size(), 3u);
        EXPECT_LE(s.tasks.size(), 5u);
        for (const auto& t : s.tasks) {
            EXPECT_GE(t.fps, 10.0);
            EXPECT_LE(t.fps, 30.0);
            EXPECT_GT(t.fps, 0.0);
            if (t.dependsOn != workload::kNoParent) {
                // Forest edges always point at earlier tasks.
                EXPECT_LT(t.dependsOn,
                          workload::TaskId(&t - s.tasks.data()));
            }
        }
    }
}

TEST(ScenarioGenerator, CustomPoolRestrictsModels)
{
    workload::ScenarioGenSpec spec;
    spec.pool = {models::zoo::kwsRes8(), models::zoo::fbnetC()};
    const std::string kws = models::zoo::kwsRes8().name;
    const std::string fbnet = models::zoo::fbnetC().name;
    workload::ScenarioGenerator gen(spec);
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        for (const auto& t : gen.generate(seed).tasks) {
            EXPECT_TRUE(t.model.name == kws || t.model.name == fbnet)
                << t.model.name;
        }
    }
}

TEST(ValidateScenario, RejectsInvalidScenarios)
{
    std::string why;

    workload::Scenario empty;
    EXPECT_FALSE(workload::validateScenario(empty, &why));
    EXPECT_NE(why.find("no tasks"), std::string::npos);

    const auto base = workload::ScenarioGenerator().generate(1);

    auto bad_fps = base;
    bad_fps.tasks[0].fps = 0.0;
    EXPECT_FALSE(workload::validateScenario(bad_fps, &why));
    EXPECT_NE(why.find("fps"), std::string::npos);

    auto bad_dep = base;
    bad_dep.tasks[0].dependsOn =
        workload::TaskId(bad_dep.tasks.size());
    EXPECT_FALSE(workload::validateScenario(bad_dep, &why));

    auto self_dep = base;
    self_dep.tasks[0].dependsOn = 0;
    EXPECT_FALSE(workload::validateScenario(self_dep, &why));

    auto cycle = base;
    if (cycle.tasks.size() >= 2) {
        cycle.tasks[0].dependsOn = 1;
        cycle.tasks[1].dependsOn = 0;
        EXPECT_FALSE(workload::validateScenario(cycle, &why));
        EXPECT_NE(why.find("cycle"), std::string::npos);
    }

    auto bad_window = base;
    bad_window.tasks[0].startUs = 2.0;
    bad_window.tasks[0].endUs = 1.0;
    EXPECT_FALSE(workload::validateScenario(bad_window, &why));

    auto bad_trigger = base;
    bad_trigger.tasks[0].triggerProb = 1.5;
    EXPECT_FALSE(workload::validateScenario(bad_trigger, &why));

    EXPECT_TRUE(workload::validateScenario(base, &why)) << why;
}

TEST(ValidateScenario, AcceptsAllTable3Presets)
{
    for (const auto preset : workload::allScenarioPresets()) {
        std::string why;
        EXPECT_TRUE(workload::validateScenario(
            workload::makeScenario(preset), &why))
            << toString(preset) << ": " << why;
    }
}

} // namespace
} // namespace dream
