/** @file Unit tests for the baseline schedulers. */

#include <gtest/gtest.h>

#include "sched/fcfs.h"
#include "sched/planaria.h"
#include "sched/static_fcfs.h"
#include "sched/traits.h"
#include "sched/veltair.h"
#include "test_util.h"

namespace dream {
namespace {

TEST(Fcfs, ServesOldestFirstOnIdleAccelerators)
{
    test::ContextBuilder cb;
    const auto t1 = cb.addTask(test::toyModel("a"));
    const auto t2 = cb.addTask(test::toyModel("b"));
    auto* old_req = cb.addRequest(t1, 100.0, 1e6);
    auto* new_req = cb.addRequest(t2, 200.0, 1e6);
    sched::FcfsScheduler fcfs;
    const auto plan = fcfs.plan(cb.context(300.0));
    ASSERT_EQ(plan.dispatches.size(), 2u);
    EXPECT_EQ(plan.dispatches[0].requestId, old_req->id);
    EXPECT_EQ(plan.dispatches[1].requestId, new_req->id);
    // Whole-model granularity.
    EXPECT_EQ(plan.dispatches[0].numLayers,
              old_req->remainingLayers());
    EXPECT_EQ(plan.dispatches[0].slices, 0u);
}

TEST(Fcfs, SkipsBusyAccelerators)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    cb.addRequest(t, 0.0, 1e6);
    cb.accels()[0].runningJobs = 1; // busy
    sched::FcfsScheduler fcfs;
    const auto plan = fcfs.plan(cb.context(0.0));
    ASSERT_EQ(plan.dispatches.size(), 1u);
    EXPECT_EQ(plan.dispatches[0].accel, 1);
}

TEST(Veltair, BlockLengthRespectsThreshold)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    auto* req = cb.addRequest(t, 0.0, 1e6);
    sched::VeltairScheduler veltair;
    auto& ctx = cb.context(0.0);
    // A tiny threshold yields single-layer blocks; a huge one takes
    // the whole model.
    EXPECT_EQ(veltair.blockLength(ctx, *req, 0, 1e-6), 1u);
    EXPECT_EQ(veltair.blockLength(ctx, *req, 0, 1e12),
              req->path.size());
}

TEST(Veltair, EdfOrdering)
{
    test::ContextBuilder cb;
    const auto t1 = cb.addTask(test::toyModel("a"));
    const auto t2 = cb.addTask(test::toyModel("b"));
    cb.addRequest(t1, 0.0, 5e5);
    auto* tight = cb.addRequest(t2, 100.0, 1e5);
    sched::VeltairScheduler veltair;
    const auto plan = veltair.plan(cb.context(200.0));
    ASSERT_GE(plan.dispatches.size(), 1u);
    EXPECT_EQ(plan.dispatches[0].requestId, tight->id);
}

TEST(Planaria, PredictionScalesWithSlices)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    auto* req = cb.addRequest(t, 0.0, 1e6);
    auto& ctx = cb.context(0.0);
    const double full =
        sched::PlanariaScheduler::remainingLatencyUs(ctx, *req, 0, 4);
    const double half =
        sched::PlanariaScheduler::remainingLatencyUs(ctx, *req, 0, 2);
    EXPECT_NEAR(half, 2.0 * full, full * 1e-9);
}

TEST(Planaria, ThrottlesToMinimalSlices)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    cb.addRequest(t, 0.0, 1e7); // enormous slack
    sched::PlanariaScheduler planaria;
    const auto plan = planaria.plan(cb.context(0.0));
    ASSERT_EQ(plan.dispatches.size(), 1u);
    // With huge slack the minimal allocation (one slice) suffices.
    EXPECT_EQ(plan.dispatches[0].slices, 1u);
    EXPECT_EQ(plan.dispatches[0].numLayers, 1u);
}

TEST(Planaria, GivesMoreSlicesUnderPressure)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel("big", 4));
    auto* req = cb.addRequest(t, 0.0, 0.0);
    auto& ctx = cb.context(0.0);
    // Deadline that needs more than one slice but is achievable with
    // a full allocation on the best accelerator.
    double best_full = 1e300;
    for (size_t a = 0; a < ctx.numAccels(); ++a) {
        best_full = std::min(
            best_full, sched::PlanariaScheduler::remainingLatencyUs(
                           ctx, *req, a, 4));
    }
    req->deadlineUs = best_full * 1.5;
    sched::PlanariaScheduler planaria;
    const auto plan = planaria.plan(cb.context(0.0));
    ASSERT_EQ(plan.dispatches.size(), 1u);
    EXPECT_GT(plan.dispatches[0].slices, 1u);
}

TEST(Planaria, CoLocatesMultipleRequests)
{
    test::ContextBuilder cb;
    const auto t1 = cb.addTask(test::toyModel("a"));
    const auto t2 = cb.addTask(test::toyModel("b"));
    cb.addRequest(t1, 0.0, 1e7);
    cb.addRequest(t2, 0.0, 1e7);
    sched::PlanariaScheduler planaria;
    const auto plan = planaria.plan(cb.context(0.0));
    // Both dispatched in one round (possibly sharing an accelerator).
    EXPECT_EQ(plan.dispatches.size(), 2u);
}

TEST(StaticFcfs, TimetableCoversWorstCaseFrames)
{
    test::ContextBuilder cb;
    const auto t1 = cb.addTask(test::toyModel("root"), 30.0);
    cb.addTask(test::toyModel("dep"), 30.0, t1);
    sched::StaticFcfsScheduler sched;
    auto& ctx = cb.context(0.0);
    sched.reset(ctx);
    const auto& slots = sched.timetable();
    // 2 s window at 30 FPS: 60 frames per task, both tasks reserved.
    EXPECT_EQ(slots.size(), 120u);
    // Slots on one accelerator never overlap.
    std::vector<double> free_at(ctx.numAccels(), 0.0);
    for (const auto& slot : slots) {
        EXPECT_GE(slot.startUs + 1e-9, free_at[size_t(slot.accel)]);
        free_at[size_t(slot.accel)] = slot.endUs;
    }
}

TEST(StaticFcfs, RequestsWakeUpForFutureSlots)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel(), 30.0);
    (void)t;
    sched::StaticFcfsScheduler sched;
    auto& ctx = cb.context(0.0);
    sched.reset(ctx);
    // No ready requests yet: the scheduler asks for a wake-up
    // instead of dispatching.
    const auto plan = sched.plan(ctx);
    EXPECT_TRUE(plan.dispatches.empty());
    EXPECT_GE(plan.wakeUpUs, 0.0);
}

TEST(Traits, CoverageMatrixShape)
{
    const auto rows = sched::allSchedulerTraits();
    ASSERT_GE(rows.size(), 6u);
    // DREAM rows cover everything; FCFS covers almost nothing.
    for (const auto& r : rows) {
        if (r.name.rfind("DREAM-MapScore", 0) == 0 ||
            r.name == "DREAM-Full") {
            EXPECT_TRUE(r.cascade && r.concurrent && r.realTime &&
                        r.taskDynamicity && r.modelDynamicity &&
                        r.energy && r.heterogeneity);
        }
        if (r.name == "FCFS") {
            EXPECT_FALSE(r.realTime);
        }
    }
}

} // namespace
} // namespace dream
