/** @file Unit tests for the Smart Frame Drop engine's 4 conditions. */

#include <gtest/gtest.h>

#include "core/frame_drop.h"
#include "test_util.h"

namespace dream {
namespace {

core::DreamConfig
dropConfig()
{
    auto cfg = core::DreamConfig::smartDropConfig();
    cfg.maxDropRate = 0.2;
    cfg.dropRateWindowFrames = 10;
    return cfg;
}

TEST(FrameDrop, NoDropWhenEveryoneMeetsDeadlines)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    cb.addRequest(t, 0.0, 1e6);
    cb.addRequest(cb.addTask(test::toyModel("toy2")), 0.0, 1e6);
    core::MapScoreEngine engine(1.0, 1.0);
    core::FrameDropEngine drop(dropConfig());
    EXPECT_FALSE(drop.selectDrop(cb.context(0.0), engine).has_value());
}

TEST(FrameDrop, Condition2NoDropForSingleViolation)
{
    test::ContextBuilder cb;
    const auto t1 = cb.addTask(test::toyModel("doomed"));
    const auto t2 = cb.addTask(test::toyModel("fine"));
    cb.addRequest(t1, 0.0, 1.0); // hopeless deadline
    cb.addRequest(t2, 0.0, 1e6);
    core::MapScoreEngine engine(1.0, 1.0);
    core::FrameDropEngine drop(dropConfig());
    // Only one expected violation: dropping would be redundant.
    EXPECT_FALSE(drop.selectDrop(cb.context(0.0), engine).has_value());
}

TEST(FrameDrop, DropsWorstRatioWhenMultipleViolations)
{
    test::ContextBuilder cb;
    const auto t1 = cb.addTask(test::toyModel("late1"));
    const auto t2 = cb.addTask(test::toyModel("late2", 2));
    auto* r1 = cb.addRequest(t1, 0.0, 2000.0);
    auto* r2 = cb.addRequest(t2, 0.0, 2000.0);
    (void)r1;
    core::MapScoreEngine engine(1.0, 1.0);
    core::FrameDropEngine drop(dropConfig());
    const auto victim = drop.selectDrop(cb.context(1900.0), engine);
    ASSERT_TRUE(victim.has_value());
    // late2 is the heavier model: higher minToGo / slack ratio.
    EXPECT_EQ(*victim, r2->id);
}

TEST(FrameDrop, Condition3OnlyLeavesDroppable)
{
    test::ContextBuilder cb;
    const auto parent = cb.addTask(test::toyModel("parent", 2));
    const auto child =
        cb.addTask(test::toyModel("child", 2), 30.0, parent);
    (void)child;
    auto* rp = cb.addRequest(parent, 0.0, 100.0);
    // A second doomed frame so condition 2 passes.
    const auto other = cb.addTask(test::toyModel("other", 2));
    auto* ro = cb.addRequest(other, 0.0, 100.0);
    (void)rp;
    core::MapScoreEngine engine(1.0, 1.0);
    core::FrameDropEngine drop(dropConfig());
    const auto victim = drop.selectDrop(cb.context(50.0), engine);
    ASSERT_TRUE(victim.has_value());
    // The parent is not a leaf; only `other` may be dropped.
    EXPECT_EQ(*victim, ro->id);
}

TEST(FrameDrop, Condition4BudgetCapsDropRate)
{
    test::ContextBuilder cb;
    const auto t1 = cb.addTask(test::toyModel("a", 2));
    const auto t2 = cb.addTask(test::toyModel("b", 2));
    cb.addRequest(t1, 0.0, 100.0);
    auto* r2 = cb.addRequest(t2, 0.0, 100.0);
    // Task t1 already at the cap: 2 drops in 10 finished frames.
    cb.stats().tasks[size_t(t1)].droppedFrames = 2;
    cb.stats().tasks[size_t(t1)].completedFrames = 8;
    core::MapScoreEngine engine(1.0, 1.0);
    core::FrameDropEngine drop(dropConfig());
    ASSERT_FALSE(
        drop.dropBudgetAvailable(cb.context(50.0), t1));
    EXPECT_TRUE(drop.dropBudgetAvailable(cb.context(50.0), t2));
    const auto victim = drop.selectDrop(cb.context(50.0), engine);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, r2->id);
}

TEST(FrameDrop, InFlightFramesAreNotDroppable)
{
    test::ContextBuilder cb;
    const auto t1 = cb.addTask(test::toyModel("a", 2));
    const auto t2 = cb.addTask(test::toyModel("b", 2));
    auto* r1 = cb.addRequest(t1, 0.0, 100.0);
    auto* r2 = cb.addRequest(t2, 0.0, 100.0);
    r1->inFlight = true; // running: cannot be pre-empted/dropped
    core::MapScoreEngine engine(1.0, 1.0);
    core::FrameDropEngine drop(dropConfig());
    const auto victim = drop.selectDrop(cb.context(50.0), engine);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, r2->id);
}

TEST(FrameDrop, ExpectedViolationUsesBestVariant)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toySupernet());
    auto* req = cb.addRequest(t, 0.0, 0.0);
    core::MapScoreEngine engine(1.0, 1.0);
    core::FrameDropEngine drop(dropConfig());
    // Pick a deadline between the light and heavy variants' minToGo:
    // the frame must NOT count as an expected violation because
    // switching can still save it.
    auto& ctx = cb.context(0.0);
    const double heavy = engine.minToGoUs(ctx, *req);
    const double best = engine.minToGoBestVariantUs(ctx, *req);
    ASSERT_LT(best, heavy);
    req->deadlineUs = (best + heavy) / 2.0;
    EXPECT_FALSE(drop.expectedViolation(ctx, engine, *req));
    req->deadlineUs = best / 2.0;
    EXPECT_TRUE(drop.expectedViolation(ctx, engine, *req));
}

} // namespace
} // namespace dream
