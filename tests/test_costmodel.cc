/** @file Tests for the analytical layer cost model. */

#include <cmath>

#include <gtest/gtest.h>

#include "costmodel/layer_cost.h"
#include "hw/system.h"
#include "models/layer.h"

namespace dream {
namespace {

using namespace models;
using cost::estimateLayer;

hw::AcceleratorConfig
accel(hw::Dataflow df, uint32_t pes = 2048)
{
    hw::AcceleratorConfig acc;
    acc.name = "test";
    acc.numPes = pes;
    acc.dataflow = df;
    return acc;
}

TEST(CostModel, PositiveAndFinite)
{
    const auto l = conv("c", 56, 56, 64, 128, 3, 1);
    for (const auto df : {hw::Dataflow::WeightStationary,
                          hw::Dataflow::OutputStationary}) {
        const auto c = estimateLayer(l, accel(df));
        EXPECT_GT(c.latencyUs, 0.0);
        EXPECT_GT(c.energyMj, 0.0);
        EXPECT_TRUE(std::isfinite(c.latencyUs));
        EXPECT_TRUE(std::isfinite(c.energyMj));
    }
}

TEST(CostModel, MorePesNotSlower)
{
    const auto l = conv("c", 112, 112, 32, 64, 3, 1);
    for (const auto df : {hw::Dataflow::WeightStationary,
                          hw::Dataflow::OutputStationary}) {
        const auto small = estimateLayer(l, accel(df, 1024));
        const auto big = estimateLayer(l, accel(df, 4096));
        EXPECT_LE(big.latencyUs, small.latencyUs * 1.001);
    }
}

TEST(CostModel, FewerSlicesSlower)
{
    const auto l = conv("c", 56, 56, 64, 128, 3, 1);
    const auto acc = accel(hw::Dataflow::WeightStationary);
    const auto full = estimateLayer(l, acc, 4);
    const auto half = estimateLayer(l, acc, 2);
    const auto quarter = estimateLayer(l, acc, 1);
    EXPECT_GT(half.latencyUs, full.latencyUs);
    EXPECT_GT(quarter.latencyUs, half.latencyUs);
}

TEST(CostModel, BiggerLayerCostsMore)
{
    const auto small = conv("s", 28, 28, 32, 32, 3, 1);
    const auto big = conv("b", 56, 56, 64, 128, 3, 1);
    const auto acc = accel(hw::Dataflow::WeightStationary);
    EXPECT_GT(estimateLayer(big, acc).latencyUs,
              estimateLayer(small, acc).latencyUs);
    EXPECT_GT(estimateLayer(big, acc).energyMj,
              estimateLayer(small, acc).energyMj);
}

TEST(CostModel, DepthwisePrefersOs)
{
    // NVDLA-style WS starves its input-channel lanes on depthwise.
    const auto dw = dwConv("dw", 56, 56, 144, 3, 1);
    const auto ws = estimateLayer(dw, accel(
        hw::Dataflow::WeightStationary));
    const auto os = estimateLayer(dw, accel(
        hw::Dataflow::OutputStationary));
    EXPECT_LT(os.latencyUs, ws.latencyUs);
}

TEST(CostModel, DeepLateConvPrefersWs)
{
    // 7x7 spatial map with deep channels: OS runs out of output
    // positions; WS keeps its weight lanes busy.
    const auto late = conv("late", 7, 7, 512, 512, 3, 1);
    const auto ws = estimateLayer(late, accel(
        hw::Dataflow::WeightStationary));
    const auto os = estimateLayer(late, accel(
        hw::Dataflow::OutputStationary));
    EXPECT_LT(ws.latencyUs, os.latencyUs);
}

TEST(CostModel, FcLikeLayersPreferWs)
{
    const auto l = rnn("lstm", 2048, 4096, 24);
    const auto ws = estimateLayer(l, accel(
        hw::Dataflow::WeightStationary));
    const auto os = estimateLayer(l, accel(
        hw::Dataflow::OutputStationary));
    EXPECT_LT(ws.latencyUs, os.latencyUs);
}

TEST(CostModel, SpatialUtilisationBounds)
{
    const auto layers = {conv("a", 112, 112, 3, 32, 3, 2),
                         dwConv("b", 56, 56, 128, 3, 1),
                         conv("c", 7, 7, 512, 512, 3, 1)};
    for (const auto& l : layers) {
        for (const auto df : {hw::Dataflow::WeightStationary,
                              hw::Dataflow::OutputStationary}) {
            const double u = cost::spatialUtilisation(l, df, 2048);
            EXPECT_GT(u, 0.0) << l.name;
            EXPECT_LE(u, 1.0) << l.name;
        }
    }
}

TEST(CostModel, RnnWeightRefetchKicksInAboveSram)
{
    // 8 MiB SRAM: an 8.4 MB LSTM layer refetches weights per step,
    // a 2 MB one does not.
    const uint64_t sram = 8ull * 1024 * 1024;
    const auto big = rnn("big", 2048, 4096, 24);   // 8.4 MB weights
    const auto small = rnn("small", 1024, 2048, 24); // 2.1 MB
    const double big_traffic = cost::dramTrafficBytes(
        big, hw::Dataflow::WeightStationary, sram);
    const double small_traffic = cost::dramTrafficBytes(
        small, hw::Dataflow::WeightStationary, sram);
    EXPECT_GT(big_traffic, double(big.weightBytes()) * 20.0);
    EXPECT_LT(small_traffic, double(small.weightBytes()) * 3.0);
}

TEST(CostModel, ContextSwitchEnergyScalesWithBytes)
{
    const double e1 = cost::contextSwitchEnergyMj(1 << 20, 1 << 20);
    const double e2 = cost::contextSwitchEnergyMj(2 << 20, 2 << 20);
    EXPECT_GT(e1, 0.0);
    EXPECT_NEAR(e2, 2.0 * e1, 1e-12);
}

TEST(CostModel, ContextSwitchLatencyScalesInverselyWithSlices)
{
    const auto acc = accel(hw::Dataflow::WeightStationary);
    const double full = cost::contextSwitchLatencyUs(1 << 20, acc, 4);
    const double quarter =
        cost::contextSwitchLatencyUs(1 << 20, acc, 1);
    EXPECT_NEAR(quarter, 4.0 * full, 1e-9);
}

TEST(CostModel, EnergyIncludesStaticComponent)
{
    // A memory-bound layer has long residency; doubling PEs leaves
    // DRAM time unchanged but doubles leakage, so energy rises.
    const auto l = rnn("mem", 2048, 8192, 32);
    const auto small = estimateLayer(l, accel(
        hw::Dataflow::WeightStationary, 2048));
    const auto big = estimateLayer(l, accel(
        hw::Dataflow::WeightStationary, 4096));
    EXPECT_GT(big.energyMj, small.energyMj);
}

} // namespace
} // namespace dream
