/** @file Unit tests for the context-switch traffic model. */

#include <gtest/gtest.h>

#include "sim/context_switch.h"
#include "test_util.h"

namespace dream {
namespace {

sim::Request
midModelRequest(int id, const models::Model& m, size_t next_layer)
{
    sim::Request r;
    r.id = id;
    r.path = m.layers;
    r.nextLayer = next_layer;
    return r;
}

TEST(ContextSwitch, FreshStartOnCleanAcceleratorIsFree)
{
    sim::AcceleratorState acc;
    const auto m = test::toyModel();
    const auto req = midModelRequest(1, m, 0);
    const auto t = sim::switchTraffic(acc, req);
    EXPECT_EQ(t.flushBytes, 0ull);
    EXPECT_EQ(t.fetchBytes, 0ull);
    EXPECT_FALSE(t.any());
}

TEST(ContextSwitch, MidModelMigrationFetchesNextInput)
{
    sim::AcceleratorState acc; // nothing resident
    const auto m = test::toyModel();
    const auto req = midModelRequest(1, m, 1);
    const auto t = sim::switchTraffic(acc, req);
    EXPECT_EQ(t.flushBytes, 0ull);
    EXPECT_EQ(t.fetchBytes, m.layers[1].inputBytes());
}

TEST(ContextSwitch, ResidentRequestPaysNothing)
{
    sim::AcceleratorState acc;
    acc.residentRequestId = 1;
    acc.residentBytes = 12345;
    const auto m = test::toyModel();
    const auto req = midModelRequest(1, m, 1);
    EXPECT_FALSE(sim::switchTraffic(acc, req).any());
}

TEST(ContextSwitch, DisplacingAnotherRequestFlushesItsState)
{
    sim::AcceleratorState acc;
    acc.residentRequestId = 7;
    acc.residentBytes = 4096;
    const auto m = test::toyModel();
    const auto fresh = midModelRequest(1, m, 0);
    const auto t = sim::switchTraffic(acc, fresh);
    EXPECT_EQ(t.flushBytes, 4096ull);
    EXPECT_EQ(t.fetchBytes, 0ull);

    const auto mid = midModelRequest(1, m, 2);
    const auto t2 = sim::switchTraffic(acc, mid);
    EXPECT_EQ(t2.flushBytes, 4096ull);
    EXPECT_EQ(t2.fetchBytes, m.layers[2].inputBytes());
    EXPECT_EQ(t2.total(), t2.flushBytes + t2.fetchBytes);
}

TEST(ContextSwitch, RepeatLayersChargePerStepLiveSet)
{
    sim::AcceleratorState acc;
    models::Model m;
    m.name = "rnn";
    m.layers.push_back(models::fc("in", 64, 64));
    m.layers.push_back(models::rnn("lstm", 1024, 2048, 16));
    const auto req = midModelRequest(1, m, 1);
    const auto t = sim::switchTraffic(acc, req);
    // Only one step of the recurrent input is live, not all 16.
    EXPECT_EQ(t.fetchBytes, m.layers[1].inputBytes() / 16);
}

} // namespace
} // namespace dream
