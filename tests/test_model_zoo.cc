/** @file Tests for Model aggregates and the full Table 3 model zoo. */

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "test_util.h"

namespace dream {
namespace {

using namespace models;

TEST(Model, Aggregates)
{
    const Model m = test::toyModel();
    EXPECT_EQ(m.totalMacs(), totalMacs(m.layers));
    EXPECT_GT(m.totalWeightBytes(), 0ull);
    EXPECT_GT(m.peakActivationBytes(), 0ull);
    EXPECT_FALSE(m.isSupernet());
}

TEST(Model, PeakActivationIsMaxLiveSet)
{
    Model m;
    m.layers.push_back(fc("small", 16, 16));
    m.layers.push_back(conv("big", 64, 64, 32, 32, 3, 1));
    const auto& big = m.layers[1];
    EXPECT_EQ(m.peakActivationBytes(),
              big.inputBytes() + big.outputBytes());
}

TEST(Model, VariantPathSharesPrefix)
{
    const Model m = test::toySupernet();
    ASSERT_TRUE(m.isSupernet());
    const auto original = m.variantPath(0);
    const auto light = m.variantPath(1);
    EXPECT_EQ(original.size(), m.layers.size());
    ASSERT_GE(light.size(), m.supernetSwitchPoint);
    for (size_t i = 0; i < m.supernetSwitchPoint; ++i)
        EXPECT_EQ(light[i].name, m.layers[i].name);
    EXPECT_LT(totalMacs(light), totalMacs(original));
}

// ---------------------------------------------------------------------
// Zoo-wide properties (every network of Table 3).

struct ZooCase {
    const char* name;
    Model (*build)();
    uint64_t minMacs;   ///< sanity floor (MMACs)
    uint64_t maxMacs;   ///< sanity ceiling (MMACs)
};

class ZooTest : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooTest, WellFormed)
{
    const auto& zc = GetParam();
    const Model m = zc.build();
    EXPECT_EQ(m.name, zc.name);
    ASSERT_FALSE(m.layers.empty());
    for (const auto& l : m.layers) {
        EXPECT_GT(l.macs(), 0ull) << l.name;
        EXPECT_GT(l.inC, 0u) << l.name;
        EXPECT_GT(l.outC, 0u) << l.name;
    }
    const uint64_t mmacs = m.totalMacs() / 1000000ull;
    EXPECT_GE(mmacs, zc.minMacs) << "model unrealistically small";
    EXPECT_LE(mmacs, zc.maxMacs) << "model unrealistically large";

    // Dynamic-control structures index real layers.
    for (const auto& blk : m.skipBlocks) {
        EXPECT_LT(blk.begin, blk.end);
        EXPECT_LE(blk.end, m.layers.size());
        EXPECT_GT(blk.skipProb, 0.0);
        EXPECT_LE(blk.skipProb, 1.0);
    }
    for (const auto& exit : m.earlyExits) {
        EXPECT_LT(exit.afterLayer, m.layers.size());
        EXPECT_GT(exit.exitProb, 0.0);
        EXPECT_LE(exit.exitProb, 1.0);
    }
    if (m.isSupernet()) {
        EXPECT_GT(m.supernetSwitchPoint, 0u);
        EXPECT_LT(m.supernetSwitchPoint, m.layers.size());
        // Variants are ordered heaviest to lightest.
        uint64_t prev = m.totalMacs();
        for (size_t v = 1; v <= m.variants.size(); ++v) {
            const uint64_t macs = totalMacs(m.variantPath(v));
            EXPECT_LT(macs, prev)
                << "variant " << v << " not lighter than " << v - 1;
            prev = macs;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table3, ZooTest,
    ::testing::Values(
        ZooCase{"FBNet-C", models::zoo::fbnetC, 100, 2000},
        ZooCase{"SSD_MobileNetV2", models::zoo::ssdMobileNetV2, 200,
                3000},
        ZooCase{"HandPoseNet", models::zoo::handPoseNet, 50, 1500},
        ZooCase{"OFA_Supernet", models::zoo::ofaSupernet, 100, 2000},
        ZooCase{"KWS_res8", models::zoo::kwsRes8, 5, 200},
        ZooCase{"GNMT", models::zoo::gnmt, 500, 5000},
        ZooCase{"SkipNet", models::zoo::skipNet, 1000, 8000},
        ZooCase{"TrailNet", models::zoo::trailNet, 100, 2000},
        ZooCase{"SOSNet", models::zoo::sosNet, 100, 2000},
        ZooCase{"RAPID_RL", models::zoo::rapidRl, 20, 1000},
        ZooCase{"GoogLeNet-car", models::zoo::googLeNetCar, 500, 4000},
        ZooCase{"FocalLengthDepth", models::zoo::focalLengthDepth, 100,
                2000},
        ZooCase{"ED-TCN", models::zoo::edTcn, 10, 500},
        ZooCase{"VGG_VoxCeleb", models::zoo::vggVoxCeleb, 1000,
                10000}),
    [](const auto& info) {
        std::string n = info.param.name;
        for (auto& c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(Zoo, SkipNetHasGatedBlocks)
{
    const Model m = models::zoo::skipNet();
    EXPECT_GE(m.skipBlocks.size(), 8u);
    for (const auto& blk : m.skipBlocks)
        EXPECT_DOUBLE_EQ(blk.skipProb, 0.5);
}

TEST(Zoo, RapidRlHasTwoEarlyExits)
{
    const Model m = models::zoo::rapidRl();
    ASSERT_EQ(m.earlyExits.size(), 2u);
    EXPECT_LT(m.earlyExits[0].afterLayer, m.earlyExits[1].afterLayer);
}

TEST(Zoo, OfaHasFourSubnets)
{
    const Model m = models::zoo::ofaSupernet();
    // Original + three lighter variants, as used in the evaluation.
    EXPECT_EQ(m.variants.size(), 3u);
}

} // namespace
} // namespace dream
