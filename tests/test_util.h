/**
 * @file
 * Shared fixtures for unit tests: a tiny synthetic scenario/system
 * pair plus a hand-buildable SchedulerContext, so scoring, frame-drop
 * and Supernet logic can be tested without running the simulator.
 */

#ifndef DREAM_TESTS_TEST_UTIL_H
#define DREAM_TESTS_TEST_UTIL_H

#include <memory>
#include <vector>

#include "costmodel/cost_table.h"
#include "hw/system.h"
#include "models/model.h"
#include "sim/request.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "workload/scenario.h"

namespace dream {
namespace test {

/** A three-layer toy model with a distinctive conv/fc mix. */
inline models::Model
toyModel(const std::string& name = "toy", uint32_t scale = 1)
{
    models::Model m;
    m.name = name;
    m.layers.push_back(
        models::conv(name + ".conv", 56, 56, 32 * scale, 64 * scale,
                     3, 1));
    m.layers.push_back(
        models::dwConv(name + ".dw", 56, 56, 64 * scale, 3, 2));
    m.layers.push_back(models::fc(name + ".fc", 64 * scale, 128));
    return m;
}

/** A toy Supernet: shared 1-layer stem + heavy/light bodies. */
inline models::Model
toySupernet()
{
    models::Model m = toyModel("supernet", 2);
    m.supernetSwitchPoint = 1;
    models::SupernetVariant light;
    light.name = "light";
    light.bodyLayers.push_back(
        models::dwConv("supernet.lite.dw", 56, 56, 32, 3, 2));
    light.bodyLayers.push_back(models::fc("supernet.lite.fc", 32, 64));
    m.variants.push_back(light);
    return m;
}

/**
 * Hand-buildable scheduler context over a 2-accelerator (1 WS + 1 OS)
 * system and a synthetic scenario. Requests added via addRequest()
 * appear in both `ready` and `live`.
 */
class ContextBuilder {
public:
    ContextBuilder()
    {
        system_.name = "test-1WS+1OS";
        hw::AcceleratorConfig ws;
        ws.name = "WS";
        ws.numPes = 2048;
        ws.dataflow = hw::Dataflow::WeightStationary;
        hw::AcceleratorConfig os = ws;
        os.name = "OS";
        os.dataflow = hw::Dataflow::OutputStationary;
        system_.accelerators = {ws, os};
        costs_ = std::make_unique<cost::CostTable>(system_);
        for (const auto& acc : system_.accelerators) {
            sim::AcceleratorState st;
            st.config = &acc;
            st.freeSlices = acc.numSlices;
            accels_.push_back(st);
        }
    }

    /** Add a task (model at @p fps); returns the task id. */
    workload::TaskId
    addTask(models::Model model, double fps = 30.0,
            workload::TaskId depends_on = workload::kNoParent)
    {
        workload::TaskSpec spec;
        spec.model = std::move(model);
        spec.fps = fps;
        spec.dependsOn = depends_on;
        scenario_.tasks.push_back(std::move(spec));
        costs_->addModel(scenario_.tasks.back().model);
        stats_.tasks.emplace_back();
        stats_.tasks.back().model = scenario_.tasks.back().model.name;
        return workload::TaskId(scenario_.tasks.size() - 1);
    }

    /** Add a ready request for @p task; returns a mutable pointer. */
    sim::Request*
    addRequest(workload::TaskId task, double arrival_us,
               double deadline_us)
    {
        auto req = std::make_unique<sim::Request>();
        req->id = int(requests_.size());
        req->task = task;
        req->arrivalUs = arrival_us;
        req->deadlineUs = deadline_us;
        req->lastEventUs = arrival_us;
        req->path = scenario_.tasks[task].model.layers;
        requests_.push_back(std::move(req));
        return requests_.back().get();
    }

    /** Build the context snapshot at @p now_us. */
    sim::SchedulerContext&
    context(double now_us = 0.0)
    {
        ctx_.nowUs = now_us;
        ctx_.windowUs = 2e6;
        ctx_.system = &system_;
        ctx_.costs = costs_.get();
        ctx_.scenario = &scenario_;
        ctx_.accels = &accels_;
        ctx_.stats = &stats_;
        ctx_.ready.clear();
        ctx_.live.clear();
        for (const auto& r : requests_) {
            if (r->finished())
                continue;
            ctx_.live.push_back(r.get());
            if (!r->inFlight)
                ctx_.ready.push_back(r.get());
        }
        return ctx_;
    }

    hw::SystemConfig& system() { return system_; }
    workload::Scenario& scenario() { return scenario_; }
    cost::CostTable& costs() { return *costs_; }
    std::vector<sim::AcceleratorState>& accels() { return accels_; }
    sim::RunStats& stats() { return stats_; }

private:
    hw::SystemConfig system_;
    workload::Scenario scenario_;
    std::unique_ptr<cost::CostTable> costs_;
    std::vector<sim::AcceleratorState> accels_;
    std::vector<std::unique_ptr<sim::Request>> requests_;
    sim::RunStats stats_;
    sim::SchedulerContext ctx_;
};

} // namespace test
} // namespace dream

#endif // DREAM_TESTS_TEST_UTIL_H
