/**
 * @file
 * Result-toolchain tests: the CSV reader/schema introspection, the
 * shard-merge round trip (merged shard CSVs byte-identical to the
 * unsharded run, including the empty-shard and --filter-composed
 * cases), the overlap validation, regression diffing (NaN cells,
 * within-tolerance drift, added/removed grid points), the shard
 * orchestrator's scheduling logic (chunk partition, retry queue,
 * out-of-order reassembly), and the JSON result reader/merger.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/param_eval.h"
#include "engine/result_sink.h"
#include "tools/csv_diff.h"
#include "tools/csv_merge.h"
#include "tools/json_result.h"
#include "tools/shard_sched.h"

namespace dream {
namespace {

engine::RunRecord
record(size_t index, const std::string& scenario,
       const std::string& sched, uint64_t seed, double ux)
{
    engine::RunRecord r;
    r.index = index;
    r.scenario = scenario;
    r.system = "sys";
    r.scheduler = sched;
    r.seed = seed;
    r.windowUs = 1e6;
    r.uxCost = ux;
    r.totalFrames = 100;
    return r;
}

std::string
toCsv(const std::vector<engine::RunRecord>& records)
{
    std::ostringstream out;
    engine::CsvSink sink(out);
    for (const auto& r : records)
        sink.write(r);
    sink.close();
    return out.str();
}

engine::CsvTable
parse(const std::string& text)
{
    std::istringstream in(text);
    return engine::readResultCsv(in);
}

std::string
merged(const std::vector<std::string>& inputs)
{
    std::vector<engine::CsvTable> tables;
    for (const auto& text : inputs)
        tables.push_back(parse(text));
    std::ostringstream out;
    tools::mergeResultCsvs(tables, out);
    return out.str();
}

TEST(CsvReader, RoundTripsSchemaAndCells)
{
    engine::RunRecord r = record(3, "sc", "A", 11, 1.5);
    r.params = {{"alpha", 0.25}, {"beta", 1.5}};
    r.breakdown = {{"net_v0_share", 0.75}, {"net_v1_share", 0.25}};
    const auto table = parse(toCsv({r}));

    ASSERT_EQ(table.rows.size(), 1u);
    EXPECT_EQ(table.schema.paramColumns,
              (std::vector<std::string>{"alpha", "beta"}));
    EXPECT_EQ(table.schema.breakdownColumns,
              (std::vector<std::string>{"net_v0_share",
                                        "net_v1_share"}));
    EXPECT_EQ(table.schema.columns.size(),
              4u + 2u + engine::csvMetricColumns().size() + 2u);
    EXPECT_EQ(table.rowIndex(0), 3u);
    EXPECT_EQ(table.rowKey(0),
              "sc/sys/A/alpha=0.25,beta=1.5/seed=11");
    EXPECT_EQ(table.rows[0][table.schema.columnIndex("ux_cost")],
              "1.5");
    EXPECT_EQ(table.schema.columnIndex("no_such_column"),
              std::string::npos);
}

TEST(CsvReader, HandlesQuotedCellsAndEmptyInput)
{
    engine::RunRecord r = record(0, "A,B \"quoted\"", "S", 1, 2.0);
    const std::string csv = toCsv({r});
    EXPECT_NE(csv.find("\"A,B \"\"quoted\"\"\""), std::string::npos);
    const auto table = parse(csv);
    ASSERT_EQ(table.rows.size(), 1u);
    EXPECT_EQ(table.rows[0][1], "A,B \"quoted\"");
    EXPECT_EQ(table.rowKey(0), "A,B \"quoted\"/sys/S/seed=1");

    const auto empty = parse("");
    EXPECT_TRUE(empty.empty());
    EXPECT_TRUE(empty.schema.columns.empty());
}

TEST(CsvReader, RejectsMalformedInput)
{
    EXPECT_THROW(parse("not,a,result,csv\n1,2,3,4\n"),
                 std::runtime_error);
    const std::string good = toCsv({record(0, "sc", "A", 1, 1.0)});
    EXPECT_THROW(parse(good + "1,short,row\n"), std::runtime_error);
    EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
}

TEST(CsvMerge, ShardedBenchRunMergesByteIdentically)
{
    // A real grid, including breakdown columns (VR_Gaming carries
    // the OFA Supernet): 2 schedulers x 2 seeds = 4 points.
    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::VrGaming)
        .addSystem(hw::SystemPreset::Sys4k1Ws2Os)
        .addScheduler(runner::SchedKind::Fcfs)
        .addScheduler(runner::SchedKind::DreamFull)
        .seeds({1, 2})
        .window(5e4);

    std::ostringstream full;
    engine::CsvSink full_sink(full);
    engine::Engine({2}).run(grid, {&full_sink});
    full_sink.close();

    std::vector<std::string> shards;
    for (int k = 1; k <= 3; ++k) {
        std::ostringstream out;
        engine::CsvSink sink(out);
        engine::Engine({2}).run(grid, {&sink}, engine::PointFilter{},
                                engine::ShardSpec{k, 3});
        sink.close();
        shards.push_back(out.str());
    }

    EXPECT_EQ(merged(shards), full.str());
    // Input order must not matter.
    EXPECT_EQ(merged({shards[2], shards[0], shards[1]}), full.str());
}

TEST(CsvMerge, EmptyShardsAreSkipped)
{
    const std::string only =
        toCsv({record(0, "sc", "A", 1, 1.0),
               record(1, "sc", "A", 2, 2.0)});
    EXPECT_EQ(merged({"", only, ""}), only);
    EXPECT_EQ(merged({"", "", ""}), "");
}

TEST(CsvMerge, BreakdownHeaderIsFirstSeenUnionAcrossShards)
{
    // Shard 1 has no breakdown columns; shard 2 introduces them.
    // The merged header must match what one CsvSink seeing both
    // records would emit.
    engine::RunRecord plain = record(0, "sc", "A", 1, 1.0);
    engine::RunRecord with = record(1, "sc", "A", 2, 2.0);
    with.breakdown = {{"net_v0_share", 0.6}, {"net_v1_share", 0.4}};

    const std::string expect = toCsv({plain, with});
    EXPECT_EQ(merged({toCsv({plain}), toCsv({with})}), expect);
    EXPECT_EQ(merged({toCsv({with}), toCsv({plain})}), expect);
}

TEST(CsvMerge, OverlappingShardsAreRejected)
{
    const std::string a = toCsv({record(0, "sc", "A", 1, 1.0)});
    // Same grid point again: key collision.
    EXPECT_THROW(merged({a, a}), std::runtime_error);
    // Same row index, different grid point: index collision.
    const std::string b = toCsv({record(0, "sc", "B", 1, 1.0)});
    EXPECT_THROW(merged({a, b}), std::runtime_error);
    // Disjoint rows merge fine.
    const std::string c = toCsv({record(1, "sc", "B", 1, 1.0)});
    EXPECT_NO_THROW(merged({a, c}));
}

TEST(CsvMerge, MixedGridsAreRejected)
{
    engine::RunRecord with_param = record(0, "sc", "A", 1, 1.0);
    with_param.params = {{"alpha", 0.5}};
    const std::string a = toCsv({with_param});
    const std::string b = toCsv({record(1, "sc", "B", 1, 1.0)});
    EXPECT_THROW(merged({a, b}), std::runtime_error);
}

TEST(CsvDiff, IdenticalFilesHaveNoDifferences)
{
    const std::string csv =
        toCsv({record(0, "sc", "A", 1, 1.0),
               record(1, "sc", "A", 2, 2.0)});
    const auto result =
        tools::diffResultCsvs(parse(csv), parse(csv));
    EXPECT_TRUE(result.identical());
    EXPECT_EQ(result.compared, 2u);
    EXPECT_EQ(result.changedRows(), 0u);
}

TEST(CsvDiff, DetectsChangedAddedAndRemovedGridPoints)
{
    const auto r0 = record(0, "sc", "A", 1, 1.0);
    const auto r1 = record(1, "sc", "A", 2, 2.0);
    const auto r2 = record(2, "sc", "B", 1, 3.0);
    auto r1_changed = r1;
    r1_changed.uxCost = 2.5;
    r1_changed.totalFrames = 99;

    const auto result = tools::diffResultCsvs(
        parse(toCsv({r0, r1})), parse(toCsv({r1_changed, r2})));
    EXPECT_FALSE(result.identical());
    ASSERT_EQ(result.removed.size(), 1u);
    EXPECT_EQ(result.removed[0], "sc/sys/A/seed=1");
    ASSERT_EQ(result.added.size(), 1u);
    EXPECT_EQ(result.added[0], "sc/sys/B/seed=1");
    ASSERT_EQ(result.changed.size(), 2u);
    EXPECT_EQ(result.changed[0].column, "ux_cost");
    EXPECT_EQ(result.changed[0].before, "2");
    EXPECT_EQ(result.changed[0].after, "2.5");
    EXPECT_EQ(result.changed[1].column, "total_frames");
    EXPECT_EQ(result.changedRows(), 1u);

    // The row index is positional, not compared: the same grid
    // point at a different index is not a change.
    auto r0_shifted = r0;
    r0_shifted.index = 42;
    EXPECT_TRUE(tools::diffResultCsvs(parse(toCsv({r0})),
                                      parse(toCsv({r0_shifted})))
                    .identical());
}

TEST(CsvDiff, ToleranceAllowsBoundedDrift)
{
    const auto base = record(0, "sc", "A", 1, 100.0);
    auto drift = base;
    drift.uxCost = 100.5;

    tools::DiffOptions exact;
    EXPECT_FALSE(tools::diffResultCsvs(parse(toCsv({base})),
                                       parse(toCsv({drift})), exact)
                     .identical());

    tools::DiffOptions abs_tol;
    abs_tol.tolerance.abs = 1.0;
    EXPECT_TRUE(tools::diffResultCsvs(parse(toCsv({base})),
                                      parse(toCsv({drift})), abs_tol)
                    .identical());

    tools::DiffOptions rel_tol;
    rel_tol.tolerance.rel = 0.01;
    EXPECT_TRUE(tools::diffResultCsvs(parse(toCsv({base})),
                                      parse(toCsv({drift})), rel_tol)
                    .identical());

    // A per-column override beats the (exact) global default and
    // only applies to its column.
    tools::DiffOptions column;
    column.columnTolerances = {{"ux_cost", {1.0, 0.0}}};
    EXPECT_TRUE(tools::diffResultCsvs(parse(toCsv({base})),
                                      parse(toCsv({drift})), column)
                    .identical());
    auto frames = base;
    frames.totalFrames = 101;
    EXPECT_FALSE(tools::diffResultCsvs(parse(toCsv({base})),
                                       parse(toCsv({frames})),
                                       column)
                     .identical());
}

TEST(CsvDiff, NanCellsCompareEqualToNan)
{
    auto a = record(0, "sc", "A", 1, 1.0);
    a.dlvRate = std::numeric_limits<double>::quiet_NaN();
    auto b = a;
    const auto same =
        tools::diffResultCsvs(parse(toCsv({a})), parse(toCsv({b})));
    EXPECT_TRUE(same.identical());

    b.dlvRate = 0.5;
    const auto result =
        tools::diffResultCsvs(parse(toCsv({a})), parse(toCsv({b})));
    ASSERT_EQ(result.changed.size(), 1u);
    EXPECT_EQ(result.changed[0].column, "dlv_rate");
    EXPECT_EQ(result.changed[0].before, "nan");
}

TEST(CsvDiff, BreakdownColumnsCompareAcrossTheUnion)
{
    auto a = record(0, "sc", "A", 1, 1.0);
    a.breakdown = {{"net_v0_share", 0.5}};
    auto b = record(0, "sc", "A", 1, 1.0);
    b.breakdown = {{"net_v0_share", 0.5}, {"net_v1_share", 0.5}};

    const auto result =
        tools::diffResultCsvs(parse(toCsv({a})), parse(toCsv({b})));
    ASSERT_EQ(result.changed.size(), 1u);
    EXPECT_EQ(result.changed[0].column, "net_v1_share");
    EXPECT_EQ(result.changed[0].before, "");
    EXPECT_EQ(result.changed[0].after, "0.5");
}

TEST(CsvDiff, RejectsDuplicateKeysAndMixedGrids)
{
    const auto r = record(0, "sc", "A", 1, 1.0);
    auto dup = r;
    dup.index = 1; // distinct row, same grid point
    EXPECT_THROW(tools::diffResultCsvs(parse(toCsv({r, dup})),
                                       parse(toCsv({r}))),
                 std::runtime_error);

    auto with_param = r;
    with_param.params = {{"alpha", 0.5}};
    EXPECT_THROW(tools::diffResultCsvs(parse(toCsv({r})),
                                       parse(toCsv({with_param}))),
                 std::runtime_error);
}

TEST(CsvDiff, SummariesRenderBothFormats)
{
    const auto a = record(0, "sc", "A", 1, 1.0);
    auto b = a;
    b.uxCost = 2.0;
    const auto result =
        tools::diffResultCsvs(parse(toCsv({a})), parse(toCsv({b})));

    std::ostringstream human;
    tools::printDiffSummary(result, human);
    EXPECT_NE(human.str().find("changed cells: 1"),
              std::string::npos);
    EXPECT_NE(human.str().find("ux_cost 1 -> 2"), std::string::npos);
    EXPECT_NE(human.str().find("result CSVs differ"),
              std::string::npos);

    std::ostringstream json;
    tools::printDiffJson(result, json);
    EXPECT_NE(json.str().find("\"identical\": false"),
              std::string::npos);
    EXPECT_NE(json.str().find("\"column\": \"ux_cost\""),
              std::string::npos);
}

// --------------------------------------- shard orchestrator logic

TEST(ShardSched, ChunkRangesTileTheSequenceExactly)
{
    for (const size_t total : {0u, 1u, 2u, 7u, 16u, 100u}) {
        for (const size_t chunks : {1u, 2u, 3u, 5u, 16u, 200u}) {
            const auto ranges = tools::chunkRanges(total, chunks);
            EXPECT_LE(ranges.size(), chunks);
            EXPECT_EQ(ranges.size(), std::min(total, chunks));
            size_t prev_end = 0;
            size_t lo = total, hi = 0;
            for (const auto& c : ranges) {
                EXPECT_EQ(c.begin, prev_end); // contiguous, in order
                EXPECT_GT(c.end, c.begin);    // never empty
                prev_end = c.end;
                lo = std::min(lo, c.end - c.begin);
                hi = std::max(hi, c.end - c.begin);
            }
            EXPECT_EQ(prev_end, total); // covering, exactly once
            if (!ranges.empty()) {
                EXPECT_LE(hi - lo, 1u); // balanced to within one
            }
        }
    }
    EXPECT_TRUE(tools::chunkRanges(5, 0).empty());
    EXPECT_TRUE(tools::chunkRanges(0, 4).empty());
}

TEST(ShardSched, QueueHandsOutEveryChunkOnce)
{
    tools::ChunkQueue queue(tools::chunkRanges(10, 4), 3);
    ASSERT_EQ(queue.size(), 4u);

    std::vector<size_t> popped;
    size_t id = 0;
    while (queue.next(&id))
        popped.push_back(id);
    EXPECT_EQ(popped, (std::vector<size_t>{0, 1, 2, 3}));
    EXPECT_FALSE(queue.allDone()); // in flight, not completed
    for (const size_t p : popped)
        queue.complete(p);
    EXPECT_TRUE(queue.allDone());
    EXPECT_EQ(queue.requeues(), 0u);
    EXPECT_EQ(queue.failed(), 0u);
}

TEST(ShardSched, QueueRequeuesFailedChunksUntilTheBudget)
{
    // Budget of 2 attempts: one retry after the first failure.
    tools::ChunkQueue queue(tools::chunkRanges(6, 3), 2);
    size_t id = 0;
    ASSERT_TRUE(queue.next(&id));
    EXPECT_EQ(id, 0u);
    EXPECT_EQ(queue.attempts(0), 1);

    // Failure requeues at the BACK: fresh chunks run first.
    EXPECT_TRUE(queue.fail(0));
    EXPECT_EQ(queue.requeues(), 1u);
    std::vector<size_t> order;
    while (queue.next(&id))
        order.push_back(id);
    EXPECT_EQ(order, (std::vector<size_t>{1, 2, 0}));
    EXPECT_EQ(queue.attempts(0), 2);

    // Second failure exhausts the budget: permanent.
    EXPECT_FALSE(queue.fail(0));
    EXPECT_EQ(queue.failed(), 1u);
    queue.complete(1);
    queue.complete(2);
    EXPECT_FALSE(queue.allDone()); // chunk 0 never completed
    EXPECT_FALSE(queue.next(&id)); // and nothing is pending
}

TEST(ShardSched, OutOfOrderChunkCompletionMergesByteIdentically)
{
    // The orchestrator's reassembly invariant: whichever worker
    // finishes whichever chunk in whatever order, the merged file
    // equals the unsharded run byte for byte.
    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::VrGaming)
        .addSystem(hw::SystemPreset::Sys4k1Ws2Os)
        .addScheduler(runner::SchedKind::Fcfs)
        .addScheduler(runner::SchedKind::DreamFull)
        .seeds({1, 2})
        .window(5e4);

    std::ostringstream full;
    engine::CsvSink full_sink(full);
    engine::Engine({2}).run(grid, {&full_sink});
    full_sink.close();

    std::vector<std::string> chunk_csvs;
    for (const auto& c : tools::chunkRanges(grid.size(), 3)) {
        std::ostringstream out;
        engine::CsvSink sink(out);
        engine::Engine({2}).run(grid, {&sink}, engine::PointFilter{},
                                c);
        sink.close();
        chunk_csvs.push_back(out.str());
    }
    ASSERT_EQ(chunk_csvs.size(), 3u);
    // Every completion order reassembles the same bytes.
    EXPECT_EQ(merged({chunk_csvs[0], chunk_csvs[1], chunk_csvs[2]}),
              full.str());
    EXPECT_EQ(merged({chunk_csvs[2], chunk_csvs[0], chunk_csvs[1]}),
              full.str());
    EXPECT_EQ(merged({chunk_csvs[1], chunk_csvs[2], chunk_csvs[0]}),
              full.str());
}

// --------------------------------------------- JSON result files

std::string
toJson(const std::vector<engine::RunRecord>& records)
{
    std::ostringstream out;
    engine::JsonSink sink(out);
    for (const auto& r : records)
        sink.write(r);
    sink.close();
    return out.str();
}

tools::JsonTable
parseJson(const std::string& text)
{
    std::istringstream in(text);
    return tools::readResultJson(in);
}

std::string
mergedJson(const std::vector<std::string>& inputs)
{
    std::vector<tools::JsonTable> tables;
    for (const auto& text : inputs)
        tables.push_back(parseJson(text));
    std::ostringstream out;
    tools::mergeResultJsons(tables, out);
    return out.str();
}

TEST(JsonResult, ReadsBackTheCsvTwinOfTheSameRun)
{
    engine::RunRecord r = record(3, "sc", "A", 11, 1.5);
    r.params = {{"alpha", 0.25}, {"beta", 1.5}};
    r.breakdown = {{"net_v0_share", 0.75}, {"net_v1_share", 0.25}};
    r.dlvRate = std::numeric_limits<double>::quiet_NaN();

    const auto json = parseJson(toJson({r}));
    const auto csv = parse(toCsv({r}));
    ASSERT_EQ(json.raw.size(), 1u);
    EXPECT_EQ(json.raw[0].front(), '{');
    EXPECT_EQ(json.raw[0].back(), '}');
    // Same schema, same cell text (formatValue renders both sides),
    // so the JSON view diffs exactly like the CSV view.
    EXPECT_EQ(json.table.schema.columns, csv.schema.columns);
    EXPECT_EQ(json.table.rows, csv.rows);
    EXPECT_EQ(json.table.rowKey(0), csv.rowKey(0));
    EXPECT_EQ(json.table.rowIndex(0), 3u);
    EXPECT_TRUE(
        tools::diffResultCsvs(csv, json.table).identical());

    // Quoting round-trips through both encoders.
    engine::RunRecord quoted =
        record(0, "A,B \"quoted\"", "S", 1, 2.0);
    EXPECT_EQ(parseJson(toJson({quoted})).table.rows[0][1],
              "A,B \"quoted\"");

    EXPECT_TRUE(parseJson("[]\n").empty());
    EXPECT_TRUE(parseJson("").empty());
}

TEST(JsonResult, RejectsMalformedAndMixedGridInput)
{
    EXPECT_THROW(parseJson("[{]"), std::runtime_error);
    EXPECT_THROW(parseJson("[{\"index\": 0}]"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"not\": \"an array\"}"),
                 std::runtime_error);
    const std::string good = toJson({record(0, "sc", "A", 1, 1.0)});
    EXPECT_THROW(parseJson(good + "trailing"), std::runtime_error);

    // Two records disagreeing on parameter keys = two grids.
    engine::RunRecord a = record(0, "sc", "A", 1, 1.0);
    a.params = {{"alpha", 0.5}};
    EXPECT_THROW(parseJson(toJson({a, record(1, "sc", "A", 2, 1.0)})),
                 std::runtime_error);
}

TEST(JsonMerge, ChunkedJsonRunsMergeByteIdentically)
{
    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::VrGaming)
        .addSystem(hw::SystemPreset::Sys4k1Ws2Os)
        .addScheduler(runner::SchedKind::Fcfs)
        .addScheduler(runner::SchedKind::DreamFull)
        .seeds({1, 2})
        .window(5e4);

    std::ostringstream full;
    engine::JsonSink full_sink(full);
    engine::Engine({2}).run(grid, {&full_sink});
    full_sink.close();

    std::vector<std::string> chunks;
    for (const auto& c : tools::chunkRanges(grid.size(), 3)) {
        std::ostringstream out;
        engine::JsonSink sink(out);
        engine::Engine({2}).run(grid, {&sink}, engine::PointFilter{},
                                c);
        sink.close();
        chunks.push_back(out.str());
    }
    // Out-of-order completion must not matter for JSON either.
    EXPECT_EQ(mergedJson({chunks[0], chunks[1], chunks[2]}),
              full.str());
    EXPECT_EQ(mergedJson({chunks[2], chunks[0], chunks[1]}),
              full.str());
}

TEST(JsonMerge, EmptyInputsAndOverlapsMatchCsvSemantics)
{
    const std::string only =
        toJson({record(0, "sc", "A", 1, 1.0),
                record(1, "sc", "A", 2, 2.0)});
    EXPECT_EQ(mergedJson({"[]\n", only}), only);
    // All-empty: the rowless run's "[]", exactly as JsonSink writes
    // it.
    EXPECT_EQ(mergedJson({"[]\n", "[]\n"}), "[]\n");

    const std::string a = toJson({record(0, "sc", "A", 1, 1.0)});
    EXPECT_THROW(mergedJson({a, a}), std::runtime_error);
    const std::string b = toJson({record(0, "sc", "B", 1, 1.0)});
    EXPECT_THROW(mergedJson({a, b}), std::runtime_error);
}

} // anonymous namespace
} // namespace dream
