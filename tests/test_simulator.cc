/** @file Integration tests for the discrete-event simulator. */

#include <gtest/gtest.h>

#include "core/dream_scheduler.h"
#include "metrics/uxcost.h"
#include "runner/experiment.h"
#include "sched/fcfs.h"
#include "sim/simulator.h"

namespace dream {
namespace {

sim::RunStats
runFcfs(hw::SystemPreset sys_preset,
        workload::ScenarioPreset sc_preset, double window_us,
        uint64_t seed)
{
    const auto system = hw::makeSystem(sys_preset);
    const auto scenario = workload::makeScenario(sc_preset);
    sched::FcfsScheduler fcfs;
    return runner::runOnce(system, scenario, fcfs, window_us, seed)
        .stats;
}

TEST(Simulator, FrameAccountingConservation)
{
    const auto stats = runFcfs(hw::SystemPreset::Sys4k1Ws2Os,
                               workload::ScenarioPreset::DroneOutdoor,
                               1e6, 3);
    for (const auto& ts : stats.tasks) {
        EXPECT_GT(ts.totalFrames, 0u) << ts.model;
        EXPECT_LE(ts.droppedFrames, ts.violatedFrames) << ts.model;
        EXPECT_LE(ts.violatedFrames,
                  ts.totalFrames) << ts.model;
        EXPECT_LE(ts.completedFrames, ts.totalFrames) << ts.model;
        // Every counted frame either completed or is violated
        // (dropped / unfinished frames are violations).
        EXPECT_GE(ts.completedFrames + ts.violatedFrames,
                  ts.totalFrames) << ts.model;
        EXPECT_GE(ts.energyMj, 0.0);
        EXPECT_GE(ts.worstCaseEnergyMj, 0.0);
    }
}

TEST(Simulator, RootFrameCountsMatchFps)
{
    const auto stats = runFcfs(hw::SystemPreset::Sys8k2Ws,
                               workload::ScenarioPreset::DroneOutdoor,
                               2e6, 3);
    // Drone_Outdoor: SSD 30 FPS, TrailNet 60, SOSNet 60 over 2 s.
    EXPECT_EQ(stats.tasks[0].totalFrames, 60u);
    EXPECT_EQ(stats.tasks[1].totalFrames, 120u);
    EXPECT_EQ(stats.tasks[2].totalFrames, 120u);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    const auto a = runFcfs(hw::SystemPreset::Sys4k1Os2Ws,
                           workload::ScenarioPreset::ArCall, 1e6, 9);
    const auto b = runFcfs(hw::SystemPreset::Sys4k1Os2Ws,
                           workload::ScenarioPreset::ArCall, 1e6, 9);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (size_t t = 0; t < a.tasks.size(); ++t) {
        EXPECT_EQ(a.tasks[t].violatedFrames, b.tasks[t].violatedFrames);
        EXPECT_EQ(a.tasks[t].completedFrames,
                  b.tasks[t].completedFrames);
        EXPECT_DOUBLE_EQ(a.tasks[t].energyMj, b.tasks[t].energyMj);
    }
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
}

TEST(Simulator, SeedChangesDynamicOutcomes)
{
    const auto a = runFcfs(hw::SystemPreset::Sys4k1Ws2Os,
                           workload::ScenarioPreset::ArCall, 2e6, 1);
    const auto b = runFcfs(hw::SystemPreset::Sys4k1Ws2Os,
                           workload::ScenarioPreset::ArCall, 2e6, 2);
    // GNMT is cascade-gated: different seeds trigger different counts.
    EXPECT_NE(a.tasks[1].totalFrames, b.tasks[1].totalFrames);
}

TEST(Simulator, CascadeChildrenOnlyAfterParentCompletes)
{
    const auto stats = runFcfs(hw::SystemPreset::Sys8k2Ws,
                               workload::ScenarioPreset::ArCall, 2e6,
                               7);
    // GNMT frames can never outnumber completed KWS frames.
    EXPECT_LE(stats.tasks[1].totalFrames,
              stats.tasks[0].completedFrames);
    EXPECT_GT(stats.tasks[1].totalFrames, 0u);
}

TEST(Simulator, SameWorkloadForEverySchedulerSameSeed)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys8k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::VrGaming);
    sched::FcfsScheduler fcfs;
    core::DreamScheduler dream(core::DreamConfig::mapScore());
    const auto a =
        runner::runOnce(system, scenario, fcfs, 1e6, 5).stats;
    const auto b =
        runner::runOnce(system, scenario, dream, 1e6, 5).stats;
    // Root-task frame counts are workload properties, not scheduler
    // properties.
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (size_t t = 0; t < a.tasks.size(); ++t) {
        if (scenario.tasks[t].dependsOn == workload::kNoParent) {
            EXPECT_EQ(a.tasks[t].totalFrames, b.tasks[t].totalFrames);
        }
    }
}

TEST(Simulator, EnergyIsChargedAndContextSwitchesCounted)
{
    // Layer-granularity scheduling (DREAM) migrates requests between
    // accelerators mid-model, which is what incurs context switches;
    // whole-model FCFS legitimately has none.
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArSocial);
    core::DreamScheduler dream(core::DreamConfig::mapScore());
    const auto stats =
        runner::runOnce(system, scenario, dream, 1e6, 3).stats;
    EXPECT_GT(stats.totalEnergyMj(), 0.0);
    EXPECT_GT(stats.contextSwitches, 0u);
    EXPECT_GT(stats.contextSwitchEnergyMj, 0.0);
    EXPECT_LT(stats.contextSwitchEnergyMj, stats.totalEnergyMj());
    EXPECT_GT(stats.schedulerInvocations, 0u);

    const auto fcfs_stats =
        runFcfs(hw::SystemPreset::Sys4k1Ws2Os,
                workload::ScenarioPreset::ArSocial, 1e6, 3);
    EXPECT_EQ(fcfs_stats.contextSwitches, 0u);
}

TEST(Simulator, WindowTruncationExcludesTailFrames)
{
    // Frames whose deadline falls outside the window are not counted.
    const auto short_run =
        runFcfs(hw::SystemPreset::Sys8k2Ws,
                workload::ScenarioPreset::DroneOutdoor, 5e5, 3);
    EXPECT_EQ(short_run.tasks[1].totalFrames, 30u); // 60 FPS x 0.5 s
}

TEST(Simulator, SupernetVariantTalliesMatchStartedFrames)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArSocial);
    core::DreamScheduler dream(core::DreamConfig::full());
    const auto stats =
        runner::runOnce(system, scenario, dream, 1e6, 3).stats;
    for (const auto& ts : stats.tasks) {
        if (ts.variantStarts.empty())
            continue;
        uint64_t started = 0;
        for (const auto v : ts.variantStarts)
            started += v;
        EXPECT_LE(started, ts.totalFrames);
        EXPECT_GT(started, 0u);
    }
}

} // namespace
} // namespace dream
