/** @file Unit tests for the Supernet switching engine. */

#include <gtest/gtest.h>

#include "core/supernet_switch.h"
#include "test_util.h"

namespace dream {
namespace {

TEST(Supernet, KeepsOriginalWhenRelaxed)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toySupernet());
    auto* req = cb.addRequest(t, 0.0, 1e6);
    core::MapScoreEngine engine(1.0, 1.0);
    core::SupernetSwitchEngine sw(core::DreamConfig::full());
    // Huge slack, idle system: stay on the Original subnet.
    EXPECT_FALSE(
        sw.chooseVariant(cb.context(0.0), engine, *req).has_value());
}

TEST(Supernet, SwitchesLighterWhenSlackTight)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toySupernet());
    auto* req = cb.addRequest(t, 0.0, 0.0);
    core::MapScoreEngine engine(1.0, 1.0);
    core::SupernetSwitchEngine sw(core::DreamConfig::full());
    auto& ctx = cb.context(0.0);
    const double heavy = engine.minToGoUs(ctx, *req);
    req->deadlineUs = heavy * 0.5; // heavy cannot finish in time
    const auto variant = sw.chooseVariant(ctx, engine, *req);
    ASSERT_TRUE(variant.has_value());
    EXPECT_GT(*variant, 0);
}

TEST(Supernet, SwitchesLighterUnderBacklog)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toySupernet());
    auto* req = cb.addRequest(t, 0.0, 0.0);
    core::MapScoreEngine engine(1.0, 1.0);
    core::SupernetSwitchEngine sw(core::DreamConfig::full());
    auto& ctx = cb.context(0.0);
    const double heavy = engine.minToGoUs(ctx, *req);
    req->deadlineUs = heavy * 1.5; // fits when the system is idle
    EXPECT_FALSE(sw.chooseVariant(ctx, engine, *req).has_value());
    // Pile committed work onto both accelerators: the expected
    // queueing delay eats the slack and a lighter subnet deploys.
    cb.accels()[0].runningJobs = 1;
    cb.accels()[0].freeSlices = 0;
    cb.accels()[0].busyUntilUs = ctx.nowUs + heavy * 4.0;
    cb.accels()[1].runningJobs = 1;
    cb.accels()[1].freeSlices = 0;
    cb.accels()[1].busyUntilUs = ctx.nowUs + heavy * 4.0;
    const auto variant = sw.chooseVariant(ctx, engine, *req);
    ASSERT_TRUE(variant.has_value());
    EXPECT_GT(*variant, 0);
}

TEST(Supernet, NoSwitchPastSwitchPoint)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toySupernet());
    auto* req = cb.addRequest(t, 0.0, 1.0); // hopeless
    req->nextLayer =
        cb.scenario().tasks[t].model.supernetSwitchPoint + 1;
    core::MapScoreEngine engine(1.0, 1.0);
    core::SupernetSwitchEngine sw(core::DreamConfig::full());
    EXPECT_FALSE(
        sw.chooseVariant(cb.context(0.0), engine, *req).has_value());
}

TEST(Supernet, NonSupernetModelsAreIgnored)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    auto* req = cb.addRequest(t, 0.0, 1.0);
    core::MapScoreEngine engine(1.0, 1.0);
    core::SupernetSwitchEngine sw(core::DreamConfig::full());
    EXPECT_FALSE(
        sw.chooseVariant(cb.context(0.0), engine, *req).has_value());
}

} // namespace
} // namespace dream
