/**
 * @file
 * Property-based sweeps: invariants that must hold for every
 * (scheduler, system, scenario) combination, exercised with
 * parameterized gtest across the full evaluation matrix.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "metrics/uxcost.h"
#include "runner/experiment.h"

namespace dream {
namespace {

struct SweepCase {
    runner::SchedKind sched;
    hw::SystemPreset system;
    workload::ScenarioPreset scenario;
};

std::string
caseName(const ::testing::TestParamInfo<SweepCase>& info)
{
    std::string n = std::string(toString(info.param.sched)) + "_" +
                    hw::toString(info.param.system) + "_" +
                    workload::toString(info.param.scenario);
    for (auto& c : n) {
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return n;
}

class SchedulerSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SchedulerSweep, RunInvariants)
{
    const auto& sc = GetParam();
    const auto system = hw::makeSystem(sc.system);
    const auto scenario = workload::makeScenario(sc.scenario);
    auto sched = runner::makeScheduler(sc.sched);
    const auto r = runner::runOnce(system, scenario, *sched, 1e6, 17);

    EXPECT_GT(r.stats.totalFrames(), 0u);
    EXPECT_GE(r.uxCost, 0.0);
    EXPECT_TRUE(std::isfinite(r.uxCost));
    EXPECT_GT(r.stats.totalEnergyMj(), 0.0);
    for (const auto& ts : r.stats.tasks) {
        EXPECT_LE(ts.droppedFrames, ts.violatedFrames);
        EXPECT_LE(ts.violatedFrames, ts.totalFrames);
        EXPECT_LE(ts.completedFrames, ts.totalFrames);
        EXPECT_GE(ts.completedFrames + ts.violatedFrames,
                  ts.totalFrames);
        // Actual energy cannot exceed the all-worst-case bound by
        // more than the context-switch overhead allows; sanity-check
        // with a generous factor.
        if (ts.worstCaseEnergyMj > 0.0) {
            EXPECT_LT(ts.normEnergy(), 4.0) << ts.model;
        }
        // Drop-rate bound: never above the 20% cap (plus one-frame
        // rounding) for DREAM configurations.
        if (sc.sched == runner::SchedKind::DreamSmartDrop ||
            sc.sched == runner::SchedKind::DreamFull) {
            const double frames = std::max<double>(
                10.0, double(ts.completedFrames + ts.droppedFrames));
            EXPECT_LE(double(ts.droppedFrames), 0.2 * frames + 1.0)
                << ts.model;
        }
    }
    // UXCost is never below the all-floors product.
    double floor_rate = 0.0;
    for (const auto& ts : r.stats.tasks) {
        if (ts.totalFrames > 0)
            floor_rate += 1.0 / (2.0 * double(ts.totalFrames));
    }
    EXPECT_GE(r.stats.overallDlvRate() + 1e-12, floor_rate);
}

std::vector<SweepCase>
sweepCases()
{
    std::vector<SweepCase> cases;
    const runner::SchedKind scheds[] = {
        runner::SchedKind::Fcfs, runner::SchedKind::Veltair,
        runner::SchedKind::Planaria, runner::SchedKind::DreamFull};
    const hw::SystemPreset systems[] = {
        hw::SystemPreset::Sys4k1Ws2Os, hw::SystemPreset::Sys4k2Os,
        hw::SystemPreset::Sys8k1Os2Ws};
    for (const auto s : scheds) {
        for (const auto sys : systems) {
            for (const auto sc : workload::allScenarioPresets())
                cases.push_back({s, sys, sc});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, SchedulerSweep,
                         ::testing::ValuesIn(sweepCases()), caseName);

// ---------------------------------------------------------------------

class CascadeSweep
    : public ::testing::TestWithParam<double> {};

TEST_P(CascadeSweep, HigherProbabilityMoreDependentFrames)
{
    const double prob = GetParam();
    const auto system = hw::makeSystem(hw::SystemPreset::Sys8k2Ws);
    const auto lo = workload::makeScenario(
        workload::ScenarioPreset::ArCall, prob);
    auto sched = runner::makeScheduler(runner::SchedKind::Fcfs);
    const auto r = runner::runOnce(system, lo, *sched, 2e6, 21);
    const double kws_done = double(r.stats.tasks[0].completedFrames);
    const double gnmt = double(r.stats.tasks[1].totalFrames);
    ASSERT_GT(kws_done, 0.0);
    // Dependent frame count tracks the trigger probability.
    EXPECT_NEAR(gnmt / kws_done, prob, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, CascadeSweep,
                         ::testing::Values(0.3, 0.5, 0.9));

// ---------------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, DreamNeverWorseThanWorstBaselineByFar)
{
    // A coarse robustness property: on the constrained heterogeneous
    // system, DREAM-Full's UXCost stays below the worst baseline for
    // every seed (the paper's headline holds per-run, not just in
    // the mean).
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArSocial);
    auto dream = runner::makeScheduler(runner::SchedKind::DreamFull);
    auto fcfs = runner::makeScheduler(runner::SchedKind::Fcfs);
    const auto rd = runner::runOnce(system, scenario, *dream, 1e6,
                                    GetParam());
    const auto rf = runner::runOnce(system, scenario, *fcfs, 1e6,
                                    GetParam());
    EXPECT_LT(rd.uxCost, rf.uxCost * 1.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 7, 13, 29, 57));

} // namespace
} // namespace dream
